package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example shows the complete public-API workflow: pick a workload,
// compute the proposed placement, and compare simulated shift counts
// against the program-order baseline.
func Example() {
	wl, err := repro.WorkloadByName("zigzag")
	if err != nil {
		log.Fatal(err)
	}
	tr := wl.Make(1)

	g, err := repro.AccessGraph(tr)
	if err != nil {
		log.Fatal(err)
	}
	proposed, _, err := repro.Propose(tr, g)
	if err != nil {
		log.Fatal(err)
	}

	geom := repro.Geometry{Tapes: 1, DomainsPerTape: tr.NumItems, PortsPerTape: 1}
	dev, err := repro.NewDevice(geom, repro.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	s, err := repro.NewSingleTapeSimulator(dev, proposed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		log.Fatal(err)
	}
	// The zigzag scan's first-touch order is already the access chain, so
	// the proposed pipeline reproduces the optimal per-block cost: 63
	// single-step shifts per 64-access block, plus the initial seek.
	fmt.Printf("accesses: %d\n", res.Accesses)
	fmt.Printf("shifts:   %d\n", res.Counters.Shifts)
	// Output:
	// accesses: 4096
	// shifts:   8033
}
