package repro_test

import (
	"testing"

	"repro"
)

// TestFacadeEndToEnd drives the whole system through the public facade
// only, the way a downstream user would.
func TestFacadeEndToEnd(t *testing.T) {
	wl, err := repro.WorkloadByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	tr := wl.Make(1)

	g, err := repro.AccessGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	proposed, linCost, err := repro.Propose(tr, g)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := repro.ProgramOrder(tr)
	if err != nil {
		t.Fatal(err)
	}

	geom := repro.Geometry{Tapes: 1, DomainsPerTape: tr.NumItems, PortsPerTape: 1}
	run := func(p repro.Placement) repro.SimResult {
		dev, err := repro.NewDevice(geom, repro.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		s, err := repro.NewSingleTapeSimulator(dev, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	propRes := run(proposed)
	baseRes := run(baseline)
	if propRes.Counters.Shifts >= baseRes.Counters.Shifts {
		t.Errorf("proposed %d shifts not better than baseline %d",
			propRes.Counters.Shifts, baseRes.Counters.Shifts)
	}
	if linCost <= 0 {
		t.Errorf("suspicious linear cost %d", linCost)
	}

	// Analytic cost through the facade agrees with the simulator.
	ports := geom.PortPositions()
	want, err := repro.ShiftCost(tr.Items(), proposed, ports, tr.NumItems)
	if err != nil {
		t.Fatal(err)
	}
	if want != propRes.Counters.Shifts {
		t.Errorf("facade ShiftCost %d != simulated %d", want, propRes.Counters.Shifts)
	}
}

func TestFacadeMultiTape(t *testing.T) {
	wl, err := repro.WorkloadByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	tr := wl.Make(1)
	tapes, tapeLen := 4, 27
	geom := repro.Geometry{Tapes: tapes, DomainsPerTape: tapeLen, PortsPerTape: 1}
	mp, shifts, err := repro.ProposeMultiTape(tr, tapes, tapeLen, geom.PortPositions())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := repro.NewDevice(geom, repro.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.NewSimulator(dev, mp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Shifts != shifts {
		t.Errorf("simulated %d != reported %d", res.Counters.Shifts, shifts)
	}
}

func TestFacadePoliciesAndWorkloads(t *testing.T) {
	if len(repro.Workloads()) != 15 {
		t.Errorf("expected 15 workloads, got %d", len(repro.Workloads()))
	}
	if len(repro.Policies(1)) != 9 {
		t.Errorf("expected 9 policies, got %d", len(repro.Policies(1)))
	}
	tr := repro.NewTrace("mini", 2)
	tr.Read(0)
	tr.Write(1)
	if tr.Len() != 2 {
		t.Errorf("facade trace len = %d", tr.Len())
	}
}

func TestFacadeSpecAndCache(t *testing.T) {
	prog, err := repro.CompileSpec("array a 4\nloop i 0 8 { read a[i%4] }\n")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Trace("facade spec")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 8 || tr.NumItems != 4 {
		t.Errorf("spec trace: len=%d items=%d", tr.Len(), tr.NumItems)
	}
	filtered, st, err := repro.FilterThroughCache(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 4 || st.Misses != 4 {
		t.Errorf("cache stats %+v", st)
	}
	if filtered.Len() != 4 { // 4 cold read misses, nothing dirty
		t.Errorf("filtered len %d", filtered.Len())
	}
}
