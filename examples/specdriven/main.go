// Spec-driven placement: write a kernel in the specification language,
// compile it to a trace, place it, and visualize where the hot data
// landed. This is the workflow for a kernel the built-in suite does not
// cover — here, a small bubble-sort-like compare-exchange network plus a
// lookup table.
//
// Run with: go run ./examples/specdriven
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/viz"
)

const kernel = `
# Odd-even transposition network over 16 keys with a 16-entry rank LUT.
array keys 16
array lut 16

loop round 0 16 {
    # even phase: compare-exchange (2i, 2i+1)
    loop i 0 8 {
        read keys[2*i]
        read keys[2*i+1]
        write keys[2*i]
        write keys[2*i+1]
    }
    # odd phase: compare-exchange (2i+1, 2i+2)
    loop i 0 7 {
        read keys[2*i+1]
        read keys[2*i+2]
        write keys[2*i+1]
        write keys[2*i+2]
    }
    # rank lookup for the round result
    loop i 0 16 {
        read keys[i]
        read lut[i]
    }
}
`

func main() {
	prog, err := spec.Parse(kernel)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := prog.Trace("odd-even sort + LUT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled spec: arrays %v, %d items, %d accesses\n\n",
		prog.ArrayNames(), prog.Items(), tr.Len())

	g, err := graph.FromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := core.ProgramOrder(tr)
	if err != nil {
		log.Fatal(err)
	}
	proposed, _, err := core.Propose(tr, g)
	if err != nil {
		log.Fatal(err)
	}
	// Object-granularity variant: arrays stay contiguous.
	grouped, groupedCost, err := core.GroupedPropose(tr, prog.Groups())
	if err != nil {
		log.Fatal(err)
	}

	port := []int{tr.NumItems / 2}
	show := func(label string, p []int) {
		c, err := cost.MultiPort(tr.Items(), p, port, tr.NumItems)
		if err != nil {
			log.Fatal(err)
		}
		m, err := viz.TapeMap(p, tr.Frequencies(), tr.NumItems, port)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %8d shifts\n%s\n", label, c, m)
	}
	show("program order", baseline)
	show("proposed", proposed)
	show("object-granular", grouped)
	_ = groupedCost
	fmt.Println("the proposed map interleaves keys[] with their lut[] partners; the")
	fmt.Println("object-granular map keeps the two arrays separate and pays for it.")
}
