// Multi-tape placement: a working set larger than one tape spread over a
// DWM array. The example sweeps the tape count, compares the naive packed
// layout against the proposed partition-portfolio pipeline, and prints the
// per-tape load so the effect of affinity partitioning is visible.
//
// Run with: go run ./examples/multitape
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/workload"
)

func main() {
	tr := workload.MatMul(6) // 108 items: A, B, C matrices
	fmt.Printf("workload %q: %d accesses over %d items\n\n", tr.Name, tr.Len(), tr.NumItems)

	fmt.Printf("%6s %8s %10s %10s %10s\n", "tapes", "tapelen", "packed", "proposed", "reduction")
	for _, tapes := range []int{1, 2, 4, 8} {
		tapeLen := (tr.NumItems + tapes - 1) / tapes
		ports := dwm.SpreadPorts(tapeLen, 1)
		seq := tr.Items()

		contig, err := core.ContiguousPartition(tr, tapes, tapeLen)
		if err != nil {
			log.Fatal(err)
		}
		packed, err := core.PackedPlacement(tr, contig, tapes)
		if err != nil {
			log.Fatal(err)
		}
		base, err := cost.MultiTape(seq, packed, tapes, tapeLen, ports)
		if err != nil {
			log.Fatal(err)
		}

		mp, prop, err := core.ProposeMultiTape(tr, tapes, tapeLen, ports)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %8d %10d %10d %9.1f%%\n",
			tapes, tapeLen, base, prop, 100*float64(base-prop)/float64(base))

		if tapes == 4 {
			// Show where the proposed pipeline put the three matrices.
			counts := make([][3]int, tapes)
			n := 36 // elements per matrix
			for item, tp := range mp.Tape {
				counts[tp][item/n]++
			}
			fmt.Println("\n  tape composition at 4 tapes (A/B/C elements per tape):")
			for tp, c := range counts {
				fmt.Printf("    tape %d: A=%2d B=%2d C=%2d\n", tp, c[0], c[1], c[2])
			}
			fmt.Println()
		}
	}
	fmt.Println("shorter tapes shrink worst-case shift distance; the proposed")
	fmt.Println("pipeline compounds that with affinity partitioning and per-tape")
	fmt.Println("arrangement.")
}
