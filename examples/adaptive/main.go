// Online reorganization: a workload whose hot set rotates every phase
// defeats any single static layout. The example compares a static
// organ-pipe placement against runtime transposition and epoch
// rebuilding, with every migration paying its real device cost, and shows
// when adaptivity is worth it (from a naive layout) and when it is not
// (from the proposed optimized layout).
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/workload"
)

func main() {
	tr := workload.Phased(64, 16384, 8, 1.3, 3)
	fmt.Printf("workload %q: %d accesses, hot set rotates every %d accesses\n\n",
		tr.Name, tr.Len(), tr.Len()/8)

	g, err := graph.FromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	organ, err := core.OrganPipe(tr)
	if err != nil {
		log.Fatal(err)
	}
	proposed, _, err := core.Propose(tr, g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-11s %10s %10s %10s %12s\n",
		"start", "policy", "shifts", "access", "migration", "migrations")
	for _, start := range []struct {
		name string
		p    layout.Placement
	}{{"organpipe", organ}, {"proposed", proposed}} {
		for _, pol := range []adaptive.Policy{
			adaptive.Static{}, adaptive.Transpose{}, &adaptive.Epoch{Window: 1024},
		} {
			dev, err := dwm.NewDevice(dwm.Geometry{
				Tapes: 1, DomainsPerTape: tr.NumItems, PortsPerTape: 1,
			}, dwm.DefaultParams())
			if err != nil {
				log.Fatal(err)
			}
			s, err := adaptive.NewSimulator(dev, start.p, pol)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Run(tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-11s %10d %10d %10d %12d\n",
				start.name, pol.Name(), res.Counters.Shifts,
				res.AccessShifts, res.MigrationShifts, res.Migrations)
		}
	}
	fmt.Println("\ntakeaway: transposition pays for itself when the starting layout is")
	fmt.Println("naive, but a good static placement of the aggregate trace is hard to")
	fmt.Println("beat — migrations then cost more shifts than they save.")
}
