// Quickstart: generate a workload trace, compute the proposed placement,
// and compare simulated shift counts against the program-order baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// 1. A workload: a 32-tap FIR filter. The trace records every memory
	// access the kernel performs on its delay line and coefficients.
	tr := workload.FIR(32, 256)
	fmt.Printf("workload %q: %d accesses over %d items\n", tr.Name, tr.Len(), tr.NumItems)

	// 2. A DWM device: one tape sized to the working set, one centered
	// read/write port.
	geom := dwm.Geometry{Tapes: 1, DomainsPerTape: tr.NumItems, PortsPerTape: 1}
	port := geom.PortPositions()[0]

	// 3. Two placements: the compiler's first-touch order, and the
	// proposed shift-minimizing pipeline.
	baseline, err := core.ProgramOrder(tr)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	proposed, _, err := core.Propose(tr, g)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Simulate both and compare.
	for _, c := range []struct {
		name string
		p    layout.Placement
	}{{"program order", baseline}, {"proposed", proposed}} {
		p, err := core.CenterOnPort(c.p, geom.DomainsPerTape, port)
		if err != nil {
			log.Fatal(err)
		}
		res := simulate(tr, geom, p)
		fmt.Printf("%-14s shifts=%-8d latency=%7.1fus energy=%7.1fnJ\n",
			c.name, res.Counters.Shifts, res.LatencyNS/1e3, res.EnergyPJ/1e3)
	}
}

func simulate(tr *trace.Trace, geom dwm.Geometry, p layout.Placement) sim.Result {
	dev, err := dwm.NewDevice(geom, dwm.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.NewSingleTape(dev, p, sim.HeadStay)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
