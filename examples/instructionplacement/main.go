// Instruction placement: a DWM used as an instruction scratchpad. Basic
// blocks are the placeable items; the "trace" is the dynamic basic-block
// sequence of a control-flow graph executed with data-dependent branches.
// Placing blocks that frequently follow each other in adjacent tape slots
// minimizes the instruction-fetch shift overhead — the same optimization
// the paper applies to data, exercised on a different input domain.
//
// Run with: go run ./examples/instructionplacement
package main

import (
	"fmt"
	"log"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
)

func main() {
	// A hot loop with a 70/30 if/else diamond, a 2% error path, and a 5%
	// exit, executed 400 times with data-dependent branches.
	g, err := cfg.Loop(0.7, 0.02, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := g.Execute(400, 0, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic block trace: %d block fetches over %d blocks\n", tr.Len(), g.Blocks)

	ag, err := graph.FromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}

	// Layout in block-number order (what a naive linker emits) versus the
	// proposed placement versus the provable optimum (the instance is
	// small enough for the exact DP).
	naive, err := core.ProgramOrder(tr)
	if err != nil {
		log.Fatal(err)
	}
	naiveCost, err := cost.Linear(ag, naive)
	if err != nil {
		log.Fatal(err)
	}
	proposed, propCost, err := core.Propose(tr, ag)
	if err != nil {
		log.Fatal(err)
	}
	_, optCost, err := core.ExactDP(ag)
	if err != nil {
		log.Fatal(err)
	}

	order, err := proposed.Order()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive layout shifts:    %d\n", naiveCost)
	fmt.Printf("proposed layout shifts: %d (%.1f%% reduction)\n",
		propCost, 100*float64(naiveCost-propCost)/float64(naiveCost))
	gap := 0.0
	if optCost > 0 {
		gap = 100 * float64(propCost-optCost) / float64(optCost)
	}
	fmt.Printf("optimal shifts:         %d (proposed gap %.1f%%)\n", optCost, gap)
	fmt.Printf("proposed tape order:    %v\n", order)
	fmt.Println("\nnote: the hot loop blocks (1,2,3,4) end up contiguous; the cold")
	fmt.Println("error path (5) and exit (6) are pushed to the tape edge.")
}
