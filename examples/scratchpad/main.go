// Scratchpad allocation: an embedded signal chain (IIR cascade -> FIR
// smoother -> histogram of levels) shares one DWM scratchpad. The example
// concatenates the kernels' traces into one allocation problem, compares
// every placement policy, and shows how the shift reduction translates to
// latency and energy on the device.
//
// This is the scenario the paper's introduction motivates: variables of a
// fixed embedded application placed once, at link time, on a DWM
// scratchpad.
//
// Run with: go run ./examples/scratchpad
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	app := buildApplicationTrace()
	fmt.Printf("application trace: %d accesses over %d scratchpad words\n\n", app.Len(), app.NumItems)

	geom := dwm.Geometry{Tapes: 1, DomainsPerTape: app.NumItems, PortsPerTape: 1}
	port := geom.PortPositions()[0]
	g, err := graph.FromTrace(app)
	if err != nil {
		log.Fatal(err)
	}

	var baseline int64 = -1
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "policy", "shifts", "lat(us)", "en(nJ)", "vs program")
	for _, pol := range core.Policies(1) {
		p, err := pol.Place(app, g)
		if err != nil {
			log.Fatal(err)
		}
		p, err = core.CenterOnPort(p, geom.DomainsPerTape, port)
		if err != nil {
			log.Fatal(err)
		}
		dev, err := dwm.NewDevice(geom, dwm.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		s, err := sim.NewSingleTape(dev, p, sim.HeadStay)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(app)
		if err != nil {
			log.Fatal(err)
		}
		if pol.Name == "program" {
			baseline = res.Counters.Shifts
		}
		red := "-"
		if baseline > 0 {
			red = fmt.Sprintf("%.1f%%", 100*float64(baseline-res.Counters.Shifts)/float64(baseline))
		}
		fmt.Printf("%-12s %10d %10.1f %10.1f %10s\n",
			pol.Name, res.Counters.Shifts, res.LatencyNS/1e3, res.EnergyPJ/1e3, red)
	}
}

// buildApplicationTrace interleaves three kernels over disjoint variable
// ranges, the way a real firmware main loop alternates between pipeline
// stages.
func buildApplicationTrace() *trace.Trace {
	iir := workload.IIR(4, 96)                  // 28 items
	fir := workload.FIR(8, 96)                  // 16 items
	hist := workload.Histogram(16, 768, 1.1, 7) // 16 items

	total := iir.NumItems + fir.NumItems + hist.NumItems
	app := trace.New("iir+fir+histogram signal chain", total)

	// Interleave per "frame": one slice of each kernel per loop pass.
	frames := 32
	chunk := func(t *trace.Trace, frame, frames int) []trace.Access {
		lo := frame * t.Len() / frames
		hi := (frame + 1) * t.Len() / frames
		return t.Accesses[lo:hi]
	}
	for f := 0; f < frames; f++ {
		for _, a := range chunk(iir, f, frames) {
			appendAccess(app, a, 0)
		}
		for _, a := range chunk(fir, f, frames) {
			appendAccess(app, a, iir.NumItems)
		}
		for _, a := range chunk(hist, f, frames) {
			appendAccess(app, a, iir.NumItems+fir.NumItems)
		}
	}
	return app
}

func appendAccess(app *trace.Trace, a trace.Access, base int) {
	if a.Write {
		app.Write(base + a.Item)
	} else {
		app.Read(base + a.Item)
	}
}
