// Command dwmbench runs the reproduction's experiment suite (E1–E9) and
// prints each table/figure in paper form.
//
// Usage:
//
//	dwmbench [-seed N] [-csv] [-only E2,E5] [-workers N] [-json FILE]
//
// Experiments execute on a worker pool of -workers goroutines (default
// GOMAXPROCS; 1 forces sequential). Output is byte-identical for every
// worker count — only E8's wall-clock column is timing-sensitive.
// -json writes a machine-readable BENCH report with per-experiment wall
// times and, when the file already exists, ns deltas against the
// previous run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for workloads and randomized policies")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	md := flag.Bool("md", false, "emit GitHub-flavored markdown instead of aligned tables")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	workers := flag.Int("workers", 0, "worker-pool size for experiments (0 = GOMAXPROCS, 1 = sequential)")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark report to this file")
	flag.Parse()

	if err := run(*seed, *csv, *md, *workers, *only, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "dwmbench:", err)
		os.Exit(1)
	}
}

// benchReport is the schema of the -json report (BENCH_dwmbench.json).
type benchReport struct {
	Seed        int64       `json:"seed"`
	Workers     int         `json:"workers"`
	TotalNS     int64       `json:"total_ns"`
	Experiments []expReport `json:"experiments"`
}

type expReport struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	// DeltaPct is the percent change in wall time vs the same experiment
	// in the report previously stored at the -json path (negative =
	// faster); omitted when there is no prior sample.
	DeltaPct *float64 `json:"delta_pct,omitempty"`
}

func run(seed int64, csv, md bool, workers int, only, jsonPath string) error {
	want := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	var selected []bench.Experiment
	for _, e := range bench.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments matched %q", only)
	}

	// Prior report (if any) for wall-time deltas, loaded before the run
	// so a failed run never clobbers it.
	prior := map[string]int64{}
	if jsonPath != "" {
		if raw, err := os.ReadFile(jsonPath); err == nil {
			var old benchReport
			if json.Unmarshal(raw, &old) == nil {
				for _, e := range old.Experiments {
					prior[e.ID] = e.WallNS
				}
			}
		}
	}

	cfg := bench.Config{Seed: seed, Workers: workers}
	results, err := bench.RunParallel(cfg, selected...)
	if err != nil {
		return err
	}

	var out bytes.Buffer
	for _, r := range results {
		switch {
		case csv:
			if err := r.Table.CSV(&out); err != nil {
				return err
			}
			fmt.Fprintln(&out)
		case md:
			if err := r.Table.Markdown(&out); err != nil {
				return err
			}
		default:
			if err := r.Table.Format(&out); err != nil {
				return err
			}
		}
	}
	if _, err := out.WriteTo(os.Stdout); err != nil {
		return err
	}

	if jsonPath == "" {
		return nil
	}
	effWorkers := workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	rep := benchReport{Seed: seed, Workers: effWorkers}
	for _, r := range results {
		er := expReport{ID: r.ID, Name: r.Name, WallNS: r.Elapsed.Nanoseconds()}
		if old, ok := prior[r.ID]; ok && old > 0 {
			d := 100 * float64(er.WallNS-old) / float64(old)
			er.DeltaPct = &d
		}
		rep.TotalNS += er.WallNS
		rep.Experiments = append(rep.Experiments, er)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(raw, '\n'), 0o644)
}
