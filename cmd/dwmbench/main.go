// Command dwmbench runs the reproduction's experiment suite (E1–E9) and
// prints each table/figure in paper form.
//
// Usage:
//
//	dwmbench [-seed N] [-csv] [-md] [-only E2,E5] [-workers N] [-timeout D]
//	         [-json FILE] [-metrics] [-trace FILE] [-cache DIR]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// Experiments execute on a worker pool of -workers goroutines (default
// GOMAXPROCS; 1 forces sequential). Output is byte-identical for every
// worker count — only E8's wall-clock column is timing-sensitive.
//
// Robustness: a panic or error inside one experiment fails only that
// experiment — the others still print and report. -timeout bounds each
// experiment's wall time. SIGINT cancels the run gracefully: experiments
// already finished still print, the -json report is still written for
// them, and the process exits nonzero.
//
// -cache DIR memoizes the anneal stages of the suite in a persistent
// placement cache at DIR/placecache.jsonl (see internal/placecache):
// re-running a sweep replays cached anneal results byte-exactly instead
// of re-searching. Each -json report row records whether its experiment
// ran against the cache ("hit"/"miss"/"off") so repeated runs stay
// distinguishable in the BENCH history.
//
// -json writes a machine-readable BENCH report with per-experiment wall
// times, ns deltas against the previous run, and a metrics snapshot
// (see internal/obs). When the file already exists, entries for
// experiments not run this invocation (e.g. filtered out by -only) are
// preserved from the prior report instead of being clobbered, so the
// wall-time trajectory survives partial runs.
//
// -metrics prints the observability snapshot (simulator, annealer, CSR
// cache, and runner instruments) to stderr after the run. -cpuprofile
// and -memprofile write pprof profiles for the whole invocation.
//
// -trace enables the span tracer for the run and writes the collected
// spans at exit: Chrome trace_event JSON by default (load it in
// Perfetto or chrome://tracing), or one span per line when the file
// name ends in .jsonl. Tracing is observational only — tables are
// byte-identical with and without it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/placecache"
)

func main() {
	var opts options
	flag.Int64Var(&opts.seed, "seed", 1, "seed for workloads and randomized policies")
	flag.BoolVar(&opts.csv, "csv", false, "emit CSV instead of aligned tables")
	flag.BoolVar(&opts.md, "md", false, "emit GitHub-flavored markdown instead of aligned tables")
	flag.StringVar(&opts.only, "only", "", "comma-separated experiment IDs to run (default: all)")
	flag.IntVar(&opts.workers, "workers", 0, "worker-pool size for experiments (0 = GOMAXPROCS, 1 = sequential)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "per-experiment wall-time limit (0 = none)")
	flag.StringVar(&opts.jsonPath, "json", "", "write a machine-readable benchmark report to this file")
	flag.BoolVar(&opts.metrics, "metrics", false, "print the observability snapshot to stderr after the run")
	flag.StringVar(&opts.tracePath, "trace", "", "collect spans and write a Chrome trace_event file (.jsonl = one span per line)")
	flag.StringVar(&opts.cacheDir, "cache", "", "memoize anneal results in a persistent placement cache under this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	// SIGINT cancels the run: in-flight experiments are abandoned,
	// completed ones still print and land in the -json report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwmbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dwmbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	err := run(ctx, opts)

	if *memprofile != "" {
		if f, ferr := os.Create(*memprofile); ferr == nil {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "dwmbench:", werr)
			}
			f.Close()
		} else {
			fmt.Fprintln(os.Stderr, "dwmbench:", ferr)
		}
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "dwmbench:", err)
		if *cpuprofile != "" {
			pprof.StopCPUProfile() // flush before the deferred exit is skipped
		}
		os.Exit(1)
	}
}

// options carries the CLI flags into run.
type options struct {
	seed      int64
	csv, md   bool
	only      string
	workers   int
	timeout   time.Duration
	jsonPath  string
	metrics   bool
	tracePath string
	cacheDir  string
}

// benchReport is the schema of the -json report (BENCH_dwmbench.json).
type benchReport struct {
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	// TotalNS sums WallNS over every entry in the report, including
	// entries merged from a prior run when -only filtered this one.
	TotalNS     int64       `json:"total_ns"`
	Experiments []expReport `json:"experiments"`
	// Metrics is the process-wide observability snapshot at report time
	// (simulator, annealer, CSR cache, runner; see internal/obs).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// DeltaBench records the graph.ApplyDeltas-vs-rebuild microbenchmark
	// (BenchmarkApplyDeltas* in internal/graph). dwmbench does not
	// measure it — the numbers come from `go test -bench ApplyDeltas
	// ./internal/graph` — but the report carries them across merges so a
	// partial -only run never drops the record.
	DeltaBench *deltaBenchReport `json:"delta_bench,omitempty"`
	// LintBench records the dwmlint wall-clock over the whole module
	// (written by `dwmlint -bench`, see the Makefile lint-bench target).
	// Like DeltaBench it is carried across merges, not measured here.
	LintBench *lintBenchReport `json:"lint_bench,omitempty"`
}

// deltaBenchReport pins the incremental-graph acceptance numbers: ns/op
// for the weight-only patch and structural splice paths vs a cold CSR
// rebuild of the same batch, plus the derived speedups.
type deltaBenchReport struct {
	Bench         string  `json:"bench"`
	PatchNS       int64   `json:"patch_ns_op"`
	SpliceNS      int64   `json:"splice_ns_op"`
	RebuildNS     int64   `json:"rebuild_ns_op"`
	PatchSpeedup  float64 `json:"patch_speedup"`
	SpliceSpeedup float64 `json:"splice_speedup"`
}

// lintBenchReport mirrors the lint_bench entry cmd/dwmlint -bench
// writes: how long the full-module analysis run took and what it saw.
type lintBenchReport struct {
	Packages   int   `json:"packages"`
	Analyzers  int   `json:"analyzers"`
	Findings   int   `json:"findings"`
	Suppressed int   `json:"suppressed"`
	WallNS     int64 `json:"wall_ns"`
}

type expReport struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	// DeltaPct is the percent change in wall time vs the same experiment
	// in the report previously stored at the -json path (negative =
	// faster); omitted when there is no prior sample.
	DeltaPct *float64 `json:"delta_pct,omitempty"`
	// Cache records how this row ran against the placement cache: "hit"
	// (every anneal lookup was served from the cache), "miss" (at least
	// one lookup annealed cold), or "off" (no -cache, or the experiment
	// has no anneal stage). Rows merged from reports written before the
	// field existed omit it. Schema bump documented in EXPERIMENTS.md.
	Cache string `json:"cache,omitempty"`
}

// cacheOutcome folds a RunResult's cache counters into the report
// value: any cold lookup makes the row a "miss" (its wall time includes
// real search work), an all-served row is a "hit", everything else is
// "off".
func cacheOutcome(r bench.RunResult) string {
	switch {
	case !r.CacheEnabled:
		return "off"
	case r.CacheMisses > 0:
		return "miss"
	case r.CacheHits > 0:
		return "hit"
	default:
		return "off"
	}
}

func run(ctx context.Context, opts options) error {
	want := map[string]bool{}
	if opts.only != "" {
		for _, id := range strings.Split(opts.only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	var selected []bench.Experiment
	for _, e := range bench.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments matched %q", opts.only)
	}

	// Prior report (if any), loaded before the run so a failed run never
	// clobbers it. It feeds the wall-time deltas and the merge of
	// entries for experiments not run this invocation.
	prior := map[string]expReport{}
	var priorOrder []string
	var priorDelta *deltaBenchReport
	var priorLint *lintBenchReport
	if opts.jsonPath != "" {
		if raw, err := os.ReadFile(opts.jsonPath); err == nil {
			var old benchReport
			if json.Unmarshal(raw, &old) == nil {
				for _, e := range old.Experiments {
					prior[e.ID] = e
					priorOrder = append(priorOrder, e.ID)
				}
				priorDelta = old.DeltaBench
				priorLint = old.LintBench
			}
		}
	}

	if opts.tracePath != "" {
		// 128k spans ≈ 16 MiB of ring: enough for a full suite run (one
		// span per anneal chain / sim run / experiment) without drops.
		obs.EnableTracing(1 << 17)
		defer obs.DisableTracing()
	}

	cfg := bench.Config{Seed: opts.seed, Workers: opts.workers, Timeout: opts.timeout}
	if opts.cacheDir != "" {
		if err := os.MkdirAll(opts.cacheDir, 0o755); err != nil {
			return err
		}
		pc, err := placecache.New(placecache.Options{
			Path: filepath.Join(opts.cacheDir, "placecache.jsonl"),
		})
		if err != nil {
			return err
		}
		defer pc.Close()
		fmt.Fprintf(os.Stderr, "dwmbench: placement cache at %s (%d entries loaded)\n",
			filepath.Join(opts.cacheDir, "placecache.jsonl"), pc.Len())
		cfg.Cache = pc.ForAnneal("linear")
	}
	results, runErr := bench.RunContext(ctx, cfg, selected...)

	// Print every completed table, even when a sibling failed or the
	// run was interrupted.
	var out bytes.Buffer
	_, renderSpan := obs.StartSpan(ctx, "bench.render")
	for _, r := range results {
		if r.Table == nil {
			continue
		}
		switch {
		case opts.csv:
			if err := r.Table.CSV(&out); err != nil {
				return err
			}
			fmt.Fprintln(&out)
		case opts.md:
			if err := r.Table.Markdown(&out); err != nil {
				return err
			}
		default:
			if err := r.Table.Format(&out); err != nil {
				return err
			}
		}
	}
	renderSpan.SetAttr("experiments", len(results)).End()
	if _, err := out.WriteTo(os.Stdout); err != nil {
		return err
	}

	if opts.metrics {
		fmt.Fprint(os.Stderr, obs.Take().Format())
	}

	if opts.tracePath != "" {
		if err := writeTrace(opts.tracePath); err != nil {
			if runErr != nil {
				return errors.Join(runErr, err)
			}
			return err
		}
	}

	if opts.jsonPath != "" {
		if err := writeReport(opts, prior, priorOrder, priorDelta, priorLint, results); err != nil {
			if runErr != nil {
				return errors.Join(runErr, err)
			}
			return err
		}
	}
	return runErr
}

// writeTrace drains the span ring and writes it in the format the file
// extension selects: .jsonl gets one span record per line, anything
// else the Chrome trace_event array Perfetto loads directly.
func writeTrace(path string) error {
	spans, dropped := obs.DrainSpans()
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "dwmbench: trace ring overflowed, oldest %d spans dropped\n", dropped)
	}
	var buf bytes.Buffer
	var err error
	if strings.HasSuffix(path, ".jsonl") {
		err = obs.WriteSpansJSONL(&buf, spans)
	} else {
		// Validate before writing: a trace file that Perfetto rejects is
		// worse than an error, because nobody opens it until they need it.
		if err = obs.WriteTraceEvents(&buf, spans); err == nil {
			err = obs.ValidateTraceEvents(buf.Bytes())
		}
	}
	if err == nil {
		err = os.WriteFile(path, buf.Bytes(), 0o644)
	}
	if err != nil {
		return fmt.Errorf("write trace %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "dwmbench: wrote %d spans to %s\n", len(spans), path)
	return nil
}

// writeReport merges this run's completed experiments over the prior
// report and writes the result. Entries are ordered by the canonical
// suite order (bench.All()); prior entries for IDs no longer in the
// suite keep their original relative order at the end.
func writeReport(opts options, prior map[string]expReport, priorOrder []string, priorDelta *deltaBenchReport, priorLint *lintBenchReport, results []bench.RunResult) error {
	effWorkers := opts.workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	merged := map[string]expReport{}
	for id, e := range prior {
		e.DeltaPct = nil // deltas describe the current run only
		merged[id] = e
	}
	for _, r := range results {
		if r.Err != nil || r.Table == nil {
			continue // failed/canceled experiments keep their prior entry
		}
		er := expReport{ID: r.ID, Name: r.Name, WallNS: r.Elapsed.Nanoseconds(), Cache: cacheOutcome(r)}
		if old, ok := prior[r.ID]; ok && old.WallNS > 0 {
			d := 100 * float64(er.WallNS-old.WallNS) / float64(old.WallNS)
			er.DeltaPct = &d
		}
		merged[r.ID] = er
	}

	rep := benchReport{Seed: opts.seed, Workers: effWorkers}
	emit := func(id string) {
		if e, ok := merged[id]; ok {
			rep.TotalNS += e.WallNS
			rep.Experiments = append(rep.Experiments, e)
			delete(merged, id)
		}
	}
	for _, e := range bench.All() {
		emit(e.ID)
	}
	for _, id := range priorOrder {
		emit(id)
	}
	snap := obs.Take()
	rep.Metrics = &snap
	rep.DeltaBench = priorDelta
	rep.LintBench = priorLint

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(opts.jsonPath, append(raw, '\n'), 0o644)
}
