// Command dwmbench runs the reproduction's experiment suite (E1–E9) and
// prints each table/figure in paper form.
//
// Usage:
//
//	dwmbench [-seed N] [-csv] [-only E2,E5]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/bench"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for workloads and randomized policies")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	md := flag.Bool("md", false, "emit GitHub-flavored markdown instead of aligned tables")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (E8 wall-clock timings get noisier)")
	flag.Parse()

	if err := run(*seed, *csv, *md, *parallel, *only); err != nil {
		fmt.Fprintln(os.Stderr, "dwmbench:", err)
		os.Exit(1)
	}
}

func run(seed int64, csv, md, parallel bool, only string) error {
	want := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	var selected []bench.Experiment
	for _, e := range bench.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments matched %q", only)
	}

	cfg := bench.Config{Seed: seed}
	render := func(tbl *bench.Table, w *bytes.Buffer) error {
		switch {
		case csv:
			if err := tbl.CSV(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return nil
		case md:
			return tbl.Markdown(w)
		default:
			return tbl.Format(w)
		}
	}

	outputs := make([]bytes.Buffer, len(selected))
	errs := make([]error, len(selected))
	if parallel {
		var wg sync.WaitGroup
		for i, e := range selected {
			wg.Add(1)
			go func(i int, e bench.Experiment) {
				defer wg.Done()
				tbl, err := e.Run(cfg)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", e.ID, err)
					return
				}
				errs[i] = render(tbl, &outputs[i])
			}(i, e)
		}
		wg.Wait()
	} else {
		for i, e := range selected {
			tbl, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			if err := render(tbl, &outputs[i]); err != nil {
				return err
			}
		}
	}
	for i := range selected {
		if errs[i] != nil {
			return errs[i]
		}
		if _, err := outputs[i].WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
