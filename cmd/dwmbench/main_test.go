package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func testOpts(seed int64, csv, md bool, workers int, only, jsonPath string) options {
	return options{seed: seed, csv: csv, md: md, workers: workers, only: only, jsonPath: jsonPath}
}

func TestRunOnlyFastExperiments(t *testing.T) {
	if err := run(context.Background(), testOpts(1, false, false, 1, "E1", "")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), testOpts(1, true, false, 1, "e1,E5", "")); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run(context.Background(), testOpts(1, false, true, 1, "E1", "")); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkers(t *testing.T) {
	if err := run(context.Background(), testOpts(1, false, false, 4, "E1,E5,E19", "")); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoMatch(t *testing.T) {
	if err := run(context.Background(), testOpts(1, false, false, 1, "E99", "")); err == nil {
		t.Error("unknown experiment ID accepted")
	}
}

func readReport(t *testing.T, path string) benchReport {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(context.Background(), testOpts(1, false, false, 1, "E1,E5", path)); err != nil {
		t.Fatal(err)
	}
	rep := readReport(t, path)
	if len(rep.Experiments) != 2 || rep.Experiments[0].ID != "E1" {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Experiments[0].DeltaPct != nil {
		t.Error("first run must not report a delta")
	}
	if rep.Metrics == nil || rep.Metrics.Counters["bench.runner.experiments_ok"] == 0 {
		t.Error("report missing the metrics snapshot")
	}

	// Second run against the stored report yields per-experiment deltas.
	if err := run(context.Background(), testOpts(1, false, false, 1, "E1,E5", path)); err != nil {
		t.Fatal(err)
	}
	for _, e := range readReport(t, path).Experiments {
		if e.DeltaPct == nil {
			t.Errorf("%s: missing delta on second run", e.ID)
		}
	}
}

// Regression: -json combined with -only used to overwrite the report
// with only the selected experiments, destroying the wall-time history
// of the others. Entries for experiments not run this invocation must
// be preserved from the prior report.
func TestRunJSONOnlyMergesPriorEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(context.Background(), testOpts(1, false, false, 1, "E1,E5", path)); err != nil {
		t.Fatal(err)
	}
	before := readReport(t, path)
	if len(before.Experiments) != 2 {
		t.Fatalf("seed report has %d entries, want 2", len(before.Experiments))
	}
	var e5Wall int64
	for _, e := range before.Experiments {
		if e.ID == "E5" {
			e5Wall = e.WallNS
		}
	}

	// Run only E1: E5's entry must survive, byte-for-byte wall time.
	if err := run(context.Background(), testOpts(1, false, false, 1, "E1", path)); err != nil {
		t.Fatal(err)
	}
	after := readReport(t, path)
	if len(after.Experiments) != 2 {
		t.Fatalf("merged report has %d entries, want 2: %+v", len(after.Experiments), after.Experiments)
	}
	ids := map[string]expReport{}
	for _, e := range after.Experiments {
		ids[e.ID] = e
	}
	e5, ok := ids["E5"]
	if !ok {
		t.Fatal("-only E1 clobbered the E5 entry")
	}
	if e5.WallNS != e5Wall {
		t.Errorf("E5 wall time rewritten: %d -> %d", e5Wall, e5.WallNS)
	}
	if e5.DeltaPct != nil {
		t.Error("stale E5 entry must not carry a delta from this run")
	}
	if e1 := ids["E1"]; e1.DeltaPct == nil {
		t.Error("E1 was re-run against a prior sample and must carry a delta")
	}
	// TotalNS covers the whole merged report.
	if want := ids["E1"].WallNS + e5.WallNS; after.TotalNS != want {
		t.Errorf("TotalNS = %d, want %d", after.TotalNS, want)
	}
	// Canonical suite order: E1 before E5.
	if after.Experiments[0].ID != "E1" || after.Experiments[1].ID != "E5" {
		t.Errorf("merged order = %s,%s, want E1,E5", after.Experiments[0].ID, after.Experiments[1].ID)
	}
}

// A run canceled before any experiment starts must fail nonzero but
// leave the prior report's history intact (the SIGINT path).
func TestRunCanceledPreservesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(context.Background(), testOpts(1, false, false, 1, "E1,E5", path)); err != nil {
		t.Fatal(err)
	}
	before := readReport(t, path)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, testOpts(1, false, false, 1, "E1,E5", path)); err == nil {
		t.Fatal("canceled run must return an error")
	}
	after := readReport(t, path)
	if len(after.Experiments) != len(before.Experiments) {
		t.Fatalf("canceled run changed entry count: %d -> %d",
			len(before.Experiments), len(after.Experiments))
	}
	for i := range after.Experiments {
		if after.Experiments[i].ID != before.Experiments[i].ID ||
			after.Experiments[i].WallNS != before.Experiments[i].WallNS {
			t.Errorf("entry %d rewritten by canceled run: %+v -> %+v",
				i, before.Experiments[i], after.Experiments[i])
		}
	}
}

// lint_bench entries written by `dwmlint -bench` must survive dwmbench
// report rewrites — the same carry-across-merges contract delta_bench
// has, since dwmbench never measures the lint run itself.
func TestRunCarriesLintBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(context.Background(), testOpts(1, false, false, 1, "E1", path)); err != nil {
		t.Fatal(err)
	}
	rep := readReport(t, path)
	rep.LintBench = &lintBenchReport{Packages: 38, Analyzers: 8, Suppressed: 23, WallNS: 12345}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(context.Background(), testOpts(1, false, false, 1, "E1", path)); err != nil {
		t.Fatal(err)
	}
	after := readReport(t, path)
	if after.LintBench == nil {
		t.Fatal("rewriting the report dropped the lint_bench entry")
	}
	if after.LintBench.WallNS != 12345 || after.LintBench.Packages != 38 {
		t.Errorf("lint_bench rewritten: %+v", after.LintBench)
	}
}
