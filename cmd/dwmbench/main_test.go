package main

import "testing"

func TestRunOnlyFastExperiments(t *testing.T) {
	if err := run(1, false, false, false, "E1"); err != nil {
		t.Fatal(err)
	}
	if err := run(1, true, false, false, "e1,E5"); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run(1, false, true, false, "E1"); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallel(t *testing.T) {
	if err := run(1, false, false, true, "E1,E5,E19"); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoMatch(t *testing.T) {
	if err := run(1, false, false, false, "E99"); err == nil {
		t.Error("unknown experiment ID accepted")
	}
}
