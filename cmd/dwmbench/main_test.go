package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunOnlyFastExperiments(t *testing.T) {
	if err := run(1, false, false, 1, "E1", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(1, true, false, 1, "e1,E5", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run(1, false, true, 1, "E1", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkers(t *testing.T) {
	if err := run(1, false, false, 4, "E1,E5,E19", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoMatch(t *testing.T) {
	if err := run(1, false, false, 1, "E99", ""); err == nil {
		t.Error("unknown experiment ID accepted")
	}
}

func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(1, false, false, 1, "E1,E5", path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 2 || rep.Experiments[0].ID != "E1" {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Experiments[0].DeltaPct != nil {
		t.Error("first run must not report a delta")
	}

	// Second run against the stored report yields per-experiment deltas.
	if err := run(1, false, false, 1, "E1,E5", path); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 benchReport
	if err := json.Unmarshal(raw, &rep2); err != nil {
		t.Fatal(err)
	}
	for _, e := range rep2.Experiments {
		if e.DeltaPct == nil {
			t.Errorf("%s: missing delta on second run", e.ID)
		}
	}
}
