// Command tracegen generates workload access traces in the dwmtrace text
// format, either from the built-in benchmark suite or by compiling a
// kernel-specification file (see internal/spec for the language).
//
// Usage:
//
//	tracegen -workload fir [-seed N] [-o trace.txt]
//	tracegen -spec kernel.dwm [-o trace.txt]
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "", "workload name (see -list)")
	specPath := flag.String("spec", "", "kernel specification file to compile instead of -workload")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default: stdout)")
	bin := flag.Bool("binary", false, "emit the compact binary format instead of text")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if err := run(*name, *specPath, *seed, *out, *list, *bin); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(name, specPath string, seed int64, out string, list, bin bool) error {
	if list {
		for _, g := range workload.Suite() {
			fmt.Printf("%-10s %s\n", g.Name, g.Description)
		}
		return nil
	}
	var tr *trace.Trace
	switch {
	case specPath != "":
		src, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		prog, err := spec.Parse(string(src))
		if err != nil {
			return err
		}
		if tr, err = prog.Trace(specPath); err != nil {
			return err
		}
	case name != "":
		g, err := workload.ByName(name)
		if err != nil {
			return err
		}
		tr = g.Make(seed)
	default:
		return fmt.Errorf("missing -workload or -spec (use -list to see workloads)")
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if bin {
		return trace.EncodeBinary(w, tr)
	}
	return trace.Encode(w, tr)
}
