package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunList(t *testing.T) {
	if err := run("", "", 1, "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingWorkload(t *testing.T) {
	if err := run("", "", 1, "", false, false); err == nil {
		t.Error("missing workload accepted")
	}
	if err := run("bogus", "", 1, "", false, false); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunWritesDecodableTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fir.txt")
	if err := run("fir", "", 7, out, false, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumItems != 64 || tr.Len() == 0 {
		t.Errorf("decoded trace: items=%d len=%d", tr.NumItems, tr.Len())
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run("fir", "", 1, filepath.Join(t.TempDir(), "no", "such", "dir", "x.txt"), false, false); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "k.dwm")
	src := "array a 4\nloop i 0 4 { read a[i] }\n"
	if err := os.WriteFile(specPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "t.txt")
	if err := run("", specPath, 1, out, false, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumItems != 4 || tr.Len() != 4 {
		t.Errorf("spec trace: items=%d len=%d", tr.NumItems, tr.Len())
	}
	// Broken spec file.
	bad := filepath.Join(dir, "bad.dwm")
	if err := os.WriteFile(bad, []byte("read a[0]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", bad, 1, "", false, false); err == nil {
		t.Error("broken spec accepted")
	}
	if err := run("", filepath.Join(dir, "missing.dwm"), 1, "", false, false); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestRunBinaryOutputRoundTrips(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fir.bin")
	if err := run("fir", "", 7, out, false, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.DecodeAny(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumItems != 64 || tr.Len() == 0 {
		t.Errorf("binary trace: items=%d len=%d", tr.NumItems, tr.Len())
	}
}
