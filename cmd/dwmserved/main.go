// Command dwmserved is the placement service: an HTTP/JSON daemon that
// accepts trace uploads, runs placement jobs on a bounded worker pool,
// and serves results, health, and metrics. See internal/serve for the
// API and DESIGN.md §10 for the architecture.
//
// Usage:
//
//	dwmserved [-addr 127.0.0.1:8080] [-queue 16] [-workers 2]
//	          [-deadline 0] [-max-deadline 0] [-drain 30s]
//	          [-addrfile path] [-events 4096]
//	          [-cache DIR] [-cache-entries 256] [-journal DIR]
//
// The placement cache (on by default, in memory) serves duplicate and
// renumber-equivalent anneal requests without re-running the search;
// -cache DIR persists it to DIR/placecache.jsonl across restarts and
// -cache-entries 0 disables caching entirely.
//
// -journal DIR turns on the write-ahead journal (DESIGN.md §15): every
// accepted job, checkpoint, terminal result, and stream batch is
// committed to a checksummed segment log under DIR before the client
// sees a success, and on startup the daemon replays the journal —
// finished jobs come back as stored, unfinished ones are re-run from
// their requests (results are pure functions of requests, so the
// recovered placements are byte-identical to an uninterrupted run),
// and streams are rebuilt by re-applying their journaled batches.
//
// Besides one-shot jobs (POST /v1/place), the daemon serves streaming
// sessions (DESIGN.md §13): POST /v1/streams creates a live placement
// session from an item count and seed, POST /v1/streams/{id}/append
// feeds it accesses and returns the updated status, GET reads it, and
// DELETE returns the final status and frees the slot. The status after
// N appended accesses is a pure function of (seed, the concatenated
// accesses) regardless of how appends were chunked.
//
// The daemon runs until SIGINT or SIGTERM, then shuts down gracefully:
// readiness flips to 503 immediately, accepted jobs drain to completion
// (bounded by -drain), and only then does the listener close. With
// -addrfile the bound address is written to the given file once the
// listener is up, so scripts can use -addr 127.0.0.1:0 and discover the
// kernel-chosen port.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/placecache"
	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dwmserved:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is cancelled (the signal
// handler in main) and the subsequent graceful drain completes.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dwmserved", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addrfile", "", "write the bound address to this file once listening")
	queueCap := fs.Int("queue", 0, "job queue capacity (0 = default 16)")
	workers := fs.Int("workers", 0, "worker pool size (0 = default 2)")
	deadline := fs.Duration("deadline", 0, "default per-job execution deadline (0 = unlimited)")
	maxDeadline := fs.Duration("max-deadline", 0, "cap on per-request deadlines (0 = uncapped)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	events := fs.Int("events", 4096, "span ring capacity for GET /debug/events (0 = tracing off)")
	cacheDir := fs.String("cache", "", "persist the placement cache under this directory (empty = memory only)")
	cacheEntries := fs.Int("cache-entries", 256, "placement cache capacity (0 = caching disabled)")
	journalDir := fs.String("journal", "", "write-ahead journal directory (empty = no durability)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cache *placecache.Cache
	if *cacheEntries > 0 {
		copts := placecache.Options{MaxEntries: *cacheEntries}
		if *cacheDir != "" {
			if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
				return err
			}
			copts.Path = filepath.Join(*cacheDir, "placecache.jsonl")
		}
		c, err := placecache.New(copts)
		if err != nil {
			return err
		}
		cache = c
		defer cache.Close()
		if copts.Path != "" {
			fmt.Fprintf(out, "dwmserved: placement cache at %s (%d entries loaded)\n",
				copts.Path, cache.Len())
		}
	}

	var jl *wal.Log
	if *journalDir != "" {
		var err error
		jl, err = wal.Open(wal.Options{Dir: *journalDir, MetricsPrefix: "serve.wal"})
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		defer jl.Close()
	}

	srv, err := serve.New(serve.Options{
		QueueCap:        *queueCap,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		EventBuffer:     *events,
		Cache:           cache,
		DisableCache:    *cacheEntries <= 0,
		Journal:         jl,
	})
	if err != nil {
		return fmt.Errorf("recover journal: %w", err)
	}
	if jl != nil {
		st := jl.Stats()
		fmt.Fprintf(out, "dwmserved: journal at %s (%d records replayed, %d segments)\n",
			*journalDir, st.Replayed, st.Segments)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dwmserved: listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	serveErr := make(chan error, 1)
	//dwmlint:ignore barego the accept loop must run beside the signal wait; its only output is the error funneled through serveErr, collected below before return
	//dwmlint:ignore ctxflow Serve exits via srv.Shutdown when ctx fires (the select below); handing it the signal ctx directly would abort in-flight requests
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener failed before any shutdown signal.
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "dwmserved: shutdown signal received, draining")
	//dwmlint:ignore ctxflow the drain deadline must outlive the already-cancelled signal ctx — deriving it from ctx would make Shutdown return immediately
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Fprintln(out, "dwmserved: drained, bye")
	return nil
}
