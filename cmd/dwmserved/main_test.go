package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}, new(bytes.Buffer)); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bogus"}, new(bytes.Buffer)); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// waitAddrFile polls until the daemon writes its bound address.
func waitAddrFile(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		raw, err := os.ReadFile(path)
		if err == nil && len(raw) > 0 {
			return strings.TrimSpace(string(raw))
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never wrote its address file")
	return ""
}

func jobStatus(t *testing.T, base, id string) (serve.JobStatus, error) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.JobStatus{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var js serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return serve.JobStatus{}, err
	}
	return js, nil
}

// The SIGTERM drill: with one job in flight, a termination signal must
// flip readiness to 503 immediately, let the job run to completion, and
// only then close the listener — an accepted job is never dropped.
func TestGracefulShutdownSIGTERM(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	before := obs.Default().Snapshot().Counters

	addrFile := filepath.Join(t.TempDir(), "addr")
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-addrfile", addrFile,
			"-workers", "1", "-drain", "60s",
		}, &out)
	}()
	base := "http://" + waitAddrFile(t, addrFile)

	// Submit one job slow enough to still be running when the signal
	// lands (several seconds of annealing on a 48-item trace).
	tr := workload.Zipf(48, 4000, 1.2, 7)
	var enc bytes.Buffer
	if err := trace.Encode(&enc, tr); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.PlaceRequest{Trace: enc.String(), Seed: 3, Iterations: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || accepted.ID == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, accepted)
	}

	// Wait until the worker has actually picked the job up.
	deadline := time.Now().Add(15 * time.Second)
	for {
		js, err := jobStatus(t, base, accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if js.Status == "running" {
			break
		}
		if js.Status != "queued" {
			t.Fatalf("job reached %q before the signal", js.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Readiness must flip to 503 promptly, while the listener still
	// answers (the drain window).
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("listener closed before the job drained: %v", err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after SIGTERM")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Poll the job through the drain window. The listener closes the
	// instant the last job finishes, so a refused connection here just
	// means the drain completed between polls; the obs counters below
	// deliver the race-free verdict either way.
	var final *serve.JobStatus
	for {
		js, err := jobStatus(t, base, accepted.ID)
		if err != nil {
			break
		}
		if js.Status == "done" || js.Status == "failed" {
			final = &js
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final != nil {
		if final.Status != "done" || final.Result == nil {
			t.Fatalf("drained job: %+v", final)
		}
		if final.Result.Partial {
			t.Error("drained job marked partial; shutdown must not cut running jobs short")
		}
		if len(final.Result.Placement) != 48 || final.Result.Cost > final.Result.BaselineCost {
			t.Errorf("drained job result invalid: cost %d baseline %d items %d",
				final.Result.Cost, final.Result.BaselineCost, len(final.Result.Placement))
		}
	}

	if err := <-runErr; err != nil {
		t.Fatalf("run returned %v after graceful shutdown", err)
	}
	// The daemon shares this process's obs registry: exactly one job
	// completed, none failed, none were cut short by the shutdown.
	counters := obs.Default().Snapshot().Counters
	if got := counters["serve.jobs.done"] - before["serve.jobs.done"]; got != 1 {
		t.Errorf("jobs done during drill = %d, want 1", got)
	}
	for _, c := range []string{"serve.jobs.failed", "serve.jobs.partial"} {
		if got := counters[c] - before[c]; got != 0 {
			t.Errorf("%s = %d during drill, want 0 (accepted job was dropped or truncated)", c, got)
		}
	}
	if got := out.String(); !strings.Contains(got, "draining") || !strings.Contains(got, "drained, bye") {
		t.Errorf("missing shutdown log lines in output:\n%s", got)
	}

	// The listener is gone: new connections must fail.
	if resp, err := http.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		t.Error("listener still accepting connections after shutdown")
	}
}

// A cancelled context with no jobs in flight shuts down cleanly too.
func TestRunImmediateShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrFile := filepath.Join(t.TempDir(), "addr")
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrFile}, &out)
	}()
	waitAddrFile(t, addrFile)
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
}
