package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestBuildPlanDeterministic(t *testing.T) {
	sc := SmokeScenario()
	a, err := BuildPlan(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two plans from the same scenario differ")
	}
	sc2 := SmokeScenario()
	sc2.Seed = 43
	c, err := BuildPlan(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("changing the seed left the plan unchanged")
	}
}

func TestSmokeScenarioShape(t *testing.T) {
	sc := SmokeScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != sc.Requests {
		t.Fatalf("plan has %d requests, want %d", len(plan), sc.Requests)
	}
	kinds := map[string]int{}
	var cacheReqs []*serve.PlaceRequest
	for _, pr := range plan {
		kinds[pr.Kind]++
		switch pr.Kind {
		case kindPlace, kindCacheHit:
			if pr.Place == nil || pr.TraceID == "" {
				t.Fatalf("request %d missing place payload or trace", pr.Index)
			}
			if pr.Place.Tenant != pr.Tenant {
				t.Fatalf("request %d tenant mismatch", pr.Index)
			}
			if pr.Kind == kindCacheHit {
				cacheReqs = append(cacheReqs, pr.Place)
			}
		case kindStream:
			if pr.Stream == nil || len(pr.Stream.Batches) == 0 {
				t.Fatalf("request %d missing stream payload", pr.Index)
			}
		}
	}
	for _, k := range []string{kindPlace, kindCacheHit, kindStream} {
		if kinds[k] == 0 {
			t.Errorf("smoke plan has no %s requests: %v", k, kinds)
		}
	}
	// Every cache_hit request is the same computation (tenant aside), so
	// repeats are served from the placement cache.
	for _, r := range cacheReqs[1:] {
		if serve.RequestKey(*r) != serve.RequestKey(*cacheReqs[0]) {
			t.Fatal("cache_hit requests do not share one identity")
		}
	}
}

func TestRPSForRamp(t *testing.T) {
	sc := &Scenario{Ramp: []RampStage{{Requests: 2, RPS: 1}, {Requests: 3, RPS: 10}}}
	want := []float64{1, 1, 10, 10, 10, 10, 10}
	for i, w := range want {
		if got := sc.RPSFor(i); got != w {
			t.Errorf("RPSFor(%d) = %g, want %g", i, got, w)
		}
	}
	if got := (&Scenario{}).RPSFor(0); got != 0 {
		t.Errorf("no ramp: RPSFor = %g, want 0", got)
	}
}

func TestParseScenarioRejectsBadInput(t *testing.T) {
	for name, payload := range map[string]string{
		"unknown field":  `{"name":"x","requests":1,"mix":[{"kind":"place","weight":1}],"bogus":1}`,
		"no requests":    `{"name":"x","mix":[{"kind":"place","weight":1}]}`,
		"empty mix":      `{"name":"x","requests":1,"mix":[]}`,
		"bad kind":       `{"name":"x","requests":1,"mix":[{"kind":"nope","weight":1}]}`,
		"bad workload":   `{"name":"x","requests":1,"mix":[{"kind":"place","weight":1,"workload":"nope"}]}`,
		"zero weight":    `{"name":"x","requests":1,"mix":[{"kind":"place","weight":0}]}`,
		"negative ramp":  `{"name":"x","requests":1,"mix":[{"kind":"place","weight":1}],"ramp":[{"requests":1,"rps":-1}]}`,
		"zero ramp reqs": `{"name":"x","requests":1,"mix":[{"kind":"place","weight":1}],"ramp":[{"requests":0,"rps":1}]}`,
	} {
		if _, err := ParseScenario(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := `{"name":"x","seed":1,"requests":2,"mix":[{"kind":"place","weight":1}]}`
	if _, err := ParseScenario(strings.NewReader(good)); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestBuildReportAndSLO(t *testing.T) {
	sc := &Scenario{
		Name: "t", Seed: 1, Requests: 4, Concurrency: 2,
		Mix: []MixEntry{{Kind: kindPlace, Weight: 1}},
		SLO: &SLOBudget{MaxErrorRate: 0.1, MaxRetryRate: 0.5, MaxP95MS: 100, MinThroughputRPS: 1},
	}
	samples := []Sample{
		{Index: 0, Kind: kindPlace, Tenant: "a", TraceID: "t0", ClientMS: 10, ServerMS: 5},
		{Index: 1, Kind: kindPlace, Tenant: "a", TraceID: "t1", ClientMS: 20, ServerMS: 10},
		{Index: 2, Kind: kindPlace, Tenant: "b", TraceID: "t2", ClientMS: 500, ServerMS: 400},
		{Index: 3, Kind: kindPlace, Tenant: "b", Err: "boom"},
	}
	retries := RetryCount{Backpressure429: 3}
	r := BuildReport(sc, samples, retries, 2000, "", "")
	if r.Errors != 1 || r.Overall.Count != 3 {
		t.Fatalf("errors=%d count=%d", r.Errors, r.Overall.Count)
	}
	if r.Throughput != 2 {
		t.Fatalf("throughput = %g, want 2 (4 requests / 2s)", r.Throughput)
	}
	if r.Overall.P95MS != 500 || r.Overall.MaxMS != 500 {
		t.Fatalf("p95=%g max=%g", r.Overall.P95MS, r.Overall.MaxMS)
	}
	if len(r.Slowest) != 3 || r.Slowest[0].TraceID != "t2" {
		t.Fatalf("slowest = %+v", r.Slowest)
	}
	if r.SLO == nil || r.SLO.Pass {
		t.Fatalf("SLO passed despite violations: %+v", r.SLO)
	}
	// Expect: error rate 0.25 > 0.1, retry rate 0.75 > 0.5, p95 500 > 100.
	// Throughput 2 >= 1 passes.
	if len(r.SLO.Violations) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(r.SLO.Violations), r.SLO.Violations)
	}
	// A lenient budget passes the same run.
	sc.SLO = &SLOBudget{MaxErrorRate: 0.5, MaxP95MS: 1000}
	if r2 := BuildReport(sc, samples, RetryCount{}, 2000, "", ""); r2.SLO == nil || !r2.SLO.Pass {
		t.Fatalf("lenient budget failed: %+v", r2.SLO)
	}
}

func TestMetricsDiff(t *testing.T) {
	before := "# TYPE dwm_serve_jobs_accepted counter\n" +
		"dwm_serve_jobs_accepted 10\n" +
		`dwm_serve_tenant_requests{tenant="a",outcome="accepted"} 4` + "\n" +
		"dwm_serve_wall_ms_bucket{le=\"1\"} 2\n" +
		"dwm_other_thing 5\n"
	after := "# TYPE dwm_serve_jobs_accepted counter\n" +
		"dwm_serve_jobs_accepted 13\n" +
		`dwm_serve_tenant_requests{tenant="a",outcome="accepted"} 9 # {trace_id="abc"} 1` + "\n" +
		"dwm_serve_wall_ms_bucket{le=\"1\"} 7\n" +
		"dwm_other_thing 9\n"
	diff := metricsDiff(before, after)
	if diff["dwm_serve_jobs_accepted"] != 3 {
		t.Fatalf("accepted delta = %d", diff["dwm_serve_jobs_accepted"])
	}
	// The labeled series diffs despite the exemplar annotation.
	if diff[`dwm_serve_tenant_requests{tenant="a",outcome="accepted"}`] != 5 {
		t.Fatalf("labeled delta missing: %v", diff)
	}
	// Buckets and non-dwm_serve families are excluded.
	for k := range diff {
		if strings.Contains(k, "_bucket") || strings.HasPrefix(k, "dwm_other") {
			t.Fatalf("diff includes excluded series %q", k)
		}
	}
	if metricsDiff("x 1\n", "") != nil {
		t.Fatal("empty after-scrape should yield nil diff")
	}
}

func TestRenderTable(t *testing.T) {
	r := &Report{
		Scenario: "smoke", Requests: 2, Concurrency: 1, ElapsedMS: 1000, Throughput: 2,
		Overall: KindStats{Count: 2, P50MS: 1, P95MS: 2, P99MS: 2, MaxMS: 2},
		Kinds:   map[string]KindStats{"place": {Count: 2}},
		Slowest: []SlowSample{{Kind: "place", Tenant: "a", TraceID: "abc", ClientMS: 2}},
		SLO:     &SLOResult{Pass: false, Violations: []string{"p95 too high"}},
	}
	out := RenderTable(r)
	for _, want := range []string{"scenario smoke", "place", "trace=abc", "SLO: FAIL", "p95 too high"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestRunEndToEnd drives the full binary path — plan, worker pool,
// metrics scrapes, report, SLO gate — against a real in-process server.
func TestRunEndToEnd(t *testing.T) {
	s, err := serve.New(serve.Options{Workers: 2, QueueCap: 64, EventBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	base := "http://" + ln.Addr().String()

	out := filepath.Join(t.TempDir(), "BENCH_dwmload.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", base, "-preset", "smoke", "-out", out, "-table=true"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("dwmload exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if r.Requests != SmokeScenario().Requests || r.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", r.Requests, r.Errors)
	}
	if r.Overall.P95MS <= 0 || r.Overall.P50MS <= 0 {
		t.Fatalf("percentiles not measured: %+v", r.Overall)
	}
	if r.CacheHits == 0 {
		t.Error("no cache hits despite cache_hit mix entries")
	}
	if r.SLO == nil || !r.SLO.Pass {
		t.Fatalf("smoke SLO failed: %+v", r.SLO)
	}
	if len(r.Slowest) == 0 {
		t.Fatal("no slowest samples in report")
	}
	// The slowest place/cache_hit sample names a trace the server knows.
	var traced string
	for _, sl := range r.Slowest {
		if sl.TraceID != "" {
			traced = sl.TraceID
			break
		}
	}
	if traced == "" {
		t.Fatal("no trace ID among slowest samples")
	}
	if !strings.Contains(stdout.String(), "scenario smoke") {
		t.Errorf("table output missing scenario line:\n%s", stdout.String())
	}
}

func TestLoadScenarioFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	payload := `{"name":"file","seed":7,"requests":3,"mix":[{"kind":"place","weight":1}]}`
	if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := loadScenario(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "file" || sc.Requests != 3 {
		t.Fatalf("loaded %+v", sc)
	}
	if _, err := loadScenario("", "nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
