package main

// SLO report construction and rendering — pure: everything here is
// arithmetic over samples the driver collected; the wall clock never
// enters (elapsed time arrives as data). The JSON form is the
// BENCH_dwmload.json artifact the load-smoke CI target checks in; the
// table form is what a human reads at the terminal.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Sample is one completed request as the driver measured it.
type Sample struct {
	Index  int    `json:"index"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"`
	// TraceID is the request's cross-process trace (empty for streams) —
	// the handle that joins this client-side sample to the server's
	// spans in /debug/events.
	TraceID string `json:"trace_id,omitempty"`
	// ClientMS is the request's wall time as the client saw it: submit
	// through terminal status, retries and polling included.
	ClientMS float64 `json:"client_ms"`
	// ServerMS is the server-reported execution time (JobStatus.
	// ElapsedMS; 0 for cache hits and streams) — the attribution split:
	// ClientMS - ServerMS is queueing, polling, and transport.
	ServerMS int64 `json:"server_ms"`
	// CacheHit / Deduped mark fast-path outcomes.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Err is the terminal failure, empty on success.
	Err string `json:"err,omitempty"`
}

// RetryCount aggregates the client retry loop's observations.
type RetryCount struct {
	// Backpressure429 counts retries triggered by 429 responses.
	Backpressure429 int64 `json:"backpressure_429"`
	// Transient5xx counts retries triggered by 5xx responses.
	Transient5xx int64 `json:"transient_5xx"`
	// Transport counts retries triggered by transport errors.
	Transport int64 `json:"transport"`
}

func (r RetryCount) total() int64 { return r.Backpressure429 + r.Transient5xx + r.Transport }

// KindStats summarizes one request kind's latency distribution.
type KindStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// MeanClientMS / MeanServerMS attribute where the time went: the gap
	// between them is queueing + polling + transport, not placement work.
	MeanClientMS float64 `json:"mean_client_ms"`
	MeanServerMS float64 `json:"mean_server_ms"`
}

// SlowSample names one of the run's slowest requests, with the trace ID
// to chase through /debug/events.
type SlowSample struct {
	Kind     string  `json:"kind"`
	Tenant   string  `json:"tenant"`
	TraceID  string  `json:"trace_id,omitempty"`
	ClientMS float64 `json:"client_ms"`
	ServerMS int64   `json:"server_ms"`
}

// SLOResult is the evaluated budget.
type SLOResult struct {
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// Report is the run's SLO report — the schema of BENCH_dwmload.json.
type Report struct {
	Scenario    string  `json:"scenario"`
	Seed        int64   `json:"seed"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	Throughput  float64 `json:"throughput_rps"`
	Errors      int     `json:"errors"`
	CacheHits   int     `json:"cache_hits"`
	Deduped     int     `json:"deduped"`

	Retries RetryCount `json:"retries"`

	Overall KindStats            `json:"overall"`
	Kinds   map[string]KindStats `json:"kinds"`

	// Slowest lists the worst requests by client latency (at most 5).
	Slowest []SlowSample `json:"slowest,omitempty"`

	// MetricsDiff is the before/after delta of the server's dwm_serve_*
	// counters over the run — the server's own account of what the load
	// did to it, next to the client's.
	MetricsDiff map[string]int64 `json:"metrics_diff,omitempty"`

	SLO *SLOResult `json:"slo,omitempty"`
}

// quantile wraps stats.Quantile over a copy (it sorts in place) and
// maps the empty-input error to 0.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	v, err := stats.Quantile(cp, q)
	if err != nil {
		return 0
	}
	return v
}

// kindStats summarizes one group of samples.
func kindStats(samples []Sample) KindStats {
	ks := KindStats{Count: len(samples)}
	if len(samples) == 0 {
		return ks
	}
	lat := make([]float64, 0, len(samples))
	var sumC float64
	var sumS int64
	for _, s := range samples {
		lat = append(lat, s.ClientMS)
		sumC += s.ClientMS
		sumS += s.ServerMS
		if s.ClientMS > ks.MaxMS {
			ks.MaxMS = s.ClientMS
		}
	}
	ks.P50MS = quantile(lat, 0.50)
	ks.P95MS = quantile(lat, 0.95)
	ks.P99MS = quantile(lat, 0.99)
	ks.MeanClientMS = sumC / float64(len(samples))
	ks.MeanServerMS = float64(sumS) / float64(len(samples))
	return ks
}

// BuildReport folds the run's observations into the SLO report.
// metricsBefore/metricsAfter are raw /metrics expositions scraped
// around the run (either may be empty, e.g. when a scrape failed).
func BuildReport(sc *Scenario, samples []Sample, retries RetryCount, elapsedMS int64, metricsBefore, metricsAfter string) *Report {
	r := &Report{
		Scenario:    sc.Name,
		Seed:        sc.Seed,
		Requests:    len(samples),
		Concurrency: sc.concurrency(),
		ElapsedMS:   elapsedMS,
		Retries:     retries,
		Kinds:       map[string]KindStats{},
	}
	if elapsedMS > 0 {
		r.Throughput = float64(len(samples)) / (float64(elapsedMS) / 1000)
	}
	byKind := map[string][]Sample{}
	var ok []Sample
	for _, s := range samples {
		if s.Err != "" {
			r.Errors++
			continue
		}
		if s.CacheHit {
			r.CacheHits++
		}
		ok = append(ok, s)
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	r.Overall = kindStats(ok)
	for kind, group := range byKind {
		r.Kinds[kind] = kindStats(group)
	}
	// Slowest requests, with trace IDs for the /debug/events chase.
	sorted := append([]Sample(nil), ok...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ClientMS != sorted[j].ClientMS {
			return sorted[i].ClientMS > sorted[j].ClientMS
		}
		return sorted[i].Index < sorted[j].Index
	})
	for i := 0; i < len(sorted) && i < 5; i++ {
		s := sorted[i]
		r.Slowest = append(r.Slowest, SlowSample{
			Kind: s.Kind, Tenant: s.Tenant, TraceID: s.TraceID,
			ClientMS: s.ClientMS, ServerMS: s.ServerMS,
		})
	}
	r.MetricsDiff = metricsDiff(metricsBefore, metricsAfter)
	if sc.SLO != nil {
		r.SLO = evaluateSLO(sc.SLO, r)
	}
	return r
}

// evaluateSLO checks the report against the budget.
func evaluateSLO(b *SLOBudget, r *Report) *SLOResult {
	res := &SLOResult{Pass: true}
	fail := func(format string, args ...any) {
		res.Pass = false
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	total := float64(r.Requests)
	if total == 0 {
		fail("no requests completed")
		return res
	}
	if rate := float64(r.Errors) / total; b.MaxErrorRate > 0 && rate > b.MaxErrorRate {
		fail("error rate %.3f exceeds budget %.3f", rate, b.MaxErrorRate)
	}
	if b.MaxRetryRate > 0 {
		if rate := float64(r.Retries.total()) / total; rate > b.MaxRetryRate {
			fail("retry rate %.3f exceeds budget %.3f", rate, b.MaxRetryRate)
		}
	}
	if b.MaxP95MS > 0 && r.Overall.P95MS > b.MaxP95MS {
		fail("p95 %.1fms exceeds budget %.1fms", r.Overall.P95MS, b.MaxP95MS)
	}
	if b.MinThroughputRPS > 0 && r.Throughput < b.MinThroughputRPS {
		fail("throughput %.2f rps below budget %.2f", r.Throughput, b.MinThroughputRPS)
	}
	return res
}

// metricsDiff extracts the dwm_serve_* counter deltas between two raw
// text expositions. Bucketed histogram series are skipped (the _sum and
// _count roll-ups carry the signal); gauges are included as-is since a
// depth that did not return to its start is itself a finding.
func metricsDiff(before, after string) map[string]int64 {
	b := parseExposition(before)
	a := parseExposition(after)
	if len(a) == 0 {
		return nil
	}
	diff := map[string]int64{}
	for name, av := range a {
		if !strings.HasPrefix(name, "dwm_serve_") || strings.Contains(name, "_bucket") {
			continue
		}
		if d := av - b[name]; d != 0 {
			diff[name] = d
		}
	}
	return diff
}

// parseExposition reads integer samples out of a Prometheus text
// exposition, keyed by "name" or "name{labels}". Non-integer values and
// malformed lines are skipped — this is a diff aid, not a validator
// (obs.LintExposition is).
func parseExposition(text string) map[string]int64 {
	out := map[string]int64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Strip an exemplar annotation before splitting the value off.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

// RenderTable formats the report for the terminal.
func RenderTable(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (seed %d): %d requests, %d workers, %.2fs wall, %.2f rps\n",
		r.Scenario, r.Seed, r.Requests, r.Concurrency, float64(r.ElapsedMS)/1000, r.Throughput)
	fmt.Fprintf(&b, "errors %d  cache-hits %d  retries 429=%d 5xx=%d transport=%d\n",
		r.Errors, r.CacheHits, r.Retries.Backpressure429, r.Retries.Transient5xx, r.Retries.Transport)
	fmt.Fprintf(&b, "%-10s %6s %9s %9s %9s %9s %11s %11s\n",
		"kind", "count", "p50ms", "p95ms", "p99ms", "maxms", "mean-client", "mean-server")
	row := func(name string, ks KindStats) {
		fmt.Fprintf(&b, "%-10s %6d %9.1f %9.1f %9.1f %9.1f %11.1f %11.1f\n",
			name, ks.Count, ks.P50MS, ks.P95MS, ks.P99MS, ks.MaxMS, ks.MeanClientMS, ks.MeanServerMS)
	}
	row("overall", r.Overall)
	kinds := make([]string, 0, len(r.Kinds))
	for k := range r.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		row(k, r.Kinds[k])
	}
	if len(r.Slowest) > 0 {
		fmt.Fprintf(&b, "slowest requests:\n")
		for _, s := range r.Slowest {
			fmt.Fprintf(&b, "  %-10s tenant=%-8s client=%8.1fms server=%6dms trace=%s\n",
				s.Kind, s.Tenant, s.ClientMS, s.ServerMS, s.TraceID)
		}
	}
	if len(r.MetricsDiff) > 0 {
		fmt.Fprintf(&b, "server metrics delta:\n")
		names := make([]string, 0, len(r.MetricsDiff))
		for name := range r.MetricsDiff {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-56s %+d\n", name, r.MetricsDiff[name])
		}
	}
	if r.SLO != nil {
		if r.SLO.Pass {
			fmt.Fprintf(&b, "SLO: PASS\n")
		} else {
			fmt.Fprintf(&b, "SLO: FAIL\n")
			for _, v := range r.SLO.Violations {
				fmt.Fprintf(&b, "  violation: %s\n", v)
			}
		}
	}
	return b.String()
}
