// Command dwmload is the scenario-driven load generator and SLO harness
// for dwmserved (DESIGN.md §16). It expands a declarative scenario into
// a deterministic request plan (scenario.go), offers it through the
// resilient API client under a worker pool with optional rps pacing,
// measures client-side latency, scrapes /metrics around the run, and
// emits an SLO report (report.go) as JSON and a rendered table.
//
//	dwmload -preset smoke -addr http://127.0.0.1:8080 -out BENCH_dwmload.json
//
// Exit status: 0 on success, 1 when the scenario's SLO budget is
// violated, 2 on setup/usage errors.
//
// This file is the package's only impure one — it reads the wall clock
// (latency measurement, pacing) and launches the worker goroutines; the
// plan and report it feeds stay pure functions of their inputs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dwmload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the dwmserved instance under test")
	scenarioPath := fs.String("scenario", "", "path to a scenario JSON file (overrides -preset)")
	preset := fs.String("preset", "smoke", "built-in scenario to run when -scenario is not given")
	out := fs.String("out", "BENCH_dwmload.json", "path for the JSON SLO report (empty to skip)")
	table := fs.Bool("table", true, "render the report as a table on stdout")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall run deadline")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	sc, err := loadScenario(*scenarioPath, *preset)
	if err != nil {
		fmt.Fprintf(stderr, "dwmload: %v\n", err)
		return 2
	}
	plan, err := BuildPlan(sc)
	if err != nil {
		fmt.Fprintf(stderr, "dwmload: %v\n", err)
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var retries retryCounter
	cli := client.New(client.Options{
		BaseURL: *addr,
		// Every planned request is meant to be offered: cache_hit entries
		// repeat one request on purpose so the server's placement cache —
		// not the client's idempotency key — absorbs the repeats.
		DisableIdempotency: true,
		OnRetry:            retries.observe,
	})

	metricsBefore := scrapeMetrics(ctx, *addr)

	samples, elapsedMS := drive(ctx, cli, sc, plan)

	metricsAfter := scrapeMetrics(ctx, *addr)

	report := BuildReport(sc, samples, retries.snapshot(), elapsedMS, metricsBefore, metricsAfter)
	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "dwmload: marshal report: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "dwmload: write %s: %v\n", *out, err)
			return 2
		}
	}
	if *table {
		fmt.Fprint(stdout, RenderTable(report))
	}
	if report.SLO != nil && !report.SLO.Pass {
		fmt.Fprintf(stderr, "dwmload: SLO violated (%d violations)\n", len(report.SLO.Violations))
		return 1
	}
	return 0
}

// loadScenario resolves -scenario / -preset into a validated scenario.
func loadScenario(path, preset string) (*Scenario, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ParseScenario(f)
	}
	switch preset {
	case "smoke":
		return SmokeScenario(), nil
	default:
		return nil, fmt.Errorf("unknown preset %q (have: smoke)", preset)
	}
}

// retryCounter classifies OnRetry callbacks into the report's buckets.
type retryCounter struct {
	backpressure atomic.Int64
	server       atomic.Int64
	transport    atomic.Int64
}

func (rc *retryCounter) observe(ri client.RetryInfo) {
	switch {
	case ri.Status == http.StatusTooManyRequests:
		rc.backpressure.Add(1)
	case ri.Status >= 500:
		rc.server.Add(1)
	default:
		rc.transport.Add(1)
	}
}

func (rc *retryCounter) snapshot() RetryCount {
	return RetryCount{
		Backpressure429: rc.backpressure.Load(),
		Transient5xx:    rc.server.Load(),
		Transport:       rc.transport.Load(),
	}
}

// drive offers the plan through a worker pool and collects one sample
// per request, keyed by request index so worker scheduling never changes
// the report's content. Returns the samples and the run's wall time.
func drive(ctx context.Context, cli *client.Client, sc *Scenario, plan []PlannedRequest) ([]Sample, int64) {
	// Release offsets from the ramp: request i may not be offered before
	// t0+offset[i]. An unpaced stage (rps 0) contributes no delay.
	offsets := make([]time.Duration, len(plan))
	for i := 1; i < len(plan); i++ {
		offsets[i] = offsets[i-1]
		if rps := sc.RPSFor(i - 1); rps > 0 {
			offsets[i] += time.Duration(float64(time.Second) / rps)
		}
	}

	samples := make([]Sample, len(plan))
	indices := make(chan int)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < sc.concurrency(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indices {
				if d := time.Until(t0.Add(offsets[idx])); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
					}
				}
				samples[idx] = oneRequest(ctx, cli, plan[idx])
			}
		}()
	}
	for i := range plan {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return samples, time.Since(t0).Milliseconds()
}

// oneRequest executes a single planned request and measures it.
func oneRequest(ctx context.Context, cli *client.Client, pr PlannedRequest) Sample {
	s := Sample{Index: pr.Index, Kind: pr.Kind, Tenant: pr.Tenant, TraceID: pr.TraceID}
	start := time.Now()
	switch {
	case pr.Place != nil:
		js, err := cli.Run(ctx, *pr.Place)
		s.ClientMS = float64(time.Since(start)) / float64(time.Millisecond)
		switch {
		case err != nil:
			s.Err = err.Error()
		case js.Status == "failed":
			s.Err = js.Error
		default:
			s.ServerMS = js.ElapsedMS
			s.CacheHit = js.CacheHit
		}
	case pr.Stream != nil:
		s.Err = runStream(ctx, cli, pr.Stream)
		s.ClientMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	return s
}

// runStream executes one stream plan: create, append every batch in
// order, delete. Returns the first error's message, or "".
func runStream(ctx context.Context, cli *client.Client, sp *StreamPlan) string {
	st, err := cli.CreateStream(ctx, sp.Req)
	if err != nil {
		return fmt.Sprintf("create: %v", err)
	}
	for i, batch := range sp.Batches {
		if _, err := cli.AppendStream(ctx, st.ID, batch); err != nil {
			return fmt.Sprintf("append %d: %v", i, err)
		}
	}
	if _, err := cli.DeleteStream(ctx, st.ID); err != nil {
		return fmt.Sprintf("delete: %v", err)
	}
	return ""
}

// scrapeMetrics fetches the server's raw /metrics exposition; a failed
// scrape returns "" and the report simply omits the diff.
func scrapeMetrics(ctx context.Context, addr string) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return ""
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return ""
	}
	return string(data)
}
