package main

// Scenario schema and plan derivation — the pure half of the load
// generator (DESIGN.md §16). A scenario declares WHAT load to offer
// (request counts, a weighted mix of request kinds, tenants, an
// optional rps ramp, an optional SLO budget); BuildPlan expands it into
// a fully materialized request list deterministically, with every
// random-looking choice (mix pick, tenant, per-request seed) drawn from
// a splitmix64 chain over (scenario seed, request index). Two runs of
// the same scenario therefore offer byte-identical requests in the same
// order — the load is reproducible, and because the server's results
// are pure functions of requests, so are the placements it computes
// under load. Only the timing (worker interleaving, rps pacing) varies,
// which is exactly the part a load test is supposed to measure.
//
// Durations are expressed in request counts, not seconds: a scenario
// "ends" when its Requests have all completed, so the plan needs no
// clock. The wall clock enters only in main.go (pacing and latency
// measurement), which is the package's single walltime-allowlisted file.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Request kinds.
const (
	kindPlace    = "place"
	kindCacheHit = "cache_hit"
	kindStream   = "stream"
)

// Scenario is the declarative input of one dwmload run.
type Scenario struct {
	// Name labels the run and seeds derivations alongside Seed.
	Name string `json:"name"`
	// Seed drives every deterministic choice the plan makes.
	Seed int64 `json:"seed"`
	// Requests is the total number of requests to offer — the scenario's
	// duration, expressed clock-free.
	Requests int `json:"requests"`
	// Concurrency is the number of client workers; 0 selects 4.
	Concurrency int `json:"concurrency,omitempty"`
	// Tenants are the tenant labels stamped round-robin onto requests
	// (PlaceRequest.Tenant); empty selects a single "default" tenant.
	Tenants []string `json:"tenants,omitempty"`
	// Mix is the weighted blend of request kinds; it must be non-empty
	// and weights must be positive.
	Mix []MixEntry `json:"mix"`
	// Ramp, when non-empty, paces offered load: stage k applies its RPS
	// to the next Requests requests, in order. A zero RPS stage is
	// unpaced (as fast as the workers drain). Requests past the last
	// stage reuse it.
	Ramp []RampStage `json:"ramp,omitempty"`
	// SLO, when set, is evaluated over the run's report; a violated
	// budget makes dwmload exit nonzero.
	SLO *SLOBudget `json:"slo,omitempty"`
}

// MixEntry is one weighted request shape in the scenario's blend.
type MixEntry struct {
	// Kind is place, cache_hit, or stream. A place request is a fresh
	// computation every time (per-request derived seed); a cache_hit
	// request repeats one fixed request so every occurrence after the
	// first is served from the placement cache; a stream request opens a
	// session, appends Appends batches of Batch accesses, and deletes it.
	Kind string `json:"kind"`
	// Weight is the entry's share of the mix (relative, positive).
	Weight int `json:"weight"`
	// Workload names the trace generator (internal/workload) for place
	// and cache_hit kinds; empty selects "fir".
	Workload string `json:"workload,omitempty"`
	// Policy, Iterations, Restarts tune the placement request; zero
	// values select the server defaults.
	Policy     string `json:"policy,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Restarts   int    `json:"restarts,omitempty"`
	// Items, Appends, Batch shape stream requests: an Items-wide
	// session fed Appends batches of Batch accesses. Zero selects
	// 64 items, 4 appends, 256 accesses.
	Items   int `json:"items,omitempty"`
	Appends int `json:"appends,omitempty"`
	Batch   int `json:"batch,omitempty"`
}

// RampStage paces one slice of the request sequence.
type RampStage struct {
	// Requests is how many requests this stage covers.
	Requests int `json:"requests"`
	// RPS is the offered rate for the stage; 0 means unpaced.
	RPS float64 `json:"rps"`
}

// SLOBudget is the pass/fail contract evaluated over the report.
type SLOBudget struct {
	// MaxErrorRate bounds failed requests / total (0 disables).
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
	// MaxRetryRate bounds client retries (429s and 5xx/transport blips
	// absorbed by the retry loop) / total (0 disables).
	MaxRetryRate float64 `json:"max_retry_rate,omitempty"`
	// MaxP95MS bounds the overall client-side p95 latency (0 disables).
	MaxP95MS float64 `json:"max_p95_ms,omitempty"`
	// MinThroughputRPS bounds completed requests per second from below
	// (0 disables).
	MinThroughputRPS float64 `json:"min_throughput_rps,omitempty"`
}

func (s *Scenario) concurrency() int {
	if s.Concurrency > 0 {
		return s.Concurrency
	}
	return 4
}

func (s *Scenario) tenants() []string {
	if len(s.Tenants) > 0 {
		return s.Tenants
	}
	return []string{"default"}
}

// Validate checks the scenario's shape and resolves every workload name
// so a typo fails before any load is offered.
func (s *Scenario) Validate() error {
	if s.Requests <= 0 {
		return fmt.Errorf("scenario: requests must be positive, got %d", s.Requests)
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("scenario: mix is empty")
	}
	for i, m := range s.Mix {
		if m.Weight <= 0 {
			return fmt.Errorf("scenario: mix[%d] weight must be positive, got %d", i, m.Weight)
		}
		switch m.Kind {
		case kindPlace, kindCacheHit:
			if _, err := workload.ByName(m.workload()); err != nil {
				return fmt.Errorf("scenario: mix[%d]: %w", i, err)
			}
		case kindStream:
		default:
			return fmt.Errorf("scenario: mix[%d] has unknown kind %q", i, m.Kind)
		}
	}
	for i, st := range s.Ramp {
		if st.Requests <= 0 {
			return fmt.Errorf("scenario: ramp[%d] requests must be positive, got %d", i, st.Requests)
		}
		if st.RPS < 0 {
			return fmt.Errorf("scenario: ramp[%d] rps must be >= 0, got %g", i, st.RPS)
		}
	}
	return nil
}

func (m MixEntry) workload() string {
	if m.Workload != "" {
		return m.Workload
	}
	return "fir"
}

func (m MixEntry) items() int {
	if m.Items > 0 {
		return m.Items
	}
	return 64
}

func (m MixEntry) appends() int {
	if m.Appends > 0 {
		return m.Appends
	}
	return 4
}

func (m MixEntry) batch() int {
	if m.Batch > 0 {
		return m.Batch
	}
	return 256
}

// RPSFor returns the offered rate for request index i under the ramp
// (0 = unpaced). Requests past the last stage reuse its rate.
func (s *Scenario) RPSFor(i int) float64 {
	if len(s.Ramp) == 0 {
		return 0
	}
	for _, st := range s.Ramp {
		if i < st.Requests {
			return st.RPS
		}
		i -= st.Requests
	}
	return s.Ramp[len(s.Ramp)-1].RPS
}

// ParseScenario decodes a scenario from JSON and validates it.
func ParseScenario(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// PlannedRequest is one fully materialized request in the plan.
type PlannedRequest struct {
	// Index is the request's position in the offered sequence.
	Index  int
	Kind   string
	Tenant string
	// Place is set for place/cache_hit kinds. Its canonical trace ID
	// (serve.RequestTrace) is precomputed in TraceID, so the report can
	// name the trace of a slow request without a server round-trip.
	Place   *serve.PlaceRequest
	TraceID string
	// Stream is set for stream kinds.
	Stream *StreamPlan
}

// StreamPlan is the materialized shape of one stream request: create,
// append the batches in order, delete.
type StreamPlan struct {
	Req     serve.StreamRequest
	Batches [][]int
}

// mix64 is the splitmix64 finalizer, the tree-wide derivation primitive.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// deriveState folds the scenario identity into the chain's initial state.
func (s *Scenario) deriveState() uint64 {
	h := uint64(0x9E3779B97F4A7C15) ^ uint64(s.Seed)
	for i := 0; i < len(s.Name); i++ {
		h = mix64(h ^ uint64(s.Name[i]))
	}
	return h
}

// BuildPlan expands the scenario into its request sequence. The plan is
// a pure function of the scenario: every choice comes from the splitmix
// chain over (scenario identity, request index).
func BuildPlan(s *Scenario) ([]PlannedRequest, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	totalWeight := 0
	for _, m := range s.Mix {
		totalWeight += m.Weight
	}
	tenants := s.tenants()
	state := s.deriveState()
	plan := make([]PlannedRequest, 0, s.Requests)
	for i := 0; i < s.Requests; i++ {
		h := mix64(state + uint64(i)*0xD1B54A32D192ED03)
		pick := int(h % uint64(totalWeight))
		var entry MixEntry
		entryIdx := 0
		for k, m := range s.Mix {
			if pick < m.Weight {
				entry, entryIdx = m, k
				break
			}
			pick -= m.Weight
		}
		pr := PlannedRequest{
			Index:  i,
			Kind:   entry.Kind,
			Tenant: tenants[i%len(tenants)],
		}
		switch entry.Kind {
		case kindPlace, kindCacheHit:
			// A place request derives a fresh seed per index (distinct
			// computations — the annealer actually runs); a cache_hit
			// request pins the seed to the mix entry, so every occurrence
			// is the same request and all but the first are served from
			// the placement cache.
			reqSeed := int64(mix64(h + 1))
			if entry.Kind == kindCacheHit {
				reqSeed = int64(mix64(state + uint64(entryIdx) + 0x1000))
			}
			gen, err := workload.ByName(entry.workload())
			if err != nil {
				return nil, err
			}
			var sb strings.Builder
			if err := trace.Encode(&sb, gen.Make(reqSeed)); err != nil {
				return nil, fmt.Errorf("scenario: encode %s trace: %w", entry.workload(), err)
			}
			req := &serve.PlaceRequest{
				Trace:      sb.String(),
				Policy:     entry.Policy,
				Seed:       reqSeed,
				Iterations: entry.Iterations,
				Restarts:   entry.Restarts,
				Tenant:     pr.Tenant,
			}
			pr.Place = req
			pr.TraceID = serve.RequestTrace(*req).TraceID
		case kindStream:
			items := entry.items()
			batches := make([][]int, entry.appends())
			bh := mix64(h + 2)
			for b := range batches {
				batch := make([]int, entry.batch())
				for a := range batch {
					bh = mix64(bh + 0x632BE59BD9B4E019)
					batch[a] = int(bh % uint64(items))
				}
				batches[b] = batch
			}
			pr.Stream = &StreamPlan{
				Req: serve.StreamRequest{
					Name:  fmt.Sprintf("%s-%06d", s.Name, i),
					Items: items,
					Seed:  int64(mix64(h + 3)),
				},
				Batches: batches,
			}
		}
		plan = append(plan, pr)
	}
	return plan, nil
}

// SmokeScenario is the built-in deterministic scenario behind
// -preset smoke and the load-smoke CI target: small enough to finish in
// seconds, broad enough to exercise every request kind, two tenants,
// and a lenient SLO that still catches a wedged server.
func SmokeScenario() *Scenario {
	return &Scenario{
		Name:        "smoke",
		Seed:        42,
		Requests:    24,
		Concurrency: 4,
		Tenants:     []string{"alpha", "beta"},
		Mix: []MixEntry{
			{Kind: kindPlace, Weight: 3, Workload: "fir", Iterations: 400, Restarts: 1},
			{Kind: kindCacheHit, Weight: 2, Workload: "matmul", Iterations: 400, Restarts: 1},
			{Kind: kindStream, Weight: 1, Items: 48, Appends: 3, Batch: 128},
		},
		SLO: &SLOBudget{
			// Any error fails the smoke: 1/24 already exceeds this.
			MaxErrorRate:     0.001,
			MaxRetryRate:     2,
			MaxP95MS:         60000,
			MinThroughputRPS: 0.05,
		},
	}
}
