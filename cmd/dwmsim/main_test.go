package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	tr := workload.FIR(8, 32)
	path := filepath.Join(t.TempDir(), "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleTape(t *testing.T) {
	path := writeTrace(t)
	if err := run(path, 1, 0, 1, "proposed", 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 1, 0, 2, "organpipe", 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiTape(t *testing.T) {
	path := writeTrace(t)
	if err := run(path, 4, 0, 1, "proposed", 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 2, 8, 1, "proposed", 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTrace(t)
	if err := run("", 1, 0, 1, "proposed", 1, false); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run(path, 2, 4, 1, "proposed", 1, false); err == nil {
		t.Error("undersized device accepted")
	}
	if err := run(path, 1, 0, 0, "proposed", 1, false); err == nil {
		t.Error("zero ports accepted")
	}
	if err := run(path, 1, 0, 1, "bogus", 1, false); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "none.txt"), 1, 0, 1, "proposed", 1, false); err == nil {
		t.Error("nonexistent trace accepted")
	}
}
