// Command dwmsim simulates an access trace on a configured DWM device
// under a chosen placement policy and prints the full device accounting
// (shifts, reads, writes, latency, energy, per-tape breakdown).
//
// Usage:
//
//	dwmsim -trace trace.txt [-tapes 1] [-tapelen 0] [-ports 1] [-policy proposed] [-seed 1]
//
// With one tape the single-tape policies apply; with several tapes the
// proposed multi-tape pipeline (partition portfolio + per-tape
// arrangement) places the data.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "input trace file (dwmtrace format)")
	tapes := flag.Int("tapes", 1, "number of tapes")
	tapeLen := flag.Int("tapelen", 0, "slots per tape (0 = fit working set)")
	ports := flag.Int("ports", 1, "ports per tape")
	policy := flag.String("policy", "proposed", "single-tape policy: "+strings.Join(core.PolicyNames(), ", "))
	seed := flag.Int64("seed", 1, "seed for randomized policies")
	home := flag.Bool("home", false, "re-home tape heads after the run (HeadReturn policy)")
	flag.Parse()

	if err := run(*tracePath, *tapes, *tapeLen, *ports, *policy, *seed, *home); err != nil {
		fmt.Fprintln(os.Stderr, "dwmsim:", err)
		os.Exit(1)
	}
}

func run(tracePath string, tapes, tapeLen, ports int, policy string, seed int64, home bool) error {
	if tracePath == "" {
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.DecodeAny(f)
	if err != nil {
		return err
	}
	if tapeLen == 0 {
		tapeLen = (tr.NumItems + tapes - 1) / tapes
	}
	if tapes*tapeLen < tr.NumItems {
		return fmt.Errorf("%d items cannot fit on %d tapes of %d slots", tr.NumItems, tapes, tapeLen)
	}
	if ports < 1 || ports > tapeLen {
		return fmt.Errorf("invalid port count %d for tape length %d", ports, tapeLen)
	}
	geom := dwm.Geometry{Tapes: tapes, DomainsPerTape: tapeLen, PortsPerTape: ports}
	dev, err := dwm.NewDevice(geom, dwm.DefaultParams())
	if err != nil {
		return err
	}

	var mp layout.MultiPlacement
	if tapes == 1 {
		g, err := graph.FromTrace(tr)
		if err != nil {
			return err
		}
		pol, err := core.PolicyByName(policy, seed)
		if err != nil {
			return err
		}
		p, err := pol.Place(tr, g)
		if err != nil {
			return err
		}
		if p, err = core.CenterOnPort(p, tapeLen, geom.PortPositions()[0]); err != nil {
			return err
		}
		mp = layout.SingleTape(p)
		fmt.Printf("policy: %s (%s)\n", pol.Name, pol.Description)
	} else {
		mp, _, err = core.ProposeMultiTape(tr, tapes, tapeLen, geom.PortPositions())
		if err != nil {
			return err
		}
		fmt.Println("policy: proposed multi-tape pipeline (partition portfolio + per-tape arrangement)")
	}

	pol := sim.HeadStay
	if home {
		pol = sim.HeadReturn
	}
	s, err := sim.New(dev, mp, pol)
	if err != nil {
		return err
	}
	res, err := s.Run(tr)
	if err != nil {
		return err
	}

	fmt.Printf("trace:   %s (%d accesses, %d items)\n", tr.Name, tr.Len(), tr.NumItems)
	fmt.Printf("device:  %d tape(s) x %d slots, %d port(s)/tape at %v\n",
		tapes, tapeLen, ports, geom.PortPositions())
	fmt.Printf("shifts:  %d\n", res.Counters.Shifts)
	fmt.Printf("reads:   %d\n", res.Counters.Reads)
	fmt.Printf("writes:  %d\n", res.Counters.Writes)
	fmt.Printf("latency: %.2f us\n", res.LatencyNS/1e3)
	fmt.Printf("energy:  %.2f nJ\n", res.EnergyPJ/1e3)
	if tapes > 1 {
		fmt.Println("per-tape shifts:")
		for i, c := range res.PerTape {
			fmt.Printf("  tape %2d: %d\n", i, c.Shifts)
		}
	}
	return nil
}
