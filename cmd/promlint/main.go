// Command promlint checks Prometheus text exposition (version 0.0.4)
// for the conformance violations internal/obs.LintExposition detects:
// malformed metric names, series without TYPE lines, duplicate TYPE or
// series lines, broken label syntax, and incomplete or non-cumulative
// histograms (missing +Inf, decreasing buckets, _count/_sum mismatch).
//
// Usage:
//
//	promlint [FILE...]
//
// With no arguments it reads stdin, so it composes with curl:
//
//	curl -fsS http://127.0.0.1:8080/metrics | promlint
//
// Exit status is 0 when every input is clean, 1 otherwise.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		if err := lint("<stdin>", os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		return
	}
	failed := false
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			failed = true
			continue
		}
		err = lint(path, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lint(name string, r io.Reader) error {
	if err := obs.LintExposition(r); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}
