// Command promlint checks Prometheus text exposition (version 0.0.4)
// for the conformance violations internal/obs.LintExposition detects:
// malformed metric names, series without TYPE lines, duplicate TYPE or
// series lines, broken label syntax, malformed exemplar annotations, and
// incomplete or non-cumulative histograms (missing +Inf, decreasing
// buckets, _count/_sum mismatch) — per labeled series.
//
// Usage:
//
//	promlint [-max-series N] [FILE...]
//
// With no file arguments it reads stdin, so it composes with curl:
//
//	curl -fsS http://127.0.0.1:8080/metrics | promlint -max-series 64
//
// -max-series N (0 disables) additionally fails any metric family whose
// distinct label combinations exceed N — the scrape-side guard against
// unbounded label cardinality (DESIGN.md §16). The in-process bound
// (obs vecs collapse overflow into the "_other" series) keeps memory
// flat; this flag catches families that bypass it.
//
// Exit status is 0 when every input is clean, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	maxSeries := flag.Int("max-series", 0,
		"fail metric families with more than this many labeled series (0 disables)")
	flag.Parse()
	opts := obs.LintOptions{MaxSeriesPerMetric: *maxSeries}
	if flag.NArg() == 0 {
		if err := lint("<stdin>", os.Stdin, opts); err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		return
	}
	failed := false
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			failed = true
			continue
		}
		err = lint(path, f, opts)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lint(name string, r io.Reader, opts obs.LintOptions) error {
	if err := obs.LintExpositionOpts(r, opts); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}
