package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
}

func unsuppressed(findings []finding) []finding {
	var out []finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// TestDogfoodRepoIsClean is the committed form of the CI gate: the whole
// module must produce zero unsuppressed diagnostics.
func TestDogfoodRepoIsClean(t *testing.T) {
	requireGo(t)
	findings, _, err := collect("", []string{"repro/..."})
	if err != nil {
		t.Fatal(err)
	}
	if bad := unsuppressed(findings); len(bad) > 0 {
		for _, f := range bad {
			t.Error(f)
		}
		t.Fatal("dwmlint reports unsuppressed diagnostics on the repo; run `make lint` for the list")
	}
}

func TestOnlySubsetRuns(t *testing.T) {
	requireGo(t)
	findings, _, err := collect("maporder", []string{"repro/internal/graph"})
	if err != nil {
		t.Fatal(err)
	}
	if bad := unsuppressed(findings); len(bad) > 0 {
		t.Fatalf("maporder reports diagnostics on repro/internal/graph: %v", bad)
	}
}

func TestUnknownAnalyzerFails(t *testing.T) {
	if _, _, err := collect("nosuch", nil); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

// TestBaselineFiltersKnownFindings checks the multiset semantics of
// -baseline: findings present in the baseline are not new, an extra
// occurrence of a known finding is, and suppressed findings never count.
func TestBaselineFiltersKnownFindings(t *testing.T) {
	known := finding{File: "a.go", Line: 3, Analyzer: "walltime", Message: "reads the wall clock"}
	moved := known
	moved.Line = 99 // same finding after unrelated edits moved it
	other := finding{File: "b.go", Line: 1, Analyzer: "barego", Message: "naked goroutine"}
	quiet := finding{File: "c.go", Line: 2, Analyzer: "maporder", Message: "map range", Suppressed: true}

	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, []byte(`[{"file":"a.go","line":3,"analyzer":"walltime","message":"reads the wall clock"}]`), 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := newFindings(path, []finding{moved, other, quiet})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0].Analyzer != "barego" {
		t.Fatalf("newFindings = %v, want just the barego finding", fresh)
	}

	// A second occurrence of the baselined finding is new: the baseline
	// budget is a multiset, not a set.
	fresh, err = newFindings(path, []finding{known, moved})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 {
		t.Fatalf("duplicate baselined finding not reported as new: %v", fresh)
	}
}

func TestBaselineRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newFindings(path, nil); err == nil {
		t.Fatal("corrupt baseline accepted")
	}
}

// TestRecordBenchPreservesReport checks the carry contract: writing
// lint_bench into an existing dwmbench report must not drop its other
// keys, and a rerun replaces the entry.
func TestRecordBenchPreservesReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{"seed": 1, "experiments": [{"id": "E1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []finding{{Analyzer: "walltime", Suppressed: true}, {Analyzer: "barego"}}
	if err := recordBench(path, findings, 7, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"seed"`, `"E1"`, `"lint_bench"`, `"wall_ns"`, `"packages": 7`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("report after recordBench lacks %s:\n%s", want, data)
		}
	}
	if err := recordBench(path, nil, 9, time.Second); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if !strings.Contains(string(data), `"packages": 9`) || strings.Contains(string(data), `"packages": 7`) {
		t.Fatalf("rerun did not replace lint_bench:\n%s", data)
	}
}
