package main

import (
	"os/exec"
	"testing"
)

func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
}

// TestDogfoodRepoIsClean is the committed form of the CI gate: the whole
// module must produce zero unsuppressed diagnostics.
func TestDogfoodRepoIsClean(t *testing.T) {
	requireGo(t)
	ok, err := run("", false, []string{"repro/..."})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("dwmlint reports unsuppressed diagnostics on the repo; run `make lint` for the list")
	}
}

func TestOnlySubsetRuns(t *testing.T) {
	requireGo(t)
	ok, err := run("maporder", false, []string{"repro/internal/graph"})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("maporder reports diagnostics on repro/internal/graph")
	}
}

func TestUnknownAnalyzerFails(t *testing.T) {
	if _, err := run("nosuch", false, nil); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}
