// Command dwmlint checks the repository against the determinism
// contract (DESIGN.md §9): experiment results must be a pure function of
// (seed, config). It runs the internal/analysis suite — seededrand,
// maporder, walltime, barego — over the named packages and fails on any
// diagnostic not covered by an inline justification:
//
//	//dwmlint:ignore <analyzer> <justification>
//
// Usage:
//
//	dwmlint [-only analyzer,...] [-v] [-list] [packages]
//
// Packages default to ./..., in the `go list` pattern syntax. Exit
// status is 1 when unsuppressed diagnostics remain, 2 on a loading or
// internal failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	verbose := flag.Bool("v", false, "also print suppressed diagnostics with their justifications")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	ok, err := run(*only, *verbose, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwmlint:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(only string, verbose bool, patterns []string) (bool, error) {
	analyzers := analysis.All()
	if only != "" {
		var err error
		if analyzers, err = analysis.ByName(only); err != nil {
			return false, err
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := load.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return false, err
	}

	bad, suppressed := 0, 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(loader.Fset, pkg.Files, pkg.Path, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			return false, err
		}
		for _, d := range diags {
			if d.Suppressed {
				suppressed++
				if verbose {
					fmt.Printf("%s (suppressed: %s)\n", d, d.Justification)
				}
				continue
			}
			bad++
			fmt.Println(d)
		}
	}
	if verbose || bad > 0 {
		fmt.Printf("dwmlint: %d package(s), %d diagnostic(s), %d suppressed\n", len(pkgs), bad, suppressed)
	}
	return bad == 0, nil
}
