// Command dwmlint checks the repository against the determinism and
// mutation contracts (DESIGN.md §9 and §14): experiment results must be
// a pure function of (seed, config), and shared state may only change
// through its sanctioned paths. It runs the internal/analysis suite —
// seededrand, maporder, walltime, barego, sliceshare, frozenmut,
// guardedfield, ctxflow — over the named packages and fails on any
// diagnostic not covered by an inline justification:
//
//	//dwmlint:ignore <analyzer> <justification>
//
// Usage:
//
//	dwmlint [-only analyzer,...] [-v] [-list] [-json] [-baseline FILE] [-bench FILE] [packages]
//
// Packages default to ./..., in the `go list` pattern syntax. -json
// emits the findings (suppressed ones included) as a JSON array usable
// directly as a -baseline file; -baseline FILE fails only on findings
// not present in FILE, so a new analyzer can land before its dogfood
// cleanup is complete; -bench FILE upserts the run's wall time into a
// dwmbench-style JSON report. Exit status is 1 when unsuppressed (or,
// with -baseline, new) diagnostics remain, 2 on a loading or internal
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	verbose := flag.Bool("v", false, "also print suppressed diagnostics with their justifications")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	baseline := flag.String("baseline", "", "JSON findings file; fail only on findings not in it")
	benchFile := flag.String("bench", "", "record the run's wall time under lint_bench in this JSON report")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	//dwmlint:ignore walltime lint wall-clock is tooling telemetry recorded outside any experiment result
	start := time.Now()
	findings, npkgs, err := collect(*only, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwmlint:", err)
		os.Exit(2)
	}
	//dwmlint:ignore walltime lint wall-clock is tooling telemetry recorded outside any experiment result
	elapsed := time.Since(start)

	if *benchFile != "" {
		if err := recordBench(*benchFile, findings, npkgs, elapsed); err != nil {
			fmt.Fprintln(os.Stderr, "dwmlint: -bench:", err)
			os.Exit(2)
		}
	}

	unsuppressed, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			unsuppressed++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "dwmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			if f.Suppressed {
				if *verbose {
					fmt.Printf("%s (suppressed: %s)\n", f, f.Justification)
				}
				continue
			}
			fmt.Println(f)
		}
		if *verbose || unsuppressed > 0 {
			fmt.Printf("dwmlint: %d package(s), %d diagnostic(s), %d suppressed\n", npkgs, unsuppressed, suppressed)
		}
	}

	if *baseline != "" {
		fresh, err := newFindings(*baseline, findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwmlint: -baseline:", err)
			os.Exit(2)
		}
		if len(fresh) > 0 {
			if !*jsonOut {
				for _, f := range fresh {
					fmt.Printf("new since baseline: %s\n", f)
				}
			}
			os.Exit(1)
		}
		return
	}
	if unsuppressed > 0 {
		os.Exit(1)
	}
}

// finding is the machine-readable form of one diagnostic.
type finding struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// key identifies a finding across runs for baseline comparison. Line
// and column are excluded on purpose: unrelated edits move findings
// without making them new.
func (f finding) key() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

// collect loads the packages, runs the analyzers with a module-wide
// fact store, and returns every diagnostic in position order.
func collect(only string, patterns []string) ([]finding, int, error) {
	analyzers := analysis.All()
	if only != "" {
		var err error
		if analyzers, err = analysis.ByName(only); err != nil {
			return nil, 0, err
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := load.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, 0, err
	}

	// The fact store spans the whole module so cross-package
	// conclusions (purity, retention) propagate; stdlib callees are
	// covered by the built-in table.
	facts := analysis.NewFacts(loader.Fset)
	for _, pkg := range pkgs {
		if pkg.Path == "repro" || strings.HasPrefix(pkg.Path, "repro/") {
			facts.AddPackage(pkg.Files, pkg.Info)
		}
	}

	var findings []finding
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(loader.Fset, pkg.Files, pkg.Path, pkg.Types, pkg.Info, analyzers, facts)
		if err != nil {
			return nil, 0, err
		}
		for _, d := range diags {
			findings = append(findings, finding{
				File:          d.Pos.Filename,
				Line:          d.Pos.Line,
				Col:           d.Pos.Column,
				Analyzer:      d.Analyzer,
				Message:       d.Message,
				Suppressed:    d.Suppressed,
				Justification: d.Justification,
			})
		}
	}
	return findings, len(pkgs), nil
}

// newFindings returns the unsuppressed findings not covered by the
// baseline file (a JSON array in -json format). The comparison is a
// multiset on (analyzer, file, message): two identical findings in one
// file need two baseline entries.
func newFindings(path string, findings []finding) ([]finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base []finding
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	budget := map[string]int{}
	for _, f := range base {
		budget[f.key()]++
	}
	var fresh []finding
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		if budget[f.key()] > 0 {
			budget[f.key()]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, nil
}

// recordBench upserts a lint_bench entry into a dwmbench-style JSON
// report, preserving every other key (the same carry-across-merges
// contract cmd/dwmbench uses for partial runs).
func recordBench(path string, findings []finding, npkgs int, elapsed time.Duration) error {
	report := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		}
	}
	report["lint_bench"] = map[string]any{
		"packages":   npkgs,
		"analyzers":  len(analysis.All()),
		"findings":   len(findings) - suppressed,
		"suppressed": suppressed,
		"wall_ns":    elapsed.Nanoseconds(),
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
