package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	tr := workload.FIR(8, 32)
	path := filepath.Join(t.TempDir(), "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunHappyPath(t *testing.T) {
	path := writeTrace(t)
	for _, pol := range []string{"proposed", "program", "greedy2opt"} {
		if err := run(path, pol, 1, 0, 1, false, false, 8); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
	// Verbose, explicit tape length, multiple ports.
	if err := run(path, "proposed", 2, 32, 1, true, false, 8); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTrace(t)
	if err := run("", "proposed", 1, 0, 1, false, false, 8); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.txt"), "proposed", 1, 0, 1, false, false, 8); err == nil {
		t.Error("nonexistent trace accepted")
	}
	if err := run(path, "bogus", 1, 0, 1, false, false, 8); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run(path, "proposed", 1, 4, 1, false, false, 8); err == nil {
		t.Error("too-short tape accepted")
	}
	if err := run(path, "proposed", 0, 0, 1, false, false, 8); err == nil {
		t.Error("zero ports accepted")
	}
	// Corrupt trace file.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "proposed", 1, 0, 1, false, false, 8); err == nil {
		t.Error("corrupt trace accepted")
	}
}

func TestRunAddressTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "addr.txt")
	content := "R 0x1000\nW 0x1008\nR 0x1000\nR 0x1010\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "proposed", 1, 0, 1, false, true, 8); err != nil {
		t.Fatal(err)
	}
	// Bad word granularity.
	if err := run(path, "proposed", 1, 0, 1, false, true, 3); err == nil {
		t.Error("bad wordbytes accepted")
	}
}
