// Command dwmplace computes a data placement for an access trace and
// reports the predicted shift counts.
//
// Usage:
//
//	dwmplace -trace trace.txt [-policy proposed] [-ports 1] [-tapelen 0] [-seed 1] [-v]
//
// With -tapelen 0 the tape is sized to the working set. The tool prints
// the shift count of the chosen policy next to the program-order baseline
// and, with -v, the item → slot mapping.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	tracePath := flag.String("trace", "", "input trace file (dwmtrace format)")
	policy := flag.String("policy", "proposed", "placement policy: "+strings.Join(core.PolicyNames(), ", "))
	ports := flag.Int("ports", 1, "number of evenly spread access ports")
	tapeLen := flag.Int("tapelen", 0, "tape length in word slots (0 = working-set size)")
	seed := flag.Int64("seed", 1, "seed for randomized policies")
	verbose := flag.Bool("v", false, "print the item -> slot mapping")
	addr := flag.Bool("addr", false, "input is a raw address trace (R/W <addr> lines)")
	wordBytes := flag.Int("wordbytes", 8, "word granularity for -addr traces")
	flag.Parse()

	if err := run(*tracePath, *policy, *ports, *tapeLen, *seed, *verbose, *addr, *wordBytes); err != nil {
		fmt.Fprintln(os.Stderr, "dwmplace:", err)
		os.Exit(1)
	}
}

func run(tracePath, policy string, ports, tapeLen int, seed int64, verbose, addr bool, wordBytes int) error {
	if tracePath == "" {
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *trace.Trace
	if addr {
		tr, _, err = trace.DecodeAddr(f, tracePath, wordBytes)
	} else {
		tr, err = trace.DecodeAny(f)
	}
	if err != nil {
		return err
	}
	if tapeLen == 0 {
		tapeLen = tr.NumItems
	}
	if tapeLen < tr.NumItems {
		return fmt.Errorf("tape length %d smaller than working set %d", tapeLen, tr.NumItems)
	}
	if ports < 1 || ports > tapeLen {
		return fmt.Errorf("invalid port count %d for tape length %d", ports, tapeLen)
	}
	portPos := dwm.SpreadPorts(tapeLen, ports)

	g, err := graph.FromTrace(tr)
	if err != nil {
		return err
	}
	pol, err := core.PolicyByName(policy, seed)
	if err != nil {
		return err
	}
	p, err := pol.Place(tr, g)
	if err != nil {
		return err
	}
	// Policies emit compact placements; center the block for the device.
	p, err = core.CenterOnPort(p, tapeLen, portPos[0])
	if err != nil {
		return err
	}
	shifts, err := cost.MultiPort(tr.Items(), p, portPos, tapeLen)
	if err != nil {
		return err
	}

	base, err := core.ProgramOrder(tr)
	if err != nil {
		return err
	}
	base, err = core.CenterOnPort(base, tapeLen, portPos[0])
	if err != nil {
		return err
	}
	baseShifts, err := cost.MultiPort(tr.Items(), base, portPos, tapeLen)
	if err != nil {
		return err
	}

	fmt.Printf("trace:            %s (%d accesses, %d items)\n", tr.Name, tr.Len(), tr.NumItems)
	fmt.Printf("device:           1 tape x %d slots, %d port(s) at %v\n", tapeLen, ports, portPos)
	fmt.Printf("policy:           %s (%s)\n", pol.Name, pol.Description)
	fmt.Printf("shifts:           %d\n", shifts)
	fmt.Printf("program baseline: %d\n", baseShifts)
	if baseShifts > 0 {
		fmt.Printf("reduction:        %.1f%%\n", 100*float64(baseShifts-shifts)/float64(baseShifts))
	}
	if verbose {
		m, err := viz.TapeMap(p, tr.Frequencies(), tapeLen, portPos)
		if err != nil {
			return err
		}
		fmt.Println("tape heat map (each cell = one slot, shaded by item access count; ^ = port):")
		fmt.Println(m)
		fmt.Println("placement (item -> slot):")
		for item, slot := range p {
			fmt.Printf("  %4d -> %4d\n", item, slot)
		}
	}
	return nil
}
