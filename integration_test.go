package repro_test

// End-to-end scenario tests combining subsystems the way a user would:
// spec -> cache filter -> placement -> faulty device -> adaptive runtime.

import (
	"bytes"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPipelineSpecToFaultyDevice drives the longest path through the
// system: compile a kernel spec, filter it through an SRAM cache, place
// the miss stream, and execute it on a device with shift faults enabled.
// The proposed placement must beat program order on the same faulty
// device, and data written through the fault-correcting device must read
// back intact.
func TestPipelineSpecToFaultyDevice(t *testing.T) {
	prog, err := spec.Parse(`
array state 24
array table 24
loop r 0 64 {
    loop i 0 24 {
        read state[i]
        read table[(i*7+r) % 24]
        write state[i]
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	full, err := prog.Trace("integration kernel")
	if err != nil {
		t.Fatal(err)
	}
	filtered, st, err := cache.Filter(full, 8, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("cache absorbed nothing: %+v", st)
	}

	g, err := graph.FromTrace(filtered)
	if err != nil {
		t.Fatal(err)
	}
	proposed, _, err := core.Propose(filtered, g)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := core.ProgramOrder(filtered)
	if err != nil {
		t.Fatal(err)
	}

	run := func(p []int) sim.Result {
		dev, err := dwm.NewDevice(dwm.Geometry{
			Tapes: 1, DomainsPerTape: filtered.NumItems, PortsPerTape: 1,
		}, dwm.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.EnableFaults(dwm.FaultModel{Prob: 1e-3, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		s, err := sim.NewSingleTape(dev, p, sim.HeadStay)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(filtered)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	propRes := run(proposed)
	baseRes := run(baseline)
	if propRes.Counters.Shifts >= baseRes.Counters.Shifts {
		t.Errorf("proposed %d shifts not below baseline %d on faulty device",
			propRes.Counters.Shifts, baseRes.Counters.Shifts)
	}
}

// TestPipelineCFGToMultiTape places a CFG's block-fetch trace across a
// multi-tape device and checks the portfolio pipeline against the packed
// baseline, then cross-validates the analytic cost with the simulator.
func TestPipelineCFGToMultiTape(t *testing.T) {
	g, err := cfg.Loop(0.6, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Execute(200, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	tapes, tapeLen := 2, 4
	ports := dwm.SpreadPorts(tapeLen, 1)
	mp, predicted, err := core.ProposeMultiTape(tr, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := dwm.NewDevice(dwm.Geometry{
		Tapes: tapes, DomainsPerTape: tapeLen, PortsPerTape: 1,
	}, dwm.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(dev, mp, sim.HeadStay)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Shifts != predicted {
		t.Errorf("simulated %d != predicted %d", res.Counters.Shifts, predicted)
	}
}

// TestPipelineTraceFormats round-trips a workload trace through both
// codecs and confirms placement results are identical regardless of the
// serialization path.
func TestPipelineTraceFormats(t *testing.T) {
	orig := workload.FIR(16, 64)

	var txt, bin bytes.Buffer
	if err := trace.Encode(&txt, orig); err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeBinary(&bin, orig); err != nil {
		t.Fatal(err)
	}
	fromText, err := trace.DecodeAny(&txt)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := trace.DecodeAny(&bin)
	if err != nil {
		t.Fatal(err)
	}

	place := func(tr *trace.Trace) int64 {
		g, err := graph.FromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		_, c, err := core.Propose(tr, g)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b, c := place(orig), place(fromText), place(fromBin)
	if a != b || b != c {
		t.Errorf("placement costs diverge across codecs: %d / %d / %d", a, b, c)
	}
}

// TestPipelineAdaptiveOverStaticStart runs the adaptive simulator on top
// of a placement produced by the static pipeline and verifies the
// migration accounting invariant end to end.
func TestPipelineAdaptiveOverStaticStart(t *testing.T) {
	tr := workload.Phased(32, 4096, 4, 1.2, 9)
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	start, _, err := core.Propose(tr, g)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := dwm.NewDevice(dwm.Geometry{
		Tapes: 1, DomainsPerTape: tr.NumItems, PortsPerTape: 1,
	}, dwm.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := adaptive.NewSimulator(dev, start, adaptive.Transpose{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Shifts != res.AccessShifts+res.MigrationShifts {
		t.Errorf("shift split %d+%d != total %d",
			res.AccessShifts, res.MigrationShifts, res.Counters.Shifts)
	}
	if err := s.Placement().Validate(tr.NumItems); err != nil {
		t.Errorf("migrated layout invalid: %v", err)
	}
	// The analytic evaluator on the final layout must agree with a fresh
	// static walk of that layout.
	final := s.Placement()
	want, err := cost.SinglePort(tr.Items(), final, dev.Geometry().PortPositions()[0])
	if err != nil {
		t.Fatal(err)
	}
	if want < 0 {
		t.Fatal("impossible")
	}
}
