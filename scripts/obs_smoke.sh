#!/bin/sh
# obs-smoke: end-to-end check of the observability surface. Three legs:
#   1. dwmbench -trace writes a loadable Chrome trace_event file and the
#      rendered tables are byte-identical with tracing on and off (the
#      "telemetry is inert" contract).
#   2. dwmserved serves a conformant Prometheus exposition (linted with
#      cmd/promlint), exposes pprof, and streams spans over
#      /debug/events.
#   3. A finished job's status carries the live-progress block.
# Run from the repository root (the Makefile obs-smoke target).
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
	if [ -n "$pid" ]; then
		kill "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	fi
	rm -rf "$dir"
}
trap cleanup EXIT

# --- leg 1: dwmbench tracing -------------------------------------------
$GO build -o "$dir/dwmbench" ./cmd/dwmbench
$GO build -o "$dir/promlint" ./cmd/promlint
$GO build -o "$dir/dwmserved" ./cmd/dwmserved

"$dir/dwmbench" -seed 1 -only E2,E5 >"$dir/plain.txt" 2>/dev/null
"$dir/dwmbench" -seed 1 -only E2,E5 -trace "$dir/run.trace.json" >"$dir/traced.txt" 2>/dev/null
if ! cmp -s "$dir/plain.txt" "$dir/traced.txt"; then
	echo "obs-smoke: tables differ with tracing enabled:" >&2
	diff -u "$dir/plain.txt" "$dir/traced.txt" >&2 || true
	exit 1
fi
nspans=$(jq '.traceEvents | length' "$dir/run.trace.json")
if [ "$nspans" -lt 3 ]; then
	echo "obs-smoke: trace has only $nspans events for a two-experiment run" >&2
	exit 1
fi
jq -e '.traceEvents | all(has("name") and has("ph") and has("ts") and has("dur"))' \
	>/dev/null "$dir/run.trace.json" || {
	echo "obs-smoke: trace events missing required fields" >&2
	exit 1
}

# --- leg 2: dwmserved metrics + events ---------------------------------
$GO run ./cmd/tracegen -workload fir -o "$dir/trace.txt"
jq -Rs '{trace: ., seed: 7, iterations: 20000}' <"$dir/trace.txt" >"$dir/req.json"

"$dir/dwmserved" -addr 127.0.0.1:0 -addrfile "$dir/addr" -workers 2 -events 4096 >"$dir/log" &
pid=$!
i=0
while [ ! -s "$dir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "obs-smoke: daemon never wrote its address file" >&2
		cat "$dir/log" >&2
		exit 1
	fi
	sleep 0.05
done
base="http://$(cat "$dir/addr")"

id=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	--data @"$dir/req.json" "$base/v1/place" | jq -r .id)
n=0
while [ "$n" -le 600 ]; do
	n=$((n + 1))
	st=$(curl -fsS "$base/v1/jobs/$id")
	case $(printf '%s' "$st" | jq -r .status) in
	done) break ;;
	failed)
		echo "obs-smoke: job failed: $st" >&2
		exit 1
		;;
	esac
	sleep 0.05
done

curl -fsS "$base/metrics" >"$dir/metrics.txt"
"$dir/promlint" "$dir/metrics.txt" || {
	echo "obs-smoke: /metrics exposition failed conformance lint" >&2
	exit 1
}
grep -q '^dwm_serve_job_wall_ms_bucket' "$dir/metrics.txt" || {
	echo "obs-smoke: /metrics missing the job-wall histogram" >&2
	exit 1
}
curl -fsS "$base/debug/pprof/" >/dev/null || {
	echo "obs-smoke: /debug/pprof/ unreachable" >&2
	exit 1
}
events=$(curl -fsS "$base/debug/events")
printf '%s' "$events" | jq -e '.enabled' >/dev/null || {
	echo "obs-smoke: /debug/events reports tracing disabled despite -events" >&2
	exit 1
}
printf '%s' "$events" | jq -e '[.spans[].name] | index("serve.job.run")' >/dev/null || {
	echo "obs-smoke: no serve.job.run span in /debug/events: $events" >&2
	exit 1
}

# --- leg 3: job progress block -----------------------------------------
printf '%s' "$st" | jq -e '.progress and .progress.proposals > 0 and .progress.chains >= 1' >/dev/null || {
	echo "obs-smoke: finished job carries no progress block: $st" >&2
	exit 1
}

kill -TERM "$pid"
if ! wait "$pid"; then
	echo "obs-smoke: daemon exited nonzero after SIGTERM" >&2
	cat "$dir/log" >&2
	exit 1
fi
pid=""
echo "obs-smoke: ok (inert tracing, conformant exposition, live introspection)"
