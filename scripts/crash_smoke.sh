#!/bin/sh
# crash-smoke: the durability guarantee end to end. Boots dwmserved with
# a write-ahead journal, SIGKILLs it mid-anneal, restarts it on the same
# journal, and requires the recovered job to finish with a result
# byte-identical to an uninterrupted control run — determinism makes
# replay cheap: the journal re-derives unfinished work from the request
# instead of re-storing it. Then damages the journal the two ways a
# crash (or a disk) can — torn tail, bit flip — and requires the daemon
# to heal (truncate / quarantine) and still serve the job.
# Run from the repository root (the Makefile crash-smoke target).
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
	if [ -n "$pid" ]; then
		kill -KILL "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	fi
	rm -rf "$dir"
}
trap cleanup EXIT

$GO build -o "$dir/dwmserved" ./cmd/dwmserved
$GO run ./cmd/tracegen -workload fir -o "$dir/trace.txt"
# Enough iterations that the anneal runs for a while — the SIGKILL below
# must land mid-search, not after completion.
jq -Rs '{trace: ., seed: 7, iterations: 400000}' <"$dir/trace.txt" >"$dir/req.json"

# boot <journal-dir> <addr-file>: start the daemon, wait for the
# address, and set $pid/$base. Cache off so every result is a cold
# anneal — the comparison must not be satisfied by a cache hit.
boot() {
	: >"$2"
	"$dir/dwmserved" -addr 127.0.0.1:0 -addrfile "$2" -workers 1 \
		-cache-entries 0 -journal "$1" >>"$dir/log" 2>&1 &
	pid=$!
	i=0
	while [ ! -s "$2" ]; do
		i=$((i + 1))
		if [ "$i" -gt 200 ]; then
			echo "crash-smoke: daemon never wrote its address file" >&2
			cat "$dir/log" >&2
			exit 1
		fi
		sleep 0.05
	done
	base="http://$(cat "$2")"
}

stop() {
	kill -TERM "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
	pid=""
}

submit() {
	curl -fsS -X POST -H 'Content-Type: application/json' \
		--data @"$dir/req.json" "$base/v1/place" | jq -r .id
}

# poll <job-id> <out-file>: wait for the job and store its result with
# sorted keys, so byte comparison is meaningful.
poll() {
	n=0
	while [ "$n" -le 1200 ]; do
		n=$((n + 1))
		st=$(curl -fsS "$base/v1/jobs/$1")
		case $(printf '%s' "$st" | jq -r .status) in
		done)
			printf '%s' "$st" | jq -S .result >"$2"
			return 0
			;;
		failed)
			echo "crash-smoke: job $1 failed: $st" >&2
			return 1
			;;
		esac
		sleep 0.05
	done
	echo "crash-smoke: job $1 never finished" >&2
	return 1
}

# Control: an uninterrupted journaled run of the same request.
boot "$dir/journal-control" "$dir/addr-control"
cid=$(submit)
poll "$cid" "$dir/control.json"
stop

# Crash run: submit, wait until the anneal is actually running, then
# SIGKILL — no drain, no flush beyond what the journal already fsynced.
boot "$dir/journal" "$dir/addr1"
jid=$(submit)
n=0
while :; do
	n=$((n + 1))
	if [ "$n" -gt 200 ]; then
		echo "crash-smoke: job never reached running state" >&2
		exit 1
	fi
	s=$(curl -fsS "$base/v1/jobs/$jid" | jq -r .status)
	[ "$s" = "running" ] && break
	sleep 0.02
done
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Recovery: same journal directory, fresh process. The accepted job must
# come back under its original ID and finish byte-identical to control.
boot "$dir/journal" "$dir/addr2"
grep -q 'records replayed' "$dir/log" || {
	echo "crash-smoke: restart did not report a journal replay" >&2
	cat "$dir/log" >&2
	exit 1
}
poll "$jid" "$dir/recovered.json"
if ! cmp -s "$dir/control.json" "$dir/recovered.json"; then
	echo "crash-smoke: recovered result differs from uninterrupted run:" >&2
	diff -u "$dir/control.json" "$dir/recovered.json" >&2 || true
	exit 1
fi
metrics=$(curl -fsS "$base/metrics")
printf '%s\n' "$metrics" | grep -q '^dwm_serve_wal_replayed_jobs [1-9]' || {
	echo "crash-smoke: /metrics missing dwm_serve_wal_replayed_jobs" >&2
	exit 1
}
stop

# Torn tail: a crash mid-append leaves a partial record at the end of
# the last segment. The next boot must truncate it and serve the
# finished job from its journaled terminal record.
last=$(ls "$dir/journal"/wal-*.seg | sort | tail -1)
printf 'TORNTORNTORN' >>"$last"
boot "$dir/journal" "$dir/addr3"
st=$(curl -fsS "$base/v1/jobs/$jid" | jq -r .status)
if [ "$st" != "done" ]; then
	echo "crash-smoke: job not served after torn-tail repair (status $st)" >&2
	exit 1
fi
stop

# Bit flip: corrupt one byte near the end of the journal — inside the
# terminal record — and boot again. The CRC catches it, the suspect
# region is quarantined, and the job (whose acceptance precedes the
# damage) is re-run from its request to the same bytes as control.
size=$(wc -c <"$last")
dd if=/dev/zero of="$last" bs=1 seek=$((size - 40)) count=1 conv=notrunc 2>/dev/null
boot "$dir/journal" "$dir/addr4"
poll "$jid" "$dir/after-flip.json"
if ! cmp -s "$dir/control.json" "$dir/after-flip.json"; then
	echo "crash-smoke: post-bitflip result differs from uninterrupted run:" >&2
	diff -u "$dir/control.json" "$dir/after-flip.json" >&2 || true
	exit 1
fi
ls "$dir/journal"/*.quarantine >/dev/null 2>&1 || {
	echo "crash-smoke: bit flip left no quarantine file" >&2
	exit 1
}
stop

echo "crash-smoke: ok (SIGKILL recovery byte-identical; torn tail truncated; bit flip quarantined)"
