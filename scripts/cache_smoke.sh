#!/bin/sh
# cache-smoke: end-to-end check of the dwmserved placement cache. Boots
# the daemon, runs one job cold, then requires (a) a duplicate
# submission comes back as a cache hit — cache_hit=true, byte-identical
# result, anneal counters flat; (b) a renumbered-but-isomorphic trace
# also hits, with the same objective value and a valid placement; (c)
# dwm_serve_cache_hits counts both hits and /metrics stays
# promlint-clean; (d) SIGTERM drains cleanly. Run from the repository
# root (the Makefile cache-smoke target).
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
	if [ -n "$pid" ]; then
		kill "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	fi
	rm -rf "$dir"
}
trap cleanup EXIT

$GO build -o "$dir/dwmserved" ./cmd/dwmserved
$GO build -o "$dir/promlint" ./cmd/promlint
$GO run ./cmd/tracegen -workload fir -o "$dir/trace.txt"

# The renumbered twin: every item i becomes items-1-i. Same name, same
# item count, same access structure — the same placement problem in a
# different numbering, which the canonical fingerprint must recognize.
awk '
	$1 == "items" { n = $2; print; next }
	$1 == "R" || $1 == "W" { print $1, n - 1 - $2; next }
	{ print }
' "$dir/trace.txt" >"$dir/trace_renum.txt"

jq -Rs '{trace: ., seed: 7, iterations: 20000}' <"$dir/trace.txt" >"$dir/req.json"
jq -Rs '{trace: ., seed: 7, iterations: 20000}' <"$dir/trace_renum.txt" >"$dir/req_renum.json"

"$dir/dwmserved" -addr 127.0.0.1:0 -addrfile "$dir/addr" -workers 2 >"$dir/log" &
pid=$!

i=0
while [ ! -s "$dir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "cache-smoke: daemon never wrote its address file" >&2
		cat "$dir/log" >&2
		exit 1
	fi
	sleep 0.05
done
base="http://$(cat "$dir/addr")"

submit() {
	curl -fsS -X POST -H 'Content-Type: application/json' \
		--data @"$1" "$base/v1/place" | jq -r .id
}

# poll <job-id> <out-file>: wait for the job, store the full status JSON.
poll() {
	n=0
	while [ "$n" -le 600 ]; do
		n=$((n + 1))
		st=$(curl -fsS "$base/v1/jobs/$1")
		case $(printf '%s' "$st" | jq -r .status) in
		done)
			printf '%s' "$st" >"$2"
			return 0
			;;
		failed)
			echo "cache-smoke: job $1 failed: $st" >&2
			return 1
			;;
		esac
		sleep 0.05
	done
	echo "cache-smoke: job $1 never finished" >&2
	return 1
}

# metric <name>: current value of a /metrics series (0 when absent).
metric() {
	curl -fsS "$base/metrics" | awk -v m="$1" '$1 == m { v = $2 } END { print v + 0 }'
}

# Cold run: must miss and do real annealing work.
id1=$(submit "$dir/req.json")
poll "$id1" "$dir/j1.json"
if [ "$(jq -r '.cache_hit // false' "$dir/j1.json")" = "true" ]; then
	echo "cache-smoke: cold submission reported a cache hit" >&2
	exit 1
fi

chains0=$(metric dwm_core_anneal_chains)
iters0=$(metric dwm_core_anneal_iterations)
if [ "$chains0" -eq 0 ]; then
	echo "cache-smoke: cold run reported no anneal chains" >&2
	exit 1
fi

# Duplicate submission: an exact hit — completed job, cache_hit set,
# byte-identical result, zero additional anneal work.
id2=$(submit "$dir/req.json")
poll "$id2" "$dir/j2.json"
if [ "$(jq -r '.cache_hit // false' "$dir/j2.json")" != "true" ]; then
	echo "cache-smoke: duplicate submission was not served from the cache" >&2
	exit 1
fi
jq -S .result "$dir/j1.json" >"$dir/r1.json"
jq -S .result "$dir/j2.json" >"$dir/r2.json"
if ! cmp -s "$dir/r1.json" "$dir/r2.json"; then
	echo "cache-smoke: cache hit returned a different result:" >&2
	diff -u "$dir/r1.json" "$dir/r2.json" >&2 || true
	exit 1
fi

# Renumbered submission: the canonical fingerprint must see through the
# relabeling — a hit with the same cost and a valid placement.
id3=$(submit "$dir/req_renum.json")
poll "$id3" "$dir/j3.json"
if [ "$(jq -r '.cache_hit // false' "$dir/j3.json")" != "true" ]; then
	echo "cache-smoke: renumbered submission missed the cache" >&2
	exit 1
fi
cost1=$(jq -r .result.cost "$dir/j1.json")
cost3=$(jq -r .result.cost "$dir/j3.json")
if [ "$cost1" != "$cost3" ]; then
	echo "cache-smoke: renumbered hit cost $cost3, original $cost1" >&2
	exit 1
fi
items=$(awk '$1 == "items" { print $2 }' "$dir/trace.txt")
if [ "$(jq -r '.result.placement | length' "$dir/j3.json")" -ne "$items" ]; then
	echo "cache-smoke: renumbered hit placement has wrong length" >&2
	exit 1
fi

# Neither hit may have touched the annealer.
chains1=$(metric dwm_core_anneal_chains)
iters1=$(metric dwm_core_anneal_iterations)
if [ "$chains1" -ne "$chains0" ] || [ "$iters1" -ne "$iters0" ]; then
	echo "cache-smoke: cache hits ran the annealer (chains $chains0->$chains1, iterations $iters0->$iters1)" >&2
	exit 1
fi
hits=$(metric dwm_serve_cache_hits)
if [ "$hits" -ne 2 ]; then
	echo "cache-smoke: dwm_serve_cache_hits = $hits, want 2" >&2
	exit 1
fi

# Warm-start accounting must reconcile: the service-level counter and
# the cache-level counter both tick at the point of *application* (a
# candidate adopted as an anneal start), so they can never disagree —
# regardless of whether this particular near-miss adopts its candidate.
jq -Rs '{trace: ., seed: 8, iterations: 20000}' <"$dir/trace.txt" >"$dir/req_warm.json"
id4=$(submit "$dir/req_warm.json")
poll "$id4" "$dir/j4.json"
if [ "$(jq -r '.cache_hit // false' "$dir/j4.json")" = "true" ]; then
	echo "cache-smoke: different-seed submission reported an exact hit" >&2
	exit 1
fi
warm_serve=$(metric dwm_serve_cache_warmstarts)
warm_cache=$(metric dwm_placecache_warm_hits)
if [ "$warm_serve" -ne "$warm_cache" ]; then
	echo "cache-smoke: warm-start counters disagree: dwm_serve_cache_warmstarts=$warm_serve dwm_placecache_warm_hits=$warm_cache" >&2
	exit 1
fi

# The cache series must not break /metrics conformance.
curl -fsS "$base/metrics" >"$dir/metrics.txt"
"$dir/promlint" "$dir/metrics.txt" || {
	echo "cache-smoke: /metrics failed promlint" >&2
	exit 1
}

kill -TERM "$pid"
if ! wait "$pid"; then
	echo "cache-smoke: daemon exited nonzero after SIGTERM" >&2
	cat "$dir/log" >&2
	exit 1
fi
pid=""
echo "cache-smoke: ok (exact + renumbered hits, annealer untouched, clean drain)"
