#!/bin/sh
# load-smoke: end-to-end check of the dwmload SLO harness against a live
# journaled daemon. Four legs:
#   1. dwmload's smoke preset runs clean: every request succeeds, the
#      SLO budget holds, and BENCH_dwmload.json lands with nonzero
#      client-side percentiles.
#   2. The per-tenant labeled series the run produced pass the promlint
#      conformance checker under a cardinality bound, and both scenario
#      tenants show up as distinct series.
#   3. Cross-process propagation closes the loop: a trace ID the client
#      computed locally (reported in the SLO report's slowest-request
#      samples) is found verbatim on server-side spans in /debug/events.
#   4. SIGTERM drains the daemon with exit 0.
# Run from the repository root (the Makefile load-smoke target). Writes
# BENCH_dwmload.json in the working directory — the committed artifact.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
	if [ -n "$pid" ]; then
		kill "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	fi
	rm -rf "$dir"
}
trap cleanup EXIT

$GO build -o "$dir/dwmserved" ./cmd/dwmserved
$GO build -o "$dir/dwmload" ./cmd/dwmload
$GO build -o "$dir/promlint" ./cmd/promlint

"$dir/dwmserved" -addr 127.0.0.1:0 -addrfile "$dir/addr" -workers 2 -queue 64 \
	-events 8192 -journal "$dir/journal" >"$dir/log" &
pid=$!
i=0
while [ ! -s "$dir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "load-smoke: daemon never wrote its address file" >&2
		cat "$dir/log" >&2
		exit 1
	fi
	sleep 0.05
done
base="http://$(cat "$dir/addr")"

# --- leg 1: the smoke scenario passes its SLO --------------------------
"$dir/dwmload" -addr "$base" -preset smoke -out BENCH_dwmload.json || {
	echo "load-smoke: dwmload exited nonzero (SLO violation or error)" >&2
	cat "$dir/log" >&2
	exit 1
}
jq -e '.slo.pass' >/dev/null BENCH_dwmload.json || {
	echo "load-smoke: report SLO did not pass" >&2
	jq .slo BENCH_dwmload.json >&2
	exit 1
}
jq -e '.errors == 0 and .overall.p50_ms > 0 and .overall.p95_ms > 0 and .overall.p99_ms > 0' \
	>/dev/null BENCH_dwmload.json || {
	echo "load-smoke: report has errors or zero percentiles:" >&2
	jq '{errors, overall}' BENCH_dwmload.json >&2
	exit 1
}
jq -e '.cache_hits > 0' >/dev/null BENCH_dwmload.json || {
	echo "load-smoke: no cache hits despite cache_hit mix entries" >&2
	exit 1
}

# --- leg 2: labeled exposition is conformant and per-tenant ------------
curl -fsS "$base/metrics" >"$dir/metrics.txt"
"$dir/promlint" -max-series 128 "$dir/metrics.txt" || {
	echo "load-smoke: labeled exposition failed conformance lint" >&2
	exit 1
}
for tenant in alpha beta; do
	grep -q "dwm_serve_tenant_requests{tenant=\"$tenant\"" "$dir/metrics.txt" || {
		echo "load-smoke: no per-tenant series for $tenant on /metrics" >&2
		exit 1
	}
done
grep -q '# {trace_id="' "$dir/metrics.txt" || {
	echo "load-smoke: no exemplar annotations on /metrics" >&2
	exit 1
}

# --- leg 3: client trace IDs appear on server-side spans ---------------
tid=$(jq -r '[.slowest[] | select(.trace_id != "")][0].trace_id' BENCH_dwmload.json)
if [ -z "$tid" ] || [ "$tid" = "null" ]; then
	echo "load-smoke: report has no trace IDs among slowest requests" >&2
	exit 1
fi
curl -fsS "$base/debug/events" >"$dir/events.json"
jq -e --arg t "$tid" '[.spans[].trace] | index($t) != null' >/dev/null "$dir/events.json" || {
	echo "load-smoke: client trace ID $tid not found on any server span" >&2
	jq '[.spans[].trace] | unique' "$dir/events.json" >&2
	exit 1
}

# --- leg 4: clean drain ------------------------------------------------
kill -TERM "$pid"
if ! wait "$pid"; then
	echo "load-smoke: daemon exited nonzero after SIGTERM" >&2
	cat "$dir/log" >&2
	exit 1
fi
pid=""
echo "load-smoke: ok (SLO pass, labeled exposition conformant, trace propagation closed end to end)"
