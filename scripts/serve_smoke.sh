#!/bin/sh
# serve-smoke: end-to-end check of cmd/dwmserved. Boots the daemon on a
# kernel-chosen port, submits the same placement job twice, and requires
# (a) both jobs finish with byte-identical results — the service
# determinism guarantee — and (b) SIGTERM drains cleanly with exit 0.
# Run from the repository root (the Makefile serve-smoke target).
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
	if [ -n "$pid" ]; then
		kill "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	fi
	rm -rf "$dir"
}
trap cleanup EXIT

$GO build -o "$dir/dwmserved" ./cmd/dwmserved
$GO run ./cmd/tracegen -workload fir -o "$dir/trace.txt"
jq -Rs '{trace: ., seed: 7, iterations: 20000}' <"$dir/trace.txt" >"$dir/req.json"

"$dir/dwmserved" -addr 127.0.0.1:0 -addrfile "$dir/addr" -workers 2 >"$dir/log" &
pid=$!

i=0
while [ ! -s "$dir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: daemon never wrote its address file" >&2
		cat "$dir/log" >&2
		exit 1
	fi
	sleep 0.05
done
base="http://$(cat "$dir/addr")"

curl -fsS "$base/healthz" >/dev/null
curl -fsS "$base/readyz" >/dev/null

submit() {
	curl -fsS -X POST -H 'Content-Type: application/json' \
		--data @"$dir/req.json" "$base/v1/place" | jq -r .id
}

# poll <job-id> <out-file>: wait for the job and store its result with
# sorted keys, so byte comparison is meaningful.
poll() {
	n=0
	while [ "$n" -le 600 ]; do
		n=$((n + 1))
		st=$(curl -fsS "$base/v1/jobs/$1")
		case $(printf '%s' "$st" | jq -r .status) in
		done)
			printf '%s' "$st" | jq -S .result >"$2"
			return 0
			;;
		failed)
			echo "serve-smoke: job $1 failed: $st" >&2
			return 1
			;;
		esac
		sleep 0.05
	done
	echo "serve-smoke: job $1 never finished" >&2
	return 1
}

id1=$(submit)
id2=$(submit)
poll "$id1" "$dir/r1.json"
poll "$id2" "$dir/r2.json"
if ! cmp -s "$dir/r1.json" "$dir/r2.json"; then
	echo "serve-smoke: identical submissions returned different results:" >&2
	diff -u "$dir/r1.json" "$dir/r2.json" >&2 || true
	exit 1
fi
if [ "$(jq -r '.placement | length' "$dir/r1.json")" -eq 0 ]; then
	echo "serve-smoke: empty placement in result" >&2
	exit 1
fi

curl -fsS "$base/metrics" | grep -q '^dwm_serve_jobs_done' || {
	echo "serve-smoke: /metrics missing dwm_serve_jobs_done" >&2
	exit 1
}

kill -TERM "$pid"
if ! wait "$pid"; then
	echo "serve-smoke: daemon exited nonzero after SIGTERM" >&2
	cat "$dir/log" >&2
	exit 1
fi
pid=""
echo "serve-smoke: ok (deterministic results, clean drain)"
