#!/bin/sh
# stream-smoke: end-to-end check of the dwmserved streaming surface.
# Boots the daemon and requires (a) two streams with the same spec fed
# the same accesses — one in a single append, one in ragged chunks —
# end with byte-identical status (the chunk-invariance contract over
# HTTP); (b) an oversized trace is rejected at /v1/place with 400
# instead of crashing a worker; (c) the dwm_serve_stream_* series land
# on /metrics and the endpoint stays promlint-clean; (d) SIGTERM drains
# cleanly with a stream still live. Run from the repository root (the
# Makefile stream-smoke target).
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
	if [ -n "$pid" ]; then
		kill "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	fi
	rm -rf "$dir"
}
trap cleanup EXIT

$GO build -o "$dir/dwmserved" ./cmd/dwmserved
$GO build -o "$dir/promlint" ./cmd/promlint

"$dir/dwmserved" -addr 127.0.0.1:0 -addrfile "$dir/addr" -workers 2 >"$dir/log" &
pid=$!

i=0
while [ ! -s "$dir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "stream-smoke: daemon never wrote its address file" >&2
		cat "$dir/log" >&2
		exit 1
	fi
	sleep 0.05
done
base="http://$(cat "$dir/addr")"

post() {
	curl -fsS -X POST -H 'Content-Type: application/json' --data @- "$1"
}

# metric <name>: current value of a /metrics series (0 when absent).
metric() {
	curl -fsS "$base/metrics" | awk -v m="$1" '$1 == m { v = $2 } END { print v + 0 }'
}

# A fixed pseudo-random access sequence over 32 items, one per line.
# The LCG is seeded in the script so the sequence is identical on every
# run — the smoke pins chunk invariance, not any particular placement.
awk 'BEGIN { s = 12345; for (i = 0; i < 1000; i++) { s = (s * 1103515245 + 12345) % 2147483648; print s % 32 } }' >"$dir/acc.txt"

spec='{"name":"smoke","items":32,"seed":9,"round_every":200,"round_iterations":1200}'

# Stream one: everything in a single append.
one=$(printf '%s' "$spec" | post "$base/v1/streams" | jq -r .id)
jq -s '{accesses: .}' <"$dir/acc.txt" | post "$base/v1/streams/$one/append" >/dev/null
curl -fsS "$base/v1/streams/$one" | jq -S 'del(.id)' >"$dir/one.json"

# Stream two: the same accesses in ragged chunks (sizes sum to 1000).
two=$(printf '%s' "$spec" | post "$base/v1/streams" | jq -r .id)
start=1
for k in 1 137 63 200 99 1 250 149 100; do
	end=$((start + k - 1))
	sed -n "${start},${end}p" "$dir/acc.txt" | jq -s '{accesses: .}' |
		post "$base/v1/streams/$two/append" >/dev/null
	start=$((end + 1))
done
curl -fsS "$base/v1/streams/$two" | jq -S 'del(.id)' >"$dir/two.json"

if ! cmp -s "$dir/one.json" "$dir/two.json"; then
	echo "stream-smoke: chunked stream diverged from one-shot:" >&2
	diff -u "$dir/one.json" "$dir/two.json" >&2 || true
	exit 1
fi
if [ "$(jq -r .accesses "$dir/one.json")" -ne 1000 ]; then
	echo "stream-smoke: stream lost accesses: $(jq -r .accesses "$dir/one.json") != 1000" >&2
	exit 1
fi
if [ "$(jq -r .rounds "$dir/one.json")" -eq 0 ]; then
	echo "stream-smoke: stream ran no improvement rounds" >&2
	exit 1
fi

# Oversized trace: a header at the CSR vertex limit must be rejected at
# submission with 400, not handed to a worker to blow up on.
printf 'dwmtrace 1\nname huge\nitems 2147483648\nR 0\nR 1\n' |
	jq -Rs '{trace: .}' >"$dir/huge.json"
code=$(curl -s -o "$dir/huge_resp" -w '%{http_code}' -X POST \
	-H 'Content-Type: application/json' --data @"$dir/huge.json" "$base/v1/place")
if [ "$code" != 400 ]; then
	echo "stream-smoke: oversized trace got status $code, want 400:" >&2
	cat "$dir/huge_resp" >&2
	exit 1
fi

# The stream series must land on /metrics with the right counts.
if [ "$(metric dwm_serve_stream_live)" -ne 2 ]; then
	echo "stream-smoke: dwm_serve_stream_live = $(metric dwm_serve_stream_live), want 2" >&2
	exit 1
fi
if [ "$(metric dwm_serve_stream_appends)" -ne 10 ]; then
	echo "stream-smoke: dwm_serve_stream_appends = $(metric dwm_serve_stream_appends), want 10" >&2
	exit 1
fi
if [ "$(metric dwm_serve_stream_accesses)" -ne 2000 ]; then
	echo "stream-smoke: dwm_serve_stream_accesses = $(metric dwm_serve_stream_accesses), want 2000" >&2
	exit 1
fi

# Closing a stream returns its final status and frees the slot.
final=$(curl -fsS -X DELETE "$base/v1/streams/$two")
if [ "$(printf '%s' "$final" | jq -r .accesses)" -ne 1000 ]; then
	echo "stream-smoke: DELETE returned wrong final status: $final" >&2
	exit 1
fi
if [ "$(metric dwm_serve_stream_live)" -ne 1 ]; then
	echo "stream-smoke: dwm_serve_stream_live = $(metric dwm_serve_stream_live) after close, want 1" >&2
	exit 1
fi

# The new series must not break /metrics conformance.
curl -fsS "$base/metrics" >"$dir/metrics.txt"
"$dir/promlint" "$dir/metrics.txt" || {
	echo "stream-smoke: /metrics failed promlint" >&2
	exit 1
}

# SIGTERM with a stream still live: the daemon must drain and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then
	echo "stream-smoke: daemon exited nonzero after SIGTERM" >&2
	cat "$dir/log" >&2
	exit 1
fi
pid=""
echo "stream-smoke: ok (chunk-invariant streams, oversized trace rejected, clean drain)"
