GO ?= go

.PHONY: all build vet lint lint-self lint-bench fmt-check test race bench-smoke bench-report merge-smoke determinism-smoke serve-smoke obs-smoke cache-smoke stream-smoke crash-smoke load-smoke chaos ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# dwmlint enforces the determinism contract (DESIGN.md §9) and the
# dataflow invariants (DESIGN.md §14): no global RNG state, no
# wall-clock reads outside obs/the runner, no map-order leaks into
# results, no naked goroutines, no retained caller slices, no frozen-CSR
# or lock-contract violations, cancellation threaded everywhere. Zero
# unsuppressed diagnostics required; exemptions carry //dwmlint:ignore
# justifications. The golden fixtures run first so a broken analyzer
# can't silently pass an unsound tree.
lint:
	$(GO) test ./internal/analysis/... -run 'TestSeededRand|TestMapOrder|TestWallTime|TestBareGo|TestSliceShare|TestFrozenMut|TestGuardedField|TestCtxFlow'
	$(GO) run ./cmd/dwmlint ./...

# The analyzers must hold themselves to their own rules.
lint-self:
	$(GO) run ./cmd/dwmlint ./internal/analysis/... ./cmd/dwmlint

# Record the full-module dwmlint wall-clock under lint_bench in the
# committed report (carried across dwmbench merges like delta_bench).
lint-bench:
	$(GO) run ./cmd/dwmlint -bench BENCH_dwmbench.json ./...

# Fail if any file needs gofmt (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the heaviest experiment benchmark: catches
# regressions that only show up under the full pipeline without paying
# for a statistically meaningful run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkE2MainComparison$$' -benchtime 1x .

# Refresh BENCH_dwmbench.json (per-experiment wall times with deltas vs
# the committed report).
bench-report:
	$(GO) run ./cmd/dwmbench -seed 1 -json BENCH_dwmbench.json > /dev/null

# Exercise the -json + -only merge path end to end: two partial runs
# against the same temp report must leave both experiments' entries.
merge-smoke:
	@tmp="$$(mktemp)"; trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/dwmbench -only E1 -json "$$tmp" > /dev/null && \
	$(GO) run ./cmd/dwmbench -only E5 -json "$$tmp" > /dev/null && \
	grep -q '"id": "E1"' "$$tmp" && grep -q '"id": "E5"' "$$tmp" || \
	{ echo "merge-smoke: E1 entry lost after -only E5 run"; exit 1; }

# The headline guarantee, checked end to end: the rendered tables of a
# sequential run, an 8-worker run, and an 8-worker run with span tracing
# enabled must all be byte-identical for the same seed. The traced run
# proves the telemetry layer is inert — spans and histograms observe the
# pipeline without perturbing a single result byte. E8 is excluded
# because its wall-clock time column is the experiment's output (see its
# dwmlint:ignore justification).
DETERMINISTIC_EXPS = E1,E2,E3,E4,E5,E6,E7,E9,E10,E11,E12,E13,E14,E15,E16,E17,E18,E19,E20,E21,E22

determinism-smoke:
	@a="$$(mktemp)"; b="$$(mktemp)"; c="$$(mktemp)"; t="$$(mktemp)"; \
	trap 'rm -f "$$a" "$$b" "$$c" "$$t"' EXIT; \
	$(GO) run ./cmd/dwmbench -seed 1 -workers 1 -only $(DETERMINISTIC_EXPS) > "$$a" && \
	$(GO) run ./cmd/dwmbench -seed 1 -workers 8 -only $(DETERMINISTIC_EXPS) > "$$b" && \
	$(GO) run ./cmd/dwmbench -seed 1 -workers 8 -only $(DETERMINISTIC_EXPS) -trace "$$t" > "$$c" 2>/dev/null && \
	if ! cmp -s "$$a" "$$b"; then \
		echo "determinism-smoke: workers=1 and workers=8 tables differ:"; \
		diff -u "$$a" "$$b"; exit 1; \
	fi; \
	if ! cmp -s "$$a" "$$c"; then \
		echo "determinism-smoke: tables differ with tracing enabled:"; \
		diff -u "$$a" "$$c"; exit 1; \
	fi; \
	d="$$(mktemp)"; e="$$(mktemp)"; pc="$$(mktemp -d)"; \
	trap 'rm -f "$$a" "$$b" "$$c" "$$t" "$$d" "$$e"; rm -rf "$$pc"' EXIT; \
	$(GO) run ./cmd/dwmbench -seed 1 -workers 8 -only E2 -cache "$$pc" > "$$d" 2>/dev/null && \
	$(GO) run ./cmd/dwmbench -seed 1 -workers 8 -only E2 -cache "$$pc" > "$$e" 2>/dev/null && \
	if ! cmp -s "$$d" "$$e"; then \
		echo "determinism-smoke: warm-cache E2 table differs from cold:"; \
		diff -u "$$d" "$$e"; exit 1; \
	fi
	$(GO) test ./internal/faultfs/ -run 'TestScheduleDeterministic' -count=2

# End-to-end service smoke: boot dwmserved on a kernel-chosen port,
# submit the same job twice, require byte-identical results, and check
# SIGTERM drains with exit 0.
serve-smoke:
	@GO="$(GO)" sh scripts/serve_smoke.sh

# Observability smoke: dwmbench -trace yields a loadable trace without
# changing a result byte, /metrics passes the promlint conformance
# checker, and /debug/events + the job progress block work end to end.
obs-smoke:
	@GO="$(GO)" sh scripts/obs_smoke.sh

# Placement-cache smoke: duplicate and renumbered submissions to
# dwmserved are served from the cache (cache_hit=true, byte-identical
# result, anneal counters flat), the hit counter lands on /metrics, and
# the new series stay promlint-clean.
cache-smoke:
	@GO="$(GO)" sh scripts/cache_smoke.sh

# Streaming smoke: chunked and one-shot appends to dwmserved streams end
# byte-identical, oversized traces are rejected with 400, the stream
# series land on /metrics promlint-clean, and SIGTERM drains with a
# stream still live.
stream-smoke:
	@GO="$(GO)" sh scripts/stream_smoke.sh

# Durability smoke: SIGKILL a journaled dwmserved mid-anneal, restart on
# the same journal, and require the recovered result byte-identical to
# an uninterrupted run; then tear the journal tail and flip a bit and
# require truncate/quarantine repair (DESIGN.md §15).
crash-smoke:
	@GO="$(GO)" sh scripts/crash_smoke.sh

# Load-test smoke: dwmload's deterministic smoke scenario against a
# live journaled daemon must pass its SLO budget and write
# BENCH_dwmload.json with nonzero percentiles; the per-tenant labeled
# series pass promlint under a cardinality bound; and a trace ID the
# client computed locally is found verbatim on server-side spans in
# /debug/events (cross-process propagation, closed end to end).
load-smoke:
	@GO="$(GO)" sh scripts/load_smoke.sh

# Widened chaos sweep: the faultfs atomicity property (acknowledged
# appends survive injected short writes, fsync errors, and crashes;
# unacknowledged ones never resurrect) over many more deterministic
# fault schedules than the in-tree test's default 16.
chaos:
	CHAOS_SEEDS=128 $(GO) test ./internal/faultfs/ -run TestChaosAtomicity -count=1

ci: fmt-check vet lint lint-self build race bench-smoke merge-smoke determinism-smoke serve-smoke obs-smoke cache-smoke stream-smoke crash-smoke load-smoke chaos
