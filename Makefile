GO ?= go

.PHONY: all build vet test race bench-smoke bench-report ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the heaviest experiment benchmark: catches
# regressions that only show up under the full pipeline without paying
# for a statistically meaningful run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkE2MainComparison$$' -benchtime 1x .

# Refresh BENCH_dwmbench.json (per-experiment wall times with deltas vs
# the committed report).
bench-report:
	$(GO) run ./cmd/dwmbench -seed 1 -json BENCH_dwmbench.json > /dev/null

ci: vet build race bench-smoke
