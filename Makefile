GO ?= go

.PHONY: all build vet fmt-check test race bench-smoke bench-report merge-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any file needs gofmt (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the heaviest experiment benchmark: catches
# regressions that only show up under the full pipeline without paying
# for a statistically meaningful run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkE2MainComparison$$' -benchtime 1x .

# Refresh BENCH_dwmbench.json (per-experiment wall times with deltas vs
# the committed report).
bench-report:
	$(GO) run ./cmd/dwmbench -seed 1 -json BENCH_dwmbench.json > /dev/null

# Exercise the -json + -only merge path end to end: two partial runs
# against the same temp report must leave both experiments' entries.
merge-smoke:
	@tmp="$$(mktemp)"; trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/dwmbench -only E1 -json "$$tmp" > /dev/null && \
	$(GO) run ./cmd/dwmbench -only E5 -json "$$tmp" > /dev/null && \
	grep -q '"id": "E1"' "$$tmp" && grep -q '"id": "E5"' "$$tmp" || \
	{ echo "merge-smoke: E1 entry lost after -only E5 run"; exit 1; }

ci: fmt-check vet build race bench-smoke merge-smoke
