// Package repro is a from-scratch Go reproduction of "Optimizing data
// placement for reducing shift operations on domain wall memories"
// (DAC 2015).
//
// The repository implements the full system the paper's evaluation needs:
//
//   - internal/dwm: the domain wall (racetrack) memory device model —
//     tapes, domains, access ports, the shift engine, and latency/energy
//     accounting.
//   - internal/trace, internal/workload: access traces and the benchmark
//     kernel generators that stand in for compiler-extracted traces.
//   - internal/graph, internal/cost, internal/layout: the access
//     transition graph, placement types, and exact shift-cost evaluators.
//   - internal/core: the paper's contribution — shift-minimizing
//     placement algorithms (baselines, greedy chain growth, exact DP and
//     branch-and-bound, 2-opt/insertion local search, simulated
//     annealing, port-aware refinement, and multi-tape partitioning).
//   - internal/sim: the trace-driven device simulator used as ground
//     truth.
//   - Extensions: internal/adaptive (online reorganization),
//     internal/cache (SRAM miss filter), internal/spec (kernel DSL),
//     internal/endurance (variation-aware lifetime), internal/addrmap
//     (main-memory interleaving), internal/cfg (instruction traces),
//     internal/sched (request scheduling).
//   - internal/bench: the experiment harness reproducing every
//     table/figure (E1–E9) plus thirteen extension studies (E10–E22),
//     driven by cmd/dwmbench and the root benchmarks in bench_test.go.
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for measured results.
package repro
