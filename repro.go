package repro

// This file is the public facade over the internal packages: type aliases
// and thin wrappers so downstream users can drive the whole system from
// the single import "repro" while the implementation stays refactorable
// under internal/.

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Device model.
type (
	// Device is a DWM device: an array of racetrack tapes with ports.
	Device = dwm.Device
	// Geometry describes tapes × domains × ports.
	Geometry = dwm.Geometry
	// Params holds per-operation latency and energy constants.
	Params = dwm.Params
	// Counters aggregates shift/read/write counts.
	Counters = dwm.Counters
	// Address identifies a (tape, slot) word location.
	Address = dwm.Address
)

// NewDevice builds a device from a validated geometry and parameters.
func NewDevice(g Geometry, p Params) (*Device, error) { return dwm.NewDevice(g, p) }

// DefaultParams returns representative racetrack device constants.
func DefaultParams() Params { return dwm.DefaultParams() }

// Traces and workloads.
type (
	// Trace is an ordered access sequence over abstract items.
	Trace = trace.Trace
	// Access is one trace event.
	Access = trace.Access
	// Workload is a named trace generator.
	Workload = workload.Generator
)

// NewTrace returns an empty trace over n items.
func NewTrace(name string, n int) *Trace { return trace.New(name, n) }

// Workloads returns the standard benchmark suite.
func Workloads() []Workload { return workload.Suite() }

// WorkloadByName looks up one standard workload.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Placement and algorithms.
type (
	// Placement maps item → slot on one tape.
	Placement = layout.Placement
	// MultiPlacement maps item → (tape, slot).
	MultiPlacement = layout.MultiPlacement
	// Graph is the weighted access-transition graph.
	Graph = graph.Graph
	// Policy is a named placement strategy.
	Policy = core.Policy
)

// AccessGraph builds the transition graph of a trace.
func AccessGraph(t *Trace) (*Graph, error) { return graph.FromTrace(t) }

// Propose runs the headline single-tape placement pipeline and returns
// the placement and its Linear (MinLA) cost.
func Propose(t *Trace, g *Graph) (Placement, int64, error) { return core.Propose(t, g) }

// ProposeMultiTape runs the headline multi-tape pipeline.
func ProposeMultiTape(t *Trace, tapes, tapeLen int, ports []int) (MultiPlacement, int64, error) {
	return core.ProposeMultiTape(t, tapes, tapeLen, ports)
}

// ProgramOrder returns the first-touch baseline placement.
func ProgramOrder(t *Trace) (Placement, error) { return core.ProgramOrder(t) }

// Policies returns the standard policy set (baselines + proposed family).
func Policies(seed int64) []Policy { return core.Policies(seed) }

// ShiftCost returns the exact shift count of serving seq on one tape with
// the given evenly numbered port positions, starting from offset zero.
func ShiftCost(seq []int, p Placement, ports []int, tapeLen int) (int64, error) {
	return cost.MultiPort(seq, p, ports, tapeLen)
}

// Simulation.
type (
	// Simulator executes traces against a device under a placement.
	Simulator = sim.Simulator
	// SimResult aggregates one simulation run.
	SimResult = sim.Result
)

// NewSimulator binds a device to a multi-placement.
func NewSimulator(dev *Device, mp MultiPlacement) (*Simulator, error) {
	return sim.New(dev, mp, sim.HeadStay)
}

// NewSingleTapeSimulator binds a single-tape device to a placement.
func NewSingleTapeSimulator(dev *Device, p Placement) (*Simulator, error) {
	return sim.NewSingleTape(dev, p, sim.HeadStay)
}

// Kernel specifications and cache filtering.
type (
	// KernelSpec is a compiled kernel-specification program.
	KernelSpec = spec.Program
	// CacheStats summarizes a cache-filtering pass.
	CacheStats = cache.Stats
)

// CompileSpec parses a kernel specification (see internal/spec for the
// language) so it can be executed into a trace with Trace.
func CompileSpec(src string) (*KernelSpec, error) { return spec.Parse(src) }

// FilterThroughCache runs the trace through a fully associative LRU SRAM
// buffer of the given capacity and returns the DWM-visible miss and
// write-back stream.
func FilterThroughCache(t *Trace, capacity int) (*Trace, CacheStats, error) {
	return cache.Filter(t, capacity, cache.LRU)
}
