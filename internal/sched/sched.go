// Package sched models request scheduling in a DWM controller: a small
// window of pending accesses that the controller may serve out of order
// to reduce shifts, the racetrack analog of disk SSTF/elevator
// scheduling. Reordering preserves per-item program order (an access
// never overtakes an earlier access to the same item), so read-after-
// write and write-after-write dependences hold; accesses to distinct
// items commute.
//
// Besides total shifts, the package reports the maximum queueing delay
// (in service slots) any request suffered — the starvation metric that
// separates SSTF (fast, unfair) from elevator (nearly as fast, bounded
// delay).
package sched

import (
	"fmt"

	"repro/internal/dwm"
	"repro/internal/layout"
	"repro/internal/trace"
)

// Policy selects the service order within the window.
type Policy int

const (
	// FIFO serves requests strictly in arrival order (window size is
	// irrelevant): the baseline.
	FIFO Policy = iota
	// SSTF serves the eligible request with the smallest shift cost from
	// the current head position (greedy, can starve outliers).
	SSTF
	// Elevator sweeps the tape in one direction serving eligible
	// requests in its path, reversing at the extremes (bounded delay).
	Elevator
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case SSTF:
		return "sstf"
	case Elevator:
		return "elevator"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Result aggregates one scheduled run.
type Result struct {
	// Shifts is the total shift count.
	Shifts int64
	// MaxDelay is the largest number of service slots any request waited
	// beyond its arrival order (0 for FIFO).
	MaxDelay int
}

// Run serves the trace through a reorder window on a fresh single-tape
// device sized to the placement. window is the number of pending
// requests the controller may choose among; 1 (or FIFO) degenerates to
// in-order service.
func Run(tr *trace.Trace, p layout.Placement, tapeLen, window int, pol Policy) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, fmt.Errorf("sched: %w", err)
	}
	if err := p.Validate(tapeLen); err != nil {
		return Result{}, fmt.Errorf("sched: %w", err)
	}
	if tr.NumItems > len(p) {
		return Result{}, fmt.Errorf("sched: trace has %d items, placement covers %d",
			tr.NumItems, len(p))
	}
	if window < 1 {
		return Result{}, fmt.Errorf("sched: window must be >= 1, got %d", window)
	}
	dev, err := dwm.NewDevice(dwm.Geometry{
		Tapes: 1, DomainsPerTape: tapeLen, PortsPerTape: 1,
	}, dwm.DefaultParams())
	if err != nil {
		return Result{}, err
	}
	tape, err := dev.Tape(0)
	if err != nil {
		return Result{}, err
	}
	port := dev.Geometry().PortPositions()[0]

	type req struct {
		access trace.Access
		seq    int // arrival index
	}
	var pending []req
	nextArrival := 0
	served := 0
	res := Result{}
	direction := 1 // elevator sweep direction

	// eligible reports whether pending[i] may be served now: no earlier
	// pending request touches the same item.
	eligible := func(i int) bool {
		for j := range pending {
			if pending[j].seq < pending[i].seq && pending[j].access.Item == pending[i].access.Item {
				return false
			}
		}
		return true
	}
	headPos := func() int { return port + tape.Offset() } // slot under the port

	for nextArrival < tr.Len() || len(pending) > 0 {
		for len(pending) < window && nextArrival < tr.Len() {
			pending = append(pending, req{access: tr.Accesses[nextArrival], seq: nextArrival})
			nextArrival++
		}
		// Choose the next request.
		choice := -1
		switch pol {
		case FIFO:
			// Pending is kept in arrival order; the head of the queue is
			// always eligible.
			choice = 0
		case SSTF:
			bestD := 0
			for i := range pending {
				if !eligible(i) {
					continue
				}
				d := p[pending[i].access.Item] - headPos()
				if d < 0 {
					d = -d
				}
				if choice == -1 || d < bestD || (d == bestD && pending[i].seq < pending[choice].seq) {
					choice, bestD = i, d
				}
			}
		case Elevator:
			for pass := 0; pass < 2 && choice == -1; pass++ {
				bestD := 0
				for i := range pending {
					if !eligible(i) {
						continue
					}
					d := (p[pending[i].access.Item] - headPos()) * direction
					if d < 0 {
						continue // behind the sweep
					}
					if choice == -1 || d < bestD || (d == bestD && pending[i].seq < pending[choice].seq) {
						choice, bestD = i, d
					}
				}
				if choice == -1 {
					direction = -direction // end of sweep: reverse
				}
			}
		default:
			return Result{}, fmt.Errorf("sched: unknown policy %d", int(pol))
		}
		if choice == -1 {
			return Result{}, fmt.Errorf("sched: no eligible request (internal)")
		}

		r := pending[choice]
		pending = append(pending[:choice], pending[choice+1:]...)
		slot := p[r.access.Item]
		if r.access.Write {
			if _, err := tape.Write(slot, uint64(r.seq)+1); err != nil {
				return Result{}, err
			}
		} else if _, _, err := tape.Read(slot); err != nil {
			return Result{}, err
		}
		if delay := served - r.seq; delay > res.MaxDelay {
			res.MaxDelay = delay
		}
		served++
	}
	res.Shifts = tape.Shifts()
	return res, nil
}
