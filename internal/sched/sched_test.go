package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/trace"
	"repro/internal/workload"
)

func readSeq(n int, seq ...int) *trace.Trace {
	t := trace.New("t", n)
	for _, it := range seq {
		t.Read(it)
	}
	return t
}

func TestRunValidation(t *testing.T) {
	tr := readSeq(4, 0, 1)
	p := layout.Identity(4)
	if _, err := Run(tr, p, 4, 0, FIFO); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := Run(tr, layout.Placement{0, 0}, 4, 1, FIFO); err == nil {
		t.Error("bad placement accepted")
	}
	if _, err := Run(tr, p, 4, 4, Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
	bad := trace.New("bad", 1)
	bad.Read(5)
	if _, err := Run(bad, p, 4, 1, FIFO); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestFIFOMatchesAnalyticCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		tr := trace.New("p", n)
		for i := 0; i < 300; i++ {
			tr.Read(rng.Intn(n))
		}
		p, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		res, err := Run(tr, p, n, 8, FIFO) // window irrelevant for FIFO
		if err != nil {
			return false
		}
		want, err := cost.MultiPort(tr.Items(), p, []int{n / 2}, n)
		if err != nil {
			return false
		}
		return res.Shifts == want && res.MaxDelay == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWindowOneDegeneratesToFIFO(t *testing.T) {
	tr := workload.Zipf(16, 1000, 1.2, 3)
	p := layout.Identity(16)
	for _, pol := range []Policy{SSTF, Elevator} {
		fifo, err := Run(tr, p, 16, 1, FIFO)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(tr, p, 16, 1, pol)
		if err != nil {
			t.Fatal(err)
		}
		if got.Shifts != fifo.Shifts {
			t.Errorf("%v window=1: %d != fifo %d", pol, got.Shifts, fifo.Shifts)
		}
	}
}

func TestSSTFReducesShifts(t *testing.T) {
	tr := workload.Uniform(32, 4000, 7)
	p := layout.Identity(32)
	fifo, err := Run(tr, p, 32, 1, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	sstf, err := Run(tr, p, 32, 16, SSTF)
	if err != nil {
		t.Fatal(err)
	}
	elev, err := Run(tr, p, 32, 16, Elevator)
	if err != nil {
		t.Fatal(err)
	}
	if sstf.Shifts >= fifo.Shifts {
		t.Errorf("SSTF %d not below FIFO %d", sstf.Shifts, fifo.Shifts)
	}
	if elev.Shifts >= fifo.Shifts {
		t.Errorf("elevator %d not below FIFO %d", elev.Shifts, fifo.Shifts)
	}
	if sstf.MaxDelay == 0 || elev.MaxDelay == 0 {
		t.Error("reordering policies reported zero delay on random traffic")
	}
}

func TestDependenceOrderPreserved(t *testing.T) {
	// Write then read of the same item with a far item in between: the
	// scheduler may hoist the far access but must keep W(3) before R(3).
	// Verify via data: the read must observe the write's value.
	tr := trace.New("dep", 8)
	tr.Write(3) // seq 0 -> writes value 1
	tr.Read(7)
	tr.Read(3)
	tr.Write(3) // seq 3 -> writes value 4
	tr.Read(3)
	p := layout.Identity(8)
	for _, pol := range []Policy{SSTF, Elevator} {
		if _, err := Run(tr, p, 8, 5, pol); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
	// Correctness of same-item ordering is enforced structurally by the
	// eligibility rule; this test mainly exercises that path (a reorder
	// of W/R pairs would violate eligible() and is impossible by
	// construction). Also check the rule via a crafted window where the
	// nearest request is blocked.
	tr2 := trace.New("blocked", 8)
	tr2.Read(7)  // parks the head far right
	tr2.Write(0) // seq 1: must precede seq 2
	tr2.Read(0)  // seq 2: same item, nearest to nothing special
	res, err := Run(tr2, p, 8, 3, SSTF)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifts <= 0 {
		t.Error("suspicious zero-shift run")
	}
}

// Property: all policies serve every request exactly once (shift totals
// and delays are finite, and the run terminates), and MaxDelay < window.
func TestDelayBoundedByWindow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(16) + 4
		window := rng.Intn(12) + 1
		tr := trace.New("p", n)
		for i := 0; i < 400; i++ {
			if rng.Intn(4) == 0 {
				tr.Write(rng.Intn(n))
			} else {
				tr.Read(rng.Intn(n))
			}
		}
		p, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		for _, pol := range []Policy{FIFO, SSTF, Elevator} {
			res, err := Run(tr, p, n, window, pol)
			if err != nil {
				return false
			}
			// A request can be overtaken at most window-1 times per slot
			// it waits, but the absolute bound is loose; assert the
			// structural invariant that delay is below window for FIFO
			// and finite for the rest.
			if pol == FIFO && res.MaxDelay != 0 {
				return false
			}
			if res.MaxDelay < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || SSTF.String() != "sstf" || Elevator.String() != "elevator" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy has empty name")
	}
}
