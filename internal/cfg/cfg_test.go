package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
)

func TestValidate(t *testing.T) {
	good, err := Loop(0.7, 0.02, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    Graph
	}{
		{"no blocks", Graph{Blocks: 0}},
		{"bad entry", Graph{Blocks: 2, Entry: 5, Exit: 1, Out: map[int][]Edge{0: {{To: 1, Prob: 1}}}}},
		{"bad exit", Graph{Blocks: 2, Entry: 0, Exit: 9, Out: map[int][]Edge{0: {{To: 1, Prob: 1}}}}},
		{"exit with edges", Graph{Blocks: 2, Entry: 0, Exit: 1,
			Out: map[int][]Edge{0: {{To: 1, Prob: 1}}, 1: {{To: 0, Prob: 1}}}}},
		{"dead block", Graph{Blocks: 3, Entry: 0, Exit: 2,
			Out: map[int][]Edge{0: {{To: 2, Prob: 1}}}}},
		{"bad target", Graph{Blocks: 2, Entry: 0, Exit: 1,
			Out: map[int][]Edge{0: {{To: 7, Prob: 1}}}}},
		{"negative prob", Graph{Blocks: 2, Entry: 0, Exit: 1,
			Out: map[int][]Edge{0: {{To: 1, Prob: -1}, {To: 1, Prob: 2}}}}},
		{"bad sum", Graph{Blocks: 2, Entry: 0, Exit: 1,
			Out: map[int][]Edge{0: {{To: 1, Prob: 0.5}}}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestExecuteShape(t *testing.T) {
	g, err := Loop(0.7, 0.02, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Execute(50, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	items := tr.Items()
	// Every run starts at entry and ends at exit.
	if items[0] != 0 {
		t.Errorf("first fetch = %d, want entry 0", items[0])
	}
	if items[len(items)-1] != 6 {
		t.Errorf("last fetch = %d, want exit 6", items[len(items)-1])
	}
	// Exit appears exactly `runs` times.
	exits := 0
	for _, b := range items {
		if b == 6 {
			exits++
		}
	}
	if exits != 50 {
		t.Errorf("exit fetched %d times, want 50", exits)
	}
	// The diamond bias shows: block 2 fetched more than block 3.
	f := tr.Frequencies()
	if f[2] <= f[3] {
		t.Errorf("diamond bias not visible: f2=%d f3=%d", f[2], f[3])
	}
	// The error block is rare.
	if f[5] > f[4]/5 {
		t.Errorf("error path too hot: f5=%d f4=%d", f[5], f[4])
	}
}

func TestExecuteErrors(t *testing.T) {
	g, err := Loop(0.7, 0.02, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Execute(0, 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
	// A CFG that loops forever (exit unreachable with prob 1 edges) must
	// hit maxSteps.
	forever := &Graph{
		Blocks: 3, Entry: 0, Exit: 2,
		Out: map[int][]Edge{
			0: {{To: 1, Prob: 1}},
			1: {{To: 0, Prob: 1}},
		},
	}
	if _, err := forever.Execute(1, 100, 1); err == nil {
		t.Error("non-terminating walk accepted")
	}
}

func TestExecuteDeterministicPerSeed(t *testing.T) {
	g, err := Loop(0.6, 0.01, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.Execute(20, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Execute(20, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatal("same seed, different traces")
		}
	}
}

func TestPlacementImprovesBlockFetches(t *testing.T) {
	// End to end: the proposed placement must reduce fetch shifts over
	// block-number order, and reach the exact optimum on this 7-block
	// instance.
	cf, err := Loop(0.7, 0.02, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cf.Execute(400, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := core.ProgramOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cost.Linear(g, naive)
	if err != nil {
		t.Fatal(err)
	}
	_, prop, err := core.Propose(tr, g)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := core.ExactDP(g)
	if err != nil {
		t.Fatal(err)
	}
	if prop > base {
		t.Errorf("proposed %d worse than naive %d", prop, base)
	}
	if prop != opt {
		t.Errorf("proposed %d != optimum %d on 7 blocks", prop, opt)
	}
}

func TestSwitchCFG(t *testing.T) {
	probs := []float64{0.5, 0.25, 0.125, 0.125}
	g, err := Switch(probs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Blocks != 7 {
		t.Errorf("Blocks = %d", g.Blocks)
	}
	tr, err := g.Execute(100, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := tr.Frequencies()
	// Hot case must dominate the coldest case.
	if f[1] <= f[4] {
		t.Errorf("case skew not visible: hot %d vs cold %d", f[1], f[4])
	}
	if _, err := Switch(nil, 0.1); err == nil {
		t.Error("empty cases accepted")
	}
	if _, err := Switch([]float64{0.5, 0.4}, 0.1); err == nil {
		t.Error("non-normalized probabilities accepted")
	}
}

func TestChainCFG(t *testing.T) {
	g, err := Chain(10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Execute(50, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	items := tr.Items()
	// Monotone walk: fetches strictly increase within each run.
	prev := -1
	for _, b := range items {
		if b == 0 {
			prev = 0
			continue
		}
		if b <= prev {
			t.Fatalf("non-monotone chain walk: %d after %d", b, prev)
		}
		prev = b
	}
	if _, err := Chain(2, 0.1); err == nil {
		t.Error("too-short chain accepted")
	}
	if _, err := Chain(5, 1.5); err == nil {
		t.Error("bad skip probability accepted")
	}
}

// Property: any valid random DAG-with-backedge CFG executes to a valid
// trace whose fetches all lie in range.
func TestExecuteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bias := 0.3 + 0.4*rng.Float64()
		g, err := Loop(bias, 0.05, 0.2)
		if err != nil {
			return false
		}
		tr, err := g.Execute(rng.Intn(20)+1, 0, seed)
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
