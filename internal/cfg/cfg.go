// Package cfg models control-flow graphs with branch probabilities and
// executes them into dynamic basic-block traces — the input domain for
// instruction placement on a DWM instruction scratchpad. Blocks are the
// placeable items; the executed block sequence is the access trace, and
// placing frequent successors adjacently minimizes instruction-fetch
// shifts exactly as data placement minimizes data-access shifts.
package cfg

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trace"
)

// Edge is one outgoing branch of a block with its taken probability.
type Edge struct {
	To   int
	Prob float64
}

// Graph is a control-flow graph over blocks 0..Blocks-1.
type Graph struct {
	// Blocks is the number of basic blocks.
	Blocks int
	// Entry and Exit are the start and terminal blocks.
	Entry, Exit int
	// Out maps each non-exit block to its outgoing edges.
	Out map[int][]Edge
}

// Validate checks structural sanity: indices in range, the exit block has
// no outgoing edges, every other block has edges whose probabilities sum
// to 1 (±1e-9), and all probabilities are non-negative.
func (g *Graph) Validate() error {
	if g.Blocks <= 0 {
		return fmt.Errorf("cfg: need at least one block, got %d", g.Blocks)
	}
	check := func(name string, b int) error {
		if b < 0 || b >= g.Blocks {
			return fmt.Errorf("cfg: %s block %d outside [0,%d)", name, b, g.Blocks)
		}
		return nil
	}
	if err := check("entry", g.Entry); err != nil {
		return err
	}
	if err := check("exit", g.Exit); err != nil {
		return err
	}
	if len(g.Out[g.Exit]) != 0 {
		return fmt.Errorf("cfg: exit block %d has outgoing edges", g.Exit)
	}
	for b := 0; b < g.Blocks; b++ {
		if b == g.Exit {
			continue
		}
		edges := g.Out[b]
		if len(edges) == 0 {
			return fmt.Errorf("cfg: block %d has no outgoing edges and is not the exit", b)
		}
		sum := 0.0
		for _, e := range edges {
			if err := check("edge target", e.To); err != nil {
				return err
			}
			if e.Prob < 0 {
				return fmt.Errorf("cfg: block %d edge to %d has negative probability", b, e.To)
			}
			sum += e.Prob
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("cfg: block %d edge probabilities sum to %g, want 1", b, sum)
		}
	}
	return nil
}

// Execute walks the graph from entry for the given number of runs,
// restarting at entry after each exit, and records every block fetch.
// The walk is seeded and deterministic; maxSteps bounds a single run
// (guarding against CFGs whose exit is unreachable in practice).
func (g *Graph) Execute(runs, maxSteps int, seed int64) (*trace.Trace, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if runs <= 0 {
		return nil, fmt.Errorf("cfg: runs must be positive, got %d", runs)
	}
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New("cfg block fetches", g.Blocks)
	for r := 0; r < runs; r++ {
		cur := g.Entry
		for step := 0; ; step++ {
			if step >= maxSteps {
				return nil, fmt.Errorf("cfg: run %d exceeded %d steps without reaching exit", r, maxSteps)
			}
			tr.Read(cur)
			if cur == g.Exit {
				break
			}
			cur = pick(g.Out[cur], rng)
		}
	}
	return tr, nil
}

// pick samples an edge target by probability.
func pick(edges []Edge, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for _, e := range edges {
		acc += e.Prob
		if u < acc {
			return e.To
		}
	}
	return edges[len(edges)-1].To // rounding tail
}

// Switch builds a dispatch CFG: an entry that selects one of n case
// blocks with the given probabilities (they must sum to 1), each case
// falling through to a merge block that loops back to the entry or exits.
//
//	0 entry -> case i (1..n) -> n+1 merge -> {0 repeat | n+2 exit}
func Switch(caseProbs []float64, exitProb float64) (*Graph, error) {
	n := len(caseProbs)
	if n == 0 {
		return nil, fmt.Errorf("cfg: switch needs at least one case")
	}
	g := &Graph{
		Blocks: n + 3,
		Entry:  0,
		Exit:   n + 2,
		Out:    map[int][]Edge{},
	}
	for i, p := range caseProbs {
		g.Out[0] = append(g.Out[0], Edge{To: 1 + i, Prob: p})
		g.Out[1+i] = []Edge{{To: n + 1, Prob: 1}}
	}
	g.Out[n+1] = []Edge{{To: 0, Prob: 1 - exitProb}, {To: n + 2, Prob: exitProb}}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Chain builds a straight-line CFG of n blocks where each block skips its
// successor with the given probability (jumping two ahead), modeling
// guarded statements in sequence. The last two blocks converge on the
// exit.
func Chain(n int, skipProb float64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("cfg: chain needs at least 3 blocks, got %d", n)
	}
	if skipProb < 0 || skipProb > 1 {
		return nil, fmt.Errorf("cfg: skip probability %g outside [0,1]", skipProb)
	}
	g := &Graph{Blocks: n, Entry: 0, Exit: n - 1, Out: map[int][]Edge{}}
	for b := 0; b < n-1; b++ {
		if b+2 <= n-1 {
			g.Out[b] = []Edge{
				{To: b + 1, Prob: 1 - skipProb},
				{To: b + 2, Prob: skipProb},
			}
		} else {
			g.Out[b] = []Edge{{To: b + 1, Prob: 1}}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Loop builds the canonical benchmark CFG used by the instruction
// placement example: an init block, a hot loop with an if/else diamond
// and a rare error path, and an exit.
//
//	0 init -> 1 loop head -> {2,3} diamond -> 4 latch
//	4 -> 1 (repeat) | 5 (error, rare) | 6 (exit)
//	5 -> 6
func Loop(diamondBias, errorProb, exitProb float64) (*Graph, error) {
	g := &Graph{
		Blocks: 7,
		Entry:  0,
		Exit:   6,
		Out: map[int][]Edge{
			0: {{To: 1, Prob: 1}},
			1: {{To: 2, Prob: diamondBias}, {To: 3, Prob: 1 - diamondBias}},
			2: {{To: 4, Prob: 1}},
			3: {{To: 4, Prob: 1}},
			4: {{To: 5, Prob: errorProb}, {To: 1, Prob: 1 - errorProb - exitProb}, {To: 6, Prob: exitProb}},
			5: {{To: 6, Prob: 1}},
		},
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
