package core

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/layout"
)

// OptimizePorts is the design-time counterpart of data placement: given a
// fixed placement and access sequence, choose where the k access ports
// should be fabricated along the tape. The default evenly spread layout
// is optimal for uniform traffic, but skewed placements reward skewed
// ports. Steepest-descent search over single-port moves (±1 slot and
// jumps to each occupied slot region), evaluated with the exact sequence
// cost, converges in a few passes at these sizes.
//
// Returns the port positions (sorted ascending) and the resulting shift
// count.
func OptimizePorts(seq []int, p layout.Placement, k, tapeLen int) ([]int, int64, error) {
	if k < 1 || k > tapeLen {
		return nil, 0, fmt.Errorf("core: cannot place %d ports on a %d-slot tape", k, tapeLen)
	}
	if err := p.Validate(tapeLen); err != nil {
		return nil, 0, fmt.Errorf("core: OptimizePorts: %w", err)
	}
	ports := spreadPorts(tapeLen, k)
	cur, err := cost.MultiPort(seq, p, ports, tapeLen)
	if err != nil {
		return nil, 0, err
	}

	used := func(pos int, except int) bool {
		for i, q := range ports {
			if i != except && q == pos {
				return true
			}
		}
		return false
	}
	evaluate := func() (int64, error) {
		sorted := append([]int(nil), ports...)
		sort.Ints(sorted)
		return cost.MultiPort(seq, p, sorted, tapeLen)
	}

	// Candidate target positions: every occupied slot (ports belong where
	// the data is) plus each port's immediate neighborhood.
	occupied := make([]int, 0, len(p))
	occupied = append(occupied, p...)
	sort.Ints(occupied)

	const maxPasses = 20
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := range ports {
			orig := ports[i]
			bestPos, bestCost := orig, cur
			try := func(pos int) error {
				if pos < 0 || pos >= tapeLen || pos == orig || used(pos, i) {
					return nil
				}
				ports[i] = pos
				c, err := evaluate()
				ports[i] = orig
				if err != nil {
					return err
				}
				if c < bestCost {
					bestPos, bestCost = pos, c
				}
				return nil
			}
			for _, pos := range []int{orig - 1, orig + 1} {
				if err := try(pos); err != nil {
					return nil, 0, err
				}
			}
			for _, pos := range occupied {
				if err := try(pos); err != nil {
					return nil, 0, err
				}
			}
			if bestPos != orig {
				ports[i] = bestPos
				cur = bestCost
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	sort.Ints(ports)
	return ports, cur, nil
}

// spreadPorts mirrors dwm.SpreadPorts without importing the device
// package (core depends only on the cost model).
func spreadPorts(n, k int) []int {
	ports := make([]int, k)
	for i := range ports {
		ports[i] = (2*i + 1) * n / (2 * k)
	}
	return ports
}
