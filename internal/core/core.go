// Package core implements the paper's contribution: data-placement
// algorithms that minimize the shift operations a domain wall memory
// performs while serving an access trace.
//
// The single-tape, single-port problem is the Minimum Linear Arrangement
// (MinLA) of the access transition graph, which is NP-hard. The package
// provides:
//
//   - Baselines: program order (first touch), random, and two
//     frequency-driven layouts (sorted-from-port and organ-pipe).
//   - The proposed heuristic family: greedy weighted-edge chain growth,
//     refined by 2-opt local search or simulated annealing.
//   - Exact algorithms for small instances: a Held–Karp-style subset DP
//     and a branch-and-bound search, used to measure optimality gaps.
//   - Multi-port-aware refinement driven by the exact sequence cost.
//   - Multi-tape partitioning (greedy affinity + Kernighan–Lin-style
//     refinement) composed with per-tape placement.
//
// All algorithms are deterministic given their seeds.
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

// CenterOnPort shifts a contiguous placement over n slots so that the
// block's center lands on the given port of a tape with tapeLen slots.
// Within-block distances (and hence the Linear cost) are unchanged; the
// initial seek and multi-port interplay improve. The placement must be a
// permutation of [0, n).
func CenterOnPort(p layout.Placement, tapeLen, port int) (layout.Placement, error) {
	n := len(p)
	if err := p.Validate(n); err != nil {
		return nil, fmt.Errorf("core: CenterOnPort needs a compact placement: %w", err)
	}
	if tapeLen < n {
		return nil, fmt.Errorf("core: %d items cannot fit on a %d-slot tape", n, tapeLen)
	}
	if port < 0 || port >= tapeLen {
		return nil, fmt.Errorf("core: port %d outside [0,%d)", port, tapeLen)
	}
	base := port - n/2
	if base < 0 {
		base = 0
	}
	if base+n > tapeLen {
		base = tapeLen - n
	}
	out := make(layout.Placement, n)
	for item, s := range p {
		out[item] = s + base
	}
	return out, nil
}

// traceGraph builds the transition graph, shared by entry points that
// accept traces.
func traceGraph(t *trace.Trace) (*graph.Graph, error) {
	g, err := graph.FromTrace(t)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return g, nil
}
