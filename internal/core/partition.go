package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

// Partition assigns each item to a tape: Partition[item] = tape index.
type Partition []int

// Validate checks that the partition uses valid tape indices and respects
// the per-tape capacity.
func (pt Partition) Validate(tapes, capacity int) error {
	if len(pt) == 0 {
		return fmt.Errorf("core: empty partition")
	}
	load := make([]int, tapes)
	for item, tp := range pt {
		if tp < 0 || tp >= tapes {
			return fmt.Errorf("core: item %d on tape %d outside [0,%d)", item, tp, tapes)
		}
		load[tp]++
		if load[tp] > capacity {
			return fmt.Errorf("core: tape %d exceeds capacity %d", tp, capacity)
		}
	}
	return nil
}

// RoundRobinPartition deals items to tapes cyclically by item ID.
func RoundRobinPartition(n, tapes int) Partition {
	pt := make(Partition, n)
	for i := range pt {
		pt[i] = i % tapes
	}
	return pt
}

// HashPartition spreads items over tapes with a multiplicative hash,
// modeling an address-interleaved memory controller with no placement
// intelligence. When the hash overloads a tape the item spills to the next
// tape with room, so the result always respects capacity.
func HashPartition(n, tapes, capacity int) (Partition, error) {
	if n > tapes*capacity {
		return nil, fmt.Errorf("core: %d items cannot fit on %d tapes of capacity %d",
			n, tapes, capacity)
	}
	const mix = uint64(0x9E3779B97F4A7C15)
	pt := make(Partition, n)
	load := make([]int, tapes)
	for i := range pt {
		h := (uint64(i) + 1) * mix
		h ^= h >> 29
		tp := int(h % uint64(tapes))
		for load[tp] >= capacity {
			tp = (tp + 1) % tapes
		}
		pt[i] = tp
		load[tp]++
	}
	return pt, nil
}

// ContiguousPartition fills tapes with consecutive blocks of items in
// first-touch order, the layout a naive allocator produces.
func ContiguousPartition(t *trace.Trace, tapes, capacity int) (Partition, error) {
	if t.NumItems > tapes*capacity {
		return nil, fmt.Errorf("core: %d items cannot fit on %d tapes of capacity %d",
			t.NumItems, tapes, capacity)
	}
	po, err := ProgramOrder(t)
	if err != nil {
		return nil, err
	}
	// po[item] is the first-touch rank; block rank/capacity.
	pt := make(Partition, t.NumItems)
	perTape := (t.NumItems + tapes - 1) / tapes
	if perTape > capacity {
		perTape = capacity
	}
	for item, rank := range po {
		pt[item] = rank / perTape
	}
	return pt, nil
}

// AffinityPartition is the proposed multi-tape partitioner. Cross-tape
// transitions cost no shifts (each tape keeps its own head), so the
// partition wants frequently alternating items on *different* tapes:
// minimize the total intra-tape transition weight subject to per-tape
// capacity. Greedy construction assigns items in descending weighted
// degree to the tape where they have the least affinity; Kernighan–Lin
// style refinement then applies improving single-item moves and pairwise
// swaps until a pass yields nothing.
func AffinityPartition(g *graph.Graph, tapes, capacity int, refinePasses int) (Partition, error) {
	n := g.N()
	if tapes <= 0 {
		return nil, fmt.Errorf("core: need at least one tape, got %d", tapes)
	}
	if n > tapes*capacity {
		return nil, fmt.Errorf("core: %d items cannot fit on %d tapes of capacity %d",
			n, tapes, capacity)
	}
	pt := make(Partition, n)
	for i := range pt {
		pt[i] = -1
	}
	load := make([]int, tapes)
	c := g.Freeze()

	// W(v, tape) = affinity of v to the items already on tape. This is
	// the innermost loop of both construction and refinement (the swap
	// pass calls it O(n²) times), so it scans the flat CSR row.
	affinity := func(v, tape int) int64 {
		var s int64
		cols, ws := c.Row(v)
		for i, u := range cols {
			if pt[u] == tape {
				s += ws[i]
			}
		}
		return s
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := c.WeightedDegree(order[a]), c.WeightedDegree(order[b])
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	for _, v := range order {
		best, bestAff := -1, int64(0)
		for tp := 0; tp < tapes; tp++ {
			if load[tp] >= capacity {
				continue
			}
			a := affinity(v, tp)
			if best == -1 || a < bestAff ||
				(a == bestAff && load[tp] < load[best]) {
				best, bestAff = tp, a
			}
		}
		pt[v] = best
		load[best]++
	}

	if refinePasses <= 0 {
		refinePasses = 4
	}
	for pass := 0; pass < refinePasses; pass++ {
		improved := false
		// Single-item moves.
		for v := 0; v < n; v++ {
			cur := affinity(v, pt[v])
			for tp := 0; tp < tapes; tp++ {
				if tp == pt[v] || load[tp] >= capacity {
					continue
				}
				if affinity(v, tp) < cur {
					load[pt[v]]--
					pt[v] = tp
					load[tp]++
					cur = affinity(v, tp)
					improved = true
				}
			}
		}
		// Pairwise swaps across tapes.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				tu, tv := pt[u], pt[v]
				if tu == tv {
					continue
				}
				delta := affinity(u, tv) + affinity(v, tu) - 2*c.Weight(u, v) -
					affinity(u, tu) - affinity(v, tv)
				if delta < 0 {
					pt[u], pt[v] = tv, tu
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return pt, nil
}

// IntraWeight returns the total transition weight between items that share
// a tape — the proxy objective AffinityPartition minimizes.
func (pt Partition) IntraWeight(g *graph.Graph) int64 {
	var s int64
	for _, e := range g.Edges() {
		if pt[e.U] == pt[e.V] {
			s += e.W
		}
	}
	return s
}

// ArrangePartition composes a partition with per-tape placement: for each
// tape it extracts the restricted access subsequence (consecutive
// same-tape accesses, which is what that tape's head actually serves),
// builds its transition graph, arranges it with greedy+2-opt, and centers
// the block on the tape's first port. The result is a complete
// MultiPlacement for the device.
func ArrangePartition(t *trace.Trace, pt Partition, tapes, tapeLen int, ports []int) (layout.MultiPlacement, error) {
	if err := t.Validate(); err != nil {
		return layout.MultiPlacement{}, fmt.Errorf("core: %w", err)
	}
	if len(pt) != t.NumItems {
		return layout.MultiPlacement{}, fmt.Errorf("core: partition covers %d items, trace has %d",
			len(pt), t.NumItems)
	}
	if err := pt.Validate(tapes, tapeLen); err != nil {
		return layout.MultiPlacement{}, err
	}
	if len(ports) == 0 {
		return layout.MultiPlacement{}, fmt.Errorf("core: no ports")
	}
	mp := layout.NewMultiPlacement(t.NumItems)
	for tp := 0; tp < tapes; tp++ {
		// Items on this tape.
		var items []int
		for v, x := range pt {
			if x == tp {
				items = append(items, v)
			}
		}
		if len(items) == 0 {
			continue
		}
		// Restricted subsequence: project the trace onto this tape's
		// items and renumber.
		local := make(map[int]int, len(items))
		for i, v := range items {
			local[v] = i
		}
		sub := trace.New(t.Name, len(items))
		for _, a := range t.Accesses {
			if li, ok := local[a.Item]; ok {
				if a.Write {
					sub.Write(li)
				} else {
					sub.Read(li)
				}
			}
		}
		var p layout.Placement
		if sub.Len() == 0 {
			p = layout.Identity(len(items))
		} else {
			g, err := traceGraph(sub)
			if err != nil {
				return layout.MultiPlacement{}, err
			}
			if p, _, err = GreedyTwoOpt(g, TwoOptOptions{}); err != nil {
				return layout.MultiPlacement{}, err
			}
		}
		p, err := CenterOnPort(p, tapeLen, ports[0])
		if err != nil {
			return layout.MultiPlacement{}, err
		}
		for li, v := range items {
			mp.Tape[v] = tp
			mp.Slot[v] = p[li]
		}
	}
	// Items on tapes with no accesses keep their arranged slots; fully
	// unassigned items cannot occur because the partition covers all.
	return mp, nil
}

// PlaceMultiTape is the end-to-end proposed multi-tape pipeline: affinity
// partition plus per-tape arrangement.
func PlaceMultiTape(t *trace.Trace, tapes, tapeLen int, ports []int) (layout.MultiPlacement, error) {
	g, err := traceGraph(t)
	if err != nil {
		return layout.MultiPlacement{}, err
	}
	pt, err := AffinityPartition(g, tapes, tapeLen, 0)
	if err != nil {
		return layout.MultiPlacement{}, err
	}
	return ArrangePartition(t, pt, tapes, tapeLen, ports)
}
