package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/trace"
)

func mustGraph(t *testing.T, n int, edges ...[3]int) *graph.Graph {
	t.Helper()
	g, err := graph.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		g.AddWeight(e[0], e[1], int64(e[2]))
	}
	return g
}

func randGraph(rng *rand.Rand, n, edges int) *graph.Graph {
	g, err := graph.New(n)
	if err != nil {
		panic(err)
	}
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddWeight(u, v, int64(rng.Intn(20)+1))
		}
	}
	return g
}

func TestGreedyChainOnPath(t *testing.T) {
	// A path graph's optimal arrangement is the path itself: cost = sum
	// of weights.
	g := mustGraph(t, 5, [3]int{0, 1, 5}, [3]int{1, 2, 4}, [3]int{2, 3, 3}, [3]int{3, 4, 2})
	p, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cost.Linear(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if c != 14 {
		t.Errorf("greedy cost on path = %d, want 14 (optimal)", c)
	}
}

func TestGreedyChainIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		g := randGraph(rng, n, 3*n)
		p, err := GreedyChain(g, SeedHeaviestEdge)
		if err != nil {
			return false
		}
		return p.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGreedyChainEmptyGraphVariants(t *testing.T) {
	// Graph with no edges: any permutation is fine (cost 0).
	g := mustGraph(t, 4)
	p, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err != nil {
		t.Error(err)
	}
	// Single vertex.
	g1 := mustGraph(t, 1)
	p1, err := GreedyChain(g1, SeedHeaviestEdge)
	if err != nil || len(p1) != 1 || p1[0] != 0 {
		t.Errorf("single vertex: %v, %v", p1, err)
	}
}

func TestGreedyChainPutsHeaviestEdgeAdjacent(t *testing.T) {
	g := mustGraph(t, 6,
		[3]int{2, 5, 100},
		[3]int{0, 1, 3},
		[3]int{3, 4, 2},
		[3]int{1, 2, 1},
	)
	p, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		t.Fatal(err)
	}
	d := p[2] - p[5]
	if d != 1 && d != -1 {
		t.Errorf("heaviest edge endpoints at distance %d, want 1 (placement %v)", d, p)
	}
}

func TestGreedyChainBeatsProgramOrderOnKernels(t *testing.T) {
	// On locality-rich kernels the greedy chain must beat first-touch
	// order under the Linear objective.
	traces := []*trace.Trace{
		firTrace(), zigzagTrace(), chaseTrace(),
	}
	for _, tr := range traces {
		g, err := graph.FromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		po, err := ProgramOrder(tr)
		if err != nil {
			t.Fatal(err)
		}
		base, err := cost.Linear(g, po)
		if err != nil {
			t.Fatal(err)
		}
		p, err := GreedyChain(g, SeedHeaviestEdge)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cost.Linear(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if c > base {
			t.Errorf("%s: greedy %d worse than program order %d", tr.Name, c, base)
		}
	}
}

func TestGreedySeedVariantsBothValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randGraph(rng, 30, 90)
	for _, seed := range []GreedySeed{SeedHeaviestEdge, SeedHeaviestVertex} {
		p, err := GreedyChain(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(30); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// Kernel-shaped helper traces used by several core tests.

func firTrace() *trace.Trace {
	tr := trace.New("fir-ish", 16)
	for s := 0; s < 50; s++ {
		for i := 0; i < 8; i++ {
			tr.Read(i)
			tr.Read(8 + i)
		}
	}
	return tr
}

func zigzagTrace() *trace.Trace {
	tr := trace.New("scan", 32)
	for b := 0; b < 40; b++ {
		for i := 0; i < 32; i++ {
			tr.Read((i*7 + 3) % 32) // a fixed permutation walk
		}
	}
	return tr
}

func chaseTrace() *trace.Trace {
	tr := trace.New("chase", 24)
	rng := rand.New(rand.NewSource(5))
	next := rng.Perm(24)
	cur := 0
	for i := 0; i < 2000; i++ {
		tr.Read(cur)
		cur = next[cur]
	}
	return tr
}
