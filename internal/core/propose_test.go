package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestProposeNeverLosesToProgramOrder(t *testing.T) {
	gens := []*trace.Trace{
		firTrace(), zigzagTrace(), chaseTrace(),
		workload.IIR(4, 64),
		workload.Stencil1D(16, 8),
		workload.Uniform(20, 2000, 3),
		workload.Zipf(20, 2000, 1.3, 3),
	}
	for _, tr := range gens {
		g, err := graph.FromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		po, err := ProgramOrder(tr)
		if err != nil {
			t.Fatal(err)
		}
		base, err := cost.Linear(g, po)
		if err != nil {
			t.Fatal(err)
		}
		p, c, err := Propose(tr, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(tr.NumItems); err != nil {
			t.Fatal(err)
		}
		actual, err := cost.Linear(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if actual != c {
			t.Errorf("%s: reported cost %d != actual %d", tr.Name, c, actual)
		}
		if c > base {
			t.Errorf("%s: proposed %d worse than program order %d", tr.Name, c, base)
		}
	}
}

func TestProposeMatchesOptimalOnSmall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 3 // 3..8
		tr := trace.New("p", n)
		for i := 0; i < 300; i++ {
			tr.Read(rng.Intn(n))
		}
		g, err := graph.FromTrace(tr)
		if err != nil {
			return false
		}
		_, opt, err := ExactDP(g)
		if err != nil {
			return false
		}
		_, c, err := Propose(tr, g)
		if err != nil {
			return false
		}
		// Propose is a heuristic: never below the optimum, and on
		// instances this small it should be within 15%.
		return c >= opt && float64(c) <= 1.15*float64(opt)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestProposeMultiTapeNeverLosesToPacked(t *testing.T) {
	gens := []*trace.Trace{
		workload.FIR(16, 64),
		workload.MatMul(4),
		workload.Stencil1D(16, 8),
	}
	for _, tr := range gens {
		for _, tapes := range []int{2, 4} {
			tapeLen := (tr.NumItems + tapes - 1) / tapes
			ports := dwm.SpreadPorts(tapeLen, 1)
			seq := tr.Items()

			mp, c, err := ProposeMultiTape(tr, tapes, tapeLen, ports)
			if err != nil {
				t.Fatal(err)
			}
			if err := mp.Validate(tapes, tapeLen); err != nil {
				t.Fatal(err)
			}
			actual, err := cost.MultiTape(seq, mp, tapes, tapeLen, ports)
			if err != nil {
				t.Fatal(err)
			}
			if actual != c {
				t.Errorf("%s tapes=%d: reported %d != actual %d", tr.Name, tapes, c, actual)
			}

			contig, err := ContiguousPartition(tr, tapes, tapeLen)
			if err != nil {
				t.Fatal(err)
			}
			packed, err := PackedPlacement(tr, contig, tapes)
			if err != nil {
				t.Fatal(err)
			}
			base, err := cost.MultiTape(seq, packed, tapes, tapeLen, ports)
			if err != nil {
				t.Fatal(err)
			}
			if c > base {
				t.Errorf("%s tapes=%d: proposed %d worse than packed %d", tr.Name, tapes, c, base)
			}
		}
	}
}

func TestPackedPlacementValid(t *testing.T) {
	tr := workload.FIR(8, 16)
	pt := RoundRobinPartition(tr.NumItems, 3)
	mp, err := PackedPlacement(tr, pt, 3)
	if err != nil {
		t.Fatal(err)
	}
	tapeLen := (tr.NumItems + 2) / 3
	if err := mp.Validate(3, tapeLen+1); err != nil {
		t.Fatal(err)
	}
	for item, tp := range pt {
		if mp.Tape[item] != tp {
			t.Errorf("item %d tape %d, want %d", item, mp.Tape[item], tp)
		}
	}
}
