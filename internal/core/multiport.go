package core

import (
	"fmt"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/trace"
)

// PortAwareOptions tunes the multi-port placement refinement.
type PortAwareOptions struct {
	// Seed drives the proposal randomness.
	Seed int64
	// Proposals is the hill-climbing budget (each proposal re-evaluates
	// the exact sequence cost, O(trace length)); 0 selects 2000.
	Proposals int
}

// PortAware computes a placement for a single tape with multiple ports by
// refining graph-driven starts against the exact sequence cost.
//
// The Linear objective ignores ports, so for k > 1 ports the pipeline is:
// build the greedy+2-opt chain, try two instantiations — one contiguous
// block centered on the tape and the chain split into k segments centered
// on the k ports — and hill-climb the better one with random item swaps
// and moves into free slots, scored by cost.MultiPort on the real access
// sequence. For k = 1 this gracefully reduces to centering the chain on
// the port plus refinement.
func PortAware(t *trace.Trace, tapeLen int, ports []int, opts PortAwareOptions) (layout.Placement, int64, error) {
	if err := t.Validate(); err != nil {
		return nil, 0, fmt.Errorf("core: PortAware: %w", err)
	}
	n := t.NumItems
	if tapeLen < n {
		return nil, 0, fmt.Errorf("core: %d items cannot fit on a %d-slot tape", n, tapeLen)
	}
	if len(ports) == 0 {
		return nil, 0, fmt.Errorf("core: PortAware: no ports")
	}
	g, err := traceGraph(t)
	if err != nil {
		return nil, 0, err
	}
	chainP, _, err := Propose(t, g)
	if err != nil {
		return nil, 0, err
	}
	chain, err := chainP.Order()
	if err != nil {
		return nil, 0, err
	}
	seq := t.Items()

	evaluate := func(p layout.Placement) (int64, error) {
		return cost.MultiPort(seq, p, ports, tapeLen)
	}

	// Candidate 1: contiguous block centered on the tape middle.
	cand1, err := CenterOnPort(chainP, tapeLen, tapeLen/2)
	if err != nil {
		return nil, 0, err
	}
	best := cand1
	bestCost, err := evaluate(cand1)
	if err != nil {
		return nil, 0, err
	}

	// Candidate 2: chain split into len(ports) segments, each centered on
	// its port (only distinct from candidate 1 when k > 1).
	if len(ports) > 1 {
		if cand2, err2 := segmentedStart(chain, tapeLen, ports); err2 == nil {
			if c, err2 := evaluate(cand2); err2 == nil && c < bestCost {
				best, bestCost = cand2, c
			}
		}
	}

	// Hill-climb with the exact objective.
	rng := rand.New(rand.NewSource(opts.Seed))
	proposals := opts.Proposals
	if proposals <= 0 {
		proposals = 2000
	}
	cur := best.Clone()
	curCost := bestCost
	occupied := make([]int, tapeLen) // slot -> item, -1 if free
	for i := range occupied {
		occupied[i] = -1
	}
	for item, s := range cur {
		occupied[s] = item
	}
	for i := 0; i < proposals; i++ {
		u := rng.Intn(n)
		s := rng.Intn(tapeLen)
		su := cur[u]
		if s == su {
			continue
		}
		v := occupied[s]
		// Apply: swap with occupant, or move to a free slot.
		cur[u] = s
		occupied[s] = u
		if v >= 0 {
			cur[v] = su
			occupied[su] = v
		} else {
			occupied[su] = -1
		}
		c, err := evaluate(cur)
		if err != nil {
			return nil, 0, err
		}
		if c < curCost {
			curCost = c
			continue
		}
		// Undo.
		cur[u] = su
		occupied[su] = u
		if v >= 0 {
			cur[v] = s
			occupied[s] = v
		} else {
			occupied[s] = -1
		}
	}
	if curCost < bestCost {
		best, bestCost = cur, curCost
	}
	return best, bestCost, nil
}

// segmentedStart splits the chain order into len(ports) contiguous
// segments and centers segment i on ports[i].
func segmentedStart(chain []int, tapeLen int, ports []int) (layout.Placement, error) {
	n := len(chain)
	k := len(ports)
	p := make(layout.Placement, n)
	used := make([]bool, tapeLen)
	segLo := 0
	for i := 0; i < k; i++ {
		segHi := (i + 1) * n / k
		seg := chain[segLo:segHi]
		base := ports[i] - len(seg)/2
		if base < 0 {
			base = 0
		}
		if base+len(seg) > tapeLen {
			base = tapeLen - len(seg)
		}
		for j, item := range seg {
			slot := base + j
			// Resolve collisions with earlier segments by scanning for
			// the next free slot (wrapping).
			for used[slot] {
				slot = (slot + 1) % tapeLen
			}
			used[slot] = true
			p[item] = slot
		}
		segLo = segHi
	}
	if err := p.Validate(tapeLen); err != nil {
		return nil, err
	}
	return p, nil
}
