package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

func sessionAccesses(seed int64, items, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	// Zipf-ish skew: a hot prefix plus a uniform tail, so rounds have
	// real structure to chase.
	acc := make([]int, n)
	for i := range acc {
		if rng.Intn(4) > 0 {
			acc[i] = rng.Intn(1 + items/4)
		} else {
			acc[i] = rng.Intn(items)
		}
	}
	return acc
}

func runSession(t *testing.T, opts SessionOptions, accesses []int, chunk func(i int) int) SessionSnapshot {
	t.Helper()
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(accesses); {
		k := chunk(i)
		if k < 1 {
			k = 1
		}
		if i+k > len(accesses) {
			k = len(accesses) - i
		}
		if err := s.Append(context.Background(), accesses[i:i+k]); err != nil {
			t.Fatal(err)
		}
		i += k
	}
	return s.Snapshot()
}

// TestSessionChunkInvariance is the determinism contract of the
// streaming engine: the snapshot after ingesting a fixed access sequence
// is byte-identical whether the sequence arrived one access at a time,
// in ragged chunks, or in a single append.
func TestSessionChunkInvariance(t *testing.T) {
	opts := SessionOptions{Items: 48, Seed: 42, RoundEvery: 256, RoundIterations: 1500}
	accesses := sessionAccesses(1, opts.Items, 2000)
	oneShot := runSession(t, opts, accesses, func(int) int { return len(accesses) })
	single := runSession(t, opts, accesses, func(int) int { return 1 })
	rng := rand.New(rand.NewSource(5))
	ragged := runSession(t, opts, accesses, func(int) int { return 1 + rng.Intn(97) })
	for name, got := range map[string]SessionSnapshot{"single": single, "ragged": ragged} {
		if !reflect.DeepEqual(got, oneShot) {
			t.Fatalf("%s-access chunking diverged from one-shot:\n got %+v\nwant %+v", name, got, oneShot)
		}
	}
	if oneShot.Rounds == 0 {
		t.Fatal("test exercised no improvement rounds")
	}
	if oneShot.Accesses != int64(len(accesses)) {
		t.Fatalf("accesses = %d, want %d", oneShot.Accesses, len(accesses))
	}
}

// TestSessionChunkInvarianceWithRestarts repeats the contract with
// concurrent restart chains per round, where scheduling could leak if the
// winner selection were not deterministic.
func TestSessionChunkInvarianceWithRestarts(t *testing.T) {
	opts := SessionOptions{Items: 32, Seed: 7, RoundEvery: 200, RoundIterations: 1000, Restarts: 3}
	accesses := sessionAccesses(2, opts.Items, 1000)
	oneShot := runSession(t, opts, accesses, func(int) int { return len(accesses) })
	ragged := runSession(t, opts, accesses, func(i int) int { return 1 + i%13 })
	if !reflect.DeepEqual(ragged, oneShot) {
		t.Fatalf("restart session diverged under chunking:\n got %+v\nwant %+v", ragged, oneShot)
	}
}

// TestSessionCostMatchesColdRecompute checks the incremental cost
// bookkeeping end to end: the snapshot cost must equal a cold
// FromTrace + Freeze + LinearCSR recompute over exactly the ingested
// accesses.
func TestSessionCostMatchesColdRecompute(t *testing.T) {
	opts := SessionOptions{Items: 40, Seed: 3, RoundEvery: 300, RoundIterations: 1200}
	accesses := sessionAccesses(9, opts.Items, 1700) // deliberately not a multiple of RoundEvery
	snap := runSession(t, opts, accesses, func(i int) int { return 1 + i%7 })

	tr := trace.New("session-recompute", opts.Items)
	for _, a := range accesses {
		tr.Read(a)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cost.LinearCSR(g.Freeze(), snap.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if cold != snap.Cost {
		t.Fatalf("snapshot cost %d != cold recompute %d", snap.Cost, cold)
	}
	if err := snap.Placement.Validate(opts.Items); err != nil {
		t.Fatalf("snapshot placement invalid: %v", err)
	}
}

// TestSessionImproves sanity-checks that rounds actually help: after a
// skewed stream, the session placement must beat the identity placement
// it started from.
func TestSessionImproves(t *testing.T) {
	opts := SessionOptions{Items: 64, Seed: 11, RoundEvery: 256, RoundIterations: 4000}
	accesses := sessionAccesses(4, opts.Items, 4096)
	snap := runSession(t, opts, accesses, func(int) int { return 512 })

	tr := trace.New("session-improves", opts.Items)
	for _, a := range accesses {
		tr.Read(a)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	identity, err := cost.LinearCSR(g.Freeze(), layout.Identity(opts.Items))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cost >= identity {
		t.Fatalf("session cost %d did not improve on identity %d", snap.Cost, identity)
	}
	if snap.Migrations == 0 {
		t.Fatal("improvement without migrations is impossible")
	}
}

// TestSessionValidation covers the construction and ingest error paths.
func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(SessionOptions{Items: 0}); err == nil {
		t.Fatal("items=0 accepted")
	}
	s, err := NewSession(SessionOptions{Items: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(context.Background(), []int{3, 8}); err == nil {
		t.Fatal("out-of-range access accepted")
	}
	if err := s.Append(context.Background(), []int{3, -1}); err == nil {
		t.Fatal("negative access accepted")
	}
	// A rejected batch must not have ingested its valid prefix.
	if got := s.Snapshot().Accesses; got != 0 {
		t.Fatalf("rejected batch ingested %d accesses", got)
	}
	if err := s.Append(context.Background(), []int{3, 5, 3}); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Accesses; got != 3 {
		t.Fatalf("accesses = %d, want 3", got)
	}
}

// TestSessionCancelledRound pins the interruption contract: a cancelled
// context fails Append, but the session still holds a valid placement.
func TestSessionCancelledRound(t *testing.T) {
	opts := SessionOptions{Items: 24, Seed: 5, RoundEvery: 64, RoundIterations: 100000}
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first round must fail fast
	if err := s.Append(ctx, sessionAccesses(6, opts.Items, 200)); err == nil {
		t.Fatal("append with cancelled context succeeded despite crossing a round boundary")
	}
	snap := s.Snapshot()
	if err := snap.Placement.Validate(opts.Items); err != nil {
		t.Fatalf("snapshot after cancellation invalid: %v", err)
	}
}
