package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Annealer instrumentation (see internal/obs): proposed iterations,
// accepted moves, chains run, how often a restart chain (index > 0)
// beat the primary chain, and chains cut short by cancellation. The
// proposal-delta histogram records the |delta| of every proposed swap —
// its shape (how much mass sits at small deltas) is what the cooling
// schedule acts on, so a drifting distribution explains a stalling
// anneal better than any total can.
var (
	obsIters       = obs.GetCounter("core.anneal.iterations")
	obsAccepted    = obs.GetCounter("core.anneal.accepted_moves")
	obsChains      = obs.GetCounter("core.anneal.chains")
	obsRestartWins = obs.GetCounter("core.anneal.restart_wins")
	obsInterrupted = obs.GetCounter("core.anneal.interrupted")
	obsDeltaHist   = obs.GetHistogram("core.anneal.proposal_delta",
		[]float64{0, 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536})
	obsCacheHits   = obs.GetCounter("core.anneal.cache.hits")
	obsCacheMisses = obs.GetCounter("core.anneal.cache.misses")
)

// PlacementCache memoizes anneal results by graph structure, start
// placement, and options. internal/placecache provides the standard
// implementation (ForAnneal); the interface lives here so core does not
// depend on the cache package. Lookup must only report ok when replaying
// the stored result is byte-identical to re-running the anneal — the
// determinism contract extends through the cache.
type PlacementCache interface {
	Lookup(c *graph.CSR, start layout.Placement, opts AnnealOptions) (layout.Placement, int64, bool)
	Store(c *graph.CSR, start layout.Placement, opts AnnealOptions, best layout.Placement, cost int64)
}

// cancelCheckEvery is how many proposals a chain runs between
// context-cancellation checks. ctx.Err() is an atomic load, so the
// check is cheap, but batching it keeps it out of the per-swap path.
const cancelCheckEvery = 1024

// AnnealOptions tunes simulated annealing.
type AnnealOptions struct {
	// Seed drives the move and acceptance randomness. With Restarts > 1
	// it also derives the per-restart seeds, so a given (Seed, Restarts)
	// pair is fully reproducible regardless of scheduling.
	Seed int64
	// Iterations is the total number of proposed swaps per chain; 0
	// selects 2000·n, which converges on all the evaluation workloads.
	Iterations int
	// InitialTemp is the starting temperature; 0 selects it
	// automatically from the mean |delta| of a random-move sample.
	InitialTemp float64
	// Cooling is the geometric cooling factor applied every n proposals;
	// 0 selects 0.97.
	Cooling float64
	// Restarts runs that many independent annealing chains concurrently
	// and keeps the best result, chosen deterministically by (cost,
	// restart index). Chain 0 uses Seed unchanged — so Restarts ≤ 1 is
	// byte-identical to a single plain run — and chain i > 0 anneals
	// with a seed derived from (Seed, i).
	Restarts int
	// Checkpoint, when non-nil, periodically receives a copy of the
	// best placement found so far and its cost, so a caller can persist
	// partial progress (the serving layer's crash/resume story). It is
	// invoked at most once per CheckpointEvery proposals per chain, and
	// only when the best improved since the last call. With Restarts > 1
	// the chains run concurrently, so the callback must be safe for
	// concurrent use and tolerate out-of-order costs (keep the min).
	Checkpoint func(p layout.Placement, cost int64)
	// CheckpointEvery is the proposal interval between Checkpoint calls;
	// 0 selects 4096.
	CheckpointEvery int
	// Progress, when non-nil, receives cumulative search statistics on
	// the checkpoint cadence (every CheckpointEvery proposals,
	// improvement or not) and once more when the chain finishes. Unlike
	// Checkpoint it never copies the placement, so it is cheap enough
	// for live job introspection. It observes the search without
	// influencing it — no RNG draw, no control flow depends on it. With
	// Restarts > 1 it is called concurrently from every chain; keep
	// per-chain state keyed on Chain.
	Progress func(AnnealProgress)
	// Warmstart, when non-nil, replaces the input placement as the
	// chain's starting point. The serving layer uses it to seed the
	// search from a cached near-match instead of the caller's heuristic
	// start. Determinism is unaffected: the result is still a pure
	// function of (graph, effective start, options).
	Warmstart layout.Placement
	// Cache, when non-nil, is consulted before annealing and updated
	// with the result afterwards. A hit returns the memoized placement
	// without running any chain.
	Cache PlacementCache

	// chain is the restart index annealChain reports in spans and
	// Progress callbacks; AnnealContext sets it per restart.
	chain int
}

// AnnealProgress is a cumulative view of one annealing chain, delivered
// through AnnealOptions.Progress.
type AnnealProgress struct {
	// Chain is the restart index (0 for the primary chain).
	Chain int
	// Proposals and Accepted count the swaps proposed and accepted so
	// far in this chain; BestCost is the chain's best energy to date.
	Proposals int64
	Accepted  int64
	BestCost  int64
	// Done marks the final report of a finished (or interrupted) chain.
	Done bool
}

// Anneal refines a placement by simulated annealing over item swaps under
// the Linear objective. It returns the best placement visited and its
// cost. The input placement is not mutated. Anneal is AnnealContext with
// a background context.
func Anneal(g *graph.Graph, p layout.Placement, opts AnnealOptions) (layout.Placement, int64, error) {
	return AnnealContext(context.Background(), g, p, opts)
}

// AnnealContext is Anneal with cooperative cancellation. The context is
// checked between restart chains and every cancelCheckEvery proposals
// inside a chain. When ctx is cancelled (or its deadline passes) the
// search stops early and returns the best placement visited so far —
// a valid, never-worse-than-input placement — together with its cost
// and an error wrapping ctx.Err(). Callers that want the partial result
// must therefore check the returned placement before discarding on
// error: placement != nil with errors.Is(err, ctx.Err()) means
// "interrupted but usable".
func AnnealContext(ctx context.Context, g *graph.Graph, p layout.Placement, opts AnnealOptions) (layout.Placement, int64, error) {
	if opts.Warmstart != nil {
		// Clone: the warm start often comes from a cache or another
		// session, and nothing downstream may ever write through to the
		// caller's slice.
		p = opts.Warmstart.Clone()
		opts.Warmstart = nil
	}
	c := g.Freeze()
	cache := opts.Cache
	opts.Cache = nil // chains must not re-consult the cache
	if cache != nil {
		if best, bestCost, ok := cache.Lookup(c, p, opts); ok {
			obsCacheHits.Inc()
			return best, bestCost, nil
		}
		obsCacheMisses.Inc()
	}
	best, bestCost, err := annealCSR(ctx, c, p, opts)
	if cache != nil && err == nil && best != nil {
		cache.Store(c, p, opts, best, bestCost)
	}
	return best, bestCost, err
}

// annealCSR runs the chain (or concurrent restart chains) over a frozen
// graph; AnnealContext handles warm-start substitution and the cache.
func annealCSR(ctx context.Context, c *graph.CSR, p layout.Placement, opts AnnealOptions) (layout.Placement, int64, error) {
	if opts.Restarts <= 1 {
		return annealChain(ctx, c, p, opts)
	}
	type outcome struct {
		p   layout.Placement
		c   int64
		err error
	}
	results := make([]outcome, opts.Restarts)
	var wg sync.WaitGroup
	for i := 0; i < opts.Restarts; i++ {
		wg.Add(1)
		//dwmlint:ignore barego restart chains are independent, write to index-i slots, and the winner is picked by (cost, index) — order-preserving by construction
		go func(i int) {
			defer wg.Done()
			chainOpts := opts
			chainOpts.Restarts = 0
			chainOpts.chain = i
			if i > 0 {
				chainOpts.Seed = deriveSeed(opts.Seed, i)
			}
			p, c, err := annealChain(ctx, c, p, chainOpts)
			results[i] = outcome{p: p, c: c, err: err}
		}(i)
	}
	wg.Wait()
	// Pick the winner among every chain that produced a placement.
	// Interrupted chains return valid partial placements alongside their
	// context error; only a chain with no placement at all is fatal.
	var best layout.Placement
	var bestCost int64
	var ctxErr error
	win := 0
	for i, r := range results {
		if r.err != nil && r.p == nil {
			return nil, 0, r.err
		}
		if r.err != nil && ctxErr == nil {
			ctxErr = r.err
		}
		if best == nil || r.c < bestCost {
			best, bestCost = r.p, r.c
			win = i
		}
	}
	if win > 0 {
		obsRestartWins.Inc()
	}
	return best, bestCost, ctxErr
}

// deriveSeed maps (seed, index) to an independent chain seed with a
// splitmix64 finalizer, the same scheme the bench harness uses for
// per-row seeds: statistically independent streams, stable across runs
// and scheduling orders.
func deriveSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// annealChain is one simulated-annealing run over the frozen graph. On
// cancellation it returns the best-so-far placement together with an
// error wrapping ctx.Err().
func annealChain(ctx context.Context, c *graph.CSR, p layout.Placement, opts AnnealOptions) (layout.Placement, int64, error) {
	ctx, span := obs.StartSpan(ctx, "core.anneal.chain")
	defer span.End()
	span.SetAttr("chain", opts.chain).SetAttr("n", c.N())
	ev, err := cost.NewEvaluatorCSR(c, p)
	if err != nil {
		return nil, 0, fmt.Errorf("core: Anneal: %w", err)
	}
	n := c.N()
	if n < 2 {
		return ev.Placement(), ev.Cost(), nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	iters := opts.Iterations
	if iters <= 0 {
		iters = 2000 * n
	}
	cooling := opts.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.97
	}
	temp := opts.InitialTemp
	if temp <= 0 {
		// Sample random swaps to scale the starting temperature so that
		// early uphill moves are accepted with fair probability.
		var sum float64
		samples := 50
		for i := 0; i < samples; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			d := ev.SwapDelta(u, v)
			if d < 0 {
				d = -d
			}
			sum += float64(d)
		}
		temp = sum/float64(samples) + 1
	}
	ckptEvery := opts.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 4096
	}

	best := ev.Placement()
	bestCost := ev.Cost()
	ckptCost := bestCost
	accepted := int64(0)           // batched into the shared counter after the loop
	deltas := obsDeltaHist.Local() // per-chain buffer, flushed once at finish
	report := func(done int, final bool) {
		if opts.Progress != nil {
			opts.Progress(AnnealProgress{
				Chain:     opts.chain,
				Proposals: int64(done),
				Accepted:  accepted,
				BestCost:  bestCost,
				Done:      final,
			})
		}
	}
	finish := func(done int, interrupted error) (layout.Placement, int64, error) {
		obsChains.Inc()
		obsIters.Add(int64(done))
		obsAccepted.Add(accepted)
		deltas.Flush()
		report(done, true)
		span.SetAttr("proposals", int64(done)).
			SetAttr("accepted", accepted).
			SetAttr("best_cost", bestCost).
			SetAttr("interrupted", interrupted != nil)
		if interrupted != nil {
			obsInterrupted.Inc()
			return best, bestCost, fmt.Errorf("core: anneal interrupted after %d/%d iterations: %w",
				done, iters, interrupted)
		}
		return best, bestCost, nil
	}
	if err := ctx.Err(); err != nil {
		return finish(0, err)
	}
	for i := 0; i < iters; i++ {
		if i%cancelCheckEvery == cancelCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return finish(i, err)
			}
		}
		if i%ckptEvery == ckptEvery-1 {
			if opts.Checkpoint != nil && bestCost < ckptCost {
				ckptCost = bestCost
				opts.Checkpoint(best.Clone(), bestCost)
			}
			report(i+1, false)
		}
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		d := ev.SwapDelta(u, v)
		deltas.Observe(d)
		if d <= 0 || rng.Float64() < math.Exp(-float64(d)/temp) {
			ev.Swap(u, v)
			accepted++
			if c := ev.Cost(); c < bestCost {
				bestCost = c
				best = ev.Placement()
			}
		}
		if i%n == n-1 {
			temp *= cooling
			if temp < 1e-6 {
				temp = 1e-6
			}
		}
	}
	if opts.Checkpoint != nil && bestCost < ckptCost {
		opts.Checkpoint(best.Clone(), bestCost)
	}
	return finish(iters, nil)
}

// GreedyAnneal runs greedy chain construction followed by simulated
// annealing, the slower but occasionally stronger alternative to
// GreedyTwoOpt.
func GreedyAnneal(g *graph.Graph, opts AnnealOptions) (layout.Placement, int64, error) {
	return GreedyAnnealContext(context.Background(), g, opts)
}

// GreedyAnnealContext is GreedyAnneal with cooperative cancellation; see
// AnnealContext for the partial-result contract.
func GreedyAnnealContext(ctx context.Context, g *graph.Graph, opts AnnealOptions) (layout.Placement, int64, error) {
	p, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		return nil, 0, err
	}
	return AnnealContext(ctx, g, p, opts)
}
