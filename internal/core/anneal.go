package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
)

// AnnealOptions tunes simulated annealing.
type AnnealOptions struct {
	// Seed drives the move and acceptance randomness.
	Seed int64
	// Iterations is the total number of proposed swaps; 0 selects
	// 2000·n, which converges on all the evaluation workloads.
	Iterations int
	// InitialTemp is the starting temperature; 0 selects it
	// automatically from the mean |delta| of a random-move sample.
	InitialTemp float64
	// Cooling is the geometric cooling factor applied every n proposals;
	// 0 selects 0.97.
	Cooling float64
}

// Anneal refines a placement by simulated annealing over item swaps under
// the Linear objective. It returns the best placement visited and its
// cost. The input placement is not mutated.
func Anneal(g *graph.Graph, p layout.Placement, opts AnnealOptions) (layout.Placement, int64, error) {
	ev, err := cost.NewEvaluator(g, p)
	if err != nil {
		return nil, 0, fmt.Errorf("core: Anneal: %w", err)
	}
	n := g.N()
	if n < 2 {
		return ev.Placement(), ev.Cost(), nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	iters := opts.Iterations
	if iters <= 0 {
		iters = 2000 * n
	}
	cooling := opts.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.97
	}
	temp := opts.InitialTemp
	if temp <= 0 {
		// Sample random swaps to scale the starting temperature so that
		// early uphill moves are accepted with fair probability.
		var sum float64
		samples := 50
		for i := 0; i < samples; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			d := ev.SwapDelta(u, v)
			if d < 0 {
				d = -d
			}
			sum += float64(d)
		}
		temp = sum/float64(samples) + 1
	}

	best := ev.Placement()
	bestCost := ev.Cost()
	for i := 0; i < iters; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		d := ev.SwapDelta(u, v)
		if d <= 0 || rng.Float64() < math.Exp(-float64(d)/temp) {
			ev.Swap(u, v)
			if c := ev.Cost(); c < bestCost {
				bestCost = c
				best = ev.Placement()
			}
		}
		if i%n == n-1 {
			temp *= cooling
			if temp < 1e-6 {
				temp = 1e-6
			}
		}
	}
	return best, bestCost, nil
}

// GreedyAnneal runs greedy chain construction followed by simulated
// annealing, the slower but occasionally stronger alternative to
// GreedyTwoOpt.
func GreedyAnneal(g *graph.Graph, opts AnnealOptions) (layout.Placement, int64, error) {
	p, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		return nil, 0, err
	}
	return Anneal(g, p, opts)
}
