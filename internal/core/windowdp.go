package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
)

// WindowDPOptions tunes the sliding-window exact refinement.
type WindowDPOptions struct {
	// Window is the number of consecutive slots re-solved exactly per
	// step; 0 selects 6. Cost grows as Window! per step, so values above
	// 8 are rejected.
	Window int
	// MaxPasses bounds full sweeps; 0 selects convergence (capped).
	MaxPasses int
}

// WindowDP refines a placement by exactly re-solving sliding windows: for
// each run of Window consecutive slots it enumerates every arrangement of
// the items inside, scoring internal edges by arrangement and edges to
// outside items against their fixed slots, and keeps the best. Each step
// is optimal for its window, so the refinement never worsens the
// placement and can realize multi-item rotations that pairwise swaps and
// single relocations cannot. Complexity is O(n · Window! · deg) per pass.
func WindowDP(g *graph.Graph, p layout.Placement, opts WindowDPOptions) (layout.Placement, int64, error) {
	n := g.N()
	if err := p.Validate(n); err != nil {
		return nil, 0, fmt.Errorf("core: WindowDP: %w", err)
	}
	csr := g.Freeze()
	w := opts.Window
	if w == 0 {
		w = 6
	}
	if w < 2 || w > 8 {
		return nil, 0, fmt.Errorf("core: WindowDP window %d outside [2,8]", w)
	}
	if w > n {
		w = n
	}
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 20
	}

	cur := p.Clone()
	order, err := cur.Order()
	if err != nil {
		return nil, 0, err
	}

	// Per-window precomputation: a boundary table bc[k][j] = cost of the
	// k-th window item's outside edges when it sits at window position j,
	// plus the list of internal edges. A permutation then scores in
	// O(w + internal edges) instead of re-walking adjacency lists.
	items := make([]int, w)
	inWindow := make([]int, n) // item -> window index+1, 0 = outside
	bc := make([][]int64, w)
	for k := range bc {
		bc[k] = make([]int64, w)
	}
	type iedge struct {
		a, b int // window indices
		w    int64
	}
	var internal []iedge

	perm := make([]int, w)
	best := make([]int, w)
	pos := make([]int, w) // pos[windowIdx] = window position under perm

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for lo := 0; lo+w <= n; lo++ {
			copy(items, order[lo:lo+w])
			for k, it := range items {
				inWindow[it] = k + 1
			}
			internal = internal[:0]
			for k, it := range items {
				for j := range bc[k] {
					bc[k][j] = 0
				}
				cols, ws := csr.Row(it)
				for ci, u32 := range cols {
					u, wgt := int(u32), ws[ci]
					if x := inWindow[u]; x > 0 {
						if k < x-1 {
							internal = append(internal, iedge{a: k, b: x - 1, w: wgt})
						}
						continue
					}
					for j := 0; j < w; j++ {
						du := lo + j - cur[u]
						if du < 0 {
							du = -du
						}
						bc[k][j] += wgt * int64(du)
					}
				}
			}
			score := func() int64 {
				var c int64
				for j, idx := range perm {
					pos[idx] = j
					c += bc[idx][j]
				}
				for _, e := range internal {
					d := pos[e.a] - pos[e.b]
					if d < 0 {
						d = -d
					}
					c += e.w * int64(d)
				}
				return c
			}
			for k := range perm {
				perm[k] = k
			}
			copy(best, perm)
			bestCost := score()
			baseCost := bestCost
			permute(perm, 0, func() {
				if c := score(); c < bestCost {
					bestCost = c
					copy(best, perm)
				}
			})
			if bestCost < baseCost {
				for j, idx := range best {
					order[lo+j] = items[idx]
					cur[items[idx]] = lo + j
				}
				improved = true
			}
			for _, it := range items {
				inWindow[it] = 0
			}
		}
		if !improved {
			break
		}
	}
	c, err := cost.Linear(g, cur)
	if err != nil {
		return nil, 0, err
	}
	return cur, c, nil
}

// permute enumerates permutations of xs[k:] in place, invoking fn for
// each complete permutation (Heap-style recursion).
func permute(xs []int, k int, fn func()) {
	if k == len(xs) {
		fn()
		return
	}
	for i := k; i < len(xs); i++ {
		xs[k], xs[i] = xs[i], xs[k]
		permute(xs, k+1, fn)
		xs[k], xs[i] = xs[i], xs[k]
	}
}
