package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/graph"
)

func TestExactDPOnPath(t *testing.T) {
	// Path with unit weights: optimum is the path order, cost n-1.
	g := mustGraph(t, 6,
		[3]int{0, 1, 1}, [3]int{1, 2, 1}, [3]int{2, 3, 1},
		[3]int{3, 4, 1}, [3]int{4, 5, 1})
	p, c, err := ExactDP(g)
	if err != nil {
		t.Fatal(err)
	}
	if c != 5 {
		t.Errorf("optimal cost = %d, want 5", c)
	}
	// Returned cost must match the placement's actual cost.
	actual, err := cost.Linear(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if actual != c {
		t.Errorf("placement cost %d != reported %d", actual, c)
	}
}

func TestExactDPOnStar(t *testing.T) {
	// Star K1,4 with unit weights: center at middle; optimum cost =
	// 1+1+2+2 = 6.
	g := mustGraph(t, 5,
		[3]int{0, 1, 1}, [3]int{0, 2, 1}, [3]int{0, 3, 1}, [3]int{0, 4, 1})
	_, c, err := ExactDP(g)
	if err != nil {
		t.Fatal(err)
	}
	if c != 6 {
		t.Errorf("star optimum = %d, want 6", c)
	}
}

func TestExactDPOnCycle(t *testing.T) {
	// Unit 4-cycle: best arrangement cost is 1+1+1+3 = 6 (one edge must
	// stretch over the whole line)... actually 0-1-2-3 line for cycle
	// edges (0,1),(1,2),(2,3),(3,0): 1+1+1+3 = 6. Alternative
	// arrangements cannot beat 6.
	g := mustGraph(t, 4,
		[3]int{0, 1, 1}, [3]int{1, 2, 1}, [3]int{2, 3, 1}, [3]int{3, 0, 1})
	_, c, err := ExactDP(g)
	if err != nil {
		t.Fatal(err)
	}
	if c != 6 {
		t.Errorf("cycle optimum = %d, want 6", c)
	}
}

func TestExactDPRejectsLarge(t *testing.T) {
	g, err := graph.New(MaxExactN + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExactDP(g); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, _, err := ExactBB(g); err == nil {
		t.Error("oversized instance accepted by BB")
	}
}

func TestExactBBMatchesDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 2 // 2..8
		g := randGraph(rng, n, 2*n)
		_, dpCost, err := ExactDP(g)
		if err != nil {
			return false
		}
		pBB, bbCost, err := ExactBB(g)
		if err != nil {
			return false
		}
		if bbCost != dpCost {
			return false
		}
		actual, err := cost.Linear(g, pBB)
		return err == nil && actual == bbCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExactNeverWorseThanHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 3 // 3..10
		g := randGraph(rng, n, 3*n)
		_, opt, err := ExactDP(g)
		if err != nil {
			return false
		}
		gp, err := GreedyChain(g, SeedHeaviestEdge)
		if err != nil {
			return false
		}
		gc, err := cost.Linear(g, gp)
		if err != nil {
			return false
		}
		_, tc, err := GreedyTwoOpt(g, TwoOptOptions{})
		if err != nil {
			return false
		}
		_, ac, err := GreedyAnneal(g, AnnealOptions{Seed: seed, Iterations: 500 * n})
		if err != nil {
			return false
		}
		return opt <= gc && opt <= tc && opt <= ac
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestExactDPSingleVertex(t *testing.T) {
	g := mustGraph(t, 1)
	p, c, err := ExactDP(g)
	if err != nil || c != 0 || len(p) != 1 {
		t.Errorf("single vertex: p=%v c=%d err=%v", p, c, err)
	}
}

func TestExactDPDisconnected(t *testing.T) {
	// Two disjoint heavy edges: optimum places each pair adjacent, cost 2.
	g := mustGraph(t, 4, [3]int{0, 2, 10}, [3]int{1, 3, 10})
	_, c, err := ExactDP(g)
	if err != nil {
		t.Fatal(err)
	}
	if c != 20 {
		t.Errorf("disconnected optimum = %d, want 20", c)
	}
}
