package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

// GroupedPropose places data at object granularity: items carrying the
// same group ID (the words of one array, one structure, one lookup table)
// must stay contiguous on the tape, in first-touch order within the
// group. This models a toolchain that can reorder whole objects but not
// split them — the realistic constraint for compilers without array
// partitioning — and experiment E14 quantifies what that constraint costs
// relative to word-granular placement.
//
// Groups are ordered by the proposed single-tape pipeline applied to the
// quotient transition graph (one vertex per group, edge weights summing
// the cross-group transition counts). Returns the item placement and its
// Linear cost on the item-level graph.
func GroupedPropose(t *trace.Trace, group []int) (layout.Placement, int64, error) {
	if err := t.Validate(); err != nil {
		return nil, 0, fmt.Errorf("core: GroupedPropose: %w", err)
	}
	if len(group) != t.NumItems {
		return nil, 0, fmt.Errorf("core: group table covers %d items, trace has %d",
			len(group), t.NumItems)
	}
	numGroups := 0
	for item, gid := range group {
		if gid < 0 {
			return nil, 0, fmt.Errorf("core: item %d has negative group %d", item, gid)
		}
		if gid+1 > numGroups {
			numGroups = gid + 1
		}
	}

	// Quotient trace over groups (dropping intra-group repeats is handled
	// by the graph builder, which ignores self-transitions).
	qt := trace.New(t.Name+" (groups)", numGroups)
	for _, a := range t.Accesses {
		if a.Write {
			qt.Write(group[a.Item])
		} else {
			qt.Read(group[a.Item])
		}
	}
	qg, err := graph.FromTrace(qt)
	if err != nil {
		return nil, 0, err
	}
	groupPlacement, _, err := Propose(qt, qg)
	if err != nil {
		return nil, 0, err
	}
	groupOrder, err := groupPlacement.Order()
	if err != nil {
		return nil, 0, err
	}

	// Within each group: first-touch order, untouched members appended in
	// ID order (exactly the ProgramOrder rule, restricted to the group).
	members := make([][]int, numGroups)
	seen := make([]bool, t.NumItems)
	for _, a := range t.Accesses {
		if !seen[a.Item] {
			seen[a.Item] = true
			members[group[a.Item]] = append(members[group[a.Item]], a.Item)
		}
	}
	for item, gid := range group {
		if !seen[item] {
			members[gid] = append(members[gid], item)
		}
	}

	p := make(layout.Placement, t.NumItems)
	slot := 0
	for _, gid := range groupOrder {
		for _, item := range members[gid] {
			p[item] = slot
			slot++
		}
	}
	ig, err := graph.FromTrace(t)
	if err != nil {
		return nil, 0, err
	}
	c, err := cost.Linear(ig, p)
	if err != nil {
		return nil, 0, err
	}
	return p, c, nil
}

// UniformGroups builds a group table assigning consecutive runs of
// blockSize items to the same group — the layout of equal-sized arrays
// declared back to back, which is how the workload generators number
// their arrays.
func UniformGroups(n, blockSize int) ([]int, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("core: invalid grouping n=%d block=%d", n, blockSize)
	}
	g := make([]int, n)
	for i := range g {
		g[i] = i / blockSize
	}
	return g, nil
}
