package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/trace"
)

// WearBalanceOptions tunes the wear-balancing refinement.
type WearBalanceOptions struct {
	// MaxMoves bounds the refinement iterations; 0 selects 4x the item
	// count.
	MaxMoves int
}

// WearBalancedMultiTape extends the multi-tape pipeline with shift-wear
// leveling: every shift stresses all domain walls on its wire, so a
// placement that funnels traffic onto one tape wears that wire out first
// even when total shifts are minimal. Starting from the ProposeMultiTape
// result, the refinement repeatedly moves an item off the currently
// hottest tape (by exact per-tape shift counts) into the free slot nearest
// the port of a cooler tape, accepting moves that reduce the maximum
// per-tape wear, with ties broken by total shifts.
//
// It returns the placement together with its total and maximum per-tape
// shift counts.
func WearBalancedMultiTape(t *trace.Trace, tapes, tapeLen int, ports []int, opts WearBalanceOptions) (layout.MultiPlacement, int64, int64, error) {
	if tapes*tapeLen <= t.NumItems {
		// No free slots anywhere: moves are impossible (the pipeline
		// needs at least one spare slot to migrate into).
		if tapes*tapeLen < t.NumItems {
			return layout.MultiPlacement{}, 0, 0, fmt.Errorf(
				"core: %d items cannot fit on %d tapes of %d slots", t.NumItems, tapes, tapeLen)
		}
	}
	mp, _, err := ProposeMultiTape(t, tapes, tapeLen, ports)
	if err != nil {
		return layout.MultiPlacement{}, 0, 0, err
	}
	seq := t.Items()

	evaluate := func(m layout.MultiPlacement) (total, maxTape int64, err error) {
		per, err := cost.MultiTapeBreakdown(seq, m, tapes, tapeLen, ports)
		if err != nil {
			return 0, 0, err
		}
		for _, c := range per {
			total += c
			if c > maxTape {
				maxTape = c
			}
		}
		return total, maxTape, nil
	}

	curTotal, curMax, err := evaluate(mp)
	if err != nil {
		return layout.MultiPlacement{}, 0, 0, err
	}

	// occupied[tape][slot] tracks free slots.
	occupied := make([][]bool, tapes)
	for tp := range occupied {
		occupied[tp] = make([]bool, tapeLen)
	}
	for item := range mp.Tape {
		occupied[mp.Tape[item]][mp.Slot[item]] = true
	}
	freeSlotNearPort := func(tp int) int {
		q := ports[0]
		for d := 0; d < tapeLen; d++ {
			if s := q - d; s >= 0 && !occupied[tp][s] {
				return s
			}
			if s := q + d; s < tapeLen && !occupied[tp][s] {
				return s
			}
		}
		return -1
	}

	maxMoves := opts.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 4 * t.NumItems
	}
	for move := 0; move < maxMoves; move++ {
		per, err := cost.MultiTapeBreakdown(seq, mp, tapes, tapeLen, ports)
		if err != nil {
			return layout.MultiPlacement{}, 0, 0, err
		}
		hottest := 0
		for tp, c := range per {
			if c > per[hottest] {
				hottest = tp
			}
		}
		// Try moving each item currently on the hottest tape to the free
		// slot nearest the port of every other tape; keep the best move.
		bestItem, bestTape, bestSlot := -1, -1, -1
		bestTotal, bestMax := curTotal, curMax
		for item := range mp.Tape {
			if mp.Tape[item] != hottest {
				continue
			}
			oldTape, oldSlot := mp.Tape[item], mp.Slot[item]
			for tp := 0; tp < tapes; tp++ {
				if tp == hottest {
					continue
				}
				slot := freeSlotNearPort(tp)
				if slot < 0 {
					continue
				}
				mp.Tape[item], mp.Slot[item] = tp, slot
				total, maxT, err := evaluate(mp)
				mp.Tape[item], mp.Slot[item] = oldTape, oldSlot
				if err != nil {
					return layout.MultiPlacement{}, 0, 0, err
				}
				if maxT < bestMax || (maxT == bestMax && total < bestTotal) {
					bestItem, bestTape, bestSlot = item, tp, slot
					bestTotal, bestMax = total, maxT
				}
			}
		}
		if bestItem < 0 || bestMax >= curMax {
			break // no move reduces the maximum wear
		}
		occupied[mp.Tape[bestItem]][mp.Slot[bestItem]] = false
		mp.Tape[bestItem], mp.Slot[bestItem] = bestTape, bestSlot
		occupied[bestTape][bestSlot] = true
		curTotal, curMax = bestTotal, bestMax
	}
	return mp, curTotal, curMax, nil
}
