package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/workload"
)

func TestBarycentricValidAndNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		g := randGraph(rng, n, 4*n)
		start, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		before, err := cost.Linear(g, start)
		if err != nil {
			return false
		}
		p, c, err := Barycentric(g, start, 0)
		if err != nil {
			return false
		}
		if c > before { // best-visited includes the start
			return false
		}
		actual, err := cost.Linear(g, p)
		return err == nil && actual == c && p.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBarycentricPullsCliquesTogether(t *testing.T) {
	// Two heavy cliques placed interleaved; barycentric iteration must
	// separate them (cost well below the interleaved start).
	g := mustGraph(t, 8)
	for _, clique := range [][]int{{0, 2, 4, 6}, {1, 3, 5, 7}} {
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				g.AddWeight(clique[i], clique[j], 10)
			}
		}
	}
	start := layout.Identity(8) // interleaves the cliques
	before, err := cost.Linear(g, start)
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := Barycentric(g, start, 0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(after) > 0.8*float64(before) {
		t.Errorf("barycentric failed to separate cliques: %d -> %d", before, after)
	}
}

func TestBarycentricRejectsBadPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 5, 10)
	if _, _, err := Barycentric(g, layout.Placement{0, 0, 1, 2, 3}, 5); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestMultilevelValidPlacement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 2
		g := randGraph(rng, n, 4*n)
		p, c, err := Multilevel(g, MultilevelOptions{})
		if err != nil {
			return false
		}
		actual, err := cost.Linear(g, p)
		return err == nil && actual == c && p.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMultilevelHandlesEdgelessGraph(t *testing.T) {
	g := mustGraph(t, 50)
	p, c, err := Multilevel(g, MultilevelOptions{BaseSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 || p.Validate(50) != nil {
		t.Errorf("edgeless: cost %d, err %v", c, p.Validate(50))
	}
}

func TestMultilevelBeatsWindowedTwoOptAtScale(t *testing.T) {
	// At n=512, one V-cycle should beat flat windowed 2-opt from the
	// greedy start: global structure matters.
	tr := workload.Zipf(512, 10240, 1.2, 9)
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		t.Fatal(err)
	}
	_, flat, err := TwoOpt(g, gp, TwoOptOptions{Window: 8, MaxPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, ml, err := Multilevel(g, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(ml) > 1.05*float64(flat) {
		t.Errorf("multilevel (%d) much worse than flat windowed 2-opt (%d)", ml, flat)
	}
}

func TestMultilevelSmallInstanceDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randGraph(rng, 10, 30)
	mp, mc, err := Multilevel(g, MultilevelOptions{BaseSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	_, gc, err := GreedyTwoOpt(g, TwoOptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mc != gc {
		t.Errorf("small instance: multilevel %d != greedy2opt %d", mc, gc)
	}
	if err := mp.Validate(10); err != nil {
		t.Fatal(err)
	}
}
