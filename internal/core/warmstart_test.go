package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/workload"
)

// TestAnnealWarmstartEquivalentToDirectStart pins the Warmstart
// semantics: passing a start through opts.Warmstart is byte-identical to
// passing it as the placement argument. This is the determinism property
// the serving layer relies on when it substitutes a cached near-match.
func TestAnnealWarmstartEquivalentToDirectStart(t *testing.T) {
	g := annealTestGraph(t)
	warm := layout.Identity(g.N()).Mirror(g.N())
	opts := AnnealOptions{Seed: 9, Iterations: 6000}

	direct, directCost, err := Anneal(g, warm, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Warmstart = warm
	viaOpt, viaCost, err := Anneal(g, layout.Identity(g.N()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if directCost != viaCost || !reflect.DeepEqual(direct, viaOpt) {
		t.Fatalf("Warmstart diverged from direct start: cost %d vs %d", directCost, viaCost)
	}
}

// TestAnnealWarmstartNeverWorseThanItsSeed checks the monotonicity that
// makes warm-starting safe: re-annealing from a previous best at the
// same budget cannot end above that best's cost (best-so-far starts
// there), so warm-started runs are ≤ their cold ancestors.
func TestAnnealWarmstartNeverWorseThanItsSeed(t *testing.T) {
	g := annealTestGraph(t)
	opts := AnnealOptions{Seed: 4, Iterations: 8000}
	cold, coldCost, err := Anneal(g, layout.Identity(g.N()), opts)
	if err != nil {
		t.Fatal(err)
	}
	reOpts := opts
	reOpts.Warmstart = cold
	_, warmCost, err := Anneal(g, layout.Identity(g.N()), reOpts)
	if err != nil {
		t.Fatal(err)
	}
	if warmCost > coldCost {
		t.Fatalf("warm-started cost %d exceeds its seed's cost %d", warmCost, coldCost)
	}
}

// TestAnnealWarmstartInputNotMutated is the regression test for the
// adopt-without-clone bug: the annealer took opts.Warmstart by reference,
// so a future write through the adopted slice would have corrupted the
// caller's (possibly cached and shared) placement. The input must be
// byte-identical after a full run, including one with restarts.
func TestAnnealWarmstartInputNotMutated(t *testing.T) {
	g := annealTestGraph(t)
	warm := layout.Identity(g.N()).Mirror(g.N())
	orig := warm.Clone()
	opts := AnnealOptions{Seed: 13, Iterations: 6000, Warmstart: warm}
	if _, _, err := Anneal(g, layout.Identity(g.N()), opts); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, orig) {
		t.Fatal("Anneal mutated the caller's Warmstart slice")
	}
	opts = AnnealOptions{Seed: 13, Iterations: 4000, Restarts: 3, Warmstart: warm}
	if _, _, err := Anneal(g, layout.Identity(g.N()), opts); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, orig) {
		t.Fatal("Anneal with restarts mutated the caller's Warmstart slice")
	}
}

// fakeCache is a minimal PlacementCache for plumbing tests; the real
// implementation (and its byte-identity tests) live in
// internal/placecache.
type fakeCache struct {
	mu      sync.Mutex
	lookups int
	stores  int
	best    layout.Placement
	cost    int64
}

func (f *fakeCache) Lookup(_ *graph.CSR, _ layout.Placement, _ AnnealOptions) (layout.Placement, int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lookups++
	if f.best == nil {
		return nil, 0, false
	}
	return f.best.Clone(), f.cost, true
}

func (f *fakeCache) Store(_ *graph.CSR, _ layout.Placement, _ AnnealOptions, best layout.Placement, cost int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	f.best, f.cost = best.Clone(), cost
}

func TestAnnealCachePlumbing(t *testing.T) {
	g := annealTestGraph(t)
	fc := &fakeCache{}
	opts := AnnealOptions{Seed: 2, Iterations: 3000, Cache: fc}
	p1, c1, err := Anneal(g, layout.Identity(g.N()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fc.lookups != 1 || fc.stores != 1 {
		t.Fatalf("miss path: lookups=%d stores=%d, want 1/1", fc.lookups, fc.stores)
	}
	p2, c2, err := Anneal(g, layout.Identity(g.N()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fc.lookups != 2 || fc.stores != 1 {
		t.Fatalf("hit path: lookups=%d stores=%d, want 2/1", fc.lookups, fc.stores)
	}
	if c1 != c2 || !reflect.DeepEqual(p1, p2) {
		t.Fatal("cache hit returned a different result than the miss that stored it")
	}
}

func TestPoliciesCachedNilMatchesPolicies(t *testing.T) {
	tr := workload.Zipf(32, 2500, 1.2, 3)
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PolicyByName("anneal", 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Place(tr, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range PoliciesCached(7, nil) {
		if p.Name != "anneal" {
			continue
		}
		got, err := p.Place(tr, g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("PoliciesCached(seed, nil) diverged from Policies(seed)")
		}
	}
}

// randomBenchGraph builds an n-vertex graph with ~4 random weighted
// edges per vertex, directly (no trace), sized for fingerprint
// benchmarking.
func randomBenchGraph(b *testing.B, n int, seed int64) *graph.Graph {
	b.Helper()
	g, err := graph.New(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < n; u++ {
		for k := 0; k < 4; k++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			g.AddWeight(u, v, int64(1+rng.Intn(16)))
		}
	}
	return g
}

// BenchmarkFingerprint measures one full canonicalization (WL refinement
// + individualization + fingerprint) of a fresh CSR. The mutate-and-
// refreeze in the untimed section defeats the per-CSR memo so every
// timed call does real work.
func BenchmarkFingerprint(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(map[int]string{1024: "1k", 16384: "16k"}[n], func(b *testing.B) {
			g := randomBenchGraph(b, n, int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g.AddWeight(0, 1, 1) // invalidate the frozen CSR (and its canon memo)
				c := g.Freeze()
				b.StartTimer()
				_ = c.Canon()
			}
		})
	}
}

// BenchmarkAnnealWarmstart compares a cold anneal against one warm-
// started from a previous best at the same iteration budget.
func BenchmarkAnnealWarmstart(b *testing.B) {
	tr := workload.Zipf(128, 12000, 1.2, 11)
	g, err := graph.FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	start := layout.Identity(g.N())
	opts := AnnealOptions{Seed: 5, Iterations: 40000}
	warm, _, err := Anneal(g, start, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Anneal(g, start, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		wOpts := opts
		wOpts.Warmstart = warm
		for i := 0; i < b.N; i++ {
			if _, _, err := Anneal(g, start, wOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
