package core

import (
	"testing"

	"repro/internal/graph"
)

// Closed-form MinLA optima for structured graph families anchor the
// exact solver (and measure the pipeline) against mathematics rather
// than against other code.

func path(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < n; i++ {
		g.AddWeight(i, i+1, 1)
	}
	return g
}

func cycle(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := path(t, n)
	g.AddWeight(n-1, 0, 1)
	return g
}

func star(t *testing.T, leaves int) *graph.Graph {
	t.Helper()
	g, err := graph.New(leaves + 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= leaves; i++ {
		g.AddWeight(0, i, 1)
	}
	return g
}

func complete(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddWeight(i, j, 1)
		}
	}
	return g
}

// starOptimum is the MinLA of K_{1,l}: center in the middle, leaves
// alternating outward: sum of 1..ceil(l/2) plus 1..floor(l/2).
func starOptimum(leaves int) int64 {
	tri := func(k int) int64 { return int64(k) * int64(k+1) / 2 }
	return tri((leaves+1)/2) + tri(leaves/2)
}

func TestKnownOptimaExact(t *testing.T) {
	for n := 2; n <= 10; n++ {
		// Path P_n: optimum n-1 (the path itself).
		if _, c, err := ExactDP(path(t, n)); err != nil || c != int64(n-1) {
			t.Errorf("path n=%d: optimum %d (err %v), want %d", n, c, err, n-1)
		}
		// Cycle C_n (n >= 3): optimum 2n-2 (one edge spans the line...
		// in the optimal arrangement the cycle folds so every edge has
		// distance <= 2).
		if n >= 3 {
			if _, c, err := ExactDP(cycle(t, n)); err != nil || c != int64(2*n-2) {
				t.Errorf("cycle n=%d: optimum %d (err %v), want %d", n, c, err, 2*n-2)
			}
		}
		// Complete graph K_n: every arrangement costs n(n^2-1)/6.
		want := int64(n) * int64(n*n-1) / 6
		if _, c, err := ExactDP(complete(t, n)); err != nil || c != want {
			t.Errorf("K_%d: optimum %d (err %v), want %d", n, c, err, want)
		}
	}
	for leaves := 1; leaves <= 9; leaves++ {
		if _, c, err := ExactDP(star(t, leaves)); err != nil || c != starOptimum(leaves) {
			t.Errorf("star l=%d: optimum %d (err %v), want %d", leaves, c, err, starOptimum(leaves))
		}
	}
}

func TestProposePipelineHitsKnownOptima(t *testing.T) {
	// The full pipeline (driven by a synthetic trace that induces each
	// graph) should reach the closed-form optimum on paths and stars.
	// Build traces whose transition graphs are exactly the target shapes.
	for n := 3; n <= 12; n++ {
		// A back-and-forth walk induces the path graph.
		tr := seqTrace(n)
		for rep := 0; rep < 3; rep++ {
			for i := 0; i < n; i++ {
				tr.Read(i)
			}
			for i := n - 2; i >= 1; i-- {
				tr.Read(i)
			}
		}
		g, err := graph.FromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := Propose(tr, g)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := ExactDP(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != opt {
			t.Errorf("path walk n=%d: pipeline %d, optimum %d", n, got, opt)
		}
	}
	// A hub-and-spoke access pattern (hub between every leaf touch)
	// induces the star graph.
	leaves := 8
	tr := seqTrace(leaves + 1)
	for rep := 0; rep < 5; rep++ {
		for l := 1; l <= leaves; l++ {
			tr.Read(0)
			tr.Read(l)
		}
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := Propose(tr, g)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := ExactDP(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != opt {
		t.Errorf("star walk: pipeline %d, optimum %d", got, opt)
	}
}
