package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/layout"
	"repro/internal/workload"
)

func TestOptimizePortsValidation(t *testing.T) {
	p := layout.Identity(8)
	seq := []int{0, 1}
	if _, _, err := OptimizePorts(seq, p, 0, 8); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := OptimizePorts(seq, p, 9, 8); err == nil {
		t.Error("k>tapeLen accepted")
	}
	if _, _, err := OptimizePorts(seq, layout.Placement{0, 0}, 1, 8); err == nil {
		t.Error("bad placement accepted")
	}
}

func TestOptimizePortsNeverWorseThanSpread(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(16) + 4
		tapeLen := n + rng.Intn(8)
		var seq []int
		for i := 0; i < 300; i++ {
			seq = append(seq, rng.Intn(n))
		}
		slotPerm := rng.Perm(tapeLen)
		p := make(layout.Placement, n)
		copy(p, slotPerm[:n])
		k := rng.Intn(3) + 1
		spread := dwm.SpreadPorts(tapeLen, k)
		base, err := cost.MultiPort(seq, p, spread, tapeLen)
		if err != nil {
			return false
		}
		ports, c, err := OptimizePorts(seq, p, k, tapeLen)
		if err != nil {
			return false
		}
		// Result must be sorted, distinct, in range, and verified.
		for i, q := range ports {
			if q < 0 || q >= tapeLen {
				return false
			}
			if i > 0 && ports[i-1] >= q {
				return false
			}
		}
		actual, err := cost.MultiPort(seq, p, ports, tapeLen)
		if err != nil {
			return false
		}
		return actual == c && c <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOptimizePortsFindsSkew(t *testing.T) {
	// All traffic at the tape's left end: a single port must migrate
	// left of the evenly spread center.
	tapeLen := 32
	p := layout.Identity(4) // items in slots 0..3
	var seq []int
	for i := 0; i < 100; i++ {
		seq = append(seq, i%4)
	}
	ports, c, err := OptimizePorts(seq, p, 1, tapeLen)
	if err != nil {
		t.Fatal(err)
	}
	if ports[0] > 3 {
		t.Errorf("port at %d, want within the occupied region [0,3]", ports[0])
	}
	spread := dwm.SpreadPorts(tapeLen, 1)
	base, err := cost.MultiPort(seq, p, spread, tapeLen)
	if err != nil {
		t.Fatal(err)
	}
	if c >= base {
		t.Errorf("optimized %d not better than spread %d", c, base)
	}
}

func TestOptimizePortsOnRealWorkload(t *testing.T) {
	tr := workload.Zipf(32, 4000, 1.3, 4)
	p, err := OrganPipe(tr)
	if err != nil {
		t.Fatal(err)
	}
	seq := tr.Items()
	spread := dwm.SpreadPorts(tr.NumItems, 2)
	base, err := cost.MultiPort(seq, p, spread, tr.NumItems)
	if err != nil {
		t.Fatal(err)
	}
	_, c, err := OptimizePorts(seq, p, 2, tr.NumItems)
	if err != nil {
		t.Fatal(err)
	}
	if c > base {
		t.Errorf("optimized ports (%d) worse than spread (%d)", c, base)
	}
}
