package core

import (
	"sync"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

// Propose is the headline single-tape pipeline of the reproduction: a
// multi-start search that refines several constructive seeds — the greedy
// chain (both seeding rules) and the program-order layout — with 2-opt,
// polishes the winner with insertion moves, and returns the best. Seeding
// with program order guarantees the result never loses to the primary
// baseline, which matters on kernels whose first-touch order is already
// near-optimal (pointer chase, zigzag scans, streaming stencils).
func Propose(t *trace.Trace, g *graph.Graph) (layout.Placement, int64, error) {
	var seeds []layout.Placement

	if p, err := GreedyChain(g, SeedHeaviestEdge); err == nil {
		seeds = append(seeds, p)
	} else {
		return nil, 0, err
	}
	if p, err := GreedyChain(g, SeedHeaviestVertex); err == nil {
		seeds = append(seeds, p)
	} else {
		return nil, 0, err
	}
	if p, err := ProgramOrder(t); err == nil {
		seeds = append(seeds, p)
	} else {
		return nil, 0, err
	}

	// Refine the seeds concurrently — they are independent — and pick the
	// winner deterministically by (cost, seed order).
	type refined struct {
		p   layout.Placement
		c   int64
		err error
	}
	results := make([]refined, len(seeds))
	var wg sync.WaitGroup
	for i, s := range seeds {
		wg.Add(1)
		//dwmlint:ignore barego seed refinements are independent, write to index-i slots, and the winner is picked by (cost, seed order) — order-preserving by construction
		go func(i int, s layout.Placement) {
			defer wg.Done()
			p, c, err := TwoOpt(g, s, TwoOptOptions{})
			results[i] = refined{p: p, c: c, err: err}
		}(i, s)
	}
	wg.Wait()
	var best layout.Placement
	var bestCost int64 = -1
	for _, r := range results {
		if r.err != nil {
			return nil, 0, r.err
		}
		if bestCost < 0 || r.c < bestCost {
			best, bestCost = r.p, r.c
		}
	}
	// Polish with relocation moves, which 2-opt cannot express, then one
	// more 2-opt pass in case the relocations opened new swaps, then the
	// sliding-window exact pass for multi-item rotations.
	p, c, err := Insertion(g, best, 3)
	if err != nil {
		return nil, 0, err
	}
	if c < bestCost {
		best, bestCost = p, c
	}
	p, c, err = TwoOpt(g, best, TwoOptOptions{})
	if err != nil {
		return nil, 0, err
	}
	if c < bestCost {
		best, bestCost = p, c
	}
	p, c, err = WindowDP(g, best, WindowDPOptions{Window: windowForSize(g.N()), MaxPasses: 4})
	if err != nil {
		return nil, 0, err
	}
	if c < bestCost {
		best, bestCost = p, c
	}
	return best, bestCost, nil
}

// windowForSize picks the WindowDP width: the full exact width for tiny
// instances, 6 otherwise (E9 ablates the choice).
func windowForSize(n int) int {
	if n < 6 {
		if n < 2 {
			return 2
		}
		return n
	}
	return 6
}

// ProposeMultiTape is the headline multi-tape pipeline: it builds a
// portfolio of partitions (contiguous, round robin, affinity), arranges
// each with the per-tape pipeline, also considers the naive packed layout,
// scores every candidate with the exact multi-tape evaluator on the real
// access sequence, and returns the cheapest. Scoring with the exact
// evaluator makes the choice robust to the cases where the affinity proxy
// (intra-tape transition weight) mispredicts the restricted-subsequence
// cost.
func ProposeMultiTape(t *trace.Trace, tapes, tapeLen int, ports []int) (layout.MultiPlacement, int64, error) {
	g, err := traceGraph(t)
	if err != nil {
		return layout.MultiPlacement{}, 0, err
	}
	seq := t.Items()

	var parts []Partition
	if pt, err := ContiguousPartition(t, tapes, tapeLen); err == nil {
		parts = append(parts, pt)
	} else {
		return layout.MultiPlacement{}, 0, err
	}
	parts = append(parts, RoundRobinPartition(t.NumItems, tapes))
	if pt, err := HashPartition(t.NumItems, tapes, tapeLen); err == nil {
		parts = append(parts, pt)
	} else {
		return layout.MultiPlacement{}, 0, err
	}
	if pt, err := AffinityPartition(g, tapes, tapeLen, 0); err == nil {
		parts = append(parts, pt)
	} else {
		return layout.MultiPlacement{}, 0, err
	}

	var best layout.MultiPlacement
	var bestCost int64 = -1
	consider := func(mp layout.MultiPlacement) error {
		c, err := cost.MultiTape(seq, mp, tapes, tapeLen, ports)
		if err != nil {
			return err
		}
		if bestCost < 0 || c < bestCost {
			best, bestCost = mp, c
		}
		return nil
	}
	for _, pt := range parts {
		mp, err := ArrangePartition(t, pt, tapes, tapeLen, ports)
		if err != nil {
			return layout.MultiPlacement{}, 0, err
		}
		if err := consider(mp); err != nil {
			return layout.MultiPlacement{}, 0, err
		}
	}
	// The portfolio covers {contiguous, roundrobin, hash, affinity}
	// partitions; the naive packed-contiguous layout doubles as a final
	// candidate so the proposed pipeline can never lose to it.
	if mp, err := PackedPlacement(t, parts[0], tapes); err == nil {
		if err := consider(mp); err != nil {
			return layout.MultiPlacement{}, 0, err
		}
	} else {
		return layout.MultiPlacement{}, 0, err
	}
	return best, bestCost, nil
}

// PackedPlacement lays each tape's items out in consecutive slots in
// first-touch order, the layout of a placement-unaware allocator. It is
// both a baseline and a portfolio candidate for ProposeMultiTape.
func PackedPlacement(t *trace.Trace, pt Partition, tapes int) (layout.MultiPlacement, error) {
	po, err := ProgramOrder(t)
	if err != nil {
		return layout.MultiPlacement{}, err
	}
	order := make([]int, len(po))
	for item, rank := range po {
		order[rank] = item
	}
	mp := layout.NewMultiPlacement(t.NumItems)
	next := make([]int, tapes)
	for _, item := range order {
		tp := pt[item]
		mp.Tape[item] = tp
		mp.Slot[item] = next[tp]
		next[tp]++
	}
	return mp, nil
}
