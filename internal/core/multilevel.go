package core

import (
	"repro/internal/graph"
	"repro/internal/layout"
)

// MultilevelOptions tunes the V-cycle heuristic.
type MultilevelOptions struct {
	// BaseSize is the instance size at which recursion stops and the
	// greedy+2-opt pipeline solves directly; 0 selects 32.
	BaseSize int
	// RefineWindow is the 2-opt window used during uncoarsening; 0
	// selects 8.
	RefineWindow int
}

// Multilevel computes a placement with a coarsen–solve–uncoarsen V-cycle,
// the scalable configuration for large item counts: heaviest-edge
// matching contracts strongly connected item pairs, the coarse problem is
// solved recursively, and each uncoarsening step expands pairs into
// adjacent slots and re-refines with windowed 2-opt. One V-cycle costs
// O(E log E + n·window·deg) and preserves global structure that flat
// windowed local search cannot see.
func Multilevel(g *graph.Graph, opts MultilevelOptions) (layout.Placement, int64, error) {
	base := opts.BaseSize
	if base < 4 {
		base = 32
	}
	window := opts.RefineWindow
	if window <= 0 {
		window = 8
	}
	return multilevel(g, base, window)
}

func multilevel(g *graph.Graph, base, window int) (layout.Placement, int64, error) {
	n := g.N()
	if n <= base {
		return GreedyTwoOpt(g, TwoOptOptions{})
	}
	c := g.Freeze()

	// Heaviest-edge matching.
	matched := make([]int, n) // partner, -1 if unmatched
	for i := range matched {
		matched[i] = -1
	}
	pairs := 0
	for _, e := range c.Edges() {
		if matched[e.U] == -1 && matched[e.V] == -1 {
			matched[e.U], matched[e.V] = e.V, e.U
			pairs++
		}
	}
	if pairs == 0 {
		// Edgeless (or fully isolated) graph: nothing to contract.
		return GreedyTwoOpt(g, TwoOptOptions{})
	}

	// Build the coarse graph: each matched pair and each unmatched vertex
	// becomes one coarse vertex.
	coarseID := make([]int, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	var members [][]int // coarse vertex -> fine members (1 or 2)
	for v := 0; v < n; v++ {
		if coarseID[v] >= 0 {
			continue
		}
		id := len(members)
		coarseID[v] = id
		m := []int{v}
		if p := matched[v]; p >= 0 {
			coarseID[p] = id
			m = append(m, p)
		}
		members = append(members, m)
	}
	cg, err := graph.New(len(members))
	if err != nil {
		return nil, 0, err
	}
	c.EachEdge(func(u, v int, w int64) {
		cu, cv := coarseID[u], coarseID[v]
		if cu != cv {
			cg.AddWeight(cu, cv, w)
		}
	})

	coarseP, _, err := multilevel(cg, base, window)
	if err != nil {
		return nil, 0, err
	}
	coarseOrder, err := coarseP.Order()
	if err != nil {
		return nil, 0, err
	}

	// Uncoarsen: expand coarse slots into fine slots. Within a pair,
	// orient by affinity to the previously emitted item so chains keep
	// flowing in one direction.
	order := make([]int, 0, n)
	for _, cv := range coarseOrder {
		m := members[cv]
		if len(m) == 1 {
			order = append(order, m[0])
			continue
		}
		a, b := m[0], m[1]
		if len(order) > 0 {
			last := order[len(order)-1]
			if c.Weight(last, b) > c.Weight(last, a) {
				a, b = b, a
			}
		}
		order = append(order, a, b)
	}
	p, err := layout.FromOrder(order)
	if err != nil {
		return nil, 0, err
	}
	return TwoOpt(g, p, TwoOptOptions{Window: window, MaxPasses: 2})
}
