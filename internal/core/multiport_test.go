package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/trace"
)

func TestPortAwareValidAndCompetitive(t *testing.T) {
	tr := firTrace()
	tapeLen := 64
	ports := dwm.SpreadPorts(tapeLen, 2)
	p, c, err := PortAware(tr, tapeLen, ports, PortAwareOptions{Seed: 1, Proposals: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(tapeLen); err != nil {
		t.Fatal(err)
	}
	actual, err := cost.MultiPort(tr.Items(), p, ports, tapeLen)
	if err != nil {
		t.Fatal(err)
	}
	if actual != c {
		t.Errorf("reported cost %d != actual %d", c, actual)
	}
	// Must beat the program-order baseline centered on the tape.
	po, err := ProgramOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	poCentered, err := CenterOnPort(po, tapeLen, tapeLen/2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cost.MultiPort(tr.Items(), poCentered, ports, tapeLen)
	if err != nil {
		t.Fatal(err)
	}
	if c > base {
		t.Errorf("port-aware (%d) worse than program order (%d)", c, base)
	}
}

func TestPortAwareSinglePortReduces(t *testing.T) {
	tr := chaseTrace()
	tapeLen := tr.NumItems
	p, c, err := PortAware(tr, tapeLen, []int{tapeLen / 2}, PortAwareOptions{Seed: 2, Proposals: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(tapeLen); err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Errorf("suspicious zero cost %d for pointer chase", c)
	}
}

func TestPortAwareMorePortsNoWorse(t *testing.T) {
	tr := zigzagTrace()
	tapeLen := 64
	_, c1, err := PortAware(tr, tapeLen, dwm.SpreadPorts(tapeLen, 1), PortAwareOptions{Seed: 3, Proposals: 300})
	if err != nil {
		t.Fatal(err)
	}
	_, c4, err := PortAware(tr, tapeLen, dwm.SpreadPorts(tapeLen, 4), PortAwareOptions{Seed: 3, Proposals: 300})
	if err != nil {
		t.Fatal(err)
	}
	// With the same optimization budget, 4 ports should not lose to 1
	// port by more than noise; assert a generous bound.
	if c4 > c1 {
		t.Errorf("4 ports (%d) worse than 1 port (%d)", c4, c1)
	}
}

func TestPortAwareErrors(t *testing.T) {
	tr := seqTrace(4, 0, 1, 2, 3)
	if _, _, err := PortAware(tr, 2, []int{0}, PortAwareOptions{}); err == nil {
		t.Error("overfull tape accepted")
	}
	if _, _, err := PortAware(tr, 8, nil, PortAwareOptions{}); err == nil {
		t.Error("no ports accepted")
	}
	bad := trace.New("bad", 1)
	bad.Read(5)
	if _, _, err := PortAware(bad, 8, []int{0}, PortAwareOptions{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSegmentedStartIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	chain := rng.Perm(20)
	p, err := segmentedStart(chain, 32, []int{4, 27})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(32); err != nil {
		t.Error(err)
	}
	// Degenerate: segments collide near a shared port region.
	p2, err := segmentedStart(chain, 20, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Validate(20); err != nil {
		t.Error(err)
	}
}
