package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/layout"
)

func TestWindowDPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 10, 30)
	if _, _, err := WindowDP(g, layout.Placement{0, 0}, WindowDPOptions{}); err == nil {
		t.Error("bad placement accepted")
	}
	for _, w := range []int{1, 9, -3} {
		if _, _, err := WindowDP(g, layout.Identity(10), WindowDPOptions{Window: w}); err == nil {
			t.Errorf("window %d accepted", w)
		}
	}
}

func TestWindowDPNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		g := randGraph(rng, n, 4*n)
		start, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		before, err := cost.Linear(g, start)
		if err != nil {
			return false
		}
		refined, after, err := WindowDP(g, start, WindowDPOptions{Window: 5, MaxPasses: 3})
		if err != nil {
			return false
		}
		if after > before {
			return false
		}
		actual, err := cost.Linear(g, refined)
		return err == nil && actual == after && refined.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWindowDPSolvesThreeRotation(t *testing.T) {
	// A 3-cycle of moves that pairwise 2-opt cannot improve in one step:
	// path graph 0-1-2 placed as order [1,2,0] needs the rotation to
	// [0,1,2]. WindowDP with window 3 must find the optimum (cost 2).
	g := mustGraph(t, 3, [3]int{0, 1, 1}, [3]int{1, 2, 1})
	start, err := layout.FromOrder([]int{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, c, err := WindowDP(g, start, WindowDPOptions{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Errorf("WindowDP cost = %d, want 2", c)
	}
}

func TestWindowDPMatchesExactOnSmall(t *testing.T) {
	// With window >= n the refinement solves the instance exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2 // 2..6
		g := randGraph(rng, n, 3*n)
		_, opt, err := ExactDP(g)
		if err != nil {
			return false
		}
		_, c, err := WindowDP(g, layout.Identity(n), WindowDPOptions{Window: min(n, 8)})
		if err != nil {
			return false
		}
		return c == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWindowDPPolishesTwoOptOptimum(t *testing.T) {
	// On random graphs, WindowDP after 2-opt should only ever help.
	rng := rand.New(rand.NewSource(21))
	g := randGraph(rng, 40, 160)
	p, c2, err := GreedyTwoOpt(g, TwoOptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, cw, err := WindowDP(g, p, WindowDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cw > c2 {
		t.Errorf("WindowDP worsened 2-opt optimum: %d -> %d", c2, cw)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
