package core

import (
	"reflect"
	"testing"

	"repro/internal/layout"
	"repro/internal/trace"
)

func seqTrace(n int, seq ...int) *trace.Trace {
	t := trace.New("test", n)
	for _, it := range seq {
		t.Read(it)
	}
	return t
}

func TestProgramOrder(t *testing.T) {
	tr := seqTrace(5, 3, 1, 3, 4)
	p, err := ProgramOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	// First touch: 3->0, 1->1, 4->2; untouched 0,2 appended in ID order.
	want := layout.Placement{3, 1, 4, 0, 2}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("ProgramOrder = %v, want %v", p, want)
	}
	if err := p.Validate(5); err != nil {
		t.Error(err)
	}
}

func TestProgramOrderInvalidTrace(t *testing.T) {
	bad := trace.New("bad", 1)
	bad.Read(7)
	if _, err := ProgramOrder(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestRandomIsSeededPermutation(t *testing.T) {
	a, err := Random(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(20); err != nil {
		t.Fatal(err)
	}
	b, err := Random(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed differs")
	}
	c, err := Random(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds agree (20 items: astronomically unlikely)")
	}
	if _, err := Random(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestFrequencyPortZero(t *testing.T) {
	// Item 2 hottest, then 0, then 1.
	tr := seqTrace(3, 2, 2, 2, 0, 0, 1)
	p, err := Frequency(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := layout.Placement{1, 2, 0} // item2->slot0, item0->slot1, item1->slot2
	if !reflect.DeepEqual(p, want) {
		t.Errorf("Frequency = %v, want %v", p, want)
	}
}

func TestFrequencyCenterAlternates(t *testing.T) {
	tr := seqTrace(5, 0, 0, 0, 1, 1, 2, 2, 3, 4) // freq: 0:3,1:2,2:2,3:1,4:1
	p, err := Frequency(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Slots by distance from 2: 2, 1, 3, 0, 4.
	want := layout.Placement{2, 1, 3, 0, 4}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("Frequency(center) = %v, want %v", p, want)
	}
}

func TestFrequencyBadPort(t *testing.T) {
	tr := seqTrace(3, 0)
	for _, port := range []int{-1, 3} {
		if _, err := Frequency(tr, port); err == nil {
			t.Errorf("port %d accepted", port)
		}
	}
}

func TestOrganPipeIsCenterFrequency(t *testing.T) {
	tr := seqTrace(7, 0, 1, 1, 2, 2, 2, 3, 4, 5, 6)
	a, err := OrganPipe(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Frequency(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("OrganPipe = %v, Frequency(center) = %v", a, b)
	}
}

func TestCenterOnPort(t *testing.T) {
	p := layout.Identity(4)
	shifted, err := CenterOnPort(p, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Block of 4 centered on slot 8: base = 8-2 = 6 -> slots 6..9.
	want := layout.Placement{6, 7, 8, 9}
	if !reflect.DeepEqual(shifted, want) {
		t.Errorf("CenterOnPort = %v, want %v", shifted, want)
	}
	// Port near the edge clamps the block inside the tape.
	left, err := CenterOnPort(p, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if left[0] != 0 {
		t.Errorf("left clamp = %v", left)
	}
	right, err := CenterOnPort(p, 16, 15)
	if err != nil {
		t.Fatal(err)
	}
	if right[3] != 15 {
		t.Errorf("right clamp = %v", right)
	}
}

func TestCenterOnPortErrors(t *testing.T) {
	if _, err := CenterOnPort(layout.Identity(8), 4, 0); err == nil {
		t.Error("overfull tape accepted")
	}
	if _, err := CenterOnPort(layout.Identity(4), 8, 9); err == nil {
		t.Error("bad port accepted")
	}
	if _, err := CenterOnPort(layout.Placement{0, 5}, 8, 0); err == nil {
		t.Error("non-compact placement accepted")
	}
}
