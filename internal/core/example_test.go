package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/trace"
)

// ExamplePropose places a tiny trace and shows the shift-cost improvement
// over the first-touch baseline.
func ExamplePropose() {
	// First-touch order separates the hot pair {0,3} by two slots, then
	// the pair alternates constantly.
	tr := trace.New("demo", 4)
	for _, it := range []int{0, 1, 2, 3} {
		tr.Read(it)
	}
	for i := 0; i < 10; i++ {
		tr.Read(0)
		tr.Read(3)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := core.ProgramOrder(tr)
	if err != nil {
		log.Fatal(err)
	}
	baseCost, err := cost.Linear(g, baseline)
	if err != nil {
		log.Fatal(err)
	}
	_, propCost, err := core.Propose(tr, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program order: %d shifts\n", baseCost)
	fmt.Printf("proposed:      %d shifts\n", propCost)
	// Output:
	// program order: 63 shifts
	// proposed:      25 shifts
}

// ExampleGreedyChain shows the constructive heuristic putting the
// heaviest transition pair at adjacent slots.
func ExampleGreedyChain() {
	g, err := graph.New(4)
	if err != nil {
		log.Fatal(err)
	}
	g.AddWeight(0, 3, 100) // hot pair
	g.AddWeight(1, 2, 1)
	p, err := core.GreedyChain(g, core.SeedHeaviestEdge)
	if err != nil {
		log.Fatal(err)
	}
	d := p[0] - p[3]
	if d < 0 {
		d = -d
	}
	fmt.Printf("distance between hot pair: %d\n", d)
	// Output:
	// distance between hot pair: 1
}

// ExampleExactDP solves a small instance optimally.
func ExampleExactDP() {
	g, err := graph.New(4)
	if err != nil {
		log.Fatal(err)
	}
	// Unit 4-cycle: one edge must stretch across the line.
	g.AddWeight(0, 1, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(2, 3, 1)
	g.AddWeight(3, 0, 1)
	_, opt, err := core.ExactDP(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal MinLA cost: %d\n", opt)
	// Output:
	// optimal MinLA cost: 6
}
