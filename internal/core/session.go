package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Session instrumentation: streaming rounds run, accesses ingested, and
// item migrations adopted (slot changes between consecutive round bests —
// the physical cost of following the drifting access pattern).
var (
	obsSessionRounds     = obs.GetCounter("core.session.rounds")
	obsSessionAccesses   = obs.GetCounter("core.session.accesses")
	obsSessionMigrations = obs.GetCounter("core.session.migrations")
)

// SessionOptions configures a streaming placement session.
type SessionOptions struct {
	// Items is the item-space size; every appended access must fall in
	// [0, Items). Required.
	Items int
	// Seed drives every improvement round: round r anneals with a seed
	// derived from (Seed, r) by the same splitmix scheme restarts use, so
	// the whole session replays byte-identically from (Seed, accesses).
	Seed int64
	// RoundEvery is the access-count interval between improvement rounds;
	// 0 selects 1024. Rounds fire at fixed multiples of the total ingested
	// access count — never at append boundaries — which is what makes the
	// session's placement independent of how the stream was chunked.
	RoundEvery int
	// RoundIterations is the annealing budget per improvement round; 0
	// selects 2000 proposals (cheap enough to run inline with ingest).
	RoundIterations int
	// Restarts is passed through to each round's anneal; ≤ 1 runs a
	// single chain.
	Restarts int
}

// SessionSnapshot is a point-in-time view of a session. Placement is a
// private copy and always a valid permutation — mid-round checkpoints
// publish only complete placements.
type SessionSnapshot struct {
	Placement  layout.Placement
	Cost       int64
	Items      int
	Accesses   int64
	Rounds     int64
	Migrations int64
}

// Session is the any-time incremental placement engine: it owns the
// evolving access-transition graph and a cost evaluator over it, ingests
// accesses as they arrive, and periodically runs bounded annealing rounds
// that migrate the placement toward the drifted workload. Between rounds
// the evaluator's cost follows graph mutation exactly (via the delta
// primitives — no rebuilds), so a snapshot is always a valid placement
// with its true current cost.
//
// Determinism contract: after ingesting any fixed access sequence, the
// session's placement, cost, and migration count are a pure function of
// (SessionOptions, that sequence) — the chunking of Append calls cannot
// show through, because graph deltas commute and improvement rounds fire
// at fixed access-count boundaries with per-round derived seeds.
//
// Methods are safe for concurrent use; Append calls serialize, and
// Snapshot never blocks behind a running round (it reads a separately
// published copy that mid-round checkpoints keep fresh).
type Session struct {
	mu    sync.Mutex       // serializes Append/ingest state
	opts  SessionOptions   // immutable after NewSession
	g     *graph.Graph     //dwmlint:guard mu
	eval  *cost.Evaluator  //dwmlint:guard mu
	place layout.Placement //dwmlint:guard mu

	last       int   //dwmlint:guard mu
	accesses   int64 //dwmlint:guard mu
	rounds     int64 //dwmlint:guard mu
	migrations int64 //dwmlint:guard mu

	// pending coalesces not-yet-applied transition deltas: one entry per
	// distinct item pair since the last flush, in first-touch order.
	pending []graph.Delta  //dwmlint:guard mu
	pendIdx map[[2]int]int //dwmlint:guard mu

	snapMu sync.Mutex
	snap   SessionSnapshot //dwmlint:guard snapMu
}

// NewSession creates a session over an empty transition graph with the
// identity placement.
func NewSession(opts SessionOptions) (*Session, error) {
	if opts.Items < 1 {
		return nil, fmt.Errorf("core: session needs at least one item, got %d", opts.Items)
	}
	if opts.RoundEvery <= 0 {
		opts.RoundEvery = 1024
	}
	if opts.RoundIterations <= 0 {
		opts.RoundIterations = 2000
	}
	g, err := graph.New(opts.Items)
	if err != nil {
		return nil, err
	}
	place := layout.Identity(opts.Items)
	eval, err := cost.NewEvaluator(g, place)
	if err != nil {
		return nil, err
	}
	s := &Session{
		opts:    opts,
		g:       g,
		eval:    eval,
		place:   place,
		last:    -1,
		pendIdx: make(map[[2]int]int),
	}
	s.publish()
	return s, nil
}

// Append ingests a batch of accesses, running any improvement rounds
// whose access-count boundaries the batch crosses. On a context error the
// session keeps the state of the last completed round, the already-
// ingested accesses stay counted, and the error is returned — callers
// that need the determinism contract should treat an interrupted session
// as dead rather than retry the same accesses.
func (s *Session) Append(ctx context.Context, accesses []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range accesses {
		if a < 0 || a >= s.opts.Items {
			return fmt.Errorf("core: access %d outside [0,%d)", a, s.opts.Items)
		}
	}
	for _, a := range accesses {
		if s.last >= 0 && s.last != a {
			s.addPending(s.last, a)
		}
		s.last = a
		s.accesses++
		if s.accesses%int64(s.opts.RoundEvery) == 0 {
			if err := s.flush(); err != nil {
				return err
			}
			if err := s.round(ctx); err != nil {
				s.publish()
				return err
			}
		}
	}
	// Fold any partial tail into the graph so snapshots reflect every
	// ingested access; this cannot affect round results (rounds always
	// flush first) and therefore cannot leak chunk boundaries.
	if err := s.flush(); err != nil {
		return err
	}
	obsSessionAccesses.Add(int64(len(accesses)))
	s.publish()
	return nil
}

// addPending coalesces one observed transition into the pending batch.
//
//dwmlint:holds mu
func (s *Session) addPending(u, v int) {
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if i, ok := s.pendIdx[key]; ok {
		s.pending[i].W++
		return
	}
	s.pendIdx[key] = len(s.pending)
	s.pending = append(s.pending, graph.Delta{U: u, V: v, W: 1})
}

// flush applies the pending transition deltas to the graph and moves the
// evaluator's cost forward under the mutation.
//
//dwmlint:holds mu
func (s *Session) flush() error {
	if len(s.pending) == 0 {
		return nil
	}
	if err := s.g.ApplyDeltas(s.pending); err != nil {
		return fmt.Errorf("core: session flush: %w", err)
	}
	if err := s.eval.ApplyGraphDeltas(s.g.Freeze(), s.pending); err != nil {
		return fmt.Errorf("core: session flush: %w", err)
	}
	s.pending = s.pending[:0]
	clear(s.pendIdx)
	return nil
}

// round runs one bounded annealing round from the current placement and
// adopts its best, counting the item migrations it implies. Mid-round
// checkpoints publish improving placements so long rounds never make
// Snapshot stale.
//
//dwmlint:holds mu
func (s *Session) round(ctx context.Context) error {
	s.rounds++
	round := s.rounds
	opts := AnnealOptions{
		Seed:       deriveSeed(s.opts.Seed, int(round)),
		Iterations: s.opts.RoundIterations,
		Restarts:   s.opts.Restarts,
		Warmstart:  s.place,
		Checkpoint: func(p layout.Placement, c int64) {
			s.snapMu.Lock()
			// Within a round, lower is always fresher (chains improve
			// monotonically and restarts race); across rounds the
			// authoritative publish below resets the floor.
			if c < s.snap.Cost {
				s.snap.Placement = p // already a private clone
				s.snap.Cost = c
				s.snap.Rounds = round
			}
			s.snapMu.Unlock()
		},
	}
	best, _, err := AnnealContext(ctx, s.g, s.place, opts)
	if err != nil {
		return fmt.Errorf("core: session round %d: %w", round, err)
	}
	moved := int64(0)
	for item, slot := range best {
		if s.place[item] != slot {
			moved++
		}
	}
	s.migrations += moved
	s.place = best
	eval, err := cost.NewEvaluator(s.g, best)
	if err != nil {
		return fmt.Errorf("core: session round %d: %w", round, err)
	}
	s.eval = eval
	obsSessionRounds.Inc()
	obsSessionMigrations.Add(moved)
	return nil
}

// publish copies the authoritative state into the snapshot slot.
// Callers hold s.mu.
//
//dwmlint:holds mu
func (s *Session) publish() {
	// Pending tail transitions are not yet in the evaluator; their cost
	// contribution is added here so the snapshot cost is exact for every
	// ingested access. (Each pending delta contributes W·|pos(u)-pos(v)|
	// independently — same linearity EdgeDelta relies on.)
	c := s.eval.Cost()
	for _, d := range s.pending {
		du := s.place[d.U] - s.place[d.V]
		if du < 0 {
			du = -du
		}
		c += d.W * int64(du)
	}
	s.snapMu.Lock()
	s.snap = SessionSnapshot{
		Placement:  s.place.Clone(),
		Cost:       c,
		Items:      s.opts.Items,
		Accesses:   s.accesses,
		Rounds:     s.rounds,
		Migrations: s.migrations,
	}
	s.snapMu.Unlock()
}

// Snapshot returns the latest published view of the session. It never
// blocks behind a running improvement round.
func (s *Session) Snapshot() SessionSnapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	snap := s.snap
	snap.Placement = snap.Placement.Clone()
	return snap
}
