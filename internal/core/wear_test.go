package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/workload"
)

func TestMultiTapeBreakdownSumsToTotal(t *testing.T) {
	tr := workload.FIR(16, 64)
	tapes, tapeLen := 4, 10
	ports := dwm.SpreadPorts(tapeLen, 1)
	mp, total, err := ProposeMultiTape(tr, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	per, err := cost.MultiTapeBreakdown(tr.Items(), mp, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range per {
		sum += c
	}
	if sum != total {
		t.Errorf("breakdown sum %d != total %d", sum, total)
	}
}

func TestWearBalancedReducesMaxTapeWear(t *testing.T) {
	// A Zipf workload concentrates traffic; wear balancing must reduce
	// the hottest tape's shifts relative to the min-total pipeline, and
	// never report numbers inconsistent with the evaluator.
	tr := workload.Zipf(48, 8192, 1.3, 2)
	tapes, tapeLen := 4, 16 // 64 slots for 48 items: room to move
	ports := dwm.SpreadPorts(tapeLen, 1)
	seq := tr.Items()

	_, baseTotal, err := ProposeMultiTape(tr, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	baseMP, _, err := ProposeMultiTape(tr, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	basePer, err := cost.MultiTapeBreakdown(seq, baseMP, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	var baseMax int64
	for _, c := range basePer {
		if c > baseMax {
			baseMax = c
		}
	}

	mp, total, maxTape, err := WearBalancedMultiTape(tr, tapes, tapeLen, ports, WearBalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(tapes, tapeLen); err != nil {
		t.Fatal(err)
	}
	per, err := cost.MultiTapeBreakdown(seq, mp, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	var gotTotal, gotMax int64
	for _, c := range per {
		gotTotal += c
		if c > gotMax {
			gotMax = c
		}
	}
	if gotTotal != total || gotMax != maxTape {
		t.Errorf("reported total/max %d/%d != evaluated %d/%d", total, maxTape, gotTotal, gotMax)
	}
	if maxTape > baseMax {
		t.Errorf("wear balancing increased max wear: %d vs %d", maxTape, baseMax)
	}
	_ = baseTotal
}

func TestWearBalancedRejectsOverfull(t *testing.T) {
	tr := workload.FIR(8, 8) // 16 items
	if _, _, _, err := WearBalancedMultiTape(tr, 2, 4, []int{0}, WearBalanceOptions{}); err == nil {
		t.Error("overfull device accepted")
	}
}

func TestWearBalancedExactFitStillWorks(t *testing.T) {
	// No free slots: refinement cannot move anything, but the call must
	// succeed and match ProposeMultiTape.
	tr := workload.FIR(8, 16) // 16 items
	tapes, tapeLen := 2, 8
	ports := dwm.SpreadPorts(tapeLen, 1)
	_, wantTotal, err := ProposeMultiTape(tr, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	_, total, maxTape, err := WearBalancedMultiTape(tr, tapes, tapeLen, ports, WearBalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal {
		t.Errorf("exact fit total %d != propose %d", total, wantTotal)
	}
	if maxTape > total {
		t.Errorf("max %d exceeds total %d", maxTape, total)
	}
}
