package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
)

// TwoOptOptions tunes the pairwise-swap local search.
type TwoOptOptions struct {
	// MaxPasses bounds the number of full improvement passes; 0 means
	// iterate to a local optimum (with a generous internal cap).
	MaxPasses int
	// Window restricts candidate swaps to item pairs whose current slots
	// are within the window; 0 means all pairs. Windowed passes are
	// near-linear and are the scalable configuration for large n
	// (ablation E9 quantifies the quality loss).
	Window int
}

// TwoOpt refines a placement by steepest-descent pairwise swaps under the
// Linear (MinLA) objective, using O(degree) incremental deltas. It returns
// the refined placement and its Linear cost. The input placement must be a
// permutation of [0, g.N()) and is not mutated.
func TwoOpt(g *graph.Graph, p layout.Placement, opts TwoOptOptions) (layout.Placement, int64, error) {
	ev, err := cost.NewEvaluator(g, p)
	if err != nil {
		return nil, 0, fmt.Errorf("core: TwoOpt: %w", err)
	}
	n := g.N()
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 50 * n // effectively "until converged"
	}
	// itemAt[s] = item in slot s, maintained for window filtering.
	itemAt := make([]int, n)
	cur := ev.Placement()
	for item, s := range cur {
		itemAt[s] = item
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for s1 := 0; s1 < n; s1++ {
			hi := n
			if opts.Window > 0 && s1+opts.Window+1 < n {
				hi = s1 + opts.Window + 1
			}
			for s2 := s1 + 1; s2 < hi; s2++ {
				u, v := itemAt[s1], itemAt[s2]
				if ev.SwapDelta(u, v) < 0 {
					ev.Swap(u, v)
					itemAt[s1], itemAt[s2] = v, u
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return ev.Placement(), ev.Cost(), nil
}

// Insertion refines a placement with OR-opt-style single-item relocation:
// remove an item and reinsert it at another slot, cyclically shifting the
// items in between. It complements TwoOpt, which cannot express
// relocations in one move.
//
// To stay fast on large instances, candidate target slots for an item are
// restricted to the slots adjacent to the item's graph neighbors (where a
// relocation can actually pay off) rather than all n positions, so a pass
// costs O(Σ deg(v)·E_eval) instead of O(n²·E_eval). Returns the refined
// placement and its cost.
func Insertion(g *graph.Graph, p layout.Placement, maxPasses int) (layout.Placement, int64, error) {
	if err := p.Validate(g.N()); err != nil {
		return nil, 0, fmt.Errorf("core: Insertion: %w", err)
	}
	c := g.Freeze()
	n := c.N()
	if maxPasses <= 0 {
		maxPasses = 10
	}
	cur := p.Clone()
	order, err := cur.Order()
	if err != nil {
		return nil, 0, err
	}
	curCost, err := cost.LinearCSR(c, cur)
	if err != nil {
		return nil, 0, err
	}

	apply := func(from, to int) {
		item := order[from]
		if from < to {
			copy(order[from:to], order[from+1:to+1])
		} else {
			copy(order[to+1:from+1], order[to:from])
		}
		order[to] = item
		for s, it := range order {
			cur[it] = s
		}
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for item := 0; item < n; item++ {
			from := cur[item]
			// Candidate targets: beside each neighbor's current slot.
			var cands []int
			c.Neighbors(item, func(v int, _ int64) {
				for _, d := range []int{-1, 0, 1} {
					if to := cur[v] + d; to >= 0 && to < n && to != from {
						cands = append(cands, to)
					}
				}
			})
			bestTo, bestCost := -1, curCost
			for _, to := range cands {
				apply(from, to)
				cc, err := cost.LinearCSR(c, cur)
				if err != nil {
					return nil, 0, err
				}
				if cc < bestCost {
					bestTo, bestCost = to, cc
				}
				apply(to, from) // undo
			}
			if bestTo >= 0 {
				apply(from, bestTo)
				curCost = bestCost
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, curCost, nil
}

// GreedyTwoOpt runs the proposed pipeline: greedy chain construction
// followed by 2-opt refinement. This is the headline configuration of the
// evaluation.
func GreedyTwoOpt(g *graph.Graph, opts TwoOptOptions) (layout.Placement, int64, error) {
	p, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		return nil, 0, err
	}
	return TwoOpt(g, p, opts)
}
