package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

func TestRoundRobinPartition(t *testing.T) {
	pt := RoundRobinPartition(10, 4)
	if err := pt.Validate(4, 3); err != nil {
		t.Fatal(err)
	}
	for i, tp := range pt {
		if tp != i%4 {
			t.Errorf("item %d on tape %d", i, tp)
		}
	}
}

func TestHashPartitionRespectsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tapes := rng.Intn(7) + 1
		capacity := rng.Intn(20) + 1
		n := rng.Intn(tapes*capacity) + 1
		pt, err := HashPartition(n, tapes, capacity)
		if err != nil {
			return false
		}
		return pt.Validate(tapes, capacity) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if _, err := HashPartition(10, 2, 4); err == nil {
		t.Error("overfull accepted")
	}
}

func TestContiguousPartition(t *testing.T) {
	tr := seqTrace(6, 5, 4, 3, 2, 1, 0)
	pt, err := ContiguousPartition(tr, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(2, 3); err != nil {
		t.Fatal(err)
	}
	// First-touch order is 5,4,3,2,1,0: tape0 = {5,4,3}, tape1 = {2,1,0}.
	for _, item := range []int{5, 4, 3} {
		if pt[item] != 0 {
			t.Errorf("item %d on tape %d, want 0", item, pt[item])
		}
	}
	for _, item := range []int{2, 1, 0} {
		if pt[item] != 1 {
			t.Errorf("item %d on tape %d, want 1", item, pt[item])
		}
	}
	if _, err := ContiguousPartition(tr, 1, 3); err == nil {
		t.Error("overfull accepted")
	}
}

func TestAffinityPartitionSeparatesAlternators(t *testing.T) {
	// Items 0 and 1 alternate constantly; a 2-tape affinity partition
	// must put them on different tapes (their edge weight dominates).
	tr := trace.New("alt", 4)
	for i := 0; i < 100; i++ {
		tr.Read(0)
		tr.Read(1)
	}
	tr.Read(2)
	tr.Read(3)
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := AffinityPartition(g, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] == pt[1] {
		t.Errorf("alternating items share tape %d (partition %v)", pt[0], pt)
	}
}

func TestAffinityPartitionCapacityAndValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		tapes := rng.Intn(4) + 1
		capacity := (n+tapes-1)/tapes + rng.Intn(3)
		g := randGraph(rng, n, 3*n)
		pt, err := AffinityPartition(g, tapes, capacity, 2)
		if err != nil {
			return false
		}
		return pt.Validate(tapes, capacity) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	g := randGraph(rand.New(rand.NewSource(1)), 10, 20)
	if _, err := AffinityPartition(g, 2, 4, 0); err == nil {
		t.Error("overfull accepted")
	}
	if _, err := AffinityPartition(g, 0, 4, 0); err == nil {
		t.Error("zero tapes accepted")
	}
}

func TestAffinityBeatsRoundRobinOnIntraWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randGraph(rng, 32, 120)
	aff, err := AffinityPartition(g, 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rr := RoundRobinPartition(32, 4)
	if aff.IntraWeight(g) > rr.IntraWeight(g) {
		t.Errorf("affinity intra %d worse than round robin %d",
			aff.IntraWeight(g), rr.IntraWeight(g))
	}
}

func TestPartitionValidate(t *testing.T) {
	if err := (Partition{}).Validate(1, 1); err == nil {
		t.Error("empty accepted")
	}
	if err := (Partition{0, 2}).Validate(2, 4); err == nil {
		t.Error("bad tape accepted")
	}
	if err := (Partition{0, 0, 0}).Validate(2, 2); err == nil {
		t.Error("over capacity accepted")
	}
	if err := (Partition{0, 1, 0}).Validate(2, 2); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
}

func TestArrangePartitionProducesValidMultiPlacement(t *testing.T) {
	tr := firTrace()
	tapes, tapeLen := 2, 16
	ports := dwm.SpreadPorts(tapeLen, 1)
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := AffinityPartition(g, tapes, tapeLen, 0)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := ArrangePartition(tr, pt, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(tapes, tapeLen); err != nil {
		t.Fatal(err)
	}
	// The multi-placement must honor the partition.
	for item, tp := range pt {
		if mp.Tape[item] != tp {
			t.Errorf("item %d on tape %d, partition says %d", item, mp.Tape[item], tp)
		}
	}
}

func TestArrangePartitionErrors(t *testing.T) {
	tr := seqTrace(4, 0, 1, 2, 3)
	if _, err := ArrangePartition(tr, Partition{0, 0}, 1, 8, []int{0}); err == nil {
		t.Error("partition size mismatch accepted")
	}
	if _, err := ArrangePartition(tr, Partition{0, 0, 0, 0}, 1, 8, nil); err == nil {
		t.Error("no ports accepted")
	}
	if _, err := ArrangePartition(tr, Partition{0, 0, 0, 9}, 1, 8, []int{0}); err == nil {
		t.Error("invalid partition accepted")
	}
}

func TestPlaceMultiTapeBeatsNaivePartitions(t *testing.T) {
	tr := firTrace()
	tapes, tapeLen := 2, 16
	ports := dwm.SpreadPorts(tapeLen, 1)
	seq := tr.Items()

	mp, err := PlaceMultiTape(tr, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	proposed, err := cost.MultiTape(seq, mp, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}

	rr := RoundRobinPartition(tr.NumItems, tapes)
	rrMP, err := ArrangePartition(tr, rr, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	// Use program-order slots within tapes for the naive baseline: place
	// items in partition order.
	_ = rrMP
	naive, err := naiveMultiPlacement(tr, rr, tapes, tapeLen)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cost.MultiTape(seq, naive, tapes, tapeLen, ports)
	if err != nil {
		t.Fatal(err)
	}
	if proposed > base {
		t.Errorf("proposed multi-tape (%d) worse than naive round robin (%d)", proposed, base)
	}
}

// naiveMultiPlacement packs each tape's items into slots 0,1,2,... in item
// ID order, modeling a placement-unaware allocator.
func naiveMultiPlacement(tr *trace.Trace, pt Partition, tapes, tapeLen int) (layout.MultiPlacement, error) {
	mp := layout.NewMultiPlacement(tr.NumItems)
	next := make([]int, tapes)
	for item, tp := range pt {
		mp.Tape[item] = tp
		mp.Slot[item] = next[tp]
		next[tp]++
	}
	return mp, nil
}
