package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/layout"
)

// TestExactDPMatchesBruteForce anchors the subset DP against an
// independent ground truth: full permutation enumeration scored by the
// plain evaluator. (ExactBB is in turn anchored against ExactDP in
// exact_test.go, so all three agree transitively.)
func TestExactDPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2 // 2..6: at most 720 permutations
		g := randGraph(rng, n, 3*n)
		_, opt, err := ExactDP(g)
		if err != nil {
			return false
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		best := int64(-1)
		ok := true
		var rec func(k int)
		rec = func(k int) {
			if !ok {
				return
			}
			if k == n {
				p, err := layout.FromOrder(perm)
				if err != nil {
					ok = false
					return
				}
				c, err := cost.Linear(g, p)
				if err != nil {
					ok = false
					return
				}
				if best < 0 || c < best {
					best = c
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		return ok && opt == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
