package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/layout"
)

// GreedySeed selects how GreedyChain breaks ties when stitching leftover
// fragments together (ablation E9 compares the options).
type GreedySeed int

const (
	// SeedHeaviestEdge orders fragments by their internal weight,
	// heaviest first (the default).
	SeedHeaviestEdge GreedySeed = iota
	// SeedHeaviestVertex orders fragments by the weighted degree of
	// their heaviest vertex.
	SeedHeaviestVertex
)

// GreedyChain is the proposed constructive heuristic: process transition
// edges in descending weight and link their endpoints into chains whenever
// both are chain endpoints of different chains, so the heaviest
// adjacencies end up at distance one on the tape. Remaining chains are
// concatenated by descending weight (per seed policy). The result is a
// placement over slots 0..n-1.
//
// Complexity is O(E log E) for the edge sort plus near-linear chain
// bookkeeping, so it scales to thousands of items.
func GreedyChain(g *graph.Graph, seed GreedySeed) (layout.Placement, error) {
	c := g.Freeze()
	n := c.N()
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	next := make([]int, n) // successor on the chain, -1 at tail
	prev := make([]int, n) // predecessor, -1 at head
	for i := range next {
		next[i], prev[i] = -1, -1
	}
	// Union-find over chains to reject edges that would close a cycle.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	chainWeight := make([]int64, n) // indexed by root

	isEndpoint := func(v int) bool { return next[v] == -1 || prev[v] == -1 }

	for _, e := range c.Edges() {
		ru, rv := find(e.U), find(e.V)
		if ru == rv || !isEndpoint(e.U) || !isEndpoint(e.V) {
			continue
		}
		// Orient the chains so e.U is a tail and e.V is a head.
		if next[e.U] != -1 {
			reverseChain(e.U, next, prev)
		}
		if prev[e.V] != -1 {
			reverseChain(e.V, next, prev)
		}
		next[e.U] = e.V
		prev[e.V] = e.U
		parent[ru] = rv
		chainWeight[rv] += chainWeight[ru] + e.W
	}

	// Collect chains: walk from heads.
	type chain struct {
		items  []int
		weight int64
		seedW  int64 // heaviest vertex weighted degree, for SeedHeaviestVertex
	}
	var chains []chain
	for v := 0; v < n; v++ {
		if prev[v] != -1 {
			continue
		}
		var ch chain
		for x := v; x != -1; x = next[x] {
			ch.items = append(ch.items, x)
			if wd := c.WeightedDegree(x); wd > ch.seedW {
				ch.seedW = wd
			}
		}
		ch.weight = chainWeight[find(v)]
		chains = append(chains, ch)
	}
	sort.SliceStable(chains, func(i, j int) bool {
		a, b := chains[i], chains[j]
		switch seed {
		case SeedHeaviestVertex:
			if a.seedW != b.seedW {
				return a.seedW > b.seedW
			}
		default:
			if a.weight != b.weight {
				return a.weight > b.weight
			}
		}
		// Deterministic tie-break: longer first, then smallest head ID.
		if len(a.items) != len(b.items) {
			return len(a.items) > len(b.items)
		}
		return a.items[0] < b.items[0]
	})

	order := make([]int, 0, n)
	for _, c := range chains {
		order = append(order, c.items...)
	}
	return layout.FromOrder(order)
}

// reverseChain reverses the chain containing v in place. v must be an
// endpoint; afterwards heads become tails and vice versa.
func reverseChain(v int, next, prev []int) {
	// Find the head.
	head := v
	for prev[head] != -1 {
		head = prev[head]
	}
	for x := head; x != -1; {
		nx := next[x]
		next[x], prev[x] = prev[x], nx
		x = nx
	}
}
