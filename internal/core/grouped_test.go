package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestUniformGroups(t *testing.T) {
	g, err := UniformGroups(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("groups = %v", g)
		}
	}
	if _, err := UniformGroups(0, 4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := UniformGroups(4, 0); err == nil {
		t.Error("block=0 accepted")
	}
}

func TestGroupedProposeKeepsGroupsContiguous(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nGroups := rng.Intn(5) + 2
		block := rng.Intn(6) + 1
		n := nGroups * block
		tr := trace.New("p", n)
		for i := 0; i < 400; i++ {
			tr.Read(rng.Intn(n))
		}
		group, err := UniformGroups(n, block)
		if err != nil {
			return false
		}
		p, c, err := GroupedPropose(tr, group)
		if err != nil {
			return false
		}
		if p.Validate(n) != nil {
			return false
		}
		// Contiguity: slots of each group form a consecutive range.
		lo := make([]int, nGroups)
		hi := make([]int, nGroups)
		for g := range lo {
			lo[g], hi[g] = n, -1
		}
		for item, s := range p {
			g := group[item]
			if s < lo[g] {
				lo[g] = s
			}
			if s > hi[g] {
				hi[g] = s
			}
		}
		for g := 0; g < nGroups; g++ {
			if hi[g]-lo[g]+1 != block {
				return false
			}
		}
		// Reported cost matches the placement.
		ig, err := graph.FromTrace(tr)
		if err != nil {
			return false
		}
		actual, err := cost.Linear(ig, p)
		return err == nil && actual == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGroupedProposeRejectsBadInput(t *testing.T) {
	tr := seqTrace(4, 0, 1, 2, 3)
	if _, _, err := GroupedPropose(tr, []int{0, 0}); err == nil {
		t.Error("short group table accepted")
	}
	if _, _, err := GroupedPropose(tr, []int{0, 0, 0, -1}); err == nil {
		t.Error("negative group accepted")
	}
	bad := trace.New("bad", 1)
	bad.Read(9)
	if _, _, err := GroupedPropose(bad, []int{0}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestGroupedProposeBetweenBaselineAndWordGranular(t *testing.T) {
	// Object-granularity placement on FIR (delay array + coef array):
	// it cannot beat word-granular Propose, but ordering whole arrays
	// sensibly should stay comparable to program order.
	tr := workload.FIR(16, 128)
	group, err := UniformGroups(tr.NumItems, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, grouped, err := GroupedPropose(tr, group)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, word, err := Propose(tr, g)
	if err != nil {
		t.Fatal(err)
	}
	if grouped < word {
		t.Errorf("grouped (%d) beats word-granular (%d): optimizer bug", grouped, word)
	}
	po, err := ProgramOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cost.Linear(g, po)
	if err != nil {
		t.Fatal(err)
	}
	if float64(grouped) > 1.2*float64(base) {
		t.Errorf("grouped (%d) far worse than program order (%d)", grouped, base)
	}
}

func TestGroupedProposeSingleGroupIsProgramOrder(t *testing.T) {
	// With one group covering everything, the only freedom is the
	// (trivial) group order; the result must be exactly program order.
	tr := seqTrace(5, 3, 1, 3, 4, 0)
	group := make([]int, 5)
	p, _, err := GroupedPropose(tr, group)
	if err != nil {
		t.Fatal(err)
	}
	po, err := ProgramOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != po[i] {
			t.Fatalf("grouped %v != program order %v", p, po)
		}
	}
}
