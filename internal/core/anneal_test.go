package core

import (
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/workload"
)

func annealTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromTrace(workload.Zipf(48, 4000, 1.2, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Restarts > 1 runs chains concurrently; the winner must not depend on
// scheduling, only on (Seed, Restarts).
func TestAnnealRestartsSeedStable(t *testing.T) {
	g := annealTestGraph(t)
	p := layout.Identity(g.N())
	opts := AnnealOptions{Seed: 3, Iterations: 5000, Restarts: 4}
	p1, c1, err := Anneal(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		p2, c2, err := Anneal(g, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 || !reflect.DeepEqual(p1, p2) {
			t.Fatalf("run %d diverged: cost %d vs %d", run, c1, c2)
		}
	}
}

// Restarts <= 1 must be byte-identical to the historical single-chain
// behavior, and restart chains can only improve on chain 0.
func TestAnnealRestartsNeverWorseThanSingle(t *testing.T) {
	g := annealTestGraph(t)
	p := layout.Identity(g.N())
	single, sc, err := Anneal(g, p, AnnealOptions{Seed: 3, Iterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	zero, zc, err := Anneal(g, p, AnnealOptions{Seed: 3, Iterations: 5000, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc != zc || !reflect.DeepEqual(single, zero) {
		t.Fatalf("Restarts=1 diverged from plain run: %d vs %d", zc, sc)
	}
	multi, mc, err := Anneal(g, p, AnnealOptions{Seed: 3, Iterations: 5000, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if mc > sc {
		t.Errorf("best-of-6 cost %d worse than single chain %d", mc, sc)
	}
	got, err := cost.Linear(g, multi)
	if err != nil {
		t.Fatal(err)
	}
	if got != mc {
		t.Errorf("reported cost %d does not match placement cost %d", mc, got)
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := deriveSeed(1, i)
		if seen[s] {
			t.Fatalf("derived seed collision at index %d", i)
		}
		seen[s] = true
	}
	if deriveSeed(1, 5) != deriveSeed(1, 5) {
		t.Error("deriveSeed not stable")
	}
	if deriveSeed(1, 5) == deriveSeed(2, 5) {
		t.Error("deriveSeed ignores the base seed")
	}
}
