package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/workload"
)

func annealTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromTrace(workload.Zipf(48, 4000, 1.2, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Restarts > 1 runs chains concurrently; the winner must not depend on
// scheduling, only on (Seed, Restarts).
func TestAnnealRestartsSeedStable(t *testing.T) {
	g := annealTestGraph(t)
	p := layout.Identity(g.N())
	opts := AnnealOptions{Seed: 3, Iterations: 5000, Restarts: 4}
	p1, c1, err := Anneal(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		p2, c2, err := Anneal(g, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 || !reflect.DeepEqual(p1, p2) {
			t.Fatalf("run %d diverged: cost %d vs %d", run, c1, c2)
		}
	}
}

// Restarts <= 1 must be byte-identical to the historical single-chain
// behavior, and restart chains can only improve on chain 0.
func TestAnnealRestartsNeverWorseThanSingle(t *testing.T) {
	g := annealTestGraph(t)
	p := layout.Identity(g.N())
	single, sc, err := Anneal(g, p, AnnealOptions{Seed: 3, Iterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	zero, zc, err := Anneal(g, p, AnnealOptions{Seed: 3, Iterations: 5000, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc != zc || !reflect.DeepEqual(single, zero) {
		t.Fatalf("Restarts=1 diverged from plain run: %d vs %d", zc, sc)
	}
	multi, mc, err := Anneal(g, p, AnnealOptions{Seed: 3, Iterations: 5000, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if mc > sc {
		t.Errorf("best-of-6 cost %d worse than single chain %d", mc, sc)
	}
	got, err := cost.Linear(g, multi)
	if err != nil {
		t.Fatal(err)
	}
	if got != mc {
		t.Errorf("reported cost %d does not match placement cost %d", mc, got)
	}
}

// Cancelling mid-run must return the best placement found so far — a
// valid placement that beats the initial one — together with an error
// wrapping the context's error. The cancellation is triggered from the
// first checkpoint callback, so the test does not depend on timing: by
// the time the context fires, at least one improvement is recorded.
func TestAnnealContextCancelReturnsPartial(t *testing.T) {
	g := annealTestGraph(t)
	p := layout.Identity(g.N())
	initial, err := cost.Linear(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var checkpoints int
	partial, pc, err := AnnealContext(ctx, g, p, AnnealOptions{
		Seed:            3,
		Iterations:      10_000_000, // far more than the test ever runs
		CheckpointEvery: 512,
		Checkpoint: func(layout.Placement, int64) {
			checkpoints++
			cancel()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if checkpoints == 0 {
		t.Fatal("checkpoint callback never ran")
	}
	if partial == nil {
		t.Fatal("no partial placement returned on cancel")
	}
	got, cerr := cost.Linear(g, partial)
	if cerr != nil {
		t.Fatal(cerr)
	}
	if got != pc {
		t.Errorf("reported partial cost %d does not match placement cost %d", pc, got)
	}
	if pc >= initial {
		t.Errorf("partial cost %d does not beat initial placement %d", pc, initial)
	}
}

// A context that is already expired yields the input placement back
// (cost unchanged) instead of failing outright.
func TestAnnealContextAlreadyCancelled(t *testing.T) {
	g := annealTestGraph(t)
	p := layout.Identity(g.N())
	initial, err := cost.Linear(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, c, err := AnnealContext(ctx, g, p, AnnealOptions{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got == nil || c != initial {
		t.Fatalf("expired context returned placement %v cost %d, want input back at cost %d", got, c, initial)
	}
}

// Restart chains interrupted by cancellation still produce the best
// partial among every chain.
func TestAnnealContextCancelWithRestarts(t *testing.T) {
	g := annealTestGraph(t)
	p := layout.Identity(g.N())
	initial, err := cost.Linear(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	partial, pc, err := AnnealContext(ctx, g, p, AnnealOptions{
		Seed:            5,
		Iterations:      10_000_000,
		Restarts:        4,
		CheckpointEvery: 512,
		Checkpoint: func(layout.Placement, int64) {
			once.Do(cancel)
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("no partial placement returned on cancel")
	}
	if verr := partial.Validate(g.N()); verr != nil {
		t.Fatalf("partial placement invalid: %v", verr)
	}
	if pc > initial {
		t.Errorf("partial cost %d worse than initial %d", pc, initial)
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := deriveSeed(1, i)
		if seen[s] {
			t.Fatalf("derived seed collision at index %d", i)
		}
		seen[s] = true
	}
	if deriveSeed(1, 5) != deriveSeed(1, 5) {
		t.Error("deriveSeed not stable")
	}
	if deriveSeed(1, 5) == deriveSeed(2, 5) {
		t.Error("deriveSeed ignores the base seed")
	}
}
