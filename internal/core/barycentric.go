package core

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
)

// Barycentric refines a placement by iterated barycenter projection, a
// classical linear-arrangement heuristic: each item's coordinate is moved
// to the weighted average of its neighbors' slots, items are re-ranked by
// coordinate to restore a permutation, and the process repeats. Items with
// heavy mutual edges are pulled together quickly, giving a good global
// shape that local search can then polish.
//
// It returns the best placement visited and its Linear cost; the input
// placement is not mutated. Zero iterations selects 20, which is past
// convergence on the evaluation workloads.
func Barycentric(g *graph.Graph, p layout.Placement, iterations int) (layout.Placement, int64, error) {
	if err := p.Validate(g.N()); err != nil {
		return nil, 0, fmt.Errorf("core: Barycentric: %w", err)
	}
	c := g.Freeze()
	n := c.N()
	if iterations <= 0 {
		iterations = 20
	}
	cur := p.Clone()
	best := cur.Clone()
	bestCost, err := cost.LinearCSR(c, cur)
	if err != nil {
		return nil, 0, err
	}

	coord := make([]float64, n)
	rank := make([]int, n)
	for it := 0; it < iterations; it++ {
		for v := 0; v < n; v++ {
			var sum float64
			cols, ws := c.Row(v)
			for i, u := range cols {
				sum += float64(ws[i]) * float64(cur[u])
			}
			if wsum := c.WeightedDegree(v); wsum == 0 {
				coord[v] = float64(cur[v]) // isolated: stay put
			} else {
				coord[v] = sum / float64(wsum)
			}
		}
		for i := range rank {
			rank[i] = i
		}
		sort.SliceStable(rank, func(a, b int) bool {
			if coord[rank[a]] != coord[rank[b]] {
				return coord[rank[a]] < coord[rank[b]]
			}
			return cur[rank[a]] < cur[rank[b]] // stable tie-break by old slot
		})
		for s, v := range rank {
			cur[v] = s
		}
		cc, err := cost.LinearCSR(c, cur)
		if err != nil {
			return nil, 0, err
		}
		if cc < bestCost {
			bestCost = cc
			copy(best, cur)
		}
	}
	return best, bestCost, nil
}
