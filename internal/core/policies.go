package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

// Policy is a named single-tape placement strategy over the compact slot
// range [0, NumItems). The evaluation compares policies by name; the CLIs
// select them by name.
type Policy struct {
	// Name identifies the policy in tables and on command lines.
	Name string
	// Description is a one-line summary.
	Description string
	// Baseline marks the policies the paper compares against (as opposed
	// to the proposed family).
	Baseline bool
	// Place computes the placement. Both the trace and its transition
	// graph are supplied so policies of either flavor avoid recomputing.
	Place func(t *trace.Trace, g *graph.Graph) (layout.Placement, error)
}

// Policies returns the standard policy set in evaluation order. The seed
// feeds the randomized policies; equal seeds reproduce identical results.
func Policies(seed int64) []Policy {
	return PoliciesCached(seed, nil)
}

// PoliciesCached is Policies with a placement cache threaded into the
// anneal policy (the only one expensive enough to memoize). A nil cache
// is byte-identical to Policies; with a cache, hits replay the memoized
// result and misses store theirs, which is also byte-identical by the
// PlacementCache contract.
func PoliciesCached(seed int64, cache PlacementCache) []Policy {
	return []Policy{
		{
			Name:        "program",
			Description: "first-touch program order (primary baseline)",
			Baseline:    true,
			Place: func(t *trace.Trace, _ *graph.Graph) (layout.Placement, error) {
				return ProgramOrder(t)
			},
		},
		{
			Name:        "random",
			Description: "uniform random placement",
			Baseline:    true,
			Place: func(t *trace.Trace, _ *graph.Graph) (layout.Placement, error) {
				return Random(t.NumItems, seed)
			},
		},
		{
			Name:        "frequency",
			Description: "descending frequency from slot 0",
			Baseline:    true,
			Place: func(t *trace.Trace, _ *graph.Graph) (layout.Placement, error) {
				return Frequency(t, 0)
			},
		},
		{
			Name:        "organpipe",
			Description: "descending frequency centered (organ pipe)",
			Baseline:    true,
			Place: func(t *trace.Trace, _ *graph.Graph) (layout.Placement, error) {
				return OrganPipe(t)
			},
		},
		{
			Name:        "greedy",
			Description: "proposed greedy chain growth",
			Place: func(_ *trace.Trace, g *graph.Graph) (layout.Placement, error) {
				return GreedyChain(g, SeedHeaviestEdge)
			},
		},
		{
			Name:        "greedy2opt",
			Description: "proposed greedy chain + 2-opt refinement",
			Place: func(_ *trace.Trace, g *graph.Graph) (layout.Placement, error) {
				p, _, err := GreedyTwoOpt(g, TwoOptOptions{})
				return p, err
			},
		},
		{
			Name:        "multilevel",
			Description: "coarsen-solve-uncoarsen V-cycle (scalable configuration)",
			Place: func(_ *trace.Trace, g *graph.Graph) (layout.Placement, error) {
				p, _, err := Multilevel(g, MultilevelOptions{})
				return p, err
			},
		},
		{
			Name:        "proposed",
			Description: "proposed multi-start pipeline (greedy/program seeds + 2-opt + insertion)",
			Place: func(t *trace.Trace, g *graph.Graph) (layout.Placement, error) {
				p, _, err := Propose(t, g)
				return p, err
			},
		},
		{
			Name:        "anneal",
			Description: "proposed pipeline + simulated annealing",
			Place: func(t *trace.Trace, g *graph.Graph) (layout.Placement, error) {
				p, _, err := Propose(t, g)
				if err != nil {
					return nil, err
				}
				p, _, err = Anneal(g, p, AnnealOptions{Seed: seed, Cache: cache})
				return p, err
			},
		},
	}
}

// PolicyByName returns the named policy from the standard set.
func PolicyByName(name string, seed int64) (Policy, error) {
	for _, p := range Policies(seed) {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("core: unknown policy %q", name)
}

// PolicyNames lists the standard policy names in evaluation order.
func PolicyNames() []string {
	ps := Policies(0)
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
