package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/layout"
)

// MaxExactN bounds the instance size accepted by the exact algorithms.
// The subset DP uses O(2^n) memory (8 bytes of cost plus 1 byte of parent
// per subset), so 24 vertices ≈ 150 MB is the practical ceiling.
const MaxExactN = 24

// ExactDP computes an optimal MinLA placement by subset dynamic
// programming over arrangement prefixes.
//
// It exploits the cut formulation of MinLA: for a left-to-right
// arrangement with prefix sets S_1 ⊂ S_2 ⊂ … ⊂ S_n, the objective equals
// Σ_t cut(S_t, V∖S_t), because an edge at arrangement distance d crosses
// exactly d prefix boundaries. The cut value depends only on the set, not
// on the order within it, so dp[S] = min over v∈S of dp[S∖{v}] + cut(S)
// solves the problem in O(2^n · n) time after an O(2^n · deg) incremental
// cut table.
func ExactDP(g *graph.Graph) (layout.Placement, int64, error) {
	n := g.N()
	if n > MaxExactN {
		return nil, 0, fmt.Errorf("core: ExactDP limited to %d vertices, got %d", MaxExactN, n)
	}
	size := 1 << uint(n)

	// deg[v] = weighted degree; adj[v] = packed neighbor list, both read
	// straight off the frozen CSR rows.
	type arc struct {
		to int
		w  int64
	}
	c := g.Freeze()
	adj := make([][]arc, n)
	degW := make([]int64, n)
	for v := 0; v < n; v++ {
		cols, ws := c.Row(v)
		adj[v] = make([]arc, len(cols))
		for i, u := range cols {
			adj[v][i] = arc{int(u), ws[i]}
		}
		degW[v] = c.WeightedDegree(v)
	}

	// cut[S] built incrementally by removing the lowest set bit:
	// cut(S) = cut(S∖{v}) + deg(v) − 2·w(v, S∖{v}).
	cut := make([]int64, size)
	for s := 1; s < size; s++ {
		v := bits.TrailingZeros(uint(s))
		rest := s &^ (1 << uint(v))
		var toRest int64
		for _, a := range adj[v] {
			if rest&(1<<uint(a.to)) != 0 {
				toRest += a.w
			}
		}
		cut[s] = cut[rest] + degW[v] - 2*toRest
	}

	const inf = math.MaxInt64 / 4
	dp := make([]int64, size)
	parent := make([]int8, size) // vertex appended last to reach S
	for s := 1; s < size; s++ {
		dp[s] = inf
		for t := s; t != 0; t &= t - 1 {
			v := bits.TrailingZeros(uint(t))
			if c := dp[s&^(1<<uint(v))] + cut[s]; c < dp[s] {
				dp[s] = c
				parent[s] = int8(v)
			}
		}
	}

	// Reconstruct: parent[S] is the vertex at position |S|-1.
	order := make([]int, n)
	s := size - 1
	for i := n - 1; i >= 0; i-- {
		v := int(parent[s])
		order[i] = v
		s &^= 1 << uint(v)
	}
	p, err := layout.FromOrder(order)
	if err != nil {
		return nil, 0, err
	}
	return p, dp[size-1], nil
}

// ExactBB computes an optimal MinLA placement by branch-and-bound over
// arrangement prefixes, seeded with the greedy+2-opt incumbent. It uses an
// admissible lower bound: an edge with both endpoints unplaced must span
// at least distance 1; an edge from a vertex placed at position p to an
// unplaced vertex must span at least (k − p) where k is the prefix length.
// Slower than ExactDP in the worst case but uses O(n) memory and often
// terminates quickly on structured graphs; the experiments use it to
// cross-check the DP.
func ExactBB(g *graph.Graph) (layout.Placement, int64, error) {
	n := g.N()
	if n > MaxExactN {
		return nil, 0, fmt.Errorf("core: ExactBB limited to %d vertices, got %d", MaxExactN, n)
	}

	// Incumbent from greedy + 2-opt.
	inc, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		return nil, 0, err
	}
	inc, incCost, err := TwoOpt(g, inc, TwoOptOptions{})
	if err != nil {
		return nil, 0, err
	}
	best := inc.Clone()
	bestCost := incCost

	// Internal-edge weight sum among unplaced vertices, maintained
	// incrementally, gives the "≥1 per unplaced edge" bound term.
	type arc struct {
		to int
		w  int64
	}
	c := g.Freeze()
	adj := make([][]arc, n)
	var unplacedW int64
	for v := 0; v < n; v++ {
		cols, ws := c.Row(v)
		adj[v] = make([]arc, len(cols))
		for i, u := range cols {
			adj[v][i] = arc{int(u), ws[i]}
			if v < int(u) {
				unplacedW += ws[i]
			}
		}
	}

	pos := make([]int, n)
	placed := make([]bool, n)
	order := make([]int, 0, n)
	// frontier[v] = Σ w(u,v)·(position term) handled directly in bound().

	var cur int64 // exact cost of edges with both endpoints placed
	bound := func(k int) int64 {
		// Edges placed→unplaced: each must reach at least position k.
		var b int64
		for _, u := range order {
			for _, a := range adj[u] {
				if !placed[a.to] {
					b += a.w * int64(k-pos[u])
				}
			}
		}
		return cur + b + unplacedW
	}

	var dfs func(k int)
	dfs = func(k int) {
		if k == n {
			if cur < bestCost {
				bestCost = cur
				for i, v := range order {
					best[v] = i
				}
			}
			return
		}
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			// Apply.
			var addCur int64
			var addUnplaced int64
			for _, a := range adj[v] {
				if placed[a.to] {
					addCur += a.w * int64(k-pos[a.to])
				} else {
					addUnplaced += a.w
				}
			}
			cur += addCur
			unplacedW -= addUnplaced
			placed[v] = true
			pos[v] = k
			order = append(order, v)

			if lb := bound(k + 1); lb < bestCost {
				dfs(k + 1)
			}

			// Undo.
			order = order[:len(order)-1]
			placed[v] = false
			unplacedW += addUnplaced
			cur -= addCur
		}
	}
	dfs(0)
	return best, bestCost, nil
}
