package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

func TestPoliciesAllProduceValidPlacements(t *testing.T) {
	tr := firTrace()
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range Policies(42) {
		pol := pol
		t.Run(pol.Name, func(t *testing.T) {
			p, err := pol.Place(tr, g)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(tr.NumItems); err != nil {
				t.Fatal(err)
			}
			if pol.Description == "" {
				t.Error("missing description")
			}
		})
	}
}

func TestProposedPoliciesBeatProgramOrder(t *testing.T) {
	// On the locality-rich helper traces, each member of the proposed
	// family must achieve a Linear cost no worse than program order.
	for _, tr := range []*trace.Trace{firTrace(), zigzagTrace(), chaseTrace()} {
		g, err := graph.FromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		po, err := ProgramOrder(tr)
		if err != nil {
			t.Fatal(err)
		}
		base, err := cost.Linear(g, po)
		if err != nil {
			t.Fatal(err)
		}
		// The multi-start pipeline and its annealed variant are seeded
		// with program order, so they can never lose to it.
		for _, name := range []string{"proposed", "anneal"} {
			pol, err := PolicyByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pol.Place(tr, g)
			if err != nil {
				t.Fatal(err)
			}
			c, err := cost.Linear(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if c > base {
				t.Errorf("%s on %s: %d worse than program order %d",
					name, tr.Name, c, base)
			}
		}
		// The pure greedy variants carry no such guarantee but must stay
		// within 1.5x of the baseline on these locality-rich traces.
		for _, name := range []string{"greedy", "greedy2opt"} {
			pol, err := PolicyByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pol.Place(tr, g)
			if err != nil {
				t.Fatal(err)
			}
			c, err := cost.Linear(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if float64(c) > 1.5*float64(base) {
				t.Errorf("%s on %s: %d far worse than program order %d",
					name, tr.Name, c, base)
			}
		}
	}
}

func TestPolicyByNameUnknown(t *testing.T) {
	if _, err := PolicyByName("bogus", 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyNamesOrder(t *testing.T) {
	names := PolicyNames()
	if len(names) != 9 {
		t.Fatalf("expected 9 policies, got %d: %v", len(names), names)
	}
	if names[0] != "program" || names[len(names)-1] != "anneal" {
		t.Errorf("unexpected order: %v", names)
	}
}

func TestPoliciesSeedReproducible(t *testing.T) {
	tr := chaseTrace()
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"random", "anneal"} {
		p1 := placeByName(t, name, 5, tr, g)
		p2 := placeByName(t, name, 5, tr, g)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%s: same seed, different placements", name)
			}
		}
	}
}

func placeByName(t *testing.T, name string, seed int64, tr *trace.Trace, g *graph.Graph) layout.Placement {
	t.Helper()
	pol, err := PolicyByName(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pol.Place(tr, g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
