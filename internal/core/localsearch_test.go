package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/layout"
)

func TestTwoOptNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 2
		g := randGraph(rng, n, 4*n)
		start, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		before, err := cost.Linear(g, start)
		if err != nil {
			return false
		}
		refined, after, err := TwoOpt(g, start, TwoOptOptions{})
		if err != nil {
			return false
		}
		if after > before {
			return false
		}
		actual, err := cost.Linear(g, refined)
		return err == nil && actual == after && refined.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTwoOptReachesLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randGraph(rng, 15, 60)
	p, c, err := TwoOpt(g, layout.Identity(15), TwoOptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// No single swap can improve further.
	ev, err := cost.NewEvaluator(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 15; u++ {
		for v := u + 1; v < 15; v++ {
			if d := ev.SwapDelta(u, v); d < 0 {
				t.Fatalf("swap (%d,%d) still improves by %d from cost %d", u, v, d, c)
			}
		}
	}
}

func TestTwoOptWindowRestrictsButHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randGraph(rng, 40, 160)
	start, err := layout.FromOrder(rng.Perm(40))
	if err != nil {
		t.Fatal(err)
	}
	before, err := cost.Linear(g, start)
	if err != nil {
		t.Fatal(err)
	}
	_, windowed, err := TwoOpt(g, start, TwoOptOptions{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := TwoOpt(g, start, TwoOptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if windowed > before {
		t.Errorf("windowed 2-opt worsened: %d -> %d", before, windowed)
	}
	if full > windowed {
		t.Errorf("full 2-opt (%d) worse than windowed (%d)", full, windowed)
	}
}

func TestTwoOptMaxPassesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randGraph(rng, 30, 120)
	start, err := layout.FromOrder(rng.Perm(30))
	if err != nil {
		t.Fatal(err)
	}
	// One pass must terminate and not worsen.
	_, c1, err := TwoOpt(g, start, TwoOptOptions{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, cFull, err := TwoOpt(g, start, TwoOptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cFull > c1 {
		t.Errorf("converged (%d) worse than single pass (%d)", cFull, c1)
	}
}

func TestTwoOptRejectsBadPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randGraph(rng, 5, 10)
	if _, _, err := TwoOpt(g, layout.Placement{0, 0, 1, 2, 3}, TwoOptOptions{}); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestTwoOptDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randGraph(rng, 12, 50)
	start, err := layout.FromOrder(rng.Perm(12))
	if err != nil {
		t.Fatal(err)
	}
	orig := start.Clone()
	if _, _, err := TwoOpt(g, start, TwoOptOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if start[i] != orig[i] {
			t.Fatal("TwoOpt mutated its input")
		}
	}
}

func TestInsertionNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		g := randGraph(rng, n, 3*n)
		start, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		before, err := cost.Linear(g, start)
		if err != nil {
			return false
		}
		refined, after, err := Insertion(g, start, 3)
		if err != nil {
			return false
		}
		if after > before {
			return false
		}
		actual, err := cost.Linear(g, refined)
		return err == nil && actual == after && refined.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInsertionFixesRelocation(t *testing.T) {
	// Path 0-1-2-3-4 with item 0 exiled to the far end:
	// order [1,2,3,4,0]. A single relocation restores the path order;
	// verify Insertion finds cost 4.
	g := mustGraph(t, 5,
		[3]int{0, 1, 1}, [3]int{1, 2, 1}, [3]int{2, 3, 1}, [3]int{3, 4, 1})
	start, err := layout.FromOrder([]int{1, 2, 3, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, c, err := Insertion(g, start, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Errorf("Insertion cost = %d, want 4", c)
	}
}

func TestAnnealNeverWorseThanStart(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		g := randGraph(rng, n, 4*n)
		start, err := layout.FromOrder(rng.Perm(n))
		if err != nil {
			return false
		}
		before, err := cost.Linear(g, start)
		if err != nil {
			return false
		}
		refined, after, err := Anneal(g, start, AnnealOptions{Seed: seed, Iterations: 300 * n})
		if err != nil {
			return false
		}
		if after > before { // Anneal returns best-visited, start included
			return false
		}
		actual, err := cost.Linear(g, refined)
		return err == nil && actual == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := randGraph(rng, 18, 70)
	a, ca, err := Anneal(g, layout.Identity(18), AnnealOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, cb, err := Anneal(g, layout.Identity(18), AnnealOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Errorf("same seed different costs: %d vs %d", ca, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different placements")
		}
	}
}

func TestAnnealTinyInstances(t *testing.T) {
	g := mustGraph(t, 1)
	p, c, err := Anneal(g, layout.Identity(1), AnnealOptions{Seed: 1})
	if err != nil || c != 0 || len(p) != 1 {
		t.Errorf("n=1: %v %d %v", p, c, err)
	}
	g2 := mustGraph(t, 2, [3]int{0, 1, 5})
	_, c2, err := Anneal(g2, layout.Identity(2), AnnealOptions{Seed: 1})
	if err != nil || c2 != 5 {
		t.Errorf("n=2: cost %d err %v, want 5", c2, err)
	}
}

func TestGreedyTwoOptBeatsGreedyAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randGraph(rng, 40, 200)
	gp, err := GreedyChain(g, SeedHeaviestEdge)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := cost.Linear(g, gp)
	if err != nil {
		t.Fatal(err)
	}
	_, tc, err := GreedyTwoOpt(g, TwoOptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tc > gc {
		t.Errorf("greedy+2opt (%d) worse than greedy (%d)", tc, gc)
	}
}
