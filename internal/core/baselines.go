package core

import (
	"fmt"
	"math/rand"

	"repro/internal/layout"
	"repro/internal/trace"
)

// ProgramOrder places items in first-touch order: the first distinct item
// the trace accesses goes to slot 0, the second to slot 1, and so on.
// Items never touched are appended after all touched items in ID order.
// This models the layout a compiler emits without any DWM awareness and is
// the primary baseline of the evaluation.
func ProgramOrder(t *trace.Trace) (layout.Placement, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := make(layout.Placement, t.NumItems)
	for i := range p {
		p[i] = -1
	}
	next := 0
	for _, a := range t.Accesses {
		if p[a.Item] < 0 {
			p[a.Item] = next
			next++
		}
	}
	for i := range p {
		if p[i] < 0 {
			p[i] = next
			next++
		}
	}
	return p, nil
}

// Random places the n items uniformly at random (seeded), the sanity-check
// baseline that any structure-aware policy must beat.
func Random(n int, seed int64) (layout.Placement, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: need at least one item, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	return layout.FromOrder(rng.Perm(n))
}

// Frequency places items by descending access frequency into slots ordered
// by increasing distance from the given port (ties toward lower slots), so
// the hottest items need the fewest shifts. With the port at slot 0 this
// is the classical sorted layout; with the port at the tape center it is
// the organ-pipe layout.
func Frequency(t *trace.Trace, port int) (layout.Placement, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	n := t.NumItems
	if port < 0 || port >= n {
		return nil, fmt.Errorf("core: port %d outside [0,%d)", port, n)
	}
	// Slots sorted by distance from port; for equal distance prefer the
	// lower slot (deterministic).
	slots := make([]int, 0, n)
	slots = append(slots, port)
	for d := 1; len(slots) < n; d++ {
		if port-d >= 0 {
			slots = append(slots, port-d)
		}
		if port+d < n && len(slots) < n {
			slots = append(slots, port+d)
		}
	}
	hot := t.HotItems()
	p := make(layout.Placement, n)
	for rank, item := range hot {
		p[item] = slots[rank]
	}
	return p, nil
}

// OrganPipe is Frequency with the port at the center of the item block,
// the strongest frequency-only baseline for a center-port tape.
func OrganPipe(t *trace.Trace) (layout.Placement, error) {
	return Frequency(t, t.NumItems/2)
}
