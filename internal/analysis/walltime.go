package analysis

import (
	"go/ast"
	"path/filepath"
)

// WallTime confines wall-clock reads to the observability layer and the
// runner's timing fields. A time.Now anywhere else is a channel for
// machine speed to leak into experiment results, which must be a pure
// function of (seed, config). Experiments that measure runtime itself
// (E8) carry a dwmlint:ignore directive in their doc comment.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "confine time.Now/time.Since to internal/obs and the runner's " +
		"timing fields so wall clock never leaks into experiment results",
	Run: runWallTime,
}

// wallTimeAllowedPkgs may read the clock freely: obs exists to measure
// wall time.
var wallTimeAllowedPkgs = map[string]bool{
	"repro/internal/obs": true,
}

// wallTimeAllowedFiles maps package path to the one file that may read
// the clock: the runner records Elapsed/queue-wait timing fields, and
// the serve pool stamps queue-wait and job wall time the same way. Each
// package's pure logic lives in its other files, which stay checked.
var wallTimeAllowedFiles = map[string]string{
	"repro/internal/bench": "runner.go",
	"repro/internal/serve": "server.go",
	// wal.go times fsync latency for the serve.wal.fsync_ms histogram;
	// replay.go and fs.go stay clock-free.
	"repro/internal/wal": "wal.go",
	// The load generator measures client-side request latency; the
	// scenario plan and SLO report it feeds stay pure.
	"repro/cmd/dwmload": "main.go",
}

func runWallTime(pass *Pass) error {
	if wallTimeAllowedPkgs[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		if base := filepath.Base(pass.Fset.File(f.Pos()).Name()); base == wallTimeAllowedFiles[pass.PkgPath] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if name := fn.Name(); name == "Now" || name == "Since" {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock outside internal/obs and the runner; results must be a pure function of (seed, config)",
					name)
			}
			return true
		})
	}
	return nil
}
