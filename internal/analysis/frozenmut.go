package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FrozenMut pins the validate-then-mutate contract from DESIGN.md §13:
// a struct field annotated
//
//	rowPtr []int //dwmlint:frozen Freeze ApplyDeltas
//
// may only be written through (element assignment, copy destination,
// passed to a writing callee, or wholesale reassignment) inside the
// named sanctioned functions, inside unexported helpers reachable only
// from them, or through a locally-allocated value (construction of a
// fresh instance is not mutation — the buildCSR / spliceRows pattern).
var FrozenMut = &Analyzer{
	Name: "frozenmut",
	Doc: "flags writes to //dwmlint:frozen struct fields outside their " +
		"sanctioned functions (writes through locally-built values are " +
		"construction and stay exempt)",
	Run: runFrozenMut,
}

func runFrozenMut(pass *Pass) error {
	frozen := fieldDirectives(pass.TypesInfo, pass.Files, "frozen")
	if len(frozen) == 0 {
		return nil
	}
	callers := packageCallers(pass.TypesInfo, pass.Files)
	sanctioned := map[string]map[*types.Func]bool{}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFrozen(pass, fd, frozen, callers, sanctioned)
		}
	}
	return nil
}

func checkFrozen(pass *Pass, fd *ast.FuncDecl, frozen map[*types.Var][]string, callers map[*types.Func]map[*types.Func]bool, sanctionedCache map[string]map[*types.Func]bool) {
	info := pass.TypesInfo
	local := localAllocs(info, fd.Body)
	self, _ := info.Defs[fd.Name].(*types.Func)

	// frozenField resolves a (possibly sliced) selector expression to an
	// annotated field, honoring the local-allocation exemption.
	frozenField := func(e ast.Expr) *types.Var {
		for {
			if sl, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
				e = sl.X
				continue
			}
			break
		}
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		fld, ok := s.Obj().(*types.Var)
		if !ok {
			return nil
		}
		names, isFrozen := frozen[fld]
		if !isFrozen {
			return nil
		}
		if root := rootIdent(sel.X); root != nil {
			if obj := info.ObjectOf(root); obj != nil && local[obj] {
				return nil // construction of a fresh value
			}
		}
		if self != nil && sanctionedSet(pass, names, callers, sanctionedCache)[self] {
			return nil
		}
		return fld
	}
	report := func(pos ast.Node, fld *types.Var, names []string) {
		pass.Reportf(pos.Pos(),
			"frozen field %s written outside its sanctioned functions (%s); route the mutation through them",
			fld.Name(), strings.Join(names, ", "))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// Element write: x.f[i] = v (any assign op).
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if fld := frozenField(idx.X); fld != nil {
						report(lhs, fld, frozen[fld])
					}
					continue
				}
				// Wholesale reassignment: x.f = v.
				if fld := frozenField(lhs); fld != nil {
					report(lhs, fld, frozen[fld])
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if fld := frozenField(idx.X); fld != nil {
					report(n, fld, frozen[fld])
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if id.Name == "copy" && len(n.Args) == 2 {
						if fld := frozenField(n.Args[0]); fld != nil {
							report(n, fld, frozen[fld])
						}
					}
					return true
				}
			}
			callee := calleeFunc(info, n)
			if callee == nil || pass.Facts.MutationFree(callee) {
				return true
			}
			for i, arg := range n.Args {
				fld := frozenField(arg)
				if fld == nil {
					continue
				}
				if cf := pass.Facts.SliceFacts(callee); cf != nil {
					if pf := cf.param(i); pf != nil && pf.Written {
						report(arg, fld, frozen[fld])
					}
				}
			}
		}
		return true
	})
}

// sanctionedSet computes (and caches per sanctioned-name list) the set
// of functions allowed to write a frozen field: the named roots plus
// every unexported function reachable only from the set — an exported
// helper stays outside because external callers could reach it.
func sanctionedSet(pass *Pass, names []string, callers map[*types.Func]map[*types.Func]bool, cache map[string]map[*types.Func]bool) map[*types.Func]bool {
	key := strings.Join(names, ",")
	if s, ok := cache[key]; ok {
		return s
	}
	set := map[*types.Func]bool{}
	named := map[string]bool{}
	for _, n := range names {
		named[n] = true
	}
	var all []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			all = append(all, fn)
			if named[fn.Name()] {
				set[fn] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range all {
			if set[fn] || fn.Exported() {
				continue
			}
			cs := callers[fn]
			if len(cs) == 0 {
				continue
			}
			allSanctioned := true
			for c := range cs {
				if !set[c] && c != fn {
					allSanctioned = false
					break
				}
			}
			if allSanctioned {
				set[fn] = true
				changed = true
			}
		}
	}
	cache[key] = set
	return set
}
