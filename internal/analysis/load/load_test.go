package load

import (
	"encoding/json"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestLoadStdlibPackage(t *testing.T) {
	l := NewLoader(".")
	pkgs, err := l.Load("sort")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "sort" {
		t.Fatalf("Load(sort) returned %v", pkgs)
	}
	p := pkgs[0]
	if p.Types == nil || p.Types.Scope().Lookup("Ints") == nil {
		t.Fatal("sort.Ints not found in type-checked package")
	}
	if len(p.Info.Uses) == 0 {
		t.Fatal("no use information recorded")
	}
}

func TestLoadModulePackageResolvesImports(t *testing.T) {
	l := NewLoader(".")
	pkgs, err := l.Load("repro/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	p := pkgs[0]
	obj := p.Types.Scope().Lookup("FromTrace")
	if obj == nil {
		t.Fatal("graph.FromTrace not found")
	}
	// The trace dependency must be type-checked for FromTrace's
	// signature to resolve to a named parameter type.
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		t.Fatalf("unexpected FromTrace type %v", obj.Type())
	}
	if got := sig.Params().At(0).Type().String(); got != "*repro/internal/trace.Trace" {
		t.Fatalf("FromTrace parameter type = %s", got)
	}
}

func TestLoadCachesAcrossCalls(t *testing.T) {
	l := NewLoader(".")
	if _, err := l.Load("repro/internal/layout"); err != nil {
		t.Fatal(err)
	}
	first := l.pkgs["repro/internal/layout"]
	if _, err := l.Load("repro/internal/layout"); err != nil {
		t.Fatal(err)
	}
	if l.pkgs["repro/internal/layout"] != first {
		t.Fatal("second Load re-checked a cached package")
	}
}

func TestLoadUnknownPackageFails(t *testing.T) {
	l := NewLoader(".")
	if _, err := l.Load("repro/internal/nosuchpkg"); err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
}

// fakeGoTool installs a shell script named `go` at the front of PATH so
// the loader's exec.Command("go", ...) runs it instead of the real
// toolchain. The script appends the CGO_ENABLED value it saw to the
// returned marker file and then replays the given stdout payload.
func fakeGoTool(t *testing.T, stdout string) (marker string) {
	t.Helper()
	dir := t.TempDir()
	marker = filepath.Join(dir, "env.seen")
	payload := filepath.Join(dir, "stdout.json")
	if err := os.WriteFile(payload, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}
	script := "#!/bin/sh\necho \"CGO_ENABLED=$CGO_ENABLED\" >> \"$FAKE_GO_MARKER\"\ncat \"$FAKE_GO_STDOUT\"\n"
	if err := os.WriteFile(filepath.Join(dir, "go"), []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	t.Setenv("FAKE_GO_MARKER", marker)
	t.Setenv("FAKE_GO_STDOUT", payload)
	t.Setenv("PATH", dir+string(os.PathListSeparator)+os.Getenv("PATH"))
	return marker
}

func TestListRunsGoWithCgoDisabled(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("fake go tool is a shell script")
	}
	// One self-contained package, so Load succeeds without the real
	// toolchain: the fake returns its metadata and the loader parses and
	// type-checks the file itself.
	pkgDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(pkgDir, "p.go"), []byte("package p\n\nfunc F() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	meta, err := json.Marshal(map[string]any{
		"ImportPath": "example.com/p",
		"Dir":        pkgDir,
		"Name":       "p",
		"GoFiles":    []string{"p.go"},
	})
	if err != nil {
		t.Fatal(err)
	}
	marker := fakeGoTool(t, string(meta))
	l := NewLoader(".")
	pkgs, err := l.Load("example.com/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types.Scope().Lookup("F") == nil {
		t.Fatalf("Load through the fake go tool returned %v", pkgs)
	}
	seen, err := os.ReadFile(marker)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(seen), "CGO_ENABLED=0") {
		t.Fatalf("go list ran without CGO_ENABLED=0 in its environment; saw %q", seen)
	}
}

func TestCorruptListOutputIsWrappedError(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("fake go tool is a shell script")
	}
	fakeGoTool(t, `{"ImportPath": "example.com/broken", "GoFiles": [truncated`)
	l := NewLoader(".")
	_, err := l.Load("example.com/broken")
	if err == nil {
		t.Fatal("Load accepted corrupt go list output")
	}
	if !strings.Contains(err.Error(), "decoding go list output:") {
		t.Fatalf("corrupt go list output produced %q, want a wrapped decoding error", err)
	}
}
