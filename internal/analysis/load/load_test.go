package load

import (
	"go/types"
	"testing"
)

func TestLoadStdlibPackage(t *testing.T) {
	l := NewLoader(".")
	pkgs, err := l.Load("sort")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "sort" {
		t.Fatalf("Load(sort) returned %v", pkgs)
	}
	p := pkgs[0]
	if p.Types == nil || p.Types.Scope().Lookup("Ints") == nil {
		t.Fatal("sort.Ints not found in type-checked package")
	}
	if len(p.Info.Uses) == 0 {
		t.Fatal("no use information recorded")
	}
}

func TestLoadModulePackageResolvesImports(t *testing.T) {
	l := NewLoader(".")
	pkgs, err := l.Load("repro/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	p := pkgs[0]
	obj := p.Types.Scope().Lookup("FromTrace")
	if obj == nil {
		t.Fatal("graph.FromTrace not found")
	}
	// The trace dependency must be type-checked for FromTrace's
	// signature to resolve to a named parameter type.
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		t.Fatalf("unexpected FromTrace type %v", obj.Type())
	}
	if got := sig.Params().At(0).Type().String(); got != "*repro/internal/trace.Trace" {
		t.Fatalf("FromTrace parameter type = %s", got)
	}
}

func TestLoadCachesAcrossCalls(t *testing.T) {
	l := NewLoader(".")
	if _, err := l.Load("repro/internal/layout"); err != nil {
		t.Fatal(err)
	}
	first := l.pkgs["repro/internal/layout"]
	if _, err := l.Load("repro/internal/layout"); err != nil {
		t.Fatal(err)
	}
	if l.pkgs["repro/internal/layout"] != first {
		t.Fatal("second Load re-checked a cached package")
	}
}

func TestLoadUnknownPackageFails(t *testing.T) {
	l := NewLoader(".")
	if _, err := l.Load("repro/internal/nosuchpkg"); err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
}
