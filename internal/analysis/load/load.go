// Package load type-checks Go packages from source using only the
// standard library. It is the package loader behind cmd/dwmlint.
//
// The usual way to do this is golang.org/x/tools/go/packages, which is
// unavailable in the hermetic build environment, so load shells out to
// `go list -deps -json` for build metadata (file lists are already
// build-tag filtered and come in dependency order) and then runs
// go/parser + go/types over every package from source, standard library
// included. Everything is cached per Loader, loads are lazy, and the
// result order is the deterministic `go list` order.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// A Package is one type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader caches list metadata and type-checked packages. It is not
// safe for concurrent use.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet

	dir  string // directory `go list` runs from
	meta map[string]*listPkg
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader returns a loader that resolves patterns and import paths
// relative to dir (any directory inside the module).
func NewLoader(dir string) *Loader {
	return &Loader{
		Fset: token.NewFileSet(),
		dir:  dir,
		meta: make(map[string]*listPkg),
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
	}
}

// Load resolves the `go list` patterns and returns the matched packages
// (dependencies are type-checked too, but only matches are returned),
// in the order go list reports them.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(roots))
	for _, path := range roots {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// list runs `go list -deps -json`, merges the metadata into the cache,
// and returns the import paths that matched the patterns directly.
func (l *Loader) list(patterns []string) ([]string, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	// Analyze the pure-Go build configuration: with cgo enabled, net
	// (pulled in by net/http) imports "C", which a source-only type
	// checker cannot follow. CGO_ENABLED=0 selects the pure-Go variants
	// of those packages without changing anything this module compiles.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var roots []string
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, seen := l.meta[p.ImportPath]; !seen {
			l.meta[p.ImportPath] = p
		}
		if !p.DepOnly {
			roots = append(roots, p.ImportPath)
		}
	}
	return roots, nil
}

// load type-checks the package at the import path, loading metadata and
// dependencies on demand.
func (l *Loader) load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Name: "unsafe", Types: types.Unsafe}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	m, ok := l.meta[path]
	if !ok {
		if _, err := l.list([]string{path}); err != nil {
			return nil, err
		}
		if m, ok = l.meta[path]; !ok {
			return nil, fmt.Errorf("load: go list did not report %s", path)
		}
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	for _, imp := range m.Imports {
		if imp == "C" {
			return nil, fmt.Errorf("load: %s uses cgo, which dwmlint does not support", path)
		}
		if _, err := l.load(l.resolve(m, imp)); err != nil {
			return nil, err
		}
	}

	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	p, err := l.Check(path, files)
	if err != nil {
		return nil, err
	}
	p.Dir = m.Dir
	return p, nil
}

// resolve applies the importing package's vendor map to an import path.
func (l *Loader) resolve(m *listPkg, imp string) string {
	if mapped, ok := m.ImportMap[imp]; ok {
		return mapped
	}
	return imp
}

// Check type-checks already-parsed files as the package at path,
// resolving their imports through the loader (fetching metadata lazily —
// this is how analyzer test fixtures outside the module are checked).
// The package is cached under path.
func (l *Loader) Check(path string, files []*ast.File) (*Package, error) {
	m := l.meta[path] // nil for out-of-module fixture packages
	var errs []error
	conf := types.Config{
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) { errs = append(errs, err) },
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == "unsafe" {
				return types.Unsafe, nil
			}
			if m != nil {
				imp = l.resolve(m, imp)
			}
			p, err := l.load(imp)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		err = errs[0]
	}
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Name: tpkg.Name(), Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// ParseDir parses every non-test .go file in dir (lexical order) with
// comments, for fixture directories `go list` cannot see.
func (l *Loader) ParseDir(dir string) ([]*ast.File, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
