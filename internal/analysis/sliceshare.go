package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// SliceShare flags the PR 7 Warmstart bug class: a slice that aliases
// caller-owned memory (a slice parameter, or a slice field of a struct
// parameter like opts.Warmstart) is kept beyond the call — returned,
// stored into a field or global, or handed to a callee that retains it
// into mutable state — while also being written through. The caller's
// slice silently changes under it. Copy first: slices.Clone, a Clone
// method, or the append-to-fresh idiom are all recognized as safe.
var SliceShare = &Analyzer{
	Name: "sliceshare",
	Doc: "flags slice parameters (or struct-parameter slice fields) that are " +
		"stored or returned without a copy and also written through, mutating " +
		"the caller's memory; slices.Clone / .Clone() / append-then-return are safe",
	Run: runSliceShare,
}

func runSliceShare(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSliceShare(pass, fd)
		}
	}
	return nil
}

// perSource aggregates tracker events for one aliased value.
type perSource struct {
	src         sliceSource
	writtenPos  token.Pos // first write through the alias
	retainedPos token.Pos // first retention (field/global store)
	returnedPos token.Pos // first return of the alias
}

func checkSliceShare(pass *Pass, fd *ast.FuncDecl) {
	agg := map[string]*perSource{}
	get := func(src sliceSource) *perSource {
		k := src.key()
		if agg[k] == nil {
			agg[k] = &perSource{src: src}
		}
		return agg[k]
	}
	trackSlices(pass.TypesInfo, pass.Facts, fd, func(ev sliceEvent) {
		a := get(ev.src)
		switch ev.kind {
		case eventWritten:
			if a.writtenPos == token.NoPos {
				a.writtenPos = ev.pos
			}
		case eventRetainedField:
			if a.retainedPos == token.NoPos {
				a.retainedPos = ev.pos
			}
			// Retention into a field that other code writes through is
			// reported immediately: the caller's slice is now aliased
			// by mutable state even if this function never writes it.
			if ev.field != nil && pass.Facts.FieldElementWritten(ev.field) {
				pass.Reportf(ev.pos,
					"%s aliases the caller's slice and is stored into field %s, which is written through elsewhere; clone it first (slices.Clone)",
					ev.src.describe(), ev.field.Name())
			}
		case eventRetainedGlobal:
			if a.retainedPos == token.NoPos {
				a.retainedPos = ev.pos
			}
		case eventReturned:
			if a.returnedPos == token.NoPos {
				a.returnedPos = ev.pos
			}
		case eventPassed:
			// A mutation-free callee cannot write or retain anything.
			if pass.Facts.MutationFree(ev.callee) {
				return
			}
			cf := pass.Facts.SliceFacts(ev.callee)
			if cf == nil {
				return // unknown callee: judged optimistically
			}
			pf := cf.param(ev.argIdx)
			if pf == nil {
				return
			}
			if pf.EscapesMutable {
				pass.Reportf(ev.pos,
					"passing %s to %s stores the caller's slice in mutable state (a field that is written through); clone it first (slices.Clone)",
					ev.src.describe(), ev.callee.Name())
				return
			}
			if pf.Written && a.writtenPos == token.NoPos {
				a.writtenPos = ev.pos
			}
			if pf.Retained && a.retainedPos == token.NoPos {
				a.retainedPos = ev.pos
			}
			// pf.ReturnedAlias needs no action here: classify() already
			// propagates dirtiness through the call result.
		}
	})
	for _, a := range sortedSources(agg) {
		if a.writtenPos == token.NoPos {
			continue
		}
		switch {
		case a.retainedPos != token.NoPos:
			pass.Reportf(a.writtenPos,
				"%s aliases the caller's slice and is both written through and stored beyond the call; clone it before writing",
				a.src.describe())
		case a.returnedPos != token.NoPos:
			pass.Reportf(a.writtenPos,
				"%s aliases the caller's slice and is written through before being returned; clone it before writing",
				a.src.describe())
		}
	}
}

// sortedSources returns the aggregates in sorted-key order so
// diagnostics are deterministic regardless of map iteration order.
func sortedSources(agg map[string]*perSource) []*perSource {
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*perSource, 0, len(keys))
	for _, k := range keys {
		out = append(out, agg[k])
	}
	return out
}
