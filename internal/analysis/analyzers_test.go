package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer's fixture covers a true positive, a suppressed site, and
// a false-positive guard (see testdata/src/<name>/a.go).

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SeededRand, "seededrand")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallTime, "walltime")
}

func TestBareGo(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.BareGo, "barego")
}

func TestSliceShare(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SliceShare, "sliceshare")
}

func TestFrozenMut(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FrozenMut, "frozenmut")
}

func TestGuardedField(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GuardedField, "guardedfield")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxFlow, "ctxflow")
}

func TestByName(t *testing.T) {
	got, err := analysis.ByName("maporder, walltime")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "maporder" || got[1].Name != "walltime" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	if _, err := analysis.ByName(""); err == nil {
		t.Fatal("ByName accepted an empty selection")
	}
}
