package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow generalizes barego from "no naked goroutines" to "cancellation
// must flow": inside a function that already receives a context
// (directly, or via *http.Request), a goroutine that never references a
// context cannot be cancelled, a context.Background()/TODO() severs the
// caller's cancellation and deadline, and an unbounded for-loop that
// never consults a context can spin past shutdown. Independently of any
// parameter, discarding the cancel func of context.WithCancel/
// WithTimeout/WithDeadline leaks the context's resources.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags goroutines, unbounded loops, and context.Background()/TODO() " +
		"uses inside functions that already receive a context, and discarded " +
		"cancel functions anywhere",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlow(pass, fd)
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

func isRequestPtr(t types.Type) bool {
	return t != nil && t.String() == "*net/http.Request"
}

// mentionsContext reports whether any expression under n has type
// context.Context — a ctx identifier, a cfg.ctx selector, an r.Context()
// call, a <-ctx.Done() receive all count.
func mentionsContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if e, ok := m.(ast.Expr); ok && isContextType(info.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	hasCtx := false
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			t := info.TypeOf(f.Type)
			if isContextType(t) || isRequestPtr(t) {
				hasCtx = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if hasCtx && !mentionsContext(info, n.Call) {
				pass.Reportf(n.Pos(),
					"goroutine in a context-bearing function never references a context; thread ctx so it can observe cancellation")
			}
		case *ast.ForStmt:
			if hasCtx && n.Cond == nil && !mentionsContext(info, n.Body) {
				pass.Reportf(n.Pos(),
					"unbounded for-loop in a context-bearing function never checks a context; select on ctx.Done() or bound the loop")
			}
		case *ast.CallExpr:
			callee := calleeFunc(info, n)
			if callee == nil {
				return true
			}
			if hasCtx {
				switch callee.FullName() {
				case "context.Background", "context.TODO":
					pass.Reportf(n.Pos(),
						"%s() inside a function that already receives a context severs cancellation; thread the caller's ctx instead", callee.Name())
				}
			}
		case *ast.AssignStmt:
			// ctx, _ := context.WithCancel(...) — the cancel func must
			// not be discarded.
			if len(n.Lhs) != 2 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			switch callee.FullName() {
			case "context.WithCancel", "context.WithTimeout", "context.WithDeadline":
				if id, ok := n.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(n.Pos(),
						"cancel function of %s discarded; call it (usually via defer) to release the context", callee.Name())
				}
			}
		}
		return true
	})
}
