// Intraprocedural dataflow helpers shared by the DESIGN.md §14 analyzers
// (sliceshare, frozenmut, guardedfield, ctxflow) and by the fact store.
// The machinery is deliberately flow-insensitive: it walks one function
// body in source order over the typed AST, with no SSA construction, so
// it stays stdlib-only like the loader. That trades a little precision
// (a write anywhere in the body counts, branches are not distinguished)
// for zero dependencies and simple, auditable rules.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// sliceSource records what caller-owned memory a tracked value aliases:
// a slice-typed parameter, or a slice field of a struct(-pointer)
// parameter (the opts.Warmstart shape).
type sliceSource struct {
	param *types.Var
	field string // non-empty for a struct-parameter field alias
}

func (s sliceSource) describe() string {
	if s.field != "" {
		return s.param.Name() + "." + s.field
	}
	return "parameter " + s.param.Name()
}

func (s sliceSource) key() string {
	return s.param.Name() + "\x00" + s.field
}

// sliceEventKind classifies one observation about a tracked value.
type sliceEventKind int

const (
	// eventWritten: an element of the aliased memory is written
	// (index assignment, copy destination).
	eventWritten sliceEventKind = iota
	// eventRetainedField: the alias is stored into a struct field
	// (assignment or composite literal), so it outlives the call.
	eventRetainedField
	// eventRetainedGlobal: the alias is stored into a package-level
	// variable.
	eventRetainedGlobal
	// eventReturned: the alias is returned to the caller.
	eventReturned
	// eventPassed: the alias is passed as an argument to a named
	// function; the receiver consults the fact store for what the
	// callee does with it.
	eventPassed
)

type sliceEvent struct {
	kind   sliceEventKind
	pos    token.Pos
	src    sliceSource
	field  *types.Var  // eventRetainedField: the field stored into (may be nil if unresolved)
	callee *types.Func // eventPassed
	argIdx int         // eventPassed: the callee parameter index (receiver excluded)
}

// isSliceType reports whether t's underlying type is a slice.
func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isFreshCall reports whether a call produces memory that cannot alias
// any argument: make, new, conversions from constants, slices.Clone,
// any method or function named Clone, and append (the append-then-return
// copy idiom; see DESIGN.md §14 for why append is judged fresh).
func isFreshCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make", "new", "append":
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Clone" {
			return true
		}
	}
	return false
}

// sliceTracker follows aliases of slice parameters through one function
// body and reports events. Facts resolve what callees do with arguments
// (written / retained / returned-as-alias).
type sliceTracker struct {
	info  *types.Info
	facts *Facts
	dirty map[types.Object]sliceSource
	// structParams are fn's parameters of struct or pointer-to-struct
	// type; their slice fields alias caller memory (opts.Warmstart).
	structParams map[types.Object]bool
	emit         func(sliceEvent)
}

// trackSlices seeds the tracker with fn's slice parameters and walks the
// body, emitting one event per observation. It is the engine behind both
// the sliceshare analyzer and SliceFacts computation.
func trackSlices(info *types.Info, facts *Facts, fn *ast.FuncDecl, emit func(sliceEvent)) {
	if fn.Body == nil {
		return
	}
	tr := &sliceTracker{
		info:         info,
		facts:        facts,
		dirty:        map[types.Object]sliceSource{},
		structParams: map[types.Object]bool{},
		emit:         emit,
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				obj, ok := info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if isSliceType(obj.Type()) {
					tr.dirty[obj] = sliceSource{param: obj}
				} else if structTypeOf(obj.Type()) != nil {
					tr.structParams[obj] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, tr.visit)
}

// classify resolves an expression to the caller memory it aliases, or
// nil when it is fresh or untracked. Slicing (v[a:b]) preserves the
// alias; a call is an alias only when the callee's fact says a parameter
// is returned.
func (tr *sliceTracker) classify(e ast.Expr) *sliceSource {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := tr.info.ObjectOf(e); obj != nil {
			if src, ok := tr.dirty[obj]; ok {
				return &src
			}
		}
	case *ast.SliceExpr:
		return tr.classify(e.X)
	case *ast.SelectorExpr:
		// A slice field of a struct(-pointer) parameter aliases the
		// caller's memory just like a slice parameter does.
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return nil
		}
		obj, ok := tr.info.ObjectOf(base).(*types.Var)
		if !ok || !tr.structParams[obj] {
			return nil
		}
		if sel, ok := tr.info.Selections[e]; ok && sel.Kind() == types.FieldVal && isSliceType(sel.Obj().Type()) {
			return &sliceSource{param: obj, field: e.Sel.Name}
		}
	case *ast.CallExpr:
		if isFreshCall(tr.info, e) {
			return nil
		}
		if callee := calleeFunc(tr.info, e); callee != nil {
			if facts := tr.facts.SliceFacts(callee); facts != nil {
				for i, arg := range e.Args {
					src := tr.classify(arg)
					if src == nil {
						continue
					}
					if pf := facts.param(i); pf != nil && pf.ReturnedAlias {
						return src
					}
				}
			}
		}
	}
	return nil
}

func (tr *sliceTracker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		tr.assign(n)
	case *ast.IncDecStmt:
		if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
			if src := tr.classify(idx.X); src != nil {
				tr.emit(sliceEvent{kind: eventWritten, pos: n.Pos(), src: *src})
			}
		}
	case *ast.CallExpr:
		tr.call(n)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if src := tr.classify(res); src != nil {
				tr.emit(sliceEvent{kind: eventReturned, pos: n.Pos(), src: *src})
			}
		}
	case *ast.CompositeLit:
		tr.composite(n)
	}
	return true
}

func (tr *sliceTracker) assign(n *ast.AssignStmt) {
	// Write forms first: p[i] = v, p[i] += v, copy handled in call().
	for _, lhs := range n.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if src := tr.classify(idx.X); src != nil {
				tr.emit(sliceEvent{kind: eventWritten, pos: lhs.Pos(), src: *src})
			}
		}
	}
	// Alias propagation and retention need aligned lhs/rhs; a
	// multi-value call on the rhs produces fresh values.
	if len(n.Lhs) != len(n.Rhs) {
		for _, lhs := range n.Lhs {
			tr.clobber(lhs)
		}
		return
	}
	for i, lhs := range n.Lhs {
		src := tr.classify(n.Rhs[i])
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := tr.info.ObjectOf(lhs)
			if obj == nil {
				continue
			}
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				// Package-level variable: the alias outlives the call.
				if src != nil {
					tr.emit(sliceEvent{kind: eventRetainedGlobal, pos: lhs.Pos(), src: *src})
				}
				continue
			}
			if src != nil {
				tr.dirty[obj] = *src
			} else {
				delete(tr.dirty, obj)
			}
		case *ast.SelectorExpr:
			if src == nil {
				continue
			}
			if sel, ok := tr.info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				fld, _ := sel.Obj().(*types.Var)
				tr.emit(sliceEvent{kind: eventRetainedField, pos: lhs.Pos(), src: *src, field: fld})
			} else if obj, ok := tr.info.ObjectOf(lhs.Sel).(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
				tr.emit(sliceEvent{kind: eventRetainedGlobal, pos: lhs.Pos(), src: *src})
			}
		case *ast.IndexExpr:
			// p[i] handled above; m[k] = dirty stores into a map, which
			// is retention when the map outlives the call — treated as
			// fresh-local here (maps are rarely caller-visible in this
			// codebase and tracking them costs precision elsewhere).
		}
	}
}

// clobber removes an lhs identifier from the dirty set (it was assigned
// an untracked value).
func (tr *sliceTracker) clobber(lhs ast.Expr) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
		if obj := tr.info.ObjectOf(id); obj != nil {
			delete(tr.dirty, obj)
		}
	}
}

func (tr *sliceTracker) call(n *ast.CallExpr) {
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if _, isBuiltin := tr.info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "copy" && len(n.Args) == 2 {
				if src := tr.classify(n.Args[0]); src != nil {
					tr.emit(sliceEvent{kind: eventWritten, pos: n.Pos(), src: *src})
				}
			}
			return
		}
	}
	callee := calleeFunc(tr.info, n)
	if callee == nil {
		return
	}
	for i, arg := range n.Args {
		if src := tr.classify(arg); src != nil {
			tr.emit(sliceEvent{kind: eventPassed, pos: arg.Pos(), src: *src, callee: callee, argIdx: i})
		}
	}
}

func (tr *sliceTracker) composite(n *ast.CompositeLit) {
	st := structTypeOf(tr.info.TypeOf(n))
	if st == nil {
		return
	}
	for i, elt := range n.Elts {
		var value ast.Expr
		var fld *types.Var
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if key, ok := kv.Key.(*ast.Ident); ok {
				fld = structFieldByName(st, key.Name)
			}
		} else {
			value = elt
			if i < st.NumFields() {
				fld = st.Field(i)
			}
		}
		if src := tr.classify(value); src != nil {
			tr.emit(sliceEvent{kind: eventRetainedField, pos: value.Pos(), src: *src, field: fld})
		}
	}
}

// structTypeOf unwraps pointers and named types down to a struct type,
// or nil.
func structTypeOf(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func structFieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

// localAllocs returns the objects in fn's body that provably hold
// locally-allocated memory: assigned from a composite literal (possibly
// behind &), new, or make. Writes through such values are construction,
// not mutation of shared state — the buildCSR / spliceRows pattern.
func localAllocs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	if body == nil {
		return out
	}
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if isAllocExpr(info, rhs) {
			out[obj] = true
		} else {
			delete(out, obj)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				// var x T — zero value, locally owned.
				for _, name := range n.Names {
					if obj := info.ObjectOf(name); obj != nil {
						out[obj] = true
					}
				}
			} else if len(n.Values) == len(n.Names) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// isAllocExpr reports whether e evaluates to freshly allocated memory.
func isAllocExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return id.Name == "new" || id.Name == "make"
			}
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of a selector/index/slice
// chain (s.jobs → s, gr.cache.rowPtr[i] → gr), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// fieldDirectives scans struct declarations for per-field annotations of
// the form //dwmlint:<verb> <args...> placed on the field's line or in
// its doc comment, returning the annotated field objects with the
// directive's whitespace-separated arguments.
func fieldDirectives(info *types.Info, files []*ast.File, verb string) map[*types.Var][]string {
	prefix := directivePrefix + verb + " "
	out := map[*types.Var][]string{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				args := directiveArgs(field.Comment, prefix)
				if args == nil {
					args = directiveArgs(field.Doc, prefix)
				}
				if args == nil {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := info.Defs[name].(*types.Var); ok {
						out[obj] = args
					}
				}
			}
			return true
		})
	}
	return out
}

func directiveArgs(cg *ast.CommentGroup, prefix string) []string {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, prefix) {
			return strings.Fields(strings.TrimPrefix(c.Text, prefix))
		}
	}
	return nil
}

// holdsGuards returns the guard names a function's doc comment asserts
// are held by every caller (//dwmlint:holds <guard...>), the documented
// convention for lock-required helpers like Session.publish.
func holdsGuards(fn *ast.FuncDecl) []string {
	return directiveArgs(fn.Doc, directivePrefix+"holds ")
}

// packageCallers builds the in-package caller map: for every function or
// method declared in the files, the set of declared functions that call
// it. Used by frozenmut's "reachable only from sanctioned roots" rule.
func packageCallers(info *types.Info, files []*ast.File) map[*types.Func]map[*types.Func]bool {
	out := map[*types.Func]map[*types.Func]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(info, call)
				if callee == nil || callee.Pkg() == nil || caller.Pkg() == nil || callee.Pkg() != caller.Pkg() {
					return true
				}
				if out[callee] == nil {
					out[callee] = map[*types.Func]bool{}
				}
				out[callee][caller] = true
				return true
			})
		}
	}
	return out
}
