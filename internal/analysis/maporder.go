package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a map whose body lets the iteration
// order escape: appending to a slice that outlives the loop without a
// later sort, accumulating into a float (addition is not associative) or
// concatenating a string, or writing output directly. Go randomizes map
// iteration order per run, so any of these makes a result differ run to
// run. The approved pattern — collect the keys, sort, iterate the sorted
// slice — is recognized and never flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order escapes into results (appends " +
		"without a later sort, float/string accumulation, direct output); " +
		"the sorted-keys pattern is recognized as safe",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := collectSortCalls(pass.TypesInfo, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pass, rs, sorted)
				return true
			})
		}
	}
	return nil
}

// collectSortCalls records, per sorted object, the positions of sort.* /
// slices.Sort* calls in the function body. An append inside a map range
// is harmless when the slice is sorted after the loop.
func collectSortCalls(info *types.Info, body *ast.BlockStmt) map[types.Object][]token.Pos {
	sorted := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
			return true
		}
		if !isSortFunc(fn) {
			return true
		}
		for _, obj := range rootObjects(info, call.Args[0]) {
			sorted[obj] = append(sorted[obj], call.Pos())
		}
		return true
	})
	return sorted
}

func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// rootObjects resolves the variables an expression is built from,
// looking through parens, unary ops, conversions/wrappers like
// sort.Sort(byWeight(es)), and composite literals like byWeight{es}.
func rootObjects(info *types.Info, e ast.Expr) []types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return []types.Object{obj}
		}
	case *ast.SelectorExpr:
		if obj, _ := info.Uses[e.Sel]; obj != nil {
			return []types.Object{obj}
		}
	case *ast.UnaryExpr:
		return rootObjects(info, e.X)
	case *ast.CallExpr:
		var out []types.Object
		for _, a := range e.Args {
			out = append(out, rootObjects(info, a)...)
		}
		return out
	case *ast.CompositeLit:
		var out []types.Object
		for _, el := range e.Elts {
			out = append(out, rootObjects(info, el)...)
		}
		return out
	}
	return nil
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sorted map[types.Object][]token.Pos) {
	info := pass.TypesInfo
	declaredOutside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rs.Body.Pos() || obj.Pos() > rs.Body.End())
	}
	sortedAfterLoop := func(obj types.Object) bool {
		for _, pos := range sorted[obj] {
			if pos > rs.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			lhs := rootObjects(info, n.Lhs[0])
			if len(lhs) != 1 || !declaredOutside(lhs[0]) {
				return true
			}
			obj := lhs[0]
			switch n.Tok {
			case token.ASSIGN, token.DEFINE:
				if isAppendCall(info, n.Rhs[0]) && !sortedAfterLoop(obj) {
					pass.Reportf(n.Pos(),
						"%s is appended to in map-iteration order and never sorted afterwards; iterate sorted keys or sort %s before use",
						obj.Name(), obj.Name())
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if t := obj.Type(); isFloat(t) {
					pass.Reportf(n.Pos(),
						"float %s accumulates in map-iteration order; float addition is not associative, so iterate sorted keys",
						obj.Name())
				} else if n.Tok == token.ADD_ASSIGN && isString(obj.Type()) {
					pass.Reportf(n.Pos(),
						"string %s is built in map-iteration order; iterate sorted keys", obj.Name())
				}
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(info, call); fn != nil && isOutputFunc(fn) {
				pass.Reportf(call.Pos(),
					"%s emits output in map-iteration order; iterate sorted keys instead", fn.Name())
			}
		}
		return true
	})
}

func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isOutputFunc reports whether a call emits user-visible output: the
// fmt print family, or Write* methods on the stdlib text sinks.
func isOutputFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type().String()
	if recv != "*strings.Builder" && recv != "*bytes.Buffer" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Write")
}
