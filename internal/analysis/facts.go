package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Facts is the cross-package fact store of DESIGN.md §14. It answers
// questions about functions in other packages — does this callee write
// through its slice parameter, retain it, return an alias of it, or
// mutate anything at all — so analyzers can reason across package
// boundaries instead of allowlisting call sites per file.
//
// Facts are computed lazily from the registered packages' typed ASTs
// and memoized per function, so a whole-module dwmlint run only pays
// for the functions actually reached from a tracked value. Callees in
// unregistered packages have no facts and are judged optimistically
// (no finding), with a small built-in table covering the stdlib
// functions that matter (sort.*, slices.*).
type Facts struct {
	fset *token.FileSet
	pkgs []factPkg

	indexed bool
	funcs   map[*types.Func]funcSource

	slice     map[*types.Func]*SliceFacts
	sliceBusy map[*types.Func]bool

	fieldWritten map[*types.Var]bool
	fieldBusy    map[*types.Var]bool

	pure     map[*types.Func]bool
	pureBusy map[*types.Func]bool
}

type factPkg struct {
	files []*ast.File
	info  *types.Info
}

type funcSource struct {
	decl *ast.FuncDecl
	info *types.Info
}

// NewFacts returns an empty store; register packages with AddPackage.
func NewFacts(fset *token.FileSet) *Facts {
	return &Facts{
		fset:         fset,
		funcs:        map[*types.Func]funcSource{},
		slice:        map[*types.Func]*SliceFacts{},
		sliceBusy:    map[*types.Func]bool{},
		fieldWritten: map[*types.Var]bool{},
		fieldBusy:    map[*types.Var]bool{},
		pure:         map[*types.Func]bool{},
		pureBusy:     map[*types.Func]bool{},
	}
}

// AddPackage registers a type-checked package as a fact source.
func (f *Facts) AddPackage(files []*ast.File, info *types.Info) {
	f.pkgs = append(f.pkgs, factPkg{files: files, info: info})
	f.indexed = false
}

// index builds the object → declaration table for every registered
// package, once per registration epoch.
func (f *Facts) index() {
	if f.indexed {
		return
	}
	f.indexed = true
	for _, p := range f.pkgs {
		for _, file := range p.files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.info.Defs[fd.Name].(*types.Func); ok {
					f.funcs[fn] = funcSource{decl: fd, info: p.info}
				}
			}
		}
	}
}

// SliceParamFact summarizes what a callee does with one slice-typed
// parameter.
type SliceParamFact struct {
	// Written: an element of the parameter's backing array is written
	// (directly, via copy, or transitively through a callee).
	Written bool
	// Retained: the parameter (or an alias) is stored into a struct
	// field or package-level variable, so it outlives the call.
	Retained bool
	// ReturnedAlias: the function returns the parameter or an alias of
	// it, so the caller's result shares backing memory with the input.
	ReturnedAlias bool
	// EscapesMutable: retained into a field that is itself written
	// through somewhere — the caller's slice is now aliased by mutable
	// state. This is the PR 7 Warmstart bug shape.
	EscapesMutable bool
}

// SliceFacts holds per-parameter facts, indexed by parameter position
// (receivers excluded).
type SliceFacts struct {
	Params []SliceParamFact
}

func (s *SliceFacts) param(i int) *SliceParamFact {
	if s == nil || len(s.Params) == 0 {
		return nil
	}
	if i >= len(s.Params) {
		// Variadic callee: trailing arguments share the final
		// parameter's fact.
		i = len(s.Params) - 1
	}
	if i < 0 {
		return nil
	}
	return &s.Params[i]
}

// builtinSliceFacts covers the stdlib functions the module calls with
// slices; everything else in the stdlib is judged optimistically.
var builtinSliceFacts = map[string]*SliceFacts{
	"sort.Ints":             {Params: []SliceParamFact{{Written: true}}},
	"sort.Strings":          {Params: []SliceParamFact{{Written: true}}},
	"sort.Float64s":         {Params: []SliceParamFact{{Written: true}}},
	"sort.Slice":            {Params: []SliceParamFact{{Written: true}}},
	"sort.SliceStable":      {Params: []SliceParamFact{{Written: true}}},
	"slices.Sort":           {Params: []SliceParamFact{{Written: true}}},
	"slices.SortFunc":       {Params: []SliceParamFact{{Written: true}}},
	"slices.SortStableFunc": {Params: []SliceParamFact{{Written: true}}},
	"slices.Reverse":        {Params: []SliceParamFact{{Written: true}}},
	"slices.Clone":          {Params: []SliceParamFact{{}}},
}

// SliceFacts returns the per-parameter facts for fn, or nil when fn is
// not declared in a registered package (unknown callees are judged
// optimistically by the analyzers).
func (f *Facts) SliceFacts(fn *types.Func) *SliceFacts {
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if bf, ok := builtinSliceFacts[fn.FullName()]; ok {
		return bf
	}
	f.index()
	if cached, ok := f.slice[fn]; ok {
		return cached
	}
	src, ok := f.funcs[fn]
	if !ok {
		return nil
	}
	if f.sliceBusy[fn] {
		// Recursion: judge the cycle optimistically; the outer
		// invocation will record the fixed result.
		return nil
	}
	f.sliceBusy[fn] = true
	defer delete(f.sliceBusy, fn)

	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		f.slice[fn] = nil
		return nil
	}
	facts := &SliceFacts{Params: make([]SliceParamFact, sig.Params().Len())}
	// Map parameter objects to their positions so tracker events can be
	// attributed.
	paramIdx := map[*types.Var]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	retainedFields := map[int][]*types.Var{}
	trackSlices(src.info, f, src.decl, func(ev sliceEvent) {
		if ev.src.field != "" {
			// Facts describe slice parameters; struct-field aliases are
			// a caller-side concern handled by the analyzer directly.
			return
		}
		i, ok := paramIdx[ev.src.param]
		if !ok {
			return
		}
		pf := &facts.Params[i]
		switch ev.kind {
		case eventWritten:
			pf.Written = true
		case eventRetainedField:
			pf.Retained = true
			if ev.field != nil {
				retainedFields[i] = append(retainedFields[i], ev.field)
			}
		case eventRetainedGlobal:
			pf.Retained = true
			pf.EscapesMutable = true
		case eventReturned:
			pf.ReturnedAlias = true
		case eventPassed:
			if cf := f.SliceFacts(ev.callee); cf != nil {
				if sub := cf.param(ev.argIdx); sub != nil {
					pf.Written = pf.Written || sub.Written
					pf.Retained = pf.Retained || sub.Retained
					pf.EscapesMutable = pf.EscapesMutable || sub.EscapesMutable
				}
			}
		}
	})
	for i, fields := range retainedFields {
		for _, fld := range fields {
			if f.FieldElementWritten(fld) {
				facts.Params[i].EscapesMutable = true
			}
		}
	}
	f.slice[fn] = facts
	return facts
}

// FieldElementWritten reports whether any registered code writes through
// the given struct field's slice value — an index assignment x.f[i]=v,
// copy(x.f, …), or passing x.f to a callee that writes its parameter.
// Reassigning the whole field (x.f = v) does not count: that replaces
// the alias rather than mutating the shared backing array.
func (f *Facts) FieldElementWritten(field *types.Var) bool {
	if field == nil || !isSliceType(field.Type()) {
		return false
	}
	f.index()
	if cached, ok := f.fieldWritten[field]; ok {
		return cached
	}
	if f.fieldBusy[field] {
		return false
	}
	f.fieldBusy[field] = true
	defer delete(f.fieldBusy, field)

	written := false
	for _, p := range f.pkgs {
		if written {
			break
		}
		for _, file := range p.files {
			if written {
				break
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if f.fieldWrittenIn(p.info, fd, field) {
					written = true
					break
				}
			}
		}
	}
	f.fieldWritten[field] = written
	return written
}

// fieldWrittenIn scans one function for element writes through the
// field. Writes through locally-allocated values are construction of a
// fresh instance, not mutation of shared state, and do not count — the
// buildCSR / spliceRows pattern.
func (f *Facts) fieldWrittenIn(info *types.Info, fd *ast.FuncDecl, field *types.Var) bool {
	local := localAllocs(info, fd.Body)
	written := false
	selects := func(e ast.Expr) bool {
		if !f.selectsField(info, e, field) {
			return false
		}
		if root := rootIdent(e); root != nil {
			if obj := info.ObjectOf(root); obj != nil && local[obj] {
				return false
			}
		}
		return true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if written {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if selects(idx.X) {
						written = true
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if selects(idx.X) {
					written = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if id.Name == "copy" && len(n.Args) == 2 && selects(n.Args[0]) {
						written = true
					}
					return true
				}
			}
			callee := calleeFunc(info, n)
			if callee == nil {
				return true
			}
			for i, arg := range n.Args {
				if !selects(arg) {
					continue
				}
				if cf := f.SliceFacts(callee); cf != nil {
					if pf := cf.param(i); pf != nil && pf.Written {
						written = true
					}
				}
			}
		}
		return true
	})
	return written
}

// selectsField reports whether e is a selector (possibly sliced) whose
// resolved field object is field.
func (f *Facts) selectsField(info *types.Info, e ast.Expr, field *types.Var) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj() == field
			}
			return false
		default:
			return false
		}
	}
}

// MutationFree reports whether fn provably writes no memory that
// outlives the call: no assignments through pointers, slices, maps, or
// fields of non-local values, no channel operations, no goroutines, and
// only callees that are themselves mutation-free. Unknown callees make
// the answer false — purity must be proven, not assumed. This is how
// "graph.CSR accessors are mutation-free" propagates to other packages
// instead of being allowlisted per file.
func (f *Facts) MutationFree(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	fn = fn.Origin()
	f.index()
	if cached, ok := f.pure[fn]; ok {
		return cached
	}
	src, ok := f.funcs[fn]
	if !ok || src.decl.Body == nil {
		return false
	}
	if f.pureBusy[fn] {
		// A recursive cycle is pure if every other path is.
		return true
	}
	f.pureBusy[fn] = true
	defer delete(f.pureBusy, fn)

	local := localAllocs(src.info, src.decl.Body)
	// An object declared inside the function (and not a parameter or
	// receiver) is local by position; writes through it still need a
	// local allocation to be provably private.
	pure := true
	writeTarget := func(lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		if _, ok := lhs.(*ast.Ident); ok {
			return // rebinding a variable is always local
		}
		root := rootIdent(lhs)
		if root == nil {
			pure = false
			return
		}
		obj := src.info.ObjectOf(root)
		if obj == nil || !local[obj] {
			pure = false
		}
	}
	ast.Inspect(src.decl.Body, func(n ast.Node) bool {
		if !pure {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writeTarget(lhs)
			}
		case *ast.IncDecStmt:
			writeTarget(n.X)
		case *ast.SendStmt, *ast.GoStmt:
			pure = false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := src.info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "len", "cap", "min", "max", "make", "new", "panic", "recover", "print", "println":
					case "copy", "append", "delete", "clear":
						// Writes through an argument unless the target
						// is local; keep it simple and conservative.
						if len(n.Args) > 0 {
							writeTarget(n.Args[0])
						}
					default:
						pure = false
					}
					return true
				}
			}
			callee := calleeFunc(src.info, n)
			if callee == nil || !f.MutationFree(callee) {
				pure = false
			}
		}
		return true
	})
	f.pure[fn] = pure
	return pure
}
