package sliceshare

import "slices"

type options struct {
	warmstart []int
}

type evaluator struct {
	cur []int
}

// newEvaluator models the Warmstart bug: the caller's slice lands in a
// field that swap later writes through, so the caller's memory mutates
// behind its back.
func newEvaluator(p []int) *evaluator {
	return &evaluator{cur: p} // want `stored into field cur, which is written through elsewhere`
}

func (e *evaluator) swap(i, j int) {
	e.cur[i], e.cur[j] = e.cur[j], e.cur[i]
}

// anneal shows the struct-parameter path: opts.warmstart is written in
// place and then escapes through the return value.
func anneal(opts options) []int {
	cur := opts.warmstart
	cur[0] = 1 // want `written through before being returned`
	return cur
}

var sink []int

// keep writes through the parameter and parks it in a global.
func keep(p []int) {
	p[0] = 9 // want `written through and stored beyond the call`
	sink = p
}

// ingest is one call away from the bug: absorb retains its argument in
// mutable state, so handing it the caller's slice is just as bad.
func ingest(e *evaluator, p []int) {
	e.absorb(p) // want `stores the caller's slice in mutable state`
}

func (e *evaluator) absorb(p []int) {
	e.cur = p // want `stored into field cur, which is written through elsewhere`
}

// adopt exercises suppression: ownership transfer is the documented
// contract, so the retention is deliberate.
func adopt(e *evaluator, p []int) {
	//dwmlint:ignore sliceshare fixture: the caller hands over ownership of p by contract
	e.cur = p
}

// cloneFirst must not fire: the retained slice is a private copy.
func cloneFirst(e *evaluator, p []int) {
	e.cur = slices.Clone(p)
}

// appendFresh must not fire: appending to a fresh slice never aliases p,
// so writing and returning the result is safe.
func appendFresh(p []int) []int {
	out := append([]int(nil), p...)
	out[0] = 1
	return out
}

// readOnly must not fire: returning without writing is plain aliasing.
func readOnly(p []int) []int {
	return p
}
