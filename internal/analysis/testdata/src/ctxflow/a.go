package ctxflow

import "context"

func step() {}

// fanout: the first goroutine can never observe cancellation; the second
// references ctx and is fine.
func fanout(ctx context.Context, work func()) {
	go work() // want `goroutine in a context-bearing function never references a context`
	go func() {
		<-ctx.Done()
		work()
	}()
}

// spin never consults the context it was handed.
func spin(ctx context.Context) {
	for { // want `unbounded for-loop in a context-bearing function never checks a context`
		step()
	}
}

// poll must not fire: the loop selects on ctx.Done().
func poll(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			step()
		}
	}
}

// sever drops the caller's cancellation and deadline on the floor.
func sever(ctx context.Context, f func(context.Context)) {
	f(context.Background()) // want `Background\(\) inside a function that already receives a context severs cancellation`
}

// leak discards the cancel func, leaking the derived context's timer and
// goroutine. This fires even without a context parameter in scope.
func leak(parent context.Context) context.Context {
	cctx, _ := context.WithCancel(parent) // want `cancel function of WithCancel discarded`
	return cctx
}

// noCtx must not fire: without a context parameter there is nothing to
// thread — naked goroutines are barego's business.
func noCtx(work func()) {
	go work()
}

// drain exercises suppression.
func drain(ctx context.Context, done func()) {
	//dwmlint:ignore ctxflow fixture: the drain goroutine must outlive cancellation by design
	go done()
}
