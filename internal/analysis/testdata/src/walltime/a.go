package walltime

import "time"

// measure: both wall-clock reads fire outside the allowed locations.
func measure() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// suppressedTiming shows the function-scope escape hatch: one directive
// in the doc comment covers every read in the body.
//
//dwmlint:ignore walltime fixture: this experiment measures runtime itself
func suppressedTiming() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// pureClockMath must not fire: constructing and comparing time values
// without reading the clock is fine.
func pureClockMath(d time.Duration) time.Time {
	epoch := time.Unix(0, 0)
	return epoch.Add(d)
}
