package guardedfield

import "sync"

type server struct {
	mu    sync.Mutex
	jobs  map[string]int //dwmlint:guard mu
	count int            //dwmlint:guard mu
}

// get must not fire: deferred unlock holds the lock to scope end.
func get(s *server, k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[k]
}

// admit must not fire: the early-exit unlock inside the if-block belongs
// to the aborting path and does not end the hold for the fall-through
// accesses (the serve.Server handlePlace pattern).
func admit(s *server, k string) bool {
	s.mu.Lock()
	if s.count > 10 {
		s.mu.Unlock()
		return false
	}
	s.count++
	s.jobs[k] = s.count
	s.mu.Unlock()
	return true
}

// racy reads the guarded field with no lock at all.
func racy(s *server) int {
	return s.count // want `field count is guarded by mu but accessed without holding it`
}

// stale accesses the field after the unlock.
func stale(s *server) int {
	s.mu.Lock()
	n := s.count
	s.mu.Unlock()
	s.jobs["x"] = n // want `field jobs is guarded by mu but accessed without holding it`
	return n
}

// spawn shows that closures are independent scopes: the goroutine runs
// after Unlock, so it must take the lock itself.
func spawn(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.count++ // want `field count is guarded by mu but accessed without holding it`
	}()
}

// bump documents its contract instead of locking: callers hold s.mu.
//
//dwmlint:holds mu
func bump(s *server) {
	s.count++
}

// newServer must not fire: construction of a fresh value is not
// shared-state access.
func newServer() *server {
	s := &server{jobs: map[string]int{}}
	s.count = 1
	return s
}

// report exercises suppression.
func report(s *server) int {
	//dwmlint:ignore guardedfield fixture: approximate metric read, staleness is acceptable
	return s.count
}
