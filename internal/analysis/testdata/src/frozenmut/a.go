package frozenmut

type csr struct {
	rowPtr []int //dwmlint:frozen applyDeltas
	n      int
}

// applyDeltas is the sanctioned mutator.
func applyDeltas(c *csr, v int) {
	c.rowPtr[0] = v
	bump(c)
}

// bump is unexported and called only from applyDeltas, so the sanction
// extends to it.
func bump(c *csr) {
	c.rowPtr[1]++
}

// corrupt writes the frozen field outside the sanctioned set, in every
// shape the analyzer knows: element write, copy destination, wholesale
// reassignment.
func corrupt(c *csr, src []int) {
	c.rowPtr[0] = 7     // want `frozen field rowPtr written outside its sanctioned functions`
	copy(c.rowPtr, src) // want `frozen field rowPtr written outside its sanctioned functions`
	c.rowPtr = nil      // want `frozen field rowPtr written outside its sanctioned functions`
}

// fill writes through its slice parameter, so passing the frozen field
// to it is a mutation by proxy.
func fill(p []int) {
	for i := range p {
		p[i] = i
	}
}

func smear(c *csr) {
	fill(c.rowPtr) // want `frozen field rowPtr written outside its sanctioned functions`
}

// Reset is exported: external callers could reach it, so it stays
// outside the sanctioned set even though nothing in this package calls
// it.
func Reset(c *csr) {
	c.rowPtr = c.rowPtr[:0] // want `frozen field rowPtr written outside its sanctioned functions`
}

// build must not fire: writes through a locally-allocated value are
// construction, not mutation of shared state.
func build(n int) *csr {
	c := &csr{rowPtr: make([]int, n)}
	c.rowPtr[0] = n
	return c
}

// total must not fire: reads are always allowed.
func total(c *csr) int {
	t := 0
	for _, v := range c.rowPtr {
		t += v
	}
	return t
}

// repair exercises suppression.
func repair(c *csr) {
	//dwmlint:ignore frozenmut fixture: invariant repair in a test helper is deliberate
	c.rowPtr[0] = 0
}
