package maporder

import (
	"fmt"
	"io"
	"sort"
)

// edgesNoSort mirrors graph.Edges with the sort deleted — the committed
// code keeps the sort; this fixture is the analyzer-level proof that
// removing it fails the lint (ISSUE 3 acceptance).
func edgesNoSort(m map[int]int64) []int {
	var es []int
	for k := range m {
		es = append(es, k) // want `es is appended to in map-iteration order and never sorted`
	}
	return es
}

// floatAccum and stringAccum: order-dependent accumulation. Float
// addition is not associative; string concatenation is not commutative.
func floatAccum(m map[string]float64) (float64, string) {
	var sum float64
	var names string
	for _, v := range m {
		sum += v // want `float sum accumulates in map-iteration order`
	}
	for k := range m {
		names += k // want `string names is built in map-iteration order`
	}
	return sum, names
}

// printsInMapOrder: output emitted directly from the loop body.
func printsInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `Printf emits output in map-iteration order`
	}
}

// suppressed: a justified ignore keeps a deliberate unspecified-order
// collection out of the report.
func suppressed(m map[int]int64) []int {
	var peers []int
	for k := range m {
		//dwmlint:ignore maporder fixture: consumer treats peers as an unordered set
		peers = append(peers, k)
	}
	return peers
}

// renderUnsortedSnapshot mirrors the bug the obs.Snapshot determinism
// test guards against at runtime: rendering a metrics map straight into
// an exposition writer, where Go's randomized map order would make two
// identical snapshots differ byte-for-byte. The committed
// Format/WriteProm sort their keys first (see renderSortedSnapshot);
// this is the analyzer-level pin that deleting the sort fails the lint.
func renderUnsortedSnapshot(w io.Writer, counters map[string]int64) {
	for name, v := range counters {
		fmt.Fprintf(w, "%s %d\n", name, v) // want `Fprintf emits output in map-iteration order`
	}
}

// renderSortedSnapshot is the approved exposition pattern — the shape of
// obs.Snapshot.Format and WriteProm — and must not fire.
func renderSortedSnapshot(w io.Writer, counters map[string]int64) {
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, counters[name])
	}
}

// sortedKeys is the approved pattern and must not fire: collect the
// keys, sort, then iterate the sorted slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// commutativeOK must not fire: integer sums and counts commute, map and
// indexed writes land in keyed slots, and loop-local slices die each
// iteration.
func commutativeOK(m map[int]int64, n int) (int64, []int64) {
	var total int64
	hist := make([]int64, n)
	for k, v := range m {
		total += v
		hist[k%n] = v
		local := []int64{v}
		_ = local
	}
	return total, hist
}
