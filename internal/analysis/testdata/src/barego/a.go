package barego

import "sync"

// fireAndForget: a naked goroutine with no ordering or cancellation
// story.
func fireAndForget(work func()) {
	go work() // want `go statement outside the runner's parMap`
}

// suppressed: an indexed fan-out with a justification.
func suppressed(jobs []func() int) []int {
	out := make([]int, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		//dwmlint:ignore barego fixture: results land in index-i slots, join below
		go func(i int, j func() int) {
			defer wg.Done()
			out[i] = j()
		}(i, j)
	}
	wg.Wait()
	return out
}

// sequential must not fire: no goroutines at all, and a deferred call
// is not a go statement.
func sequential(jobs []func() int) []int {
	out := make([]int, 0, len(jobs))
	for _, j := range jobs {
		defer j()
		out = append(out, j())
	}
	return out
}
