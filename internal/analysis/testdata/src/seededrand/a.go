package seededrand

import (
	"math/rand"
	"time"
)

// globalDraws exercise the true positives: package-level functions draw
// from the process-global source.
func globalDraws() (int, float64) {
	a := rand.Intn(6)                  // want `rand\.Intn draws from the process-global source`
	b := rand.Float64()                // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return a, b
}

// timeSeeded exercises the wall-clock-seed positive: the constructor is
// fine, its seed is not.
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall clock seeds rand\.NewSource`
}

// suppressed shows the escape hatch: a justified ignore on the line
// above silences the diagnostic.
func suppressed() int {
	//dwmlint:ignore seededrand fixture: demonstrating the suppression syntax
	return rand.Intn(6)
}

// threaded is the approved pattern and must not fire: an explicit seed
// builds the source, and all draws go through the threaded *rand.Rand.
func threaded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}
