package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GuardedField enforces lock annotations: a struct field declared as
//
//	jobs map[string]*job //dwmlint:guard mu
//
// may only be read or written while the sibling mutex field mu is held
// in the same function — a mu.Lock() (or RLock) textually before the
// access with no intervening Unlock, or a deferred Unlock. Two escape
// hatches keep the rule honest: a //dwmlint:holds mu doc directive marks
// helpers whose documented contract is "callers hold mu" (the
// Session.publish pattern), and accesses through a locally-allocated
// value are construction, not shared-state access.
//
// The check is per function scope and flow-insensitive: a lock anywhere
// before the access counts, so conditional locking can under-report but
// never false-positives on the straight-line code this module writes.
// Function literals are independent scopes — a closure that runs later
// must take the lock itself.
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc: "flags reads/writes of //dwmlint:guard fields outside a Lock/Unlock " +
		"interval of the named mutex in the same function scope " +
		"(//dwmlint:holds on a helper asserts its callers hold the lock)",
	Run: runGuardedField,
}

func runGuardedField(pass *Pass) error {
	guards := fieldDirectives(pass.TypesInfo, pass.Files, "guard")
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			holds := map[string]bool{}
			for _, g := range holdsGuards(fd) {
				holds[g] = true
			}
			checkGuardScope(pass, fd.Body, guards, holds)
		}
	}
	return nil
}

// lockEvent is one mutex operation in a scope.
type lockEvent struct {
	pos   token.Pos
	delta int // +1 lock, -1 unlock
}

type lockKey struct {
	root  types.Object
	guard string
}

// guardAccess is one read/write of a guarded field.
type guardAccess struct {
	pos   token.Pos
	field *types.Var
	root  types.Object
	guard string
}

// checkGuardScope analyzes one function scope. Nested function literals
// are collected and recursed into as scopes of their own (without holds
// assertions — a closure cannot carry a doc directive).
func checkGuardScope(pass *Pass, body *ast.BlockStmt, guards map[*types.Var][]string, holds map[string]bool) {
	info := pass.TypesInfo
	local := localAllocs(info, body)
	locks := map[lockKey][]lockEvent{}
	deferred := map[lockKey]bool{}
	var accesses []guardAccess
	var nested []*ast.FuncLit
	deferredCalls := map[*ast.CallExpr]bool{}
	abortCalls := abortPathCalls(body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n)
			return false
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				break
			}
			var delta int
			switch sel.Sel.Name {
			case "Lock", "RLock":
				delta = 1
			case "Unlock", "RUnlock":
				delta = -1
			default:
				return true
			}
			// The receiver must be root.guard (s.mu.Lock()).
			guardSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			root := rootIdent(guardSel.X)
			if root == nil {
				return true
			}
			obj := info.ObjectOf(root)
			if obj == nil {
				return true
			}
			k := lockKey{root: obj, guard: guardSel.Sel.Name}
			if delta < 0 && deferredCalls[n] {
				// defer mu.Unlock(): the lock stays held to scope end.
				deferred[k] = true
				return true
			}
			if delta < 0 && abortCalls[n] {
				// Unlock on an early-exit path (if err { mu.Unlock();
				// return }): the fall-through path is still locked, so
				// this unlock must not end the interval.
				return true
			}
			locks[k] = append(locks[k], lockEvent{pos: n.Pos(), delta: delta})
			return true
		case *ast.SelectorExpr:
			s, ok := info.Selections[n]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			fld, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			names, guarded := guards[fld]
			if !guarded || len(names) == 0 {
				return true
			}
			root := rootIdent(n.X)
			if root == nil {
				return true
			}
			obj := info.ObjectOf(root)
			if obj == nil {
				return true
			}
			accesses = append(accesses, guardAccess{pos: n.Pos(), field: fld, root: obj, guard: names[0]})
			return true
		}
		return true
	})

	for k := range locks {
		sort.Slice(locks[k], func(i, j int) bool { return locks[k][i].pos < locks[k][j].pos })
	}
	for _, a := range accesses {
		if holds[a.guard] || local[a.root] {
			continue
		}
		k := lockKey{root: a.root, guard: a.guard}
		if deferred[k] && heldBefore(locks[k], a.pos) || !deferred[k] && heldAt(locks[k], a.pos) {
			continue
		}
		pass.Reportf(a.pos,
			"field %s is guarded by %s but accessed without holding it (lock %s.%s, or mark the helper //dwmlint:holds %s)",
			a.field.Name(), a.guard, a.root.Name(), a.guard, a.guard)
	}
	for _, fl := range nested {
		checkGuardScope(pass, fl.Body, guards, map[string]bool{})
	}
}

// abortPathCalls collects the call expressions that sit in a block
// terminated by return, break, continue, goto, or panic — excluding the
// scope's own body, whose trailing return is the normal exit. An Unlock
// there belongs to an early-exit path and does not end the hold for the
// code after the block.
func abortPathCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	mark := func(stmts []ast.Stmt) {
		if len(stmts) == 0 || !isTerminatingStmt(stmts[len(stmts)-1]) {
			return
		}
		for _, st := range stmts {
			if es, ok := st.(*ast.ExprStmt); ok {
				if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
					out[call] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if n != body {
				mark(n.List)
			}
		case *ast.CaseClause:
			mark(n.Body)
		case *ast.CommClause:
			mark(n.Body)
		}
		return true
	})
	return out
}

func isTerminatingStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// heldAt reports whether the lock depth is positive just before pos.
func heldAt(events []lockEvent, pos token.Pos) bool {
	depth := 0
	for _, e := range events {
		if e.pos >= pos {
			break
		}
		depth += e.delta
	}
	return depth > 0
}

// heldBefore is heldAt for scopes with a deferred Unlock: any Lock
// before the access keeps it held (the unlock only runs at scope exit).
func heldBefore(events []lockEvent, pos token.Pos) bool {
	for _, e := range events {
		if e.pos < pos && e.delta > 0 {
			return true
		}
	}
	return false
}
