package analysis

import (
	"go/ast"
	"path/filepath"
)

// BareGo flags naked `go` statements. All experiment concurrency is
// supposed to flow through the runner's parMap so it stays
// order-preserving (results land in input-indexed slots) and cancellable
// (workers drain a channel the runner closes). A goroutine launched
// anywhere else needs a justification showing it preserves both
// properties.
var BareGo = &Analyzer{
	Name: "barego",
	Doc: "flag go statements outside the runner's parMap so all " +
		"concurrency stays order-preserving and cancellable",
	Run: runBareGo,
}

// bareGoAllowedFiles maps package path to the file hosting the approved
// worker-pool implementation: the bench runner's parMap and the serve
// job pool, which preserves determinism the same way (workers are
// interchangeable channel consumers; results are pure functions of the
// job request).
var bareGoAllowedFiles = map[string]string{
	"repro/internal/bench": "runner.go",
	"repro/internal/serve": "server.go",
	// The load generator's worker pool mirrors parMap: interchangeable
	// consumers of one planned-request channel, results keyed by request
	// index, so scheduling never changes the report's content.
	"repro/cmd/dwmload": "main.go",
}

func runBareGo(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		if base := filepath.Base(pass.Fset.File(f.Pos()).Name()); base == bareGoAllowedFiles[pass.PkgPath] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"go statement outside the runner's parMap; route concurrency through parMap or justify order preservation and cancellation")
			}
			return true
		})
	}
	return nil
}
