package analysis

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids randomness that does not flow from an explicit
// seed. The package-level math/rand functions draw from the shared
// global source, so their output depends on every other draw in the
// process — under RunParallel that means worker count and scheduling
// would leak into tables. Constructing a *rand.Rand from a wall-clock
// seed breaks reproducibility the same way from the other end.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand state and time-seeded sources: every RNG " +
		"must be a *rand.Rand built from an explicit seed (derived via " +
		"bench.DeriveSeed for per-row streams) and threaded as a parameter",
	Run: runSeededRand,
}

// randConstructors are the math/rand (and v2) package-level functions
// that build an explicit source instead of drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runSeededRand(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isRandPkg(fn.Pkg()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are the approved pattern
			}
			if !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"%s.%s draws from the process-global source; thread a *rand.Rand built from an explicit seed instead",
					fn.Pkg().Name(), fn.Name())
				return true
			}
			if wall := findWallClockRead(pass.TypesInfo, call.Args); wall != nil {
				pass.Reportf(wall.Pos(),
					"wall clock seeds %s.%s; derive the seed from the experiment seed so runs are reproducible",
					fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}

func isRandPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

// findWallClockRead returns the first time.Now call anywhere in the
// argument expressions, nil if there is none. It does not descend into
// nested math/rand constructor calls — those report for themselves, so
// rand.New(rand.NewSource(time.Now().UnixNano())) yields one diagnostic
// at the innermost constructor, not two.
func findWallClockRead(info *types.Info, args []ast.Expr) ast.Node {
	var found ast.Node
	for _, arg := range args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if isRandPkg(fn.Pkg()) && randConstructors[fn.Name()] {
				return false
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = call
				return false
			}
			return true
		})
		if found != nil {
			break
		}
	}
	return found
}
