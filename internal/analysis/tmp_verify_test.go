package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func TestTmpVerifyMutationFreeGlobalWrite(t *testing.T) {
	src := `package p

var g []int
var total int

func stash(p []int) { g = p }
func bump()         { total++ }
func writesParam(p []int) { p[0] = 1 }

func caller(p []int) { stash(p) }
func mutateGlobal() { g[0] = 2 }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	facts := NewFacts(fset)
	facts.AddPackage([]*ast.File{f}, info)
	get := func(name string) *types.Func {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return info.Defs[fd.Name].(*types.Func)
			}
		}
		t.Fatalf("no func %s", name)
		return nil
	}
	t.Logf("MutationFree(stash)=%v (writes global g)", facts.MutationFree(get("stash")))
	t.Logf("MutationFree(bump)=%v (increments global total)", facts.MutationFree(get("bump")))
	t.Logf("MutationFree(writesParam)=%v (writes param element)", facts.MutationFree(get("writesParam")))
	sf := facts.SliceFacts(get("stash"))
	t.Logf("SliceFacts(stash).Params[0]=%+v", sf.Params[0])
}
