// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against `// want` expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in testdata/src/<pkg>/ and annotates the lines where
// diagnostics are expected:
//
//	rand.Intn(6) // want `draws from the process-global source`
//
// The string is a regexp matched against the diagnostic message; several
// backquoted or double-quoted expectations may follow one want. Lines
// with a dwmlint:ignore directive exercise suppression: the diagnostic
// is filtered before matching, so a suppressed site carries no want.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// expectation is one want pattern waiting to be matched.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package under filepath.Join(testdata, "src"),
// applies the analyzer, and reports mismatches between diagnostics and
// want expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loader := load.NewLoader(".")
		files, err := loader.ParseDir(dir)
		if err != nil {
			t.Errorf("%s: %v", pkg, err)
			continue
		}
		checked, err := loader.Check(pkg, files)
		if err != nil {
			t.Errorf("%s: %v", pkg, err)
			continue
		}
		facts := analysis.NewFacts(loader.Fset)
		facts.AddPackage(checked.Files, checked.Info)
		diags, err := analysis.RunPackage(loader.Fset, checked.Files, pkg, checked.Types, checked.Info, []*analysis.Analyzer{a}, facts)
		if err != nil {
			t.Errorf("%s: %v", pkg, err)
			continue
		}
		wants, err := parseWants(loader, checked)
		if err != nil {
			t.Errorf("%s: %v", pkg, err)
			continue
		}
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			if !claim(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matched want %q", pkg, filepath.Base(w.file), w.line, w.re)
			}
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches the message.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRe = regexp.MustCompile("// want (.*)$")

func parseWants(loader *load.Loader, pkg *load.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a want payload: whitespace-separated backquoted
// or double-quoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted want pattern")
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted want pattern")
			}
			p, err := strconv.Unquote(s[:end+2])
			if err != nil {
				return nil, fmt.Errorf("bad quoted want pattern %s: %w", s[:end+2], err)
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be backquoted or double-quoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no pattern")
	}
	return out, nil
}
