// Package analysis is the home of dwmlint, the project's determinism
// contract checker. It provides a small analyzer framework modeled on
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic), built
// only on the standard library's go/ast and go/types so the module stays
// dependency-free in the hermetic build environment. The API mirrors
// x/tools closely enough that a later PR can swap the framework for the
// real one without rewriting the analyzers.
//
// The contract the analyzers enforce is the one DESIGN.md §9 documents:
// experiment results must be a pure function of (seed, config) — no
// global RNG state, no wall-clock reads, no map-iteration order, and no
// unstructured concurrency may influence a table row.
//
// A diagnostic at a site that is deliberately exempt is suppressed with
// an inline justification comment:
//
//	//dwmlint:ignore <analyzer> <justification>
//
// placed on the flagged line, on the line immediately above it, or in
// the doc comment of the enclosing function (which then covers the whole
// function body). A directive without a justification is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one rule of the determinism contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// dwmlint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the rule, shown by
	// `dwmlint -list`.
	Doc string
	// Run applies the rule to one package, reporting findings through
	// the Pass.
	Run func(*Pass) error
}

// All returns the dwmlint analyzer suite in stable order. The first four
// are the syntactic determinism checks from DESIGN.md §9; the last four
// are the dataflow analyzers from DESIGN.md §14.
func All() []*Analyzer {
	return []*Analyzer{SeededRand, MapOrder, WallTime, BareGo, SliceShare, FrozenMut, GuardedField, CtxFlow}
}

// ByName resolves a comma-separated analyzer list; an unknown name is an
// error listing the valid ones.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			var valid []string
			for _, a := range All() {
				valid = append(valid, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(valid, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// A Pass connects one analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts answers cross-package questions (is this parameter written,
	// retained, returned by the callee?). Never nil inside Run.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with its suppression state resolved by
// ApplySuppressions.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed is set when a dwmlint:ignore directive covers the
	// finding; Justification carries the directive's reason.
	Suppressed    bool
	Justification string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// RunPackage applies the analyzers to one package and returns the
// findings with suppression directives from the package's own files
// already applied, sorted by position. facts supplies cross-package
// conclusions; nil means an empty store (every callee judged
// optimistically).
func RunPackage(fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFacts(fset)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			PkgPath:   pkgPath,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkgPath, a.Name, err)
		}
	}
	diags = append(diags, ApplySuppressions(fset, files, diags)...)
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreDirective is one parsed dwmlint:ignore comment, together with
// the source extent it binds to.
type ignoreDirective struct {
	analyzer      string
	justification string
	file          string
	// line is the line the directive comment sits on; groupEnd is the
	// last line of its comment group (a stacked block of directives
	// above a statement all cover the statement).
	line     int
	groupEnd int
	// doc marks a directive living in a declaration's doc comment; it
	// then covers exactly [declStart, declEnd] and nothing else.
	doc bool
	// declStart/declEnd bound the declaration the directive binds to:
	// the documented declaration for doc directives, the enclosing
	// declaration otherwise. Zero when the directive floats between
	// declarations.
	declStart, declEnd int
}

const (
	ignorePrefix    = "//dwmlint:ignore"
	directivePrefix = "//dwmlint:"
)

// directiveVerbs are the comment directives dwmlint understands. guard,
// frozen and holds are annotations consumed by the dataflow analyzers
// (DESIGN.md §14); ignore is the suppression directive.
var directiveVerbs = map[string]bool{
	"ignore": true,
	"guard":  true,
	"frozen": true,
	"holds":  true,
}

// knownAnalyzer reports whether name names an analyzer in the suite.
func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

func validAnalyzerNames() string {
	var valid []string
	for _, a := range All() {
		valid = append(valid, a.Name)
	}
	return strings.Join(valid, ", ")
}

// declLineRange is the line extent of one top-level declaration.
type declLineRange struct {
	start, end int
	doc        *ast.CommentGroup
}

// parseDirectives extracts every dwmlint:ignore directive from the
// files and resolves the extent each one binds to. Malformed directives
// — no analyzer name, no justification, an analyzer name that does not
// exist, or an unknown dwmlint: verb — are returned as diagnostics so a
// bad directive can never silence a finding.
func parseDirectives(fset *token.FileSet, files []*ast.File) (list []ignoreDirective, bad []Diagnostic) {
	for _, f := range files {
		var decls []declLineRange
		for _, decl := range f.Decls {
			r := declLineRange{
				start: fset.Position(decl.Pos()).Line,
				end:   fset.Position(decl.End()).Line,
			}
			switch d := decl.(type) {
			case *ast.FuncDecl:
				r.doc = d.Doc
			case *ast.GenDecl:
				r.doc = d.Doc
			}
			decls = append(decls, r)
		}
		for _, cg := range f.Comments {
			groupEnd := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(strings.TrimPrefix(c.Text, directivePrefix), " ")
				if !directiveVerbs[verb] {
					bad = append(bad, Diagnostic{
						Analyzer: "dwmlint",
						Pos:      pos,
						Message:  fmt.Sprintf("unknown directive dwmlint:%s (valid: ignore, guard, frozen, holds)", verb),
					})
					continue
				}
				if verb != "ignore" {
					continue
				}
				name, justification, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" || strings.TrimSpace(justification) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "dwmlint",
						Pos:      pos,
						Message:  "dwmlint:ignore directive needs an analyzer name and a justification",
					})
					continue
				}
				if !knownAnalyzer(name) {
					bad = append(bad, Diagnostic{
						Analyzer: "dwmlint",
						Pos:      pos,
						Message:  fmt.Sprintf("dwmlint:ignore names unknown analyzer %q (valid: %s)", name, validAnalyzerNames()),
					})
					continue
				}
				dir := ignoreDirective{
					analyzer:      name,
					justification: strings.TrimSpace(justification),
					file:          pos.Filename,
					line:          pos.Line,
					groupEnd:      groupEnd,
				}
				for _, r := range decls {
					if r.doc == cg {
						dir.doc = true
						dir.declStart, dir.declEnd = r.start, r.end
						break
					}
					if pos.Line >= r.start && pos.Line <= r.end {
						dir.declStart, dir.declEnd = r.start, r.end
						break
					}
				}
				list = append(list, dir)
			}
		}
	}
	return list, bad
}

// covers reports whether the directive suppresses a finding at the given
// line of its file.
func (dir ignoreDirective) covers(line int) bool {
	if dir.doc {
		// A doc-comment directive covers exactly the declaration it
		// documents — never the one after it, even when the documented
		// body is empty.
		return line >= dir.declStart && line <= dir.declEnd
	}
	// An inline directive covers its own line or the line directly below
	// its comment group (so stacked directives for several analyzers all
	// reach the statement under them) — but never across a declaration
	// boundary: a trailing directive on a one-line method must not leak
	// onto the next declaration.
	if dir.line != line && dir.groupEnd != line-1 {
		return false
	}
	if dir.declStart != 0 && (line < dir.declStart || line > dir.declEnd) {
		return false
	}
	return true
}

// ApplySuppressions marks diagnostics covered by dwmlint:ignore
// directives in the given files (same line, a directive block directly
// above, or the doc comment of the enclosing declaration) and returns
// extra diagnostics for malformed directives. The input slice is
// modified in place.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	directives, bad := parseDirectives(fset, files)
	for i := range diags {
		d := &diags[i]
		for _, dir := range directives {
			if dir.analyzer != d.Analyzer || dir.file != d.Pos.Filename {
				continue
			}
			if dir.covers(d.Pos.Line) {
				d.Suppressed = true
				d.Justification = dir.justification
				break
			}
		}
	}
	return bad
}

// isTestFile reports whether the file is a _test.go file; the contract
// governs experiment code, not tests.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.File(f.Pos()).Name(), "_test.go")
}

// calleeFunc resolves the called function (or method) of a call
// expression, nil when the callee is not a named function — a function
// literal, a conversion, or a builtin.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
