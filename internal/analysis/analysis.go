// Package analysis is the home of dwmlint, the project's determinism
// contract checker. It provides a small analyzer framework modeled on
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic), built
// only on the standard library's go/ast and go/types so the module stays
// dependency-free in the hermetic build environment. The API mirrors
// x/tools closely enough that a later PR can swap the framework for the
// real one without rewriting the analyzers.
//
// The contract the analyzers enforce is the one DESIGN.md §9 documents:
// experiment results must be a pure function of (seed, config) — no
// global RNG state, no wall-clock reads, no map-iteration order, and no
// unstructured concurrency may influence a table row.
//
// A diagnostic at a site that is deliberately exempt is suppressed with
// an inline justification comment:
//
//	//dwmlint:ignore <analyzer> <justification>
//
// placed on the flagged line, on the line immediately above it, or in
// the doc comment of the enclosing function (which then covers the whole
// function body). A directive without a justification is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one rule of the determinism contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// dwmlint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the rule, shown by
	// `dwmlint -list`.
	Doc string
	// Run applies the rule to one package, reporting findings through
	// the Pass.
	Run func(*Pass) error
}

// All returns the dwmlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{SeededRand, MapOrder, WallTime, BareGo}
}

// ByName resolves a comma-separated analyzer list; an unknown name is an
// error listing the valid ones.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			var valid []string
			for _, a := range All() {
				valid = append(valid, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(valid, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// A Pass connects one analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with its suppression state resolved by
// ApplySuppressions.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed is set when a dwmlint:ignore directive covers the
	// finding; Justification carries the directive's reason.
	Suppressed    bool
	Justification string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// RunPackage applies the analyzers to one package and returns the
// findings with suppression directives from the package's own files
// already applied, sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			PkgPath:   pkgPath,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkgPath, a.Name, err)
		}
	}
	diags = append(diags, ApplySuppressions(fset, files, diags)...)
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreDirective is one parsed dwmlint:ignore comment.
type ignoreDirective struct {
	analyzer      string
	justification string
	file          string
	line          int
}

const ignorePrefix = "//dwmlint:ignore"

// parseDirectives extracts every dwmlint:ignore directive from the
// files. Malformed directives (no analyzer name or no justification) are
// returned as diagnostics so a bare ignore can never silence a finding.
func parseDirectives(fset *token.FileSet, files []*ast.File) (list []ignoreDirective, bad []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, justification, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(justification) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "dwmlint",
						Pos:      pos,
						Message:  "dwmlint:ignore directive needs an analyzer name and a justification",
					})
					continue
				}
				list = append(list, ignoreDirective{
					analyzer:      name,
					justification: strings.TrimSpace(justification),
					file:          pos.Filename,
					line:          pos.Line,
				})
			}
		}
	}
	return list, bad
}

// funcRange is the source extent of a function whose doc comment carries
// ignore directives; such directives cover the whole body.
type funcRange struct {
	file       string
	start, end int
	directives []ignoreDirective
}

func docDirectiveRanges(fset *token.FileSet, files []*ast.File, directives []ignoreDirective) []funcRange {
	var out []funcRange
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			docStart := fset.Position(fd.Doc.Pos())
			docEnd := fset.Position(fd.Doc.End())
			var covering []ignoreDirective
			for _, d := range directives {
				if d.file == docStart.Filename && d.line >= docStart.Line && d.line <= docEnd.Line {
					covering = append(covering, d)
				}
			}
			if len(covering) == 0 {
				continue
			}
			out = append(out, funcRange{
				file:       docStart.Filename,
				start:      fset.Position(fd.Pos()).Line,
				end:        fset.Position(fd.End()).Line,
				directives: covering,
			})
		}
	}
	return out
}

// ApplySuppressions marks diagnostics covered by dwmlint:ignore
// directives in the given files (same line, the line above, or the doc
// comment of the enclosing function) and returns extra diagnostics for
// malformed directives. The input slice is modified in place.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	directives, bad := parseDirectives(fset, files)
	ranges := docDirectiveRanges(fset, files, directives)
	for i := range diags {
		d := &diags[i]
	match:
		for _, dir := range directives {
			if dir.analyzer != d.Analyzer || dir.file != d.Pos.Filename {
				continue
			}
			if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
				d.Suppressed = true
				d.Justification = dir.justification
				break match
			}
		}
		if d.Suppressed {
			continue
		}
		for _, r := range ranges {
			if r.file != d.Pos.Filename || d.Pos.Line < r.start || d.Pos.Line > r.end {
				continue
			}
			for _, dir := range r.directives {
				if dir.analyzer == d.Analyzer {
					d.Suppressed = true
					d.Justification = dir.justification
					break
				}
			}
			if d.Suppressed {
				break
			}
		}
	}
	return bad
}

// isTestFile reports whether the file is a _test.go file; the contract
// governs experiment code, not tests.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.File(f.Pos()).Name(), "_test.go")
}

// calleeFunc resolves the called function (or method) of a call
// expression, nil when the callee is not a named function — a function
// literal, a conversion, or a builtin.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
