package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc parses one synthetic file for suppression-matching tests; no
// type information is needed because ApplySuppressions works on
// positions alone.
func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func diagAt(fset *token.FileSet, analyzer string, line int) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: "x.go", Line: line, Column: 1},
		Message:  "finding",
	}
}

func TestSuppressionSameAndPrecedingLine(t *testing.T) {
	fset, files := parseSrc(t, `package p

func f() {
	a() //dwmlint:ignore walltime same-line reason
	//dwmlint:ignore barego preceding-line reason
	b()
}
func a() {}
func b() {}
`)
	diags := []Diagnostic{
		diagAt(fset, "walltime", 4),
		diagAt(fset, "barego", 6),
		diagAt(fset, "maporder", 4), // directive names a different analyzer
		diagAt(fset, "walltime", 6), // directive on line 5 names barego, not walltime
	}
	bad := ApplySuppressions(fset, files, diags)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	want := []bool{true, true, false, false}
	justs := []string{"same-line reason", "preceding-line reason", "", ""}
	for i, d := range diags {
		if d.Suppressed != want[i] {
			t.Errorf("diag %d (%s line %d): suppressed=%v, want %v", i, d.Analyzer, d.Pos.Line, d.Suppressed, want[i])
		}
		if d.Justification != justs[i] {
			t.Errorf("diag %d: justification %q, want %q", i, d.Justification, justs[i])
		}
	}
}

func TestSuppressionFuncDocCoversBody(t *testing.T) {
	fset, files := parseSrc(t, `package p

// f measures runtime on purpose.
//
//dwmlint:ignore walltime timing is the output here
func f() {
	a()
	b()
}

func g() {
	a()
}
func a() {}
func b() {}
`)
	diags := []Diagnostic{
		diagAt(fset, "walltime", 7),  // inside f
		diagAt(fset, "walltime", 8),  // inside f
		diagAt(fset, "walltime", 12), // inside g: not covered
		diagAt(fset, "barego", 7),    // different analyzer: not covered
	}
	ApplySuppressions(fset, files, diags)
	want := []bool{true, true, false, false}
	for i, d := range diags {
		if d.Suppressed != want[i] {
			t.Errorf("diag %d (line %d): suppressed=%v, want %v", i, d.Pos.Line, d.Suppressed, want[i])
		}
	}
}

func TestDocDirectiveDoesNotLeakPastDecl(t *testing.T) {
	// The directive sits on an empty method's doc comment. Before the
	// decl-bounding fix, a directive group ending on line N covered line
	// N+1 unconditionally — here the next decl's opening line.
	fset, files := parseSrc(t, `package p

type T struct{}

//dwmlint:ignore walltime stub keeps the interface satisfied
func (T) Stub() {}
func g() {
	a()
}
func a() {}
`)
	diags := []Diagnostic{
		diagAt(fset, "walltime", 6), // inside Stub: covered
		diagAt(fset, "walltime", 7), // g's opening line: must NOT be covered
		diagAt(fset, "walltime", 8), // inside g: must NOT be covered
	}
	bad := ApplySuppressions(fset, files, diags)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	want := []bool{true, false, false}
	for i, d := range diags {
		if d.Suppressed != want[i] {
			t.Errorf("diag %d (line %d): suppressed=%v, want %v", i, d.Pos.Line, d.Suppressed, want[i])
		}
	}
}

func TestStackedDirectivesCoverNextLine(t *testing.T) {
	// Two directives in one comment group both cover the statement after
	// the group (the barego+ctxflow pattern over one go statement).
	fset, files := parseSrc(t, `package p

func f() {
	//dwmlint:ignore barego join handled below
	//dwmlint:ignore ctxflow ctx threaded through the closure
	a()
}
func a() {}
`)
	diags := []Diagnostic{
		diagAt(fset, "barego", 6),
		diagAt(fset, "ctxflow", 6),
		diagAt(fset, "walltime", 6), // not named by either directive
	}
	bad := ApplySuppressions(fset, files, diags)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	want := []bool{true, true, false}
	for i, d := range diags {
		if d.Suppressed != want[i] {
			t.Errorf("diag %d (%s): suppressed=%v, want %v", i, d.Analyzer, d.Suppressed, want[i])
		}
	}
}

func TestUnknownAnalyzerAndVerbAreReported(t *testing.T) {
	fset, files := parseSrc(t, `package p

func f() {
	//dwmlint:ignore walltme typo in the analyzer name
	a()
	//dwmlint:silence walltime unknown verb
	b()
}
func a() {}
func b() {}
`)
	diags := []Diagnostic{diagAt(fset, "walltime", 5)}
	bad := ApplySuppressions(fset, files, diags)
	if len(bad) != 2 {
		t.Fatalf("expected 2 malformed-directive diagnostics, got %d: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, `unknown analyzer "walltme"`) {
		t.Errorf("misspelled analyzer message %q does not name the typo", bad[0].Message)
	}
	if !strings.Contains(bad[1].Message, "unknown directive dwmlint:silence") {
		t.Errorf("unknown verb message %q does not name the verb", bad[1].Message)
	}
	if diags[0].Suppressed {
		t.Error("a misspelled directive must not suppress anything")
	}
}

func TestBareDirectiveIsReported(t *testing.T) {
	fset, files := parseSrc(t, `package p

func f() {
	//dwmlint:ignore walltime
	a()
	//dwmlint:ignore
	b()
}
func a() {}
func b() {}
`)
	diags := []Diagnostic{diagAt(fset, "walltime", 5)}
	bad := ApplySuppressions(fset, files, diags)
	if len(bad) != 2 {
		t.Fatalf("expected 2 malformed-directive diagnostics, got %d: %v", len(bad), bad)
	}
	for _, b := range bad {
		if !strings.Contains(b.Message, "justification") {
			t.Errorf("malformed-directive message %q does not mention the missing justification", b.Message)
		}
	}
	if diags[0].Suppressed {
		t.Error("a directive without a justification must not suppress anything")
	}
}
