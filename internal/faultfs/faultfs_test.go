package faultfs

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/wal"
)

// driveSequence issues a fixed operation sequence against a throwaway
// wal.Log layered on a fault FS and returns the injected-fault log.
func driveSequence(t *testing.T, dir string, opts Options) string {
	t.Helper()
	ffs := New(wal.OS(), opts)
	l, err := wal.Open(wal.Options{Dir: dir, FS: ffs, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 200; i++ {
		// Errors are expected — the schedule injects them. The log
		// either rolls back or breaks; both are fine here, the test
		// only cares that the schedule is reproducible.
		if err := l.Append([]byte(fmt.Sprintf("payload-%04d", i))); err != nil && errors.Is(err, wal.ErrBroken) {
			break
		}
	}
	l.Close()
	return ffs.LogString()
}

// TestScheduleDeterministic is the acceptance-criteria check: the fault
// schedule is a pure function of its seed. The same seed driving the
// same operation sequence must produce byte-identical fault logs.
func TestScheduleDeterministic(t *testing.T) {
	opts := Options{Seed: 42, ShortWritePerMille: 60, WriteErrPerMille: 40, SyncErrPerMille: 30}
	a := driveSequence(t, t.TempDir(), opts)
	b := driveSequence(t, t.TempDir(), opts)
	if a != b {
		t.Fatalf("same seed produced different fault logs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("schedule injected no faults at these rates; test is vacuous")
	}
	opts.Seed = 43
	c := driveSequence(t, t.TempDir(), opts)
	if a == c {
		t.Fatalf("different seeds produced identical fault logs")
	}
}

func TestInjectedErrorClasses(t *testing.T) {
	// Force each class deterministically with a 100% rate.
	t.Run("enospc", func(t *testing.T) {
		ffs := New(nil, Options{Seed: 1, WriteErrPerMille: 1000})
		f, err := ffs.OpenFile(t.TempDir()+"/f", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjectedWrite) {
			t.Fatalf("want ErrInjectedWrite, got %v", err)
		}
	})
	t.Run("short", func(t *testing.T) {
		ffs := New(nil, Options{Seed: 1, ShortWritePerMille: 1000})
		f, err := ffs.OpenFile(t.TempDir()+"/f", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		n, err := f.Write([]byte("0123456789abcdef"))
		if !errors.Is(err, ErrInjectedShortWrite) {
			t.Fatalf("want ErrInjectedShortWrite, got %v", err)
		}
		if n >= 16 {
			t.Fatalf("short write committed the whole buffer (n=%d)", n)
		}
	})
	t.Run("eio", func(t *testing.T) {
		ffs := New(nil, Options{Seed: 1, SyncErrPerMille: 1000})
		f, err := ffs.OpenFile(t.TempDir()+"/f", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
			t.Fatalf("want ErrInjectedSync, got %v", err)
		}
	})
}

func TestPanicAtOp(t *testing.T) {
	ffs := New(nil, Options{Seed: 1, PanicAtOp: 3})
	f, err := ffs.OpenFile(t.TempDir()+"/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Write([]byte("1")) // op 1
	f.Write([]byte("2")) // op 2
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("op 3 did not panic")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrCrash) {
			t.Fatalf("panic value = %v, want ErrCrash", r)
		}
		log := ffs.Log()
		if len(log) == 0 || log[len(log)-1].Fault != "panic" {
			t.Fatalf("crash not recorded in fault log: %v", log)
		}
	}()
	f.Write([]byte("3")) // op 3: boom
}

// appendUnderFaults drives a wal.Log over a fault FS for one seed and
// returns (attempted, acked) payload sequences. A panic from PanicAtOp
// is recovered and treated as the crash point.
func appendUnderFaults(t *testing.T, dir string, opts Options, n int) (attempted, acked []string) {
	t.Helper()
	ffs := New(wal.OS(), opts)
	l, err := wal.Open(wal.Options{Dir: dir, FS: ffs, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("open under faults: %v", err)
	}
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); !ok || !errors.Is(err, ErrCrash) {
				panic(r)
			}
		}
		l.Close()
	}()
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("seed%d-rec-%04d", opts.Seed, i)
		attempted = append(attempted, p)
		if err := l.Append([]byte(p)); err == nil {
			acked = append(acked, p)
		} else if errors.Is(err, wal.ErrBroken) {
			return attempted, acked
		}
	}
	return attempted, acked
}

// isSubsequence reports whether xs appears within ys in order.
func isSubsequence(xs, ys []string) bool {
	j := 0
	for _, y := range ys {
		if j < len(xs) && xs[j] == y {
			j++
		}
	}
	return j == len(xs)
}

// TestChaosAtomicity is the seeded chaos sweep: under short writes,
// write errors, fsync errors, and injected crashes, a SyncAlways log
// must preserve record atomicity — after recovery, every acknowledged
// append is present in order, and nothing that was never attempted
// appears. CHAOS_SEEDS widens the sweep (make chaos).
func TestChaosAtomicity(t *testing.T) {
	seeds := 16
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		fmt.Sscanf(s, "%d", &seeds)
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{
				Seed:               int64(seed),
				ShortWritePerMille: 25,
				WriteErrPerMille:   15,
				SyncErrPerMille:    10,
				PanicAtOp:          50 + seed*17,
			}
			attempted, acked := appendUnderFaults(t, dir, opts, 400)

			// Recovery: reopen on the clean filesystem, as after a real
			// crash, and replay.
			l, err := wal.Open(wal.Options{Dir: dir})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer l.Close()
			var replayed []string
			if err := l.Replay(func(p []byte) error {
				replayed = append(replayed, string(p))
				return nil
			}); err != nil {
				t.Fatalf("recovery replay: %v", err)
			}
			if !isSubsequence(acked, replayed) {
				t.Errorf("acked records lost: %d acked, %d replayed", len(acked), len(replayed))
			}
			if !isSubsequence(replayed, attempted) {
				t.Errorf("replay invented records not in the attempt sequence")
			}
		})
	}
}
