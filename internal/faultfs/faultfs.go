// Package faultfs is a fault-injecting filesystem layer for crash and
// chaos testing. It wraps any wal.FS and perturbs the write path with a
// seeded, deterministic fault schedule: short writes, write errors
// (ENOSPC), fsync errors, latency spikes, and a panic at the Nth
// operation (the in-process stand-in for SIGKILL).
//
// Determinism is the point. Whether operation number N faults — and
// how — is a pure function of (seed, N): the decision comes from a
// splitmix64 stream indexed by a global operation counter, never from
// wall-clock time or math/rand global state. Two runs issuing the same
// operation sequence against the same seed inject byte-identical fault
// logs (Log()), which is what lets the chaos sweep in internal/wal's
// property tests shrink a failure to a seed number.
//
// The probabilities are expressed per mille (0–1000) so schedules stay
// integer-exact; Options documents each fault class.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"time"

	"repro/internal/wal"
)

// Injected fault errors. Callers match with errors.Is.
var (
	// ErrInjectedWrite is the injected write failure (the ENOSPC class:
	// the write consumed no bytes).
	ErrInjectedWrite = errors.New("faultfs: injected write error (no space)")
	// ErrInjectedSync is the injected fsync failure (the fsyncgate
	// class: dirty pages may or may not have reached the platter).
	ErrInjectedSync = errors.New("faultfs: injected fsync error")
	// ErrInjectedShortWrite is the injected partial write: some prefix
	// of the buffer landed, then the device "failed".
	ErrInjectedShortWrite = errors.New("faultfs: injected short write")
)

// Options configures the fault schedule. All probabilities are per
// mille (out of 1000) per eligible operation; zero disables that class.
type Options struct {
	// Seed drives the schedule. Same seed + same operation sequence =
	// same faults, always.
	Seed int64
	// ShortWritePerMille: probability a Write commits only a prefix
	// (deterministically chosen from the op index) and returns
	// ErrInjectedShortWrite.
	ShortWritePerMille int
	// WriteErrPerMille: probability a Write fails outright with
	// ErrInjectedWrite before consuming any bytes (ENOSPC).
	WriteErrPerMille int
	// SyncErrPerMille: probability a Sync fails with ErrInjectedSync.
	SyncErrPerMille int
	// LatencyPerMille and Latency: probability an operation stalls for
	// Latency before proceeding normally (a latency spike, not an
	// error). The stall is injected with time.Sleep; the decision to
	// stall is schedule-deterministic even though its duration is wall
	// time.
	LatencyPerMille int
	Latency         time.Duration
	// PanicAtOp, when positive, panics on exactly the Nth counted
	// operation (1-based) — the in-process crash for tests that cannot
	// afford a real SIGKILL. The panic value is PanicValue (or the
	// package default), so harnesses can recover selectively.
	PanicAtOp int
	// PanicValue overrides the value passed to panic; nil selects
	// ErrCrash.
	PanicValue any
}

// ErrCrash is the default panic value for PanicAtOp.
var ErrCrash = errors.New("faultfs: injected crash")

// Event is one entry in the injected-fault log.
type Event struct {
	// Op is the global 1-based operation index the fault hit.
	Op int64
	// Kind is the operation class: "write" or "sync".
	Kind string
	// Fault names what was injected: "short", "enospc", "eio",
	// "latency", "panic".
	Fault string
}

func (e Event) String() string {
	return fmt.Sprintf("op %d %s: %s", e.Op, e.Kind, e.Fault)
}

// FS wraps an inner wal.FS with the fault schedule. It implements
// wal.FS; files it opens implement wal.File with faults applied to
// Write and Sync (the durability-critical path — reads, opens, and
// truncates pass through so repair logic is always exercised against
// real content).
type FS struct {
	inner wal.FS
	opts  Options

	mu     sync.Mutex
	op     int64   //dwmlint:guard mu
	events []Event //dwmlint:guard mu
}

// New wraps inner (nil selects the real filesystem) with the schedule
// in opts.
func New(inner wal.FS, opts Options) *FS {
	if inner == nil {
		inner = wal.OS()
	}
	return &FS{inner: inner, opts: opts}
}

// mix64 is the splitmix64 finalizer, the same derivation scheme the
// rest of the tree uses for decorrelated deterministic streams.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// draw returns a deterministic value in [0, 1000) for (seed, op, lane).
// Lanes decorrelate independent decisions about the same operation
// (fault? which class? how short?).
func (f *FS) draw(op int64, lane uint64) int {
	z := uint64(f.opts.Seed)*0x9E3779B97F4A7C15 + uint64(op)*0xD1B54A32D192ED03 + lane*0x8CB92BA72F3D8DD7
	return int(mix64(z) % 1000)
}

// step counts one operation and decides its fate. It returns the op
// index and the fault to inject ("" for none), recording non-empty
// faults in the log. The panic for PanicAtOp fires here, after the
// event is logged, so a crashed run's log still ends with the crash.
func (f *FS) step(kind string) (int64, string) {
	f.mu.Lock()
	f.op++
	op := f.op
	fault := ""
	if f.opts.PanicAtOp > 0 && op == int64(f.opts.PanicAtOp) {
		fault = "panic"
	} else {
		switch kind {
		case "write":
			if f.draw(op, 1) < f.opts.WriteErrPerMille {
				fault = "enospc"
			} else if f.draw(op, 2) < f.opts.ShortWritePerMille {
				fault = "short"
			}
		case "sync":
			if f.draw(op, 3) < f.opts.SyncErrPerMille {
				fault = "eio"
			}
		}
		if fault == "" && f.draw(op, 4) < f.opts.LatencyPerMille {
			fault = "latency"
		}
	}
	if fault != "" {
		f.events = append(f.events, Event{Op: op, Kind: kind, Fault: fault})
	}
	f.mu.Unlock()
	if fault == "panic" {
		v := f.opts.PanicValue
		if v == nil {
			v = ErrCrash
		}
		panic(v)
	}
	return op, fault
}

// Log returns a copy of the injected-fault log, in operation order.
func (f *FS) Log() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Event(nil), f.events...)
}

// LogString renders the fault log one event per line — the
// determinism-smoke artifact: same seed, same op sequence, same string.
func (f *FS) LogString() string {
	var b strings.Builder
	for _, e := range f.Log() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Ops returns the number of operations counted so far.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.op
}

// OpenFile opens a file on the inner FS and wraps it for injection.
func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (wal.File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// ReadDir passes through.
func (f *FS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// MkdirAll passes through.
func (f *FS) MkdirAll(dir string, perm fs.FileMode) error { return f.inner.MkdirAll(dir, perm) }

// WriteFile passes through (quarantine blobs are best-effort already).
func (f *FS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return f.inner.WriteFile(name, data, perm)
}

// file wraps wal.File with the schedule.
type file struct {
	fs    *FS
	inner wal.File
}

func (w *file) Read(p []byte) (int, error)                { return w.inner.Read(p) }
func (w *file) Close() error                              { return w.inner.Close() }
func (w *file) Truncate(size int64) error                 { return w.inner.Truncate(size) }
func (w *file) Seek(off int64, whence int) (int64, error) { return w.inner.Seek(off, whence) }

func (w *file) Write(p []byte) (int, error) {
	op, fault := w.fs.step("write")
	switch fault {
	case "enospc":
		return 0, ErrInjectedWrite
	case "short":
		// Commit a deterministic strict prefix, then fail — the torn
		// write a crash leaves behind.
		n := 0
		if len(p) > 1 {
			n = int(mix64(uint64(op)*0x9E3779B97F4A7C15+uint64(w.fs.opts.Seed)) % uint64(len(p)))
		}
		if n > 0 {
			if m, err := w.inner.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, ErrInjectedShortWrite
	case "latency":
		time.Sleep(w.fs.opts.Latency)
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	_, fault := w.fs.step("sync")
	switch fault {
	case "eio":
		return ErrInjectedSync
	case "latency":
		time.Sleep(w.fs.opts.Latency)
	}
	return w.inner.Sync()
}
