package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// ISSUE acceptance: parallel execution must be byte-identical to
// sequential. Render the full table text for E2 and E7 under Workers=1
// and Workers=8 and require equality.
func TestRunParallelDeterministic(t *testing.T) {
	exps := []Experiment{
		{"E2", "main comparison", E2MainComparison},
		{"E7", "multi-tape partitioning", E7MultiTape},
	}
	seq, err := RunParallel(Config{Seed: 1, Workers: 1}, exps...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(Config{Seed: 1, Workers: 8}, exps...)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result count mismatch: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("result %d: order changed: %s vs %s", i, seq[i].ID, par[i].ID)
		}
		var ab, bb strings.Builder
		if err := seq[i].Table.Format(&ab); err != nil {
			t.Fatal(err)
		}
		if err := par[i].Table.Format(&bb); err != nil {
			t.Fatal(err)
		}
		a, b := ab.String(), bb.String()
		if a != b {
			t.Errorf("%s: Workers=1 and Workers=8 tables differ:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seq[i].ID, a, b)
		}
	}
}

func TestParMapOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		got, err := parMap(workers, 10, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}

	// The lowest-indexed failure must win regardless of scheduling.
	boom3 := errors.New("boom 3")
	_, err := parMap(8, 10, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != boom3.Error() {
		t.Fatalf("want lowest-index error %q, got %v", boom3, err)
	}

	if got, err := parMap(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || len(got) != 0 {
		t.Fatalf("empty job list: got %v, %v", got, err)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for row := 0; row < 100; row++ {
		s := DeriveSeed(1, "E2", row)
		if seen[s] {
			t.Fatalf("seed collision at row %d", row)
		}
		seen[s] = true
	}
	if DeriveSeed(1, "E2", 5) != DeriveSeed(1, "E2", 5) {
		t.Error("DeriveSeed not stable")
	}
	if DeriveSeed(1, "E2", 5) == DeriveSeed(1, "E7", 5) {
		t.Error("DeriveSeed ignores the experiment ID")
	}
	if DeriveSeed(1, "E2", 5) == DeriveSeed(2, "E2", 5) {
		t.Error("DeriveSeed ignores the base seed")
	}
}

// tinyExp returns an experiment that records it ran and emits a
// one-row table.
func tinyExp(id string, ran *atomic.Int32) Experiment {
	return Experiment{ID: id, Name: "tiny " + id, Run: func(cfg Config) (*Table, error) {
		if ran != nil {
			ran.Add(1)
		}
		return &Table{ID: id, Title: "tiny", Headers: []string{"v"}, Rows: [][]string{{"1"}}}, nil
	}}
}

// ISSUE acceptance: a panic injected into one experiment fails only
// that experiment — RunContext returns the other experiments' tables
// and a deterministic lowest-index error.
func TestRunContextPanicIsolation(t *testing.T) {
	exps := []Experiment{
		tinyExp("T1", nil),
		{ID: "T2", Name: "bomb", Run: func(cfg Config) (*Table, error) { panic("injected") }},
		tinyExp("T3", nil),
	}
	for _, workers := range []int{1, 4} {
		results, err := RunContext(context.Background(), Config{Seed: 1, Workers: workers}, exps...)
		if err == nil || !strings.Contains(err.Error(), "T2") || !strings.Contains(err.Error(), "injected") {
			t.Fatalf("workers=%d: want T2 panic error, got %v", workers, err)
		}
		if len(results) != 3 {
			t.Fatalf("workers=%d: %d results, want 3", workers, len(results))
		}
		if results[0].Table == nil || results[0].Err != nil {
			t.Errorf("workers=%d: T1 lost: %+v", workers, results[0])
		}
		if results[2].Table == nil || results[2].Err != nil {
			t.Errorf("workers=%d: T3 lost: %+v", workers, results[2])
		}
		if results[1].Table != nil || results[1].Err == nil {
			t.Errorf("workers=%d: T2 must fail with a nil table: %+v", workers, results[1])
		}
	}
}

// The lowest-indexed failure wins even when a later experiment fails
// first in wall-clock order.
func TestRunContextLowestIndexError(t *testing.T) {
	slow := Experiment{ID: "T1", Name: "slow fail", Run: func(cfg Config) (*Table, error) {
		time.Sleep(30 * time.Millisecond)
		return nil, errors.New("slow failure")
	}}
	fast := Experiment{ID: "T2", Name: "fast fail", Run: func(cfg Config) (*Table, error) {
		return nil, errors.New("fast failure")
	}}
	_, err := RunContext(context.Background(), Config{Seed: 1, Workers: 4}, slow, fast)
	if err == nil || !strings.Contains(err.Error(), "T1: slow failure") {
		t.Fatalf("want the lowest-index (T1) error, got %v", err)
	}
}

func TestRunContextTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	exps := []Experiment{
		tinyExp("T1", nil),
		{ID: "T2", Name: "hang", Run: func(cfg Config) (*Table, error) {
			<-release // hangs until the test exits
			return nil, nil
		}},
	}
	cfg := Config{Seed: 1, Workers: 2, Timeout: 20 * time.Millisecond}
	results, err := RunContext(context.Background(), cfg, exps...)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
	if results[0].Table == nil {
		t.Error("fast sibling lost to the hung experiment's timeout")
	}
	if results[1].Err == nil || results[1].Table != nil {
		t.Errorf("hung experiment must carry the timeout: %+v", results[1])
	}
}

// ISSUE acceptance (-race): cancelling RunContext mid-run shuts down
// cleanly with partial results — completed experiments keep their
// tables, unstarted ones carry the context error, and nothing deadlocks
// or races.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	blocker := make(chan struct{})
	defer close(blocker)
	var tail atomic.Int32
	exps := []Experiment{
		tinyExp("T1", nil),
		{ID: "T2", Name: "block", Run: func(cfg Config) (*Table, error) {
			close(started)
			<-blocker
			return &Table{ID: "T2", Headers: []string{"v"}}, nil
		}},
		tinyExp("T3", &tail),
		tinyExp("T4", &tail),
	}
	go func() {
		<-started
		cancel()
	}()
	// Workers=1 forces T2 to block the queue, so the cancel must free
	// T3/T4 without running them.
	results, err := RunContext(ctx, Config{Seed: 1, Workers: 1}, exps...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if results[0].Table == nil || results[0].Err != nil {
		t.Errorf("completed T1 lost: %+v", results[0])
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("in-flight T2 must be marked canceled: %+v", results[1])
	}
	for i := 2; i < 4; i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("unstarted %s must be marked canceled: %+v", results[i].ID, results[i])
		}
	}
	if n := tail.Load(); n != 0 {
		t.Errorf("%d experiments ran after cancellation", n)
	}
}

// Cancellation with a parallel pool: every result is either a completed
// table or a context error; no slot is left zero-valued.
func TestRunContextCancelParallelPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the run starts
	exps := make([]Experiment, 6)
	for i := range exps {
		exps[i] = tinyExp(fmt.Sprintf("T%d", i+1), nil)
	}
	results, err := RunContext(ctx, Config{Seed: 1, Workers: 4}, exps...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i, r := range results {
		if r.ID == "" {
			t.Fatalf("result %d left unfilled: %+v", i, r)
		}
		if r.Table == nil && r.Err == nil {
			t.Fatalf("result %d has neither table nor error: %+v", i, r)
		}
	}
}

func TestRunParallelIsRunContextWrapper(t *testing.T) {
	var ran atomic.Int32
	results, err := RunParallel(Config{Seed: 1, Workers: 2}, tinyExp("T1", &ran), tinyExp("T2", &ran))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || ran.Load() != 2 {
		t.Fatalf("wrapper ran %d/%d experiments", ran.Load(), len(results))
	}
	for _, r := range results {
		if r.Table == nil || r.Elapsed < 0 {
			t.Errorf("bad result %+v", r)
		}
	}
}

func TestConfigWorkersDefault(t *testing.T) {
	if w := (Config{}).workers(); w < 1 {
		t.Fatalf("default workers = %d, want >= 1", w)
	}
	if w := (Config{Workers: 3}).workers(); w != 3 {
		t.Fatalf("explicit workers = %d, want 3", w)
	}
}
