package bench

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// ISSUE acceptance: parallel execution must be byte-identical to
// sequential. Render the full table text for E2 and E7 under Workers=1
// and Workers=8 and require equality.
func TestRunParallelDeterministic(t *testing.T) {
	exps := []Experiment{
		{"E2", "main comparison", E2MainComparison},
		{"E7", "multi-tape partitioning", E7MultiTape},
	}
	seq, err := RunParallel(Config{Seed: 1, Workers: 1}, exps...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(Config{Seed: 1, Workers: 8}, exps...)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result count mismatch: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("result %d: order changed: %s vs %s", i, seq[i].ID, par[i].ID)
		}
		var ab, bb strings.Builder
		if err := seq[i].Table.Format(&ab); err != nil {
			t.Fatal(err)
		}
		if err := par[i].Table.Format(&bb); err != nil {
			t.Fatal(err)
		}
		a, b := ab.String(), bb.String()
		if a != b {
			t.Errorf("%s: Workers=1 and Workers=8 tables differ:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seq[i].ID, a, b)
		}
	}
}

func TestParMapOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		got, err := parMap(workers, 10, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}

	// The lowest-indexed failure must win regardless of scheduling.
	boom3 := errors.New("boom 3")
	_, err := parMap(8, 10, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != boom3.Error() {
		t.Fatalf("want lowest-index error %q, got %v", boom3, err)
	}

	if got, err := parMap(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || len(got) != 0 {
		t.Fatalf("empty job list: got %v, %v", got, err)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for row := 0; row < 100; row++ {
		s := DeriveSeed(1, "E2", row)
		if seen[s] {
			t.Fatalf("seed collision at row %d", row)
		}
		seen[s] = true
	}
	if DeriveSeed(1, "E2", 5) != DeriveSeed(1, "E2", 5) {
		t.Error("DeriveSeed not stable")
	}
	if DeriveSeed(1, "E2", 5) == DeriveSeed(1, "E7", 5) {
		t.Error("DeriveSeed ignores the experiment ID")
	}
	if DeriveSeed(1, "E2", 5) == DeriveSeed(2, "E2", 5) {
		t.Error("DeriveSeed ignores the base seed")
	}
}

func TestConfigWorkersDefault(t *testing.T) {
	if w := (Config{}).workers(); w < 1 {
		t.Fatalf("default workers = %d, want >= 1", w)
	}
	if w := (Config{Workers: 3}).workers(); w != 3 {
		t.Fatalf("explicit workers = %d, want 3", w)
	}
}
