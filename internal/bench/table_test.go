package bench

import (
	"strings"
	"testing"
)

// raggedTable mixes a well-formed row with a short and a long one.
func raggedTable() *Table {
	return &Table{
		ID:      "EX",
		Title:   "ragged rows",
		Headers: []string{"a", "b", "c"},
		Rows: [][]string{
			{"r1a", "r1b", "r1c"},
			{"r2a"},                      // short: must pad, not leak r1b/r1c
			{"r3a", "r3b", "r3c", "r3d"}, // long: must truncate, not panic
		},
	}
}

// Regression: Markdown reused one cells buffer across rows, so a short
// row silently emitted the previous row's stale cells and a long row
// panicked with index out of range.
func TestTableMarkdownRaggedRows(t *testing.T) {
	var buf strings.Builder
	if err := raggedTable().Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var short string
	for _, l := range lines {
		if strings.Contains(l, "r2a") {
			short = l
		}
	}
	if short == "" {
		t.Fatalf("short row missing:\n%s", out)
	}
	if strings.Contains(short, "r1b") || strings.Contains(short, "r1c") {
		t.Errorf("short row leaked stale cells from the previous row: %q", short)
	}
	if want := "| r2a |  |  |"; short != want {
		t.Errorf("short row = %q, want %q", short, want)
	}
	if strings.Contains(out, "r3d") {
		t.Errorf("long row not truncated to the header width:\n%s", out)
	}
	// Every table line has exactly len(Headers) columns.
	for _, l := range lines {
		if !strings.HasPrefix(l, "|") {
			continue
		}
		if n := strings.Count(l, "|") - 1; n != 3 {
			t.Errorf("line %q has %d columns, want 3", l, n)
		}
	}
}

func TestTableFormatRaggedRows(t *testing.T) {
	var buf strings.Builder
	if err := raggedTable().Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "r2a") || strings.Contains(out, "r3d") {
		t.Errorf("Format must pad short rows and truncate long ones:\n%s", out)
	}
}

func TestTableCSVRaggedRows(t *testing.T) {
	var buf strings.Builder
	if err := raggedTable().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	for i, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if n := strings.Count(l, ",") + 1; n != 3 {
			t.Errorf("CSV line %d (%q) has %d fields, want 3", i, l, n)
		}
	}
	if strings.Contains(buf.String(), "r3d") {
		t.Error("CSV long row not truncated")
	}
}

// Well-formed tables must render byte-identically to the pre-fix code:
// normalization only touches ragged rows.
func TestTableNormalizationNoOpOnWellFormed(t *testing.T) {
	tb := &Table{
		ID:      "EY",
		Title:   "well formed",
		Headers: []string{"x", "y"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"note"},
	}
	var md, txt, csv strings.Builder
	if err := tb.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if err := tb.Format(&txt); err != nil {
		t.Fatal(err)
	}
	if err := tb.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	wantMD := "## EY — well formed\n\n| x | y |\n| --- | --- |\n| 1 | 2 |\n| 3 | 4 |\n\n> note\n\n"
	if md.String() != wantMD {
		t.Errorf("Markdown = %q, want %q", md.String(), wantMD)
	}
	if !strings.Contains(txt.String(), "1  2") {
		t.Errorf("Format output unexpected: %q", txt.String())
	}
	wantCSV := "x,y\n1,2\n3,4\n"
	if csv.String() != wantCSV {
		t.Errorf("CSV = %q, want %q", csv.String(), wantCSV)
	}
}
