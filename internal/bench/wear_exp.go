package bench

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/workload"
)

// E13WearLeveling evaluates the shift-wear extension: the min-total
// pipeline versus the wear-balanced refinement, reporting total shifts,
// the hottest tape's shifts (the wire that dies first), and the resulting
// lifetime gain (inverse of max wear). The interesting trade-off is how
// much total-shift cost wear leveling pays for its lifetime improvement.
func E13WearLeveling(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Shift-wear leveling across tapes (extension)",
		Headers: []string{"workload", "tapes", "total (min-total)", "max tape (min-total)",
			"total (balanced)", "max tape (balanced)", "lifetime gain", "total overhead"},
		Notes: []string{
			"device leaves 25% free slots so items can migrate; one centered port per tape",
			"lifetime gain = maxTape(min-total) / maxTape(balanced); wear = per-wire shift count",
		},
	}
	for _, spec := range []struct {
		name  string
		tapes int
	}{
		{"zipf", 4}, {"histogram", 4}, {"fir", 4},
	} {
		g, err := workload.ByName(spec.name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		tapes := spec.tapes
		// 25% headroom for migration.
		tapeLen := (tr.NumItems*5/4 + tapes - 1) / tapes
		ports := dwm.SpreadPorts(tapeLen, 1)
		seq := tr.Items()

		mp, baseTotal, err := core.ProposeMultiTape(tr, tapes, tapeLen, ports)
		if err != nil {
			return nil, err
		}
		basePer, err := cost.MultiTapeBreakdown(seq, mp, tapes, tapeLen, ports)
		if err != nil {
			return nil, err
		}
		var baseMax int64
		for _, c := range basePer {
			if c > baseMax {
				baseMax = c
			}
		}

		_, balTotal, balMax, err := core.WearBalancedMultiTape(tr, tapes, tapeLen, ports,
			core.WearBalanceOptions{})
		if err != nil {
			return nil, err
		}

		gain := "n/a"
		if balMax > 0 {
			gain = f2(float64(baseMax) / float64(balMax))
		}
		overhead := "n/a"
		if baseTotal > 0 {
			overhead = f1(100 * float64(balTotal-baseTotal) / float64(baseTotal))
		}
		t.Rows = append(t.Rows, []string{
			spec.name, itoa(int64(tapes)),
			itoa(baseTotal), itoa(baseMax),
			itoa(balTotal), itoa(balMax),
			gain, overhead + "%",
		})
	}
	return t, nil
}
