package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/addrmap"
	"repro/internal/dwm"
)

// E19Interleaving evaluates the address-interleaving layer of a DWM main
// memory: total shifts for sequential, strided, and random sweeps under
// tape-major, word-striped, and block-interleaved mappings. The classic
// shape: sequential is cheap everywhere; stride equal to the interleave
// width defeats striping back onto a single tape; random is
// mapping-independent.
func E19Interleaving(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "Address interleaving vs access pattern (extension)",
		Headers: []string{"pattern", "tape-major", "striped", "block-8"},
		Notes: []string{
			"8 tapes x 64 slots, one centered port per tape; 4096 reads per pattern",
		},
	}
	geom := dwm.Geometry{Tapes: 8, DomainsPerTape: 64, PortsPerTape: 1}
	params := dwm.DefaultParams()
	tm, err := addrmap.NewTapeMajor(geom)
	if err != nil {
		return nil, err
	}
	st, err := addrmap.NewStriped(geom)
	if err != nil {
		return nil, err
	}
	bi, err := addrmap.NewBlockInterleaved(geom, 8)
	if err != nil {
		return nil, err
	}
	mappings := []addrmap.Mapping{tm, st, bi}

	words := geom.Words()
	const accesses = 4096
	rng := rand.New(rand.NewSource(cfg.Seed))
	random := make([]int, accesses)
	for i := range random {
		random[i] = rng.Intn(words)
	}
	patterns := []struct {
		name string
		seq  []int
	}{
		{"sequential", addrmap.Sequential(words, accesses/words)},
		{"stride-2", addrmap.Strided(words, 2, accesses)},
		{"stride-8", addrmap.Strided(words, 8, accesses)},
		{"stride-64", addrmap.Strided(words, 64, accesses)},
		{"random", random},
	}
	for _, p := range patterns {
		row := []string{p.name}
		for _, m := range mappings {
			c, err := addrmap.Sweep(geom, params, m, p.seq)
			if err != nil {
				return nil, fmt.Errorf("E19 %s/%s: %w", p.name, m.Name(), err)
			}
			row = append(row, itoa(c))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
