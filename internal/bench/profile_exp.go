package bench

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E22Profile measures generalization: real deployments place data using a
// profiling run, not the oracle trace the evaluation uses. The trace is
// split in half by time; the placement is computed from the first half
// and evaluated on the second, against both the oracle (placed on the
// full trace) and program order. Stationary workloads should show
// profile ≈ oracle; the phase-shifting workload quantifies how much drift
// costs.
func E22Profile(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E22",
		Title: "Profile-based placement generalization (extension)",
		Headers: []string{"workload", "program", "profile-placed", "oracle-placed",
			"profile red.", "oracle red."},
		Notes: []string{
			"placement trained on the first half of the trace, evaluated on the second half",
			"single centered port, tape = working set",
		},
	}
	cases := []struct {
		name string
		tr   *trace.Trace
	}{}
	for _, name := range []string{"fir", "histogram", "zipf"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cases = append(cases, struct {
			name string
			tr   *trace.Trace
		}{name, g.Make(cfg.Seed)})
	}
	cases = append(cases, struct {
		name string
		tr   *trace.Trace
	}{"phased", workload.Phased(64, 16384, 8, 1.3, cfg.Seed)})

	for _, c := range cases {
		half := c.tr.Len() / 2
		train, err := c.tr.Slice(0, half)
		if err != nil {
			return nil, err
		}
		eval, err := c.tr.Slice(half, c.tr.Len())
		if err != nil {
			return nil, err
		}
		ports := []int{c.tr.NumItems / 2}
		score := func(p []int) (int64, error) {
			return cost.MultiPort(eval.Items(), p, ports, c.tr.NumItems)
		}

		po, err := core.ProgramOrder(c.tr) // first-touch over the whole run
		if err != nil {
			return nil, err
		}
		base, err := score(po)
		if err != nil {
			return nil, err
		}

		tg, err := graph.FromTrace(train)
		if err != nil {
			return nil, err
		}
		profileP, _, err := core.Propose(train, tg)
		if err != nil {
			return nil, err
		}
		profile, err := score(profileP)
		if err != nil {
			return nil, err
		}

		fg, err := graph.FromTrace(c.tr)
		if err != nil {
			return nil, err
		}
		oracleP, _, err := core.Propose(c.tr, fg)
		if err != nil {
			return nil, err
		}
		oracle, err := score(oracleP)
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			c.name, itoa(base), itoa(profile), itoa(oracle),
			pct(base, profile), pct(base, oracle),
		})
	}
	return t, nil
}
