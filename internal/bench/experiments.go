package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes the experiment suite.
type Config struct {
	// Seed drives every randomized component (workload generation,
	// randomized policies). Equal seeds reproduce identical tables.
	Seed int64
	// Workers bounds the concurrency of RunParallel and of the
	// row-parallel experiments; 0 selects runtime.GOMAXPROCS(0). Every
	// row job is an independent pure function of (Seed, row), so the
	// produced tables are byte-identical for every worker count.
	Workers int
	// Timeout bounds the wall time of each individual experiment under
	// RunContext/RunParallel; 0 means no limit. An experiment exceeding
	// it fails with a timeout error on its own RunResult while its
	// siblings run to completion. The runner also threads the timeout
	// into Context, so cancellation-aware stages (core.AnnealContext)
	// stop promptly instead of being abandoned mid-flight.
	Timeout time.Duration
	// Cache, when non-nil, memoizes the anneal stages of the experiments
	// that run them (E2's anneal policy, E5, E9) through the placement
	// cache. Hits replay the memoized result byte-exactly — a cached
	// sweep produces the same tables as a cold one — so repeated
	// invocations (dwmbench -cache DIR) skip the annealing cost.
	Cache core.PlacementCache

	// ctx is installed by the runner before an experiment executes, so
	// long-running stages inside the experiment can observe the runner's
	// cancellation and per-experiment timeout. Experiments read it via
	// Context; it is never set by callers directly.
	ctx context.Context
}

// Context returns the cancellation context the runner installed for
// this experiment execution, or a background context when the
// experiment runs outside the runner (direct calls in tests).
func (cfg Config) Context() context.Context {
	if cfg.ctx != nil {
		return cfg.ctx
	}
	return context.Background()
}

// DefaultConfig returns the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Seed: 1} }

// Experiment couples an ID with its runner, for the suite driver.
type Experiment struct {
	ID   string
	Name string
	Run  func(Config) (*Table, error)
}

// All returns the full experiment suite in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "benchmark characteristics", E1Characteristics},
		{"E2", "total shifts per policy (main comparison)", E2MainComparison},
		{"E3", "shift reduction vs tape length", E3TapeLength},
		{"E4", "shift reduction vs access ports", E4Ports},
		{"E5", "heuristic optimality gap", E5OptimalityGap},
		{"E6", "latency and energy improvement", E6LatencyEnergy},
		{"E7", "multi-tape partitioning", E7MultiTape},
		{"E8", "algorithm runtime scaling", E8Runtime},
		{"E9", "design-choice ablations", E9Ablation},
		{"E10", "online reorganization extension", E10Adaptive},
		{"E11", "placement under an SRAM miss cache", E11CacheFilter},
		{"E12", "seed robustness of the main result", E12Robustness},
		{"E13", "shift-wear leveling across tapes", E13WearLeveling},
		{"E14", "word-granular vs object-granular placement", E14Granularity},
		{"E15", "per-access shift distance distribution", E15TailLatency},
		{"E16", "port-position co-optimization", E16PortPlacement},
		{"E17", "process-variation-aware tape mapping", E17Variation},
		{"E18", "shift position faults and correction overhead", E18ShiftFaults},
		{"E19", "address interleaving vs access pattern", E19Interleaving},
		{"E20", "instruction (basic-block) placement", E20Instruction},
		{"E21", "request-window scheduling", E21Scheduling},
		{"E22", "profile-based placement generalization", E22Profile},
	}
}

// E1Characteristics reproduces the benchmark-characteristics table:
// trace length, item counts, read/write mix, transition-graph size, and
// mean reuse distance per workload.
func E1Characteristics(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Benchmark characteristics (Table 1)",
		Headers: []string{"workload", "accesses", "items", "touched", "reads", "writes", "graph edges", "mean reuse"},
	}
	for _, g := range workload.Suite() {
		tr := g.Make(cfg.Seed)
		s := tr.Summarize()
		reuse := "n/a"
		if s.MeanReuse >= 0 {
			reuse = f1(s.MeanReuse)
		}
		t.Rows = append(t.Rows, []string{
			g.Name, itoa(int64(s.Length)), itoa(int64(s.NumItems)), itoa(int64(s.Touched)),
			itoa(s.Reads), itoa(s.Writes), itoa(int64(s.Transitions)), reuse,
		})
	}
	return t, nil
}

// simulateSingleTape runs a trace through a fresh single-tape device under
// a placement and returns the shift count, cross-checking the simulator
// against the analytic evaluator.
func simulateSingleTape(tr *trace.Trace, p layout.Placement, tapeLen, ports int) (sim.Result, error) {
	dev, err := dwm.NewDevice(dwm.Geometry{Tapes: 1, DomainsPerTape: tapeLen, PortsPerTape: ports},
		dwm.DefaultParams())
	if err != nil {
		return sim.Result{}, err
	}
	s, err := sim.NewSingleTape(dev, p, sim.HeadStay)
	if err != nil {
		return sim.Result{}, err
	}
	res, err := s.Run(tr)
	if err != nil {
		return sim.Result{}, err
	}
	want, err := cost.MultiPort(tr.Items(), p, dev.Geometry().PortPositions(), tapeLen)
	if err != nil {
		return sim.Result{}, err
	}
	if res.Counters.Shifts != want {
		return sim.Result{}, fmt.Errorf("bench: simulator (%d) disagrees with analytic cost (%d)",
			res.Counters.Shifts, want)
	}
	return res, nil
}

// E2MainComparison reproduces the headline comparison: total shifts per
// workload for every policy on a single-port tape sized to the working
// set, with the reduction of the best proposed configuration over program
// order.
func E2MainComparison(cfg Config) (*Table, error) {
	policies := core.PoliciesCached(cfg.Seed, cfg.Cache)
	headers := []string{"workload"}
	for _, p := range policies {
		headers = append(headers, p.Name)
	}
	headers = append(headers, "best-vs-program")
	t := &Table{
		ID:      "E2",
		Title:   "Total shifts per policy, single-port tape sized to working set (Table 2 / main figure)",
		Headers: headers,
		Notes: []string{
			"tape length = #items, single centered port, head stays where it parks",
		},
	}
	// Each row is an independent pure function of (cfg.Seed, workload),
	// so the rows compute on the worker pool and assemble in suite order.
	suite := workload.Suite()
	rows, err := parMap(cfg.workers(), len(suite), func(i int) ([]string, error) {
		g := suite[i]
		tr := g.Make(cfg.Seed)
		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		row := []string{g.Name}
		var programShifts, bestProposed int64 = -1, -1
		for _, pol := range policies {
			p, err := pol.Place(tr, gr)
			if err != nil {
				return nil, err
			}
			res, err := simulateSingleTape(tr, p, tr.NumItems, 1)
			if err != nil {
				return nil, err
			}
			shifts := res.Counters.Shifts
			row = append(row, itoa(shifts))
			if pol.Name == "program" {
				programShifts = shifts
			}
			if !pol.Baseline && (bestProposed < 0 || shifts < bestProposed) {
				bestProposed = shifts
			}
		}
		row = append(row, pct(programShifts, bestProposed))
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E3TapeLength reproduces the tape-length sensitivity figure: a fixed
// working set spread over enough tapes of each length, comparing the
// naive contiguous layout against the proposed partition+arrangement
// pipeline.
func E3TapeLength(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Total shifts vs tape length (figure): contiguous baseline vs proposed multi-tape pipeline",
		Headers: []string{"workload", "tape len", "tapes", "contiguous", "proposed", "reduction"},
		Notes:   []string{"device capacity = working set; one centered port per tape"},
	}
	for _, name := range []string{"fir", "matmul", "stencil"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		for _, tapeLen := range []int{16, 32, 64, 128} {
			if tapeLen > 2*tr.NumItems {
				continue
			}
			tapes := (tr.NumItems + tapeLen - 1) / tapeLen
			ports := dwm.SpreadPorts(tapeLen, 1)
			seq := tr.Items()

			contig, err := core.ContiguousPartition(tr, tapes, tapeLen)
			if err != nil {
				return nil, err
			}
			naive, err := packedMultiPlacement(tr, contig, tapes)
			if err != nil {
				return nil, err
			}
			base, err := cost.MultiTape(seq, naive, tapes, tapeLen, ports)
			if err != nil {
				return nil, err
			}

			_, prop, err := core.ProposeMultiTape(tr, tapes, tapeLen, ports)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, itoa(int64(tapeLen)), itoa(int64(tapes)),
				itoa(base), itoa(prop), pct(base, prop),
			})
		}
	}
	return t, nil
}

// packedMultiPlacement puts each tape's items into consecutive slots in
// first-touch order, the layout of a placement-unaware allocator.
func packedMultiPlacement(tr *trace.Trace, pt core.Partition, tapes int) (layout.MultiPlacement, error) {
	po, err := core.ProgramOrder(tr)
	if err != nil {
		return layout.MultiPlacement{}, err
	}
	// Items in first-touch order.
	order := make([]int, len(po))
	for item, rank := range po {
		order[rank] = item
	}
	mp := layout.NewMultiPlacement(tr.NumItems)
	next := make([]int, tapes)
	for _, item := range order {
		tp := pt[item]
		mp.Tape[item] = tp
		mp.Slot[item] = next[tp]
		next[tp]++
	}
	return mp, nil
}

// E4Ports reproduces the port-count sensitivity figure on a single tape:
// program order and organ pipe versus the port-aware proposed placement
// for 1, 2, 4, and 8 ports.
func E4Ports(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Total shifts vs number of access ports, single tape (figure)",
		Headers: []string{"workload", "ports", "program", "organpipe", "proposed", "reduction", "oracle sched"},
		Notes: []string{
			"tape length = #items; ports evenly spread; proposed = port-aware greedy+refinement",
			"oracle sched = proposed placement under DP-optimal (lookahead) port choice instead of nearest-port",
		},
	}
	for _, name := range []string{"fir", "fft", "zipf"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		n := tr.NumItems
		for _, k := range []int{1, 2, 4, 8} {
			ports := dwm.SpreadPorts(n, k)
			seq := tr.Items()

			po, err := core.ProgramOrder(tr)
			if err != nil {
				return nil, err
			}
			baseP, err := cost.MultiPort(seq, po, ports, n)
			if err != nil {
				return nil, err
			}
			op, err := core.OrganPipe(tr)
			if err != nil {
				return nil, err
			}
			baseO, err := cost.MultiPort(seq, op, ports, n)
			if err != nil {
				return nil, err
			}
			propP, prop, err := core.PortAware(tr, n, ports, core.PortAwareOptions{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			oracle, err := cost.MultiPortOptimal(seq, propP, ports, n)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, itoa(int64(k)), itoa(baseP), itoa(baseO), itoa(prop), pct(baseP, prop),
				itoa(oracle),
			})
		}
	}
	return t, nil
}

// E5OptimalityGap reproduces the optimality-gap study: on instances small
// enough for the exact DP, the ratio of each heuristic's cost to the
// optimum.
func E5OptimalityGap(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Heuristic cost / optimal cost on small instances (figure)",
		Headers: []string{"instance", "n", "optimal", "greedy", "greedy2opt", "anneal", "worst ratio"},
		Notes:   []string{"optimal via subset DP; ratios of Linear (MinLA) cost"},
	}
	type inst struct {
		name string
		tr   *trace.Trace
	}
	var instances []inst
	for _, n := range []int{8, 10, 12, 14} {
		instances = append(instances,
			inst{fmt.Sprintf("zipf-%d", n), workload.Zipf(n, 2000, 1.2, cfg.Seed)},
			inst{fmt.Sprintf("chase-%d", n), workload.PointerChase(n, 2000, cfg.Seed)},
			inst{fmt.Sprintf("uniform-%d", n), workload.Uniform(n, 2000, cfg.Seed)},
		)
	}
	for _, in := range instances {
		g, err := graph.FromTrace(in.tr)
		if err != nil {
			return nil, err
		}
		_, opt, err := core.ExactDP(g)
		if err != nil {
			return nil, err
		}
		gp, err := core.GreedyChain(g, core.SeedHeaviestEdge)
		if err != nil {
			return nil, err
		}
		gc, err := cost.Linear(g, gp)
		if err != nil {
			return nil, err
		}
		_, tc, err := core.GreedyTwoOpt(g, core.TwoOptOptions{})
		if err != nil {
			return nil, err
		}
		_, ac, err := core.GreedyAnnealContext(cfg.Context(), g, core.AnnealOptions{Seed: cfg.Seed, Cache: cfg.Cache})
		if err != nil {
			return nil, err
		}
		worst := ratio(gc, opt)
		for _, r := range []float64{ratio(tc, opt), ratio(ac, opt)} {
			if r > worst {
				worst = r
			}
		}
		t.Rows = append(t.Rows, []string{
			in.name, itoa(int64(g.N())), itoa(opt), itoa(gc), itoa(tc), itoa(ac), f2(worst),
		})
	}
	return t, nil
}

func ratio(x, base int64) float64 {
	if base == 0 {
		if x == 0 {
			return 1
		}
		return float64(x)
	}
	return float64(x) / float64(base)
}

// E6LatencyEnergy reproduces the latency/energy table: program order
// versus the proposed greedy+2-opt placement, full device accounting.
func E6LatencyEnergy(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Access latency and energy, program order vs proposed (table)",
		Headers: []string{"workload", "lat base (us)", "lat prop (us)", "lat gain",
			"energy base (nJ)", "energy prop (nJ)", "energy gain"},
		Notes: []string{"device params: shift 0.5ns/0.5pJ, read 1ns/1pJ, write 1.5ns/2pJ"},
	}
	for _, g := range workload.Suite() {
		tr := g.Make(cfg.Seed)
		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		po, err := core.ProgramOrder(tr)
		if err != nil {
			return nil, err
		}
		baseRes, err := simulateSingleTape(tr, po, tr.NumItems, 1)
		if err != nil {
			return nil, err
		}
		pp, _, err := core.Propose(tr, gr)
		if err != nil {
			return nil, err
		}
		propRes, err := simulateSingleTape(tr, pp, tr.NumItems, 1)
		if err != nil {
			return nil, err
		}
		latGain := "n/a"
		if baseRes.LatencyNS > 0 {
			latGain = fmt.Sprintf("%.1f%%", 100*(baseRes.LatencyNS-propRes.LatencyNS)/baseRes.LatencyNS)
		}
		enGain := "n/a"
		if baseRes.EnergyPJ > 0 {
			enGain = fmt.Sprintf("%.1f%%", 100*(baseRes.EnergyPJ-propRes.EnergyPJ)/baseRes.EnergyPJ)
		}
		t.Rows = append(t.Rows, []string{
			g.Name,
			f1(baseRes.LatencyNS / 1e3), f1(propRes.LatencyNS / 1e3), latGain,
			f1(baseRes.EnergyPJ / 1e3), f1(propRes.EnergyPJ / 1e3), enGain,
		})
	}
	return t, nil
}

// E7MultiTape reproduces the multi-tape partitioning figure: four
// partition strategies (contiguous, round robin, hash, proposed affinity)
// combined with per-tape arrangement, across tape counts.
func E7MultiTape(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Total shifts by partition strategy and tape count (figure)",
		Headers: []string{"workload", "tapes", "contiguous", "roundrobin", "hash", "affinity", "portfolio", "portfolio vs contiguous"},
		Notes: []string{
			"all partitions get the same per-tape greedy+2-opt arrangement; capacity = tape length",
			"portfolio = proposed pick-best over {contiguous, roundrobin, affinity, packed} scored by the exact evaluator",
		},
	}
	// One worker-pool job per workload, each producing its block of rows;
	// blocks flatten in workload order, so the table is identical for any
	// worker count.
	names := []string{"matmul", "stencil", "histogram"}
	blocks, err := parMap(cfg.workers(), len(names), func(i int) ([][]string, error) {
		name := names[i]
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, tapes := range []int{2, 4, 8} {
			tapeLen := (tr.NumItems + tapes - 1) / tapes
			if tapeLen < 2 {
				continue
			}
			ports := dwm.SpreadPorts(tapeLen, 1)
			seq := tr.Items()
			eval := func(pt core.Partition) (int64, error) {
				mp, err := core.ArrangePartition(tr, pt, tapes, tapeLen, ports)
				if err != nil {
					return 0, err
				}
				return cost.MultiTape(seq, mp, tapes, tapeLen, ports)
			}
			contig, err := core.ContiguousPartition(tr, tapes, tapeLen)
			if err != nil {
				return nil, err
			}
			cCost, err := eval(contig)
			if err != nil {
				return nil, err
			}
			rrCost, err := eval(core.RoundRobinPartition(tr.NumItems, tapes))
			if err != nil {
				return nil, err
			}
			hash, err := core.HashPartition(tr.NumItems, tapes, tapeLen)
			if err != nil {
				return nil, err
			}
			hCost, err := eval(hash)
			if err != nil {
				return nil, err
			}
			aff, err := core.AffinityPartition(gr, tapes, tapeLen, 0)
			if err != nil {
				return nil, err
			}
			aCost, err := eval(aff)
			if err != nil {
				return nil, err
			}
			_, pCost, err := core.ProposeMultiTape(tr, tapes, tapeLen, ports)
			if err != nil {
				return nil, err
			}
			rows = append(rows, []string{
				name, itoa(int64(tapes)),
				itoa(cCost), itoa(rrCost), itoa(hCost), itoa(aCost), itoa(pCost), pct(cCost, pCost),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, b := range blocks {
		t.Rows = append(t.Rows, b...)
	}
	return t, nil
}

// E8Runtime reproduces the algorithm-runtime figure: construction time of
// each algorithm as the item count grows (heuristics) and for the exact
// DP on small instances.
//
//dwmlint:ignore walltime E8 measures algorithm runtime — wall clock IS the experiment's output; its time column is exempt from cross-run comparison (see determinism-smoke)
func E8Runtime(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Placement algorithm runtime (figure)",
		Headers: []string{"algorithm", "n", "time (ms)", "cost"},
		Notes:   []string{"single run each, Zipf(1.2) workloads, wall clock; exact DP limited to small n"},
	}
	for _, n := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		tr := workload.Zipf(n, 20*n, 1.2, cfg.Seed)
		g, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		gp, err := core.GreedyChain(g, core.SeedHeaviestEdge)
		if err != nil {
			return nil, err
		}
		gt := time.Since(start)
		gc, err := cost.Linear(g, gp)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"greedy", itoa(int64(n)), f2(float64(gt.Microseconds()) / 1e3), itoa(gc)})

		start = time.Now()
		_, tc, err := core.TwoOpt(g, gp, core.TwoOptOptions{Window: 8, MaxPasses: 4})
		if err != nil {
			return nil, err
		}
		tt := time.Since(start)
		t.Rows = append(t.Rows, []string{"greedy+2opt(w8)", itoa(int64(n)), f2(float64(tt.Microseconds()) / 1e3), itoa(tc)})

		start = time.Now()
		_, ac, err := core.AnnealContext(cfg.Context(), g, gp, core.AnnealOptions{Seed: cfg.Seed, Iterations: 100 * n, Cache: cfg.Cache})
		if err != nil {
			return nil, err
		}
		at := time.Since(start)
		t.Rows = append(t.Rows, []string{"anneal(100n)", itoa(int64(n)), f2(float64(at.Microseconds()) / 1e3), itoa(ac)})

		start = time.Now()
		_, bc, err := core.Barycentric(g, layout.Identity(n), 0)
		if err != nil {
			return nil, err
		}
		bt := time.Since(start)
		t.Rows = append(t.Rows, []string{"barycentric(id)", itoa(int64(n)), f2(float64(bt.Microseconds()) / 1e3), itoa(bc)})

		start = time.Now()
		_, mc, err := core.Multilevel(g, core.MultilevelOptions{})
		if err != nil {
			return nil, err
		}
		mt := time.Since(start)
		t.Rows = append(t.Rows, []string{"multilevel", itoa(int64(n)), f2(float64(mt.Microseconds()) / 1e3), itoa(mc)})
	}
	for _, n := range []int{10, 12, 14, 16} {
		tr := workload.Zipf(n, 3000, 1.2, cfg.Seed)
		g, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		_, opt, err := core.ExactDP(g)
		if err != nil {
			return nil, err
		}
		dt := time.Since(start)
		t.Rows = append(t.Rows, []string{"exactDP", itoa(int64(n)), f2(float64(dt.Microseconds()) / 1e3), itoa(opt)})
	}
	return t, nil
}

// E9Ablation reproduces the design-choice ablations called out in
// DESIGN.md §5: greedy seed rule, 2-opt window, annealing schedule,
// frequency layout shape, and simulator head policy.
func E9Ablation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Design-choice ablations (Linear cost unless noted)",
		Headers: []string{"workload", "knob", "setting", "cost"},
	}
	names := []string{"fir", "fft", "zipf"}
	for _, name := range names {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}

		add := func(knob, setting string, c int64) {
			t.Rows = append(t.Rows, []string{name, knob, setting, itoa(c)})
		}

		// Greedy seed rule.
		for _, s := range []struct {
			name string
			seed core.GreedySeed
		}{{"heaviest-edge", core.SeedHeaviestEdge}, {"heaviest-vertex", core.SeedHeaviestVertex}} {
			p, err := core.GreedyChain(gr, s.seed)
			if err != nil {
				return nil, err
			}
			c, err := cost.Linear(gr, p)
			if err != nil {
				return nil, err
			}
			add("greedy-seed", s.name, c)
		}

		// 2-opt window.
		base, err := core.GreedyChain(gr, core.SeedHeaviestEdge)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{0, 2, 8} {
			label := "full"
			if w > 0 {
				label = fmt.Sprintf("window=%d", w)
			}
			_, c, err := core.TwoOpt(gr, base, core.TwoOptOptions{Window: w})
			if err != nil {
				return nil, err
			}
			add("2opt-window", label, c)
		}

		// WindowDP width on top of greedy+2-opt.
		refined, _, err := core.TwoOpt(gr, base, core.TwoOptOptions{})
		if err != nil {
			return nil, err
		}
		for _, w := range []int{0, 4, 6, 8} {
			if w == 0 {
				c, err := cost.Linear(gr, refined)
				if err != nil {
					return nil, err
				}
				add("windowdp", "off", c)
				continue
			}
			_, c, err := core.WindowDP(gr, refined, core.WindowDPOptions{Window: w, MaxPasses: 4})
			if err != nil {
				return nil, err
			}
			add("windowdp", fmt.Sprintf("window=%d", w), c)
		}

		// Annealing cooling factor.
		for _, cool := range []float64{0.90, 0.97, 0.99} {
			_, c, err := core.AnnealContext(cfg.Context(), gr, base, core.AnnealOptions{Seed: cfg.Seed, Cooling: cool, Cache: cfg.Cache})
			if err != nil {
				return nil, err
			}
			add("anneal-cooling", fmt.Sprintf("%.2f", cool), c)
		}

		// Frequency layout shape (sequence cost with a centered port).
		for _, fl := range []struct {
			label string
			port  int
		}{{"from-port0", 0}, {"organ-pipe", tr.NumItems / 2}} {
			p, err := core.Frequency(tr, fl.port)
			if err != nil {
				return nil, err
			}
			c, err := cost.MultiPort(tr.Items(), p, []int{tr.NumItems / 2}, tr.NumItems)
			if err != nil {
				return nil, err
			}
			add("frequency-shape", fl.label+" (seq cost)", c)
		}

		// Head policy: shifts for two back-to-back runs of the kernel.
		pp, _, err := core.GreedyTwoOpt(gr, core.TwoOptOptions{})
		if err != nil {
			return nil, err
		}
		for _, hp := range []struct {
			label string
			pol   sim.HeadPolicy
		}{{"stay", sim.HeadStay}, {"return", sim.HeadReturn}} {
			dev, err := dwm.NewDevice(dwm.Geometry{Tapes: 1, DomainsPerTape: tr.NumItems, PortsPerTape: 1},
				dwm.DefaultParams())
			if err != nil {
				return nil, err
			}
			s, err := sim.NewSingleTape(dev, pp, hp.pol)
			if err != nil {
				return nil, err
			}
			var shifts int64
			for i := 0; i < 2; i++ {
				res, err := s.Run(tr)
				if err != nil {
					return nil, err
				}
				shifts += res.Counters.Shifts
			}
			add("head-policy", hp.label+" (2 runs, shifts)", shifts)
		}
	}
	return t, nil
}
