package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E18ShiftFaults evaluates the reliability extension: per-shift position
// errors with sense-and-correct recovery. Every fault costs corrective
// shifts, so total exposure scales with how many shifts a placement
// performs — a placement that minimizes shifts also minimizes fault
// events and correction overhead. The table reports, per fault rate and
// fault mode (uniform per-shift errors versus position-dependent
// pinning at fabrication defects), the total shifts and fault counts
// for program order versus the proposed placement. Pinning keeps the
// mean error rate of the uniform model but concentrates it at defect
// sites: shift paths crossing a strongly pinned region fault
// repeatedly, including during correction — so reducing shift exposure
// helps at least as much as under the uniform model.
func E18ShiftFaults(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "Shift position faults with sense-and-correct recovery (extension)",
		Headers: []string{"workload", "fault prob", "mode", "policy", "shifts", "faults",
			"overhead vs p=0"},
		Notes: []string{
			"single centered port, tape = working set; corrections realign before every access completes",
			"pinning: per-position weights in [0.25,1.75] (mean 1) scale the base probability — same mean error rate, clustered at defects",
		},
	}
	modes := []struct {
		label string
		mode  dwm.FaultMode
	}{{"uniform", dwm.FaultUniform}, {"pinning", dwm.FaultPinning}}
	for _, name := range []string{"fir", "zipf"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		po, err := core.ProgramOrder(tr)
		if err != nil {
			return nil, err
		}
		pp, _, err := core.Propose(tr, gr)
		if err != nil {
			return nil, err
		}
		for _, policy := range []struct {
			label string
			p     layout.Placement
		}{{"program", po}, {"proposed", pp}} {
			var baseline int64 = -1
			for _, m := range modes {
				for _, prob := range []float64{0, 1e-4, 1e-3, 1e-2} {
					if prob == 0 && m.mode != dwm.FaultUniform {
						// p=0 disables injection in every mode; one baseline
						// row per policy is enough.
						continue
					}
					shifts, faults, err := simulateWithFaults(tr, policy.p, prob, cfg.Seed, m.mode)
					if err != nil {
						return nil, err
					}
					if prob == 0 {
						baseline = shifts
					}
					t.Rows = append(t.Rows, []string{
						name, fmt.Sprintf("%g", prob), m.label, policy.label,
						itoa(shifts), itoa(faults),
						fmt.Sprintf("%.2f%%", 100*float64(shifts-baseline)/float64(maxI64(baseline, 1))),
					})
				}
			}
		}
	}
	return t, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// simulateWithFaults runs the trace on a fresh faulty single-tape device.
func simulateWithFaults(tr *trace.Trace, p layout.Placement, prob float64, seed int64, mode dwm.FaultMode) (shifts, faults int64, err error) {
	dev, err := dwm.NewDevice(dwm.Geometry{
		Tapes: 1, DomainsPerTape: tr.NumItems, PortsPerTape: 1,
	}, dwm.DefaultParams())
	if err != nil {
		return 0, 0, err
	}
	if err := dev.EnableFaults(dwm.FaultModel{Prob: prob, Seed: seed, Mode: mode}); err != nil {
		return 0, 0, err
	}
	s, err := sim.NewSingleTape(dev, p, sim.HeadStay)
	if err != nil {
		return 0, 0, err
	}
	res, err := s.Run(tr)
	if err != nil {
		return 0, 0, err
	}
	return res.Counters.Shifts, dev.Faults(), nil
}
