package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/endurance"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E17Variation evaluates the process-variation extension: wires differ in
// shift endurance (lognormal, sigma 0.2/0.4), and the controller can
// choose which physical wire backs which logical tape. Compared mappings:
// variation-oblivious (identity), variation-aware sorted matching
// (provably optimal for a fixed placement), and sorted matching on top of
// the wear-balanced placement from E13. Lifetimes are averaged over 20
// sampled profiles and normalized to the oblivious baseline.
func E17Variation(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Process-variation-aware tape mapping (extension)",
		Headers: []string{"workload", "sigma", "aware/oblivious (mean ± sd)",
			"aware+balanced/oblivious (mean ± sd)"},
		Notes: []string{
			"4 tapes, 25% slack; lognormal endurance variation, 20 profiles per cell",
			"lifetime = iterations until the first wire exhausts its shift budget",
		},
	}
	const (
		tapes    = 4
		nominal  = 1e8
		profiles = 20
	)
	for _, name := range []string{"zipf", "histogram"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		tapeLen := (tr.NumItems*5/4 + tapes - 1) / tapes
		ports := dwm.SpreadPorts(tapeLen, 1)
		seq := tr.Items()

		mp, _, err := core.ProposeMultiTape(tr, tapes, tapeLen, ports)
		if err != nil {
			return nil, err
		}
		baseRates, err := cost.MultiTapeBreakdown(seq, mp, tapes, tapeLen, ports)
		if err != nil {
			return nil, err
		}
		balMP, _, _, err := core.WearBalancedMultiTape(tr, tapes, tapeLen, ports,
			core.WearBalanceOptions{})
		if err != nil {
			return nil, err
		}
		balRates, err := cost.MultiTapeBreakdown(seq, balMP, tapes, tapeLen, ports)
		if err != nil {
			return nil, err
		}

		for _, sigma := range []float64{0.2, 0.4} {
			var awareGain, comboGain []float64
			for s := int64(0); s < profiles; s++ {
				prof, err := endurance.SampleProfile(tapes, nominal, sigma, cfg.Seed+s)
				if err != nil {
					return nil, err
				}
				oblivious, err := prof.Lifetime(baseRates, endurance.IdentityMapping(tapes))
				if err != nil {
					return nil, err
				}
				awareMap, err := prof.BestMapping(baseRates)
				if err != nil {
					return nil, err
				}
				aware, err := prof.Lifetime(baseRates, awareMap)
				if err != nil {
					return nil, err
				}
				comboMap, err := prof.BestMapping(balRates)
				if err != nil {
					return nil, err
				}
				combo, err := prof.Lifetime(balRates, comboMap)
				if err != nil {
					return nil, err
				}
				if oblivious > 0 && !math.IsInf(oblivious, 1) {
					awareGain = append(awareGain, aware/oblivious)
					comboGain = append(comboGain, combo/oblivious)
				}
			}
			a, err := stats.Summarize(awareGain)
			if err != nil {
				return nil, err
			}
			c, err := stats.Summarize(comboGain)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, f2(sigma),
				f2(a.Mean) + " ± " + f2(a.Stddev),
				f2(c.Mean) + " ± " + f2(c.Stddev),
			})
		}
	}
	return t, nil
}
