package bench

import (
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
)

// E20Instruction applies the placement pipeline to instruction fetch:
// dynamic basic-block traces from three CFG families, placed by block
// number (naive linker order) versus the proposed pipeline, with the
// exact optimum as reference (all instances are DP-solvable).
func E20Instruction(cfgc Config) (*Table, error) {
	t := &Table{
		ID:      "E20",
		Title:   "Instruction (basic-block) placement on a DWM I-scratchpad (extension)",
		Headers: []string{"cfg", "blocks", "fetches", "naive", "proposed", "optimal", "reduction", "gap"},
		Notes:   []string{"Linear (MinLA) cost; traces from seeded probabilistic CFG walks"},
	}
	type instance struct {
		name string
		g    *cfg.Graph
		runs int
	}
	loop, err := cfg.Loop(0.7, 0.02, 0.05)
	if err != nil {
		return nil, err
	}
	sw, err := cfg.Switch([]float64{0.4, 0.3, 0.15, 0.1, 0.05}, 0.1)
	if err != nil {
		return nil, err
	}
	chain, err := cfg.Chain(12, 0.25)
	if err != nil {
		return nil, err
	}
	for _, in := range []instance{
		{"loop", loop, 400},
		{"switch", sw, 400},
		{"chain", chain, 400},
	} {
		tr, err := in.g.Execute(in.runs, 0, cfgc.Seed)
		if err != nil {
			return nil, err
		}
		ag, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		naive, err := core.ProgramOrder(tr)
		if err != nil {
			return nil, err
		}
		base, err := cost.Linear(ag, naive)
		if err != nil {
			return nil, err
		}
		_, prop, err := core.Propose(tr, ag)
		if err != nil {
			return nil, err
		}
		_, opt, err := core.ExactDP(ag)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			in.name, itoa(int64(in.g.Blocks)), itoa(int64(tr.Len())),
			itoa(base), itoa(prop), itoa(opt),
			pct(base, prop), pct(opt, prop),
		})
	}
	return t, nil
}
