package bench

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E12Robustness re-runs the main comparison over several seeds and
// reports the shift reduction of the proposed pipeline as mean ± stddev,
// establishing that the headline numbers are not seed artifacts. Only the
// workloads with a random component vary across seeds; the deterministic
// kernels are included once as a control (stddev must be exactly zero).
func E12Robustness(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Seed robustness of the proposed reduction (extension)",
		Headers: []string{"workload", "seeds", "reduction % (mean ± sd [min,max])"},
		Notes:   []string{"single centered port, tape = working set; 5 seeds starting at the config seed"},
	}
	const runs = 5
	for _, g := range workload.Suite() {
		var reductions []float64
		for s := int64(0); s < runs; s++ {
			seed := cfg.Seed + s
			tr := g.Make(seed)
			gr, err := graph.FromTrace(tr)
			if err != nil {
				return nil, err
			}
			po, err := core.ProgramOrder(tr)
			if err != nil {
				return nil, err
			}
			ports := []int{tr.NumItems / 2}
			base, err := cost.MultiPort(tr.Items(), po, ports, tr.NumItems)
			if err != nil {
				return nil, err
			}
			pp, _, err := core.Propose(tr, gr)
			if err != nil {
				return nil, err
			}
			prop, err := cost.MultiPort(tr.Items(), pp, ports, tr.NumItems)
			if err != nil {
				return nil, err
			}
			red := 0.0
			if base > 0 {
				red = 100 * float64(base-prop) / float64(base)
			}
			reductions = append(reductions, red)
		}
		sum, err := stats.Summarize(reductions)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{g.Name, itoa(runs), sum.String()})
	}
	return t, nil
}
