package bench

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/workload"
)

// E15TailLatency examines the per-access shift-distance distribution:
// worst-case access latency is bounded by the tail, and a placement that
// halves the total can shrink the P95/max even more (hot items cluster at
// the port; only cold excursions stay long). Program order versus the
// proposed pipeline, single centered port.
func E15TailLatency(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Per-access shift distance distribution (extension)",
		Headers: []string{"workload", "policy", "mean", "p50", "p95", "max"},
		Notes:   []string{"single centered port, tape = working set"},
	}
	for _, name := range []string{"fir", "histogram", "zipf", "uniform"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		po, err := core.ProgramOrder(tr)
		if err != nil {
			return nil, err
		}
		pp, _, err := core.Propose(tr, gr)
		if err != nil {
			return nil, err
		}
		for _, c := range []struct {
			label string
			p     []int
		}{{"program", po}, {"proposed", pp}} {
			res, err := simulateSingleTape(tr, c.p, tr.NumItems, 1)
			if err != nil {
				return nil, err
			}
			sd := res.ShiftDist
			t.Rows = append(t.Rows, []string{
				name, c.label, f2(sd.Mean), itoa(int64(sd.P50)), itoa(int64(sd.P95)), itoa(int64(sd.Max)),
			})
		}
	}
	return t, nil
}

// E16PortPlacement evaluates design-time port-position co-optimization:
// the evenly spread default versus ports placed by OptimizePorts for the
// proposed placement, on a tape with 2x slack (skew has room to matter).
func E16PortPlacement(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Port-position co-optimization (extension)",
		Headers: []string{"workload", "ports", "spread ports", "optimized ports", "gain", "positions"},
		Notes:   []string{"tape = 2x working set; placement fixed to the proposed pipeline centered on the tape"},
	}
	for _, name := range []string{"zipf", "histogram", "fir"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		tapeLen := 2 * tr.NumItems
		pp, _, err := core.Propose(tr, gr)
		if err != nil {
			return nil, err
		}
		centered, err := core.CenterOnPort(pp, tapeLen, tapeLen/2)
		if err != nil {
			return nil, err
		}
		seq := tr.Items()
		for _, k := range []int{1, 2, 4} {
			spread := dwm.SpreadPorts(tapeLen, k)
			base, err := cost.MultiPort(seq, centered, spread, tapeLen)
			if err != nil {
				return nil, err
			}
			ports, opt, err := core.OptimizePorts(seq, centered, k, tapeLen)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, itoa(int64(k)), itoa(base), itoa(opt), pct(base, opt),
				intsToString(ports),
			})
		}
	}
	return t, nil
}

func intsToString(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += itoa(int64(x))
	}
	return s
}
