package bench

import (
	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/dwm"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E10Adaptive evaluates the online-reorganization extension: static
// placements versus runtime transposition and epoch rebuilding, on both a
// stationary workload (where static placement should win — migrations are
// pure overhead) and a phase-shifting workload (where adaptivity must pay
// for itself). Migration costs are charged through the device model, so
// the comparison is honest.
func E10Adaptive(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Online reorganization (extension): total shifts incl. migration cost",
		Headers: []string{"workload", "start layout", "static", "transpose", "epoch", "best adaptive vs static"},
		Notes: []string{
			"single tape, one centered port; migrations pay real device shifts/reads/writes",
			"phased = hot set rotates 8x; stationary = fixed Zipf(1.3)",
		},
	}
	cases := []struct {
		name string
		tr   *trace.Trace
	}{
		{"phased", workload.Phased(64, 16384, 8, 1.3, cfg.Seed)},
		{"stationary", workload.Zipf(64, 16384, 1.3, cfg.Seed)},
	}
	for _, c := range cases {
		g, err := graph.FromTrace(c.tr)
		if err != nil {
			return nil, err
		}
		starts := []struct {
			name string
			p    func() (layout.Placement, error)
		}{
			{"program", func() (layout.Placement, error) { return core.ProgramOrder(c.tr) }},
			{"proposed", func() (layout.Placement, error) {
				p, _, err := core.Propose(c.tr, g)
				return p, err
			}},
		}
		for _, st := range starts {
			start, err := st.p()
			if err != nil {
				return nil, err
			}
			run := func(pol adaptive.Policy) (int64, error) {
				dev, err := dwm.NewDevice(dwm.Geometry{
					Tapes: 1, DomainsPerTape: c.tr.NumItems, PortsPerTape: 1,
				}, dwm.DefaultParams())
				if err != nil {
					return 0, err
				}
				s, err := adaptive.NewSimulator(dev, start, pol)
				if err != nil {
					return 0, err
				}
				res, err := s.Run(c.tr)
				if err != nil {
					return 0, err
				}
				return res.Counters.Shifts, nil
			}
			static, err := run(adaptive.Static{})
			if err != nil {
				return nil, err
			}
			trans, err := run(adaptive.Transpose{})
			if err != nil {
				return nil, err
			}
			epoch, err := run(&adaptive.Epoch{Window: 1024})
			if err != nil {
				return nil, err
			}
			best := trans
			if epoch < best {
				best = epoch
			}
			t.Rows = append(t.Rows, []string{
				c.name, st.name, itoa(static), itoa(trans), itoa(epoch), pct(static, best),
			})
		}
	}
	return t, nil
}
