package bench

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/workload"
)

// E11CacheFilter evaluates the SRAM-buffer extension: how much of the
// placement benefit survives once a small cache in front of the DWM
// absorbs short-term reuse. The placement is computed on the *filtered*
// stream (what the DWM actually sees), which is the right input for the
// optimizer in this architecture.
func E11CacheFilter(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Placement benefit under an SRAM miss cache (extension)",
		Headers: []string{"workload", "cache", "hit rate", "DWM accesses",
			"program", "proposed", "reduction"},
		Notes: []string{
			"fully associative LRU, word lines, write-back + final flush",
			"placement computed on the filtered (miss + write-back) stream",
		},
	}
	for _, name := range []string{"fir", "histogram", "zipf"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		for _, capacity := range []int{0, 4, 8, 16} {
			filtered, st, err := cache.Filter(tr, capacity, cache.LRU)
			if err != nil {
				return nil, err
			}
			label := "none"
			if capacity > 0 {
				label = fmt.Sprintf("%d", capacity)
			}
			if filtered.Len() == 0 {
				t.Rows = append(t.Rows, []string{
					name, label, f2(st.HitRate()), "0", "0", "0", "n/a",
				})
				continue
			}
			gr, err := graph.FromTrace(filtered)
			if err != nil {
				return nil, err
			}
			po, err := core.ProgramOrder(filtered)
			if err != nil {
				return nil, err
			}
			ports := []int{filtered.NumItems / 2}
			base, err := cost.MultiPort(filtered.Items(), po, ports, filtered.NumItems)
			if err != nil {
				return nil, err
			}
			pp, _, err := core.Propose(filtered, gr)
			if err != nil {
				return nil, err
			}
			prop, err := cost.MultiPort(filtered.Items(), pp, ports, filtered.NumItems)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, label, f2(st.HitRate()), itoa(int64(filtered.Len())),
				itoa(base), itoa(prop), pct(base, prop),
			})
		}
	}
	return t, nil
}
