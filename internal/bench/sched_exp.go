package bench

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/workload"
)

// E21Scheduling evaluates controller request reordering: total shifts and
// maximum queueing delay for FIFO versus SSTF versus elevator scheduling
// as the reorder window grows, on the proposed placement. The expected
// shape mirrors disk scheduling: reordering buys a further shift
// reduction on top of placement, SSTF wins on shifts but lets requests
// starve, and the elevator gets close with bounded delay.
func E21Scheduling(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E21",
		Title:   "Request-window scheduling on top of placement (extension)",
		Headers: []string{"workload", "window", "fifo", "sstf", "sstf delay", "elevator", "elev delay", "sstf vs fifo"},
		Notes: []string{
			"single centered port, tape = working set, proposed placement",
			"delay = max service slots a request waited beyond arrival order",
		},
	}
	for _, name := range []string{"uniform", "zipf"} {
		g, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		p, _, err := core.Propose(tr, gr)
		if err != nil {
			return nil, err
		}
		for _, window := range []int{1, 4, 16, 64} {
			fifo, err := sched.Run(tr, p, tr.NumItems, window, sched.FIFO)
			if err != nil {
				return nil, err
			}
			sstf, err := sched.Run(tr, p, tr.NumItems, window, sched.SSTF)
			if err != nil {
				return nil, err
			}
			elev, err := sched.Run(tr, p, tr.NumItems, window, sched.Elevator)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, itoa(int64(window)),
				itoa(fifo.Shifts),
				itoa(sstf.Shifts), itoa(int64(sstf.MaxDelay)),
				itoa(elev.Shifts), itoa(int64(elev.MaxDelay)),
				pct(fifo.Shifts, sstf.Shifts),
			})
		}
	}
	return t, nil
}
