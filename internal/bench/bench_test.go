package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runExp(t *testing.T, f func(Config) (*Table, error)) *Table {
	t.Helper()
	tb, err := f(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID == "" || tb.Title == "" || len(tb.Headers) == 0 || len(tb.Rows) == 0 {
		t.Fatalf("malformed table: %+v", tb)
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Headers) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tb.Headers))
		}
	}
	return tb
}

// cellInt parses a numeric cell.
func cellInt(t *testing.T, s string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("cell %q not an int: %v", s, err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tb := runExp(t, E1Characteristics)
	if len(tb.Rows) != 15 {
		t.Errorf("expected 15 workloads, got %d", len(tb.Rows))
	}
}

func TestE2ProposedBeatsBaselines(t *testing.T) {
	tb := runExp(t, E2MainComparison)
	idx := map[string]int{}
	for i, h := range tb.Headers {
		idx[h] = i
	}
	for _, row := range tb.Rows {
		name := row[0]
		program := cellInt(t, row[idx["program"]])
		proposed := cellInt(t, row[idx["proposed"]])
		anneal := cellInt(t, row[idx["anneal"]])
		best := proposed
		if anneal < best {
			best = anneal
		}
		// The multi-start pipeline is seeded with program order and can
		// never lose to it.
		if best > program {
			t.Errorf("%s: best proposed %d worse than program order %d", name, best, program)
		}
		// Kernels with exploitable structure must see a substantial
		// reduction; kernels whose first-touch order is already the
		// access chain (ptrchase, zigzag) legitimately see ~0%.
		switch name {
		case "fir", "matmul", "fft", "histogram", "zipf":
			if float64(best) > 0.7*float64(program) {
				t.Errorf("%s: expected >30%% reduction, got %d vs %d", name, best, program)
			}
		}
	}
}

func TestE3ProposedNeverLoses(t *testing.T) {
	tb := runExp(t, E3TapeLength)
	for _, row := range tb.Rows {
		base := cellInt(t, row[3])
		prop := cellInt(t, row[4])
		if prop > base {
			t.Errorf("%s tapeLen %s: proposed %d worse than contiguous %d",
				row[0], row[1], prop, base)
		}
	}
}

func TestE4MorePortsHelpAndProposedWins(t *testing.T) {
	tb := runExp(t, E4Ports)
	// Group rows by workload; shifts must not increase with port count
	// for the proposed policy.
	prev := map[string]int64{}
	for _, row := range tb.Rows {
		name := row[0]
		prop := cellInt(t, row[4])
		program := cellInt(t, row[2])
		if prop > program {
			t.Errorf("%s ports=%s: proposed %d worse than program %d", name, row[1], prop, program)
		}
		if last, ok := prev[name]; ok && prop > last {
			t.Errorf("%s: proposed cost increased with more ports: %d -> %d", name, last, prop)
		}
		prev[name] = prop
		// The oracle schedule can never cost more than the greedy
		// nearest-port controller on the same placement.
		oracle := cellInt(t, row[6])
		if oracle > prop {
			t.Errorf("%s ports=%s: oracle %d worse than greedy controller %d",
				name, row[1], oracle, prop)
		}
	}
}

func TestE5RatiosAtLeastOne(t *testing.T) {
	tb := runExp(t, E5OptimalityGap)
	for _, row := range tb.Rows {
		opt := cellInt(t, row[2])
		for col := 3; col <= 5; col++ {
			c := cellInt(t, row[col])
			if c < opt {
				t.Errorf("%s: heuristic %d below optimum %d", row[0], c, opt)
			}
		}
		worst, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if worst < 1 {
			t.Errorf("%s: worst ratio %.2f < 1", row[0], worst)
		}
		// greedy+2opt specifically should be within 35% of optimal on
		// these small instances.
		g2 := cellInt(t, row[4])
		if opt > 0 && float64(g2) > 1.35*float64(opt) {
			t.Errorf("%s: greedy2opt gap too large: %d vs optimum %d", row[0], g2, opt)
		}
	}
}

func TestE6GainsNonNegative(t *testing.T) {
	tb := runExp(t, E6LatencyEnergy)
	for _, row := range tb.Rows {
		for _, col := range []int{3, 6} {
			s := row[col]
			if s == "n/a" {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
			if err != nil {
				t.Fatalf("gain cell %q: %v", s, err)
			}
			if v < -0.5 { // tolerate rounding noise only
				t.Errorf("%s: negative gain %s", row[0], s)
			}
		}
	}
}

func TestE7PortfolioBeatsAllSinglePartitions(t *testing.T) {
	tb := runExp(t, E7MultiTape)
	for _, row := range tb.Rows {
		portfolio := cellInt(t, row[6])
		for col := 2; col <= 5; col++ {
			if c := cellInt(t, row[col]); portfolio > c {
				t.Errorf("%s tapes=%s: portfolio %d worse than %s %d",
					row[0], row[1], portfolio, tb.Headers[col], c)
			}
		}
	}
}

func TestE8RowsComplete(t *testing.T) {
	tb := runExp(t, E8Runtime)
	// 7 sizes x 5 heuristics + 4 exact rows.
	if len(tb.Rows) != 39 {
		t.Errorf("expected 39 rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if _, err := strconv.ParseFloat(row[2], 64); err != nil {
			t.Errorf("bad time cell %q", row[2])
		}
	}
}

func TestE9CoversAllKnobs(t *testing.T) {
	tb := runExp(t, E9Ablation)
	knobs := map[string]bool{}
	for _, row := range tb.Rows {
		knobs[row[1]] = true
	}
	for _, want := range []string{"greedy-seed", "2opt-window", "windowdp", "anneal-cooling", "frequency-shape", "head-policy"} {
		if !knobs[want] {
			t.Errorf("missing knob %s", want)
		}
	}
}

func TestE10AdaptiveHelpsFromNaiveStart(t *testing.T) {
	tb := runExp(t, E10Adaptive)
	for _, row := range tb.Rows {
		if row[1] != "program" {
			continue
		}
		static := cellInt(t, row[2])
		trans := cellInt(t, row[3])
		// From the naive start, transposition must recover more shifts
		// than its migrations cost.
		if trans >= static {
			t.Errorf("%s: transpose %d not better than static %d from program start",
				row[0], trans, static)
		}
	}
	// Both workload cases and both starts present.
	if len(tb.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tb.Rows))
	}
}

func TestE11PlacementStillHelpsUnderCache(t *testing.T) {
	tb := runExp(t, E11CacheFilter)
	for _, row := range tb.Rows {
		prog := cellInt(t, row[4])
		prop := cellInt(t, row[5])
		if prop > prog {
			t.Errorf("%s cache=%s: proposed %d worse than program %d",
				row[0], row[1], prop, prog)
		}
		// Even at the largest cache the reduction should stay above 15%
		// on these workloads.
		if prog > 0 && float64(prop) > 0.85*float64(prog) {
			t.Errorf("%s cache=%s: reduction collapsed (%d vs %d)",
				row[0], row[1], prop, prog)
		}
	}
	// 3 workloads x 4 cache sizes.
	if len(tb.Rows) != 12 {
		t.Errorf("expected 12 rows, got %d", len(tb.Rows))
	}
}

func TestE12DeterministicWorkloadsHaveZeroSpread(t *testing.T) {
	tb := runExp(t, E12Robustness)
	if len(tb.Rows) != 15 {
		t.Fatalf("expected 15 rows, got %d", len(tb.Rows))
	}
	deterministic := map[string]bool{
		"fir": true, "iir": true, "matmul": true, "fft": true,
		"stencil": true, "zigzag": true, "conv2d": true,
	}
	for _, row := range tb.Rows {
		if !deterministic[row[0]] {
			continue
		}
		if !strings.Contains(row[2], "± 0.0") {
			t.Errorf("%s: deterministic workload has nonzero spread: %s", row[0], row[2])
		}
	}
}

func TestE13WearBalancingNeverIncreasesMaxWear(t *testing.T) {
	tb := runExp(t, E13WearLeveling)
	for _, row := range tb.Rows {
		baseMax := cellInt(t, row[3])
		balMax := cellInt(t, row[5])
		if balMax > baseMax {
			t.Errorf("%s: balanced max wear %d exceeds min-total max %d",
				row[0], balMax, baseMax)
		}
		gain, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("gain cell %q: %v", row[6], err)
		}
		if gain < 1 {
			t.Errorf("%s: lifetime gain %g < 1", row[0], gain)
		}
	}
}

func TestE14WordGranularDominatesObjectGranular(t *testing.T) {
	tb := runExp(t, E14Granularity)
	for _, row := range tb.Rows {
		program := cellInt(t, row[2])
		object := cellInt(t, row[3])
		word := cellInt(t, row[4])
		if word > object {
			t.Errorf("%s: word-granular %d worse than object-granular %d",
				row[0], word, object)
		}
		if word > program {
			t.Errorf("%s: word-granular %d worse than program order %d",
				row[0], word, program)
		}
	}
	if len(tb.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tb.Rows))
	}
}

func TestE15ProposedCompressesTail(t *testing.T) {
	tb := runExp(t, E15TailLatency)
	// Rows alternate program/proposed per workload.
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		prog, prop := tb.Rows[i], tb.Rows[i+1]
		if prog[0] != prop[0] || prog[1] != "program" || prop[1] != "proposed" {
			t.Fatalf("row pairing broken: %v / %v", prog, prop)
		}
		progP95 := cellInt(t, prog[4])
		propP95 := cellInt(t, prop[4])
		if propP95 > progP95 {
			t.Errorf("%s: proposed P95 %d worse than program %d", prog[0], propP95, progP95)
		}
		if cellInt(t, prop[5]) > cellInt(t, prog[5]) {
			t.Errorf("%s: proposed max worse than program", prog[0])
		}
	}
}

func TestE16OptimizedPortsNeverWorse(t *testing.T) {
	tb := runExp(t, E16PortPlacement)
	for _, row := range tb.Rows {
		spread := cellInt(t, row[2])
		opt := cellInt(t, row[3])
		if opt > spread {
			t.Errorf("%s ports=%s: optimized %d worse than spread %d",
				row[0], row[1], opt, spread)
		}
	}
	if len(tb.Rows) != 9 {
		t.Errorf("expected 9 rows, got %d", len(tb.Rows))
	}
}

func TestE17AwareMappingNeverHurts(t *testing.T) {
	tb := runExp(t, E17Variation)
	for _, row := range tb.Rows {
		// "mean ± sd": sorted matching is provably >= identity per
		// sample, so the mean ratio must be >= 1.
		mean, err := strconv.ParseFloat(strings.SplitN(row[2], " ", 2)[0], 64)
		if err != nil {
			t.Fatalf("cell %q: %v", row[2], err)
		}
		if mean < 1 {
			t.Errorf("%s sigma=%s: aware/oblivious mean %g < 1", row[0], row[1], mean)
		}
	}
	if len(tb.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tb.Rows))
	}
}

func TestE18FaultExposureTracksShifts(t *testing.T) {
	tb := runExp(t, E18ShiftFaults)
	// At the highest fault rate, the proposed placement must see far
	// fewer fault events than program order (exposure ~ shifts) — under
	// BOTH the uniform and the pinning fault model.
	faultsAt := map[string]map[string]int64{} // workload/mode -> policy -> faults
	for _, row := range tb.Rows {
		if row[1] != "0.01" {
			continue
		}
		k := row[0] + "/" + row[2]
		if faultsAt[k] == nil {
			faultsAt[k] = map[string]int64{}
		}
		faultsAt[k][row[3]] = cellInt(t, row[5])
	}
	if len(faultsAt) != 4 {
		t.Fatalf("expected 4 workload/mode groups at p=0.01, got %d", len(faultsAt))
	}
	for k, m := range faultsAt {
		if m["proposed"] >= m["program"] {
			t.Errorf("%s: proposed fault count %d not below program %d",
				k, m["proposed"], m["program"])
		}
	}
	// Zero-probability rows must report zero faults, and pinning must
	// actually change the fault trajectory versus uniform somewhere.
	modesDiffer := false
	uniformFaults := map[string]int64{}
	for _, row := range tb.Rows {
		if row[1] == "0" && cellInt(t, row[5]) != 0 {
			t.Errorf("%s/%s: faults at p=0", row[0], row[3])
		}
		key := row[0] + "/" + row[1] + "/" + row[3]
		switch row[2] {
		case "uniform":
			uniformFaults[key] = cellInt(t, row[5])
		case "pinning":
			if cellInt(t, row[5]) != uniformFaults[key] {
				modesDiffer = true
			}
		}
	}
	if !modesDiffer {
		t.Error("pinning rows identical to uniform everywhere; mode plumbing is vacuous")
	}
}

func TestE19InterleavingShapes(t *testing.T) {
	tb := runExp(t, E19Interleaving)
	rows := map[string][]string{}
	for _, row := range tb.Rows {
		rows[row[0]] = row
	}
	// Sequential costs the same under every mapping (same per-tape walk).
	seq := rows["sequential"]
	if cellInt(t, seq[1]) != cellInt(t, seq[2]) || cellInt(t, seq[2]) != cellInt(t, seq[3]) {
		t.Errorf("sequential differs across mappings: %v", seq)
	}
	// Stride equal to the tape count defeats tape-major but not striping.
	s8 := rows["stride-8"]
	if cellInt(t, s8[2]) >= cellInt(t, s8[1]) {
		t.Errorf("stride-8: striped %s not below tape-major %s", s8[2], s8[1])
	}
	// Stride equal to the tape length is nearly free on tape-major.
	s64 := rows["stride-64"]
	if cellInt(t, s64[1]) >= cellInt(t, s64[2]) {
		t.Errorf("stride-64: tape-major %s not below striped %s", s64[1], s64[2])
	}
	// Random is mapping-independent to within a few percent.
	r := rows["random"]
	lo, hi := cellInt(t, r[1]), cellInt(t, r[1])
	for _, c := range []int64{cellInt(t, r[2]), cellInt(t, r[3])} {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if float64(hi) > 1.1*float64(lo) {
		t.Errorf("random spread too wide: %v", r)
	}
}

func TestE20ProposedMatchesOptimalOnSmallCFGs(t *testing.T) {
	tb := runExp(t, E20Instruction)
	for _, row := range tb.Rows {
		naive := cellInt(t, row[3])
		prop := cellInt(t, row[4])
		opt := cellInt(t, row[5])
		if prop > naive {
			t.Errorf("%s: proposed %d worse than naive %d", row[0], prop, naive)
		}
		if prop < opt {
			t.Errorf("%s: proposed %d below optimum %d (impossible)", row[0], prop, opt)
		}
		// These instances are small; the pipeline should be within 10%
		// of optimal.
		if float64(prop) > 1.1*float64(opt) {
			t.Errorf("%s: gap too large: %d vs %d", row[0], prop, opt)
		}
	}
	if len(tb.Rows) != 3 {
		t.Errorf("expected 3 rows, got %d", len(tb.Rows))
	}
}

func TestE21SchedulingShapes(t *testing.T) {
	tb := runExp(t, E21Scheduling)
	prevSSTF := map[string]int64{}
	for _, row := range tb.Rows {
		name := row[0]
		fifo := cellInt(t, row[2])
		sstf := cellInt(t, row[3])
		elev := cellInt(t, row[5])
		if sstf > fifo || elev > fifo {
			t.Errorf("%s window=%s: reordering worse than FIFO (%d/%d vs %d)",
				name, row[1], sstf, elev, fifo)
		}
		// More window never hurts SSTF on these workloads.
		if last, ok := prevSSTF[name]; ok && sstf > last {
			t.Errorf("%s: SSTF got worse with larger window: %d -> %d", name, last, sstf)
		}
		prevSSTF[name] = sstf
		if row[1] == "1" && (sstf != fifo || elev != fifo) {
			t.Errorf("%s: window 1 does not degenerate to FIFO", name)
		}
	}
	if len(tb.Rows) != 8 {
		t.Errorf("expected 8 rows, got %d", len(tb.Rows))
	}
}

func TestE22ProfileGeneralizes(t *testing.T) {
	tb := runExp(t, E22Profile)
	for _, row := range tb.Rows {
		program := cellInt(t, row[1])
		profile := cellInt(t, row[2])
		oracle := cellInt(t, row[3])
		if oracle > profile {
			// The oracle sees strictly more information; allow only tiny
			// heuristic noise in the other direction.
			if float64(oracle) > 1.02*float64(profile) {
				t.Errorf("%s: oracle %d notably worse than profile %d", row[0], oracle, profile)
			}
		}
		switch row[0] {
		case "fir", "histogram", "zipf":
			// Stationary workloads: profile placement must retain most
			// of the oracle's reduction.
			if program == profile {
				t.Errorf("%s: profile placement achieved nothing", row[0])
			}
			profRed := float64(program-profile) / float64(program)
			oraRed := float64(program-oracle) / float64(program)
			if profRed < oraRed-0.10 {
				t.Errorf("%s: profile reduction %.2f far below oracle %.2f",
					row[0], profRed, oraRed)
			}
		case "phased":
			// Drift must visibly hurt the profile placement.
			if profile <= oracle {
				t.Errorf("phased: profile %d not worse than oracle %d", profile, oracle)
			}
		}
	}
	if len(tb.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tb.Rows))
	}
}

func TestAllRunnersRegistered(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("expected 22 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Name == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tb := &Table{
		ID:      "EX",
		Title:   "demo",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}, {"2", `he said "hi"`}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tb.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "EX — demo") || !strings.Contains(out, "note: a note") {
		t.Errorf("format output missing pieces:\n%s", out)
	}
	buf.Reset()
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"he said ""hi"""`) {
		t.Errorf("csv quoting wrong:\n%s", csv)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{
		ID:      "EX",
		Title:   "demo",
		Headers: []string{"a", "b|c"},
		Rows:    [][]string{{"1", "x|y"}},
		Notes:   []string{"note|pipe"},
	}
	var buf bytes.Buffer
	if err := tb.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## EX — demo", "| a | b\\|c |", "| --- | --- |", "| 1 | x\\|y |", "> note\\|pipe"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestPctHelper(t *testing.T) {
	if got := pct(100, 60); got != "40.0%" {
		t.Errorf("pct = %s", got)
	}
	if got := pct(0, 5); got != "n/a" {
		t.Errorf("pct zero base = %s", got)
	}
}
