package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Runner instrumentation (see internal/obs): queue wait is the time an
// experiment spent submitted but not yet picked up by a worker, wall is
// the execution time of the Run call itself.
var (
	obsQueueWait = obs.GetTimer("bench.runner.queue_wait")
	obsExpWall   = obs.GetTimer("bench.runner.experiment_wall")
	obsExpOK     = obs.GetCounter("bench.runner.experiments_ok")
	obsExpFailed = obs.GetCounter("bench.runner.experiments_failed")
	obsPanics    = obs.GetCounter("bench.runner.panics_recovered")
	obsTimeouts  = obs.GetCounter("bench.runner.timeouts")
	obsCanceled  = obs.GetCounter("bench.runner.canceled")
)

// RunResult is one executed experiment with its wall time, the unit the
// perf-trajectory report (BENCH_dwmbench.json) records.
type RunResult struct {
	// ID and Name identify the experiment.
	ID, Name string
	// Table is the experiment output; nil when Err is set.
	Table *Table
	// Elapsed is the wall time of the Run call (or of the wait until the
	// timeout/cancellation that aborted it).
	Elapsed time.Duration
	// Err is the failure of this experiment: a propagated Run error, a
	// recovered panic, a timeout, or the context's cancellation error.
	// Failures are isolated per experiment — one experiment failing does
	// not discard its siblings' results.
	Err error
	// CacheEnabled reports whether a placement cache was threaded into
	// this experiment; CacheHits/CacheMisses are the anneal-stage lookup
	// outcomes attributed to it (zero for experiments with no anneal
	// stage).
	CacheEnabled bool
	CacheHits    int64
	CacheMisses  int64
}

// countingCache wraps a PlacementCache with per-experiment hit/miss
// attribution. The process-wide obs counters aggregate across the whole
// run; the report wants each experiment's own outcome, and experiments
// run concurrently, so the wrapper counts with atomics local to one
// experiment execution.
type countingCache struct {
	inner        core.PlacementCache
	hits, misses atomic.Int64
}

func (cc *countingCache) Lookup(c *graph.CSR, start layout.Placement, opts core.AnnealOptions) (layout.Placement, int64, bool) {
	p, cost, ok := cc.inner.Lookup(c, start, opts)
	if ok {
		cc.hits.Add(1)
	} else {
		cc.misses.Add(1)
	}
	return p, cost, ok
}

func (cc *countingCache) Store(c *graph.CSR, start layout.Placement, opts core.AnnealOptions, best layout.Placement, cost int64) {
	cc.inner.Store(c, start, opts, best, cost)
}

// workers resolves the effective worker count.
func (cfg Config) workers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DeriveSeed maps (seed, expID, row) to an independent per-row RNG seed:
// seed ^ FNV-1a(expID, row), finalized with a splitmix64 mix so nearby
// rows land in unrelated streams. Experiments whose rows need their own
// randomness derive it through this function instead of sharing one
// sequential RNG, which is what makes row-parallel execution produce
// byte-identical tables for every worker count.
func DeriveSeed(seed int64, expID string, row int) int64 {
	h := fnv.New64a()
	h.Write([]byte(expID))
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(row >> (8 * i))
	}
	h.Write(buf[:])
	z := uint64(seed) ^ h.Sum64()
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// parMap runs n independent jobs on at most `workers` goroutines and
// returns their results in input order. Errors are reported
// deterministically: the error of the lowest-indexed failing job wins,
// regardless of completion order. With workers <= 1 the jobs run
// sequentially on the calling goroutine.
func parMap[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = job(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = job(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunParallel executes the experiments on a worker pool of cfg.Workers
// goroutines (default GOMAXPROCS) and returns the results in the order
// the experiments were given. Each experiment is a pure function of the
// Config, and the row-parallel experiments derive any per-row randomness
// from DeriveSeed, so the returned tables are byte-identical for every
// worker count — including the sequential Workers=1 run.
//
// RunParallel is RunContext with a background context; see RunContext
// for the failure-isolation and partial-result contract.
func RunParallel(cfg Config, exps ...Experiment) ([]RunResult, error) {
	return RunContext(context.Background(), cfg, exps...)
}

// RunContext executes the experiments on a worker pool of cfg.Workers
// goroutines and returns one RunResult per experiment, in input order.
//
// Failures are isolated: a panic inside an experiment is recovered into
// that experiment's Err (with its stack), an experiment exceeding
// cfg.Timeout is marked with a timeout error, and an experiment Run
// error stays on its own result. The returned error is the Err of the
// lowest-indexed failing experiment (deterministic regardless of
// completion order), or nil when all succeeded; the slice always holds
// every completed experiment's table, so callers can report partial
// results after a failure.
//
// Cancelling ctx stops the runner promptly: experiments not yet started
// are marked with ctx's error, and in-flight experiments are abandoned
// (their goroutine finishes in the background and its result is
// discarded — experiments are pure, so this leaks only CPU, not state).
// The same abandonment applies to a per-experiment timeout.
func RunContext(ctx context.Context, cfg Config, exps ...Experiment) ([]RunResult, error) {
	submitted := time.Now()
	results := make([]RunResult, len(exps))
	workers := cfg.workers()
	if workers > len(exps) {
		workers = len(exps)
	}
	runAt := func(i int) {
		obsQueueWait.Observe(time.Since(submitted))
		results[i] = runOne(ctx, cfg, exps[i])
	}
	if workers <= 1 {
		for i := range exps {
			if err := ctx.Err(); err != nil {
				results[i] = RunResult{ID: exps[i].ID, Name: exps[i].Name, Err: err}
				obsCanceled.Inc()
				continue
			}
			runAt(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//dwmlint:ignore ctxflow cancellation is handled at the submit loop: once ctx fires no index reaches the jobs channel, and in-flight runAt calls see ctx through runOne
			go func() {
				defer wg.Done()
				for i := range jobs {
					runAt(i)
				}
			}()
		}
	submit:
		for i := range exps {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Everything not yet handed to a worker is canceled; no
				// new experiment starts after the context fires.
				for j := i; j < len(exps); j++ {
					results[j] = RunResult{ID: exps[j].ID, Name: exps[j].Name, Err: ctx.Err()}
					obsCanceled.Inc()
				}
				break submit
			}
		}
		close(jobs)
		wg.Wait()
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("%s: %w", results[i].ID, results[i].Err)
		}
	}
	return results, nil
}

// runOne executes a single experiment with panic recovery and the
// per-experiment timeout, charging its wall time to the runner timer.
// The timeout is also threaded into the experiment's Config.Context, so
// cancellation-aware stages (core.AnnealContext) unwind promptly; the
// select below stays as the backstop for stages that never look at the
// context.
func runOne(ctx context.Context, cfg Config, e Experiment) RunResult {
	start := time.Now()
	ectx := ctx
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ectx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	// The experiment span parents every pipeline span below it (anneal
	// chains, sim runs, freezes) through the context the experiment
	// threads into its stages.
	sctx, span := obs.StartSpan(ectx, "bench.experiment")
	span.SetAttr("id", e.ID).SetAttr("name", e.Name)
	cfg.ctx = sctx
	var cc *countingCache
	if cfg.Cache != nil {
		cc = &countingCache{inner: cfg.Cache}
		cfg.Cache = cc
	}
	type outcome struct {
		tbl *Table
		err error
	}
	done := make(chan outcome, 1)
	//dwmlint:ignore ctxflow the experiment receives the context through cfg.ctx (set above from ectx); the select below is the backstop for stages that never look at it
	go func() {
		defer span.End()
		defer func() {
			if r := recover(); r != nil {
				obsPanics.Inc()
				span.SetAttr("panic", true)
				done <- outcome{err: fmt.Errorf("panic: %v\n%s", r, debug.Stack())}
			}
		}()
		tbl, err := e.Run(cfg)
		span.SetAttr("ok", err == nil)
		done <- outcome{tbl: tbl, err: err}
	}()
	var timeout <-chan time.Time
	if cfg.Timeout > 0 {
		timer := time.NewTimer(cfg.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	res := RunResult{ID: e.ID, Name: e.Name}
	select {
	case o := <-done:
		res.Table, res.Err = o.tbl, o.err
	case <-ctx.Done():
		res.Err = ctx.Err()
		obsCanceled.Inc()
	case <-timeout:
		res.Err = fmt.Errorf("timed out after %v", cfg.Timeout)
		obsTimeouts.Inc()
	}
	res.Elapsed = time.Since(start)
	if cc != nil {
		// Atomic loads are safe even when the experiment goroutine was
		// abandoned on timeout/cancel and is still winding down.
		res.CacheEnabled = true
		res.CacheHits = cc.hits.Load()
		res.CacheMisses = cc.misses.Load()
	}
	obsExpWall.Observe(res.Elapsed)
	if res.Err != nil {
		res.Table = nil
		obsExpFailed.Inc()
	} else {
		obsExpOK.Inc()
	}
	return res
}
