package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"
)

// RunResult is one executed experiment with its wall time, the unit the
// perf-trajectory report (BENCH_dwmbench.json) records.
type RunResult struct {
	// ID and Name identify the experiment.
	ID, Name string
	// Table is the experiment output.
	Table *Table
	// Elapsed is the wall time of the Run call.
	Elapsed time.Duration
}

// workers resolves the effective worker count.
func (cfg Config) workers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DeriveSeed maps (seed, expID, row) to an independent per-row RNG seed:
// seed ^ FNV-1a(expID, row), finalized with a splitmix64 mix so nearby
// rows land in unrelated streams. Experiments whose rows need their own
// randomness derive it through this function instead of sharing one
// sequential RNG, which is what makes row-parallel execution produce
// byte-identical tables for every worker count.
func DeriveSeed(seed int64, expID string, row int) int64 {
	h := fnv.New64a()
	h.Write([]byte(expID))
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(row >> (8 * i))
	}
	h.Write(buf[:])
	z := uint64(seed) ^ h.Sum64()
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// parMap runs n independent jobs on at most `workers` goroutines and
// returns their results in input order. Errors are reported
// deterministically: the error of the lowest-indexed failing job wins,
// regardless of completion order. With workers <= 1 the jobs run
// sequentially on the calling goroutine.
func parMap[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = job(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = job(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunParallel executes the experiments on a worker pool of cfg.Workers
// goroutines (default GOMAXPROCS) and returns the results in the order
// the experiments were given. Each experiment is a pure function of the
// Config, and the row-parallel experiments derive any per-row randomness
// from DeriveSeed, so the returned tables are byte-identical for every
// worker count — including the sequential Workers=1 run.
func RunParallel(cfg Config, exps ...Experiment) ([]RunResult, error) {
	return parMap(cfg.workers(), len(exps), func(i int) (RunResult, error) {
		e := exps[i]
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			return RunResult{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		return RunResult{ID: e.ID, Name: e.Name, Table: tbl, Elapsed: time.Since(start)}, nil
	})
}
