package bench

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/workload"
)

// E14Granularity quantifies what object-granularity placement costs: a
// toolchain that can reorder whole arrays but not split them
// (GroupedPropose) versus free word-granular placement (Propose), against
// the program-order baseline. The group tables reflect each kernel's real
// arrays (FIR: delay line + coefficients; matmul: A, B, C; stencil: the
// two ping-pong arrays; FFT: data + twiddles).
func E14Granularity(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Word-granular vs object-granular placement (extension)",
		Headers: []string{"workload", "objects", "program", "object-granular",
			"word-granular", "object red.", "word red."},
		Notes: []string{
			"Linear (MinLA) cost, single-port model",
			"object-granular keeps each array contiguous in first-touch order",
		},
	}
	cases := []struct {
		name  string
		block int // array length in the generator's item numbering
	}{
		{"fir", 32},     // 2 arrays of 32
		{"matmul", 36},  // A, B, C of 36
		{"stencil", 64}, // 2 arrays of 64
		{"fft", 32},     // data 64 + twiddle 32 -> blocks of 32 (data split in two)
	}
	for _, c := range cases {
		g, err := workload.ByName(c.name)
		if err != nil {
			return nil, err
		}
		tr := g.Make(cfg.Seed)
		group, err := core.UniformGroups(tr.NumItems, c.block)
		if err != nil {
			return nil, err
		}
		nGroups := (tr.NumItems + c.block - 1) / c.block

		gr, err := graph.FromTrace(tr)
		if err != nil {
			return nil, err
		}
		po, err := core.ProgramOrder(tr)
		if err != nil {
			return nil, err
		}
		base, err := cost.Linear(gr, po)
		if err != nil {
			return nil, err
		}
		_, object, err := core.GroupedPropose(tr, group)
		if err != nil {
			return nil, err
		}
		_, word, err := core.Propose(tr, gr)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, itoa(int64(nGroups)), itoa(base), itoa(object), itoa(word),
			pct(base, object), pct(base, word),
		})
	}
	return t, nil
}
