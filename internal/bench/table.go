// Package bench implements the evaluation harness: one runner per
// reconstructed table/figure of the paper (E1–E9), each producing a Table
// that cmd/dwmbench prints and bench_test.go wraps in testing.B targets.
//
// Every experiment is deterministic for a given Config seed, so the
// numbers in EXPERIMENTS.md are exactly reproducible.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a formatted experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E2").
	ID string
	// Title describes what the table/figure reproduces.
	Title string
	// Headers labels the columns.
	Headers []string
	// Rows holds the cell values.
	Rows [][]string
	// Notes are free-form footnotes (parameters, caveats).
	Notes []string
}

// normRow returns row resized to exactly n cells: short rows are padded
// with empty cells and long rows truncated, so a ragged row can neither
// leak cells from a previously rendered row nor crash a renderer. The
// returned slice is freshly allocated — renderers must not share a cell
// buffer across rows (a reused buffer is exactly how stale cells leaked
// before).
func normRow(row []string, n int) []string {
	out := make([]string, n)
	copy(out, row)
	return out
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	sep := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(normRow(row, len(t.Headers)), "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown renders the table as a GitHub-flavored markdown section with a
// heading, the table, and the notes as a blockquote — the format
// EXPERIMENTS.md embeds.
func (t *Table) Markdown(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	head := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		head[i] = esc(h)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(head, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		cells := normRow(row, len(t.Headers))
		for i, c := range cells {
			cells[i] = esc(c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", esc(n)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table as comma-separated values (quotes any cell
// containing a comma or quote).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(normRow(row, len(t.Headers))); err != nil {
			return err
		}
	}
	return nil
}

// cell formatting helpers shared by the experiments.

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats the relative reduction of got versus base as a percentage.
func pct(base, got int64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(base-got)/float64(base))
}
