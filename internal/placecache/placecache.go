// Package placecache memoizes placement results by graph content.
//
// The key insight (paper §III) is that the access-transition graph — and
// therefore the optimal placement problem — is invariant under item
// renumbering. The cache keys entries by the canonical fingerprint of
// the graph (graph.Canon) together with the device/objective descriptor
// and the policy's reproducibility inputs (policy name, seed, iteration
// budget, restarts, and an auxiliary hash covering anything else the
// result depends on). Placements are stored in canonical vertex space,
// so a hit computed under one numbering is decanonicalized into the
// requesting numbering through the requester's own labeling.
//
// The store is a bounded LRU with an optional append-only JSONL
// persistence layer (see persist.go). Recency is tracked with a
// sequence-ordered list, never wall-clock time, so cache behavior is a
// pure function of the operation sequence — the determinism contract
// (DESIGN.md §7, §12) extends through the cache.
package placecache

import (
	"container/list"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/obs"
)

var (
	obsHits      = obs.GetCounter("placecache.hits")
	obsMisses    = obs.GetCounter("placecache.misses")
	obsWarmHits  = obs.GetCounter("placecache.warm_hits")
	obsStores    = obs.GetCounter("placecache.stores")
	obsEvictions = obs.GetCounter("placecache.evictions")
	obsEntries   = obs.GetGauge("placecache.entries")
	obsBytes     = obs.GetGauge("placecache.bytes")
)

// Key identifies one memoized result. Every field participates in
// equality; two requests with equal keys are guaranteed (up to hash
// collision on FP/Aux) to describe the same computation.
type Key struct {
	// FP is the canonical fingerprint of the access-transition graph.
	FP graph.Fingerprint
	// Policy names the placement policy that produced the entry.
	Policy string
	// Device describes the device/objective the placement was optimized
	// for ("linear" for the single-tape Linear shift objective).
	Device string
	// Seed, Iterations, Restarts are the policy's reproducibility inputs.
	Seed       int64
	Iterations int
	Restarts   int
	// Aux hashes any remaining inputs the result depends on — for the
	// annealer, the canonical-space start placement and the float
	// schedule parameters.
	Aux uint64
}

// Entry is one memoized result.
type Entry struct {
	// Placement is the result in canonical vertex space:
	// Placement[canonical vertex] = slot.
	Placement []int
	// Cost is the objective value of the placement (numbering-invariant
	// for the Linear objective).
	Cost int64
	// Profile is the degree-profile signature of the graph, the
	// secondary index Nearest searches for warm-start candidates.
	Profile uint64
}

// Options configures a cache.
type Options struct {
	// MaxEntries bounds the LRU; 0 selects 256.
	MaxEntries int
	// Path, when non-empty, names the append-only JSONL persistence
	// file. Existing records are loaded on construction and every new
	// store is appended.
	Path string
}

// DefaultMaxEntries is the LRU bound when Options.MaxEntries is zero.
const DefaultMaxEntries = 256

// Cache is a bounded, persistent, renumbering-aware placement memo.
// All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int                   // immutable after New
	entries map[Key]*list.Element //dwmlint:guard mu
	lru     *list.List            //dwmlint:guard mu
	profIdx map[uint64][]Key      //dwmlint:guard mu
	bytes   int64                 //dwmlint:guard mu
	persist *persister            //dwmlint:guard mu
}

type node struct {
	key   Key
	entry Entry
}

// NewMemory returns a memory-only cache bounded to max entries (0
// selects DefaultMaxEntries).
func NewMemory(max int) *Cache {
	c, _ := New(Options{MaxEntries: max})
	return c
}

// New builds a cache from Options. With a persistence path, existing
// records are loaded (malformed or checksum-failing lines are skipped
// and counted) before the cache accepts traffic.
func New(o Options) (*Cache, error) {
	max := o.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	c := &Cache{
		max:     max,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		profIdx: make(map[uint64][]Key),
	}
	if o.Path != "" {
		p, err := newPersister(o.Path)
		if err != nil {
			return nil, fmt.Errorf("placecache: %w", err)
		}
		if err := p.load(c); err != nil {
			p.close()
			return nil, fmt.Errorf("placecache: %w", err)
		}
		c.persist = p
	}
	return c, nil
}

// Close flushes and closes the persistence layer, if any.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.persist == nil {
		return nil
	}
	err := c.persist.close()
	c.persist = nil
	return err
}

// Get returns the entry for k, bumping its recency.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		obsMisses.Inc()
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	obsHits.Inc()
	return el.Value.(*node).entry, true
}

// Put stores e under k. First write wins: if k is already present the
// call only bumps recency, so concurrent identical computations cannot
// flap the stored bytes and replays stay pinned to the first result.
func (c *Cache) Put(k Key, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(k, e, true)
}

// put is Put without the lock; fromLive distinguishes live stores (which
// append to the persistence log) from load-time replays.
//
//dwmlint:holds mu
func (c *Cache) put(k Key, e Entry, fromLive bool) {
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.max {
		c.evictOldest()
	}
	el := c.lru.PushFront(&node{key: k, entry: e})
	c.entries[k] = el
	c.profIdx[e.Profile] = append(c.profIdx[e.Profile], k)
	c.bytes += entryBytes(e)
	obsStores.Inc()
	obsEntries.Set(int64(c.lru.Len()))
	obsBytes.Set(c.bytes)
	if fromLive && c.persist != nil {
		c.persist.append(k, e)
	}
}

// evictOldest drops the least-recently-used entry. Callers hold c.mu.
//
//dwmlint:holds mu
func (c *Cache) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	n := el.Value.(*node)
	c.lru.Remove(el)
	delete(c.entries, n.key)
	keys := c.profIdx[n.entry.Profile]
	for i, k := range keys {
		if k == n.key {
			c.profIdx[n.entry.Profile] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	if len(c.profIdx[n.entry.Profile]) == 0 {
		delete(c.profIdx, n.entry.Profile)
	}
	c.bytes -= entryBytes(n.entry)
	obsEvictions.Inc()
	obsEntries.Set(int64(c.lru.Len()))
	obsBytes.Set(c.bytes)
}

// Nearest returns the most recently stored entry whose degree profile
// matches and whose placement covers exactly n vertices — a structural
// near-match suitable for warm-starting a fresh search. It does not bump
// recency (a warm start is a hint, not a reuse), and it does not count a
// warm hit either: a candidate is only a hit once a consumer actually
// adopts it (it must beat the consumer's own start), which the consumer
// reports via NoteWarmApplied. Counting here would overstate warm hits by
// every near-match that lost to the policy's cold start.
func (c *Cache) Nearest(profile uint64, n int) (Key, Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.profIdx[profile]
	for i := len(keys) - 1; i >= 0; i-- {
		el, ok := c.entries[keys[i]]
		if !ok {
			continue
		}
		e := el.Value.(*node).entry
		if len(e.Placement) == n {
			return keys[i], e, true
		}
	}
	return Key{}, Entry{}, false
}

// NoteWarmApplied records that a placement returned by Nearest was
// actually adopted as a search's starting point. Consumers call it at the
// point of application, so the warm-hit counter (placecache.warm_hits and
// Stats.WarmHits) measures warm starts that happened, not candidates that
// were merely found.
func (c *Cache) NoteWarmApplied() { obsWarmHits.Inc() }

// Stats is a point-in-time summary of the cache.
type Stats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	WarmHits  int64
	Evictions int64
}

// Stats returns the current counters. Hit/miss totals are process-wide
// (shared with any other Cache in the process via the obs registry);
// Entries/Bytes are this cache's own.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		Hits:      obsHits.Value(),
		Misses:    obsMisses.Value(),
		WarmHits:  obsWarmHits.Value(),
		Evictions: obsEvictions.Value(),
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// entryBytes approximates an entry's memory footprint for the bytes
// gauge: the placement slice plus fixed per-entry overhead.
func entryBytes(e Entry) int64 { return int64(8*len(e.Placement)) + 96 }

// Canonize maps a placement from request vertex space into canonical
// space: out[labeling[item]] = p[item].
func Canonize(p layout.Placement, labeling []int32) []int {
	out := make([]int, len(p))
	for item, slot := range p {
		out[labeling[item]] = slot
	}
	return out
}

// Decanonize maps a canonical-space placement back into request vertex
// space: out[item] = pc[labeling[item]]. It is the exact inverse of
// Canonize under the same labeling.
func Decanonize(pc []int, labeling []int32) layout.Placement {
	out := make(layout.Placement, len(pc))
	for item := range out {
		out[item] = pc[labeling[item]]
	}
	return out
}

// mix64 is the splitmix64 finalizer (same scheme as graph/core/bench).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func foldSeq(h, v uint64) uint64 { return mix64(h*0x100000001B3 + v) }

// annealAux hashes the anneal inputs not covered by the key's named
// fields: the canonical-space start placement and the bitwise float
// schedule parameters.
func annealAux(canonStart []int, initialTemp, cooling float64) uint64 {
	h := mix64(uint64(len(canonStart)) ^ 0x9E3779B97F4A7C15)
	for _, s := range canonStart {
		h = foldSeq(h, uint64(s))
	}
	h = foldSeq(h, math.Float64bits(initialTemp))
	return foldSeq(h, math.Float64bits(cooling))
}

// annealAdapter adapts the cache to core.PlacementCache for plain
// AnnealOptions-driven calls (the dwmbench sweep path).
type annealAdapter struct {
	c      *Cache
	device string
}

// ForAnneal returns a core.PlacementCache view of the cache for the
// given device descriptor. The adapter keys on the graph fingerprint,
// the canonicalized start placement, and every AnnealOptions field the
// result depends on, so a Lookup hit replays exactly what a fresh run
// would compute.
func (c *Cache) ForAnneal(device string) core.PlacementCache {
	return &annealAdapter{c: c, device: device}
}

func (a *annealAdapter) key(cn *graph.Canonical, start layout.Placement, opts core.AnnealOptions) Key {
	return Key{
		FP:         cn.FP,
		Policy:     "core.anneal",
		Device:     a.device,
		Seed:       opts.Seed,
		Iterations: opts.Iterations,
		Restarts:   opts.Restarts,
		Aux:        annealAux(Canonize(start, cn.Labeling), opts.InitialTemp, opts.Cooling),
	}
}

// Lookup implements core.PlacementCache.
func (a *annealAdapter) Lookup(c *graph.CSR, start layout.Placement, opts core.AnnealOptions) (layout.Placement, int64, bool) {
	if len(start) != c.N() {
		return nil, 0, false
	}
	cn := c.Canon()
	e, ok := a.c.Get(a.key(cn, start, opts))
	if !ok || len(e.Placement) != c.N() {
		return nil, 0, false
	}
	return Decanonize(e.Placement, cn.Labeling), e.Cost, true
}

// Store implements core.PlacementCache.
func (a *annealAdapter) Store(c *graph.CSR, start layout.Placement, opts core.AnnealOptions, best layout.Placement, cost int64) {
	if len(start) != c.N() || len(best) != c.N() {
		return
	}
	cn := c.Canon()
	a.c.Put(a.key(cn, start, opts), Entry{
		Placement: Canonize(best, cn.Labeling),
		Cost:      cost,
		Profile:   cn.Profile,
	})
}
