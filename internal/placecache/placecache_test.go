package placecache

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/trace"
)

func testKey(i int) Key {
	return Key{
		FP:     graph.Fingerprint{uint64(i), uint64(i) * 31},
		Policy: "core.anneal",
		Device: "linear",
		Seed:   int64(i),
	}
}

func testEntry(n int, profile uint64) Entry {
	pl := make([]int, n)
	for i := range pl {
		pl[i] = n - 1 - i
	}
	return Entry{Placement: pl, Cost: int64(n) * 10, Profile: profile}
}

func TestLRUEvictionAndBump(t *testing.T) {
	c := NewMemory(3)
	for i := 0; i < 3; i++ {
		c.Put(testKey(i), testEntry(4, uint64(i)))
	}
	// Bump key 0, then insert key 3: key 1 (now oldest) must go.
	if _, ok := c.Get(testKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.Put(testKey(3), testEntry(4, 3))
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("key 1 survived eviction despite being LRU")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(testKey(i)); !ok {
			t.Fatalf("key %d evicted unexpectedly", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", c.Len())
	}
}

func TestPutFirstWins(t *testing.T) {
	c := NewMemory(4)
	c.Put(testKey(1), testEntry(4, 7))
	second := testEntry(4, 7)
	second.Cost = 999
	c.Put(testKey(1), second)
	e, _ := c.Get(testKey(1))
	if e.Cost != 40 {
		t.Fatalf("second Put overwrote the first: cost %d", e.Cost)
	}
}

func TestNearestMatchesProfileAndSize(t *testing.T) {
	c := NewMemory(8)
	c.Put(testKey(1), testEntry(4, 7))
	c.Put(testKey(2), testEntry(6, 7)) // same profile, wrong size
	c.Put(testKey(3), testEntry(4, 9))
	if _, e, ok := c.Nearest(7, 4); !ok || len(e.Placement) != 4 {
		t.Fatal("Nearest missed the matching (profile, size) entry")
	}
	if _, _, ok := c.Nearest(7, 5); ok {
		t.Fatal("Nearest matched a size that is not cached")
	}
	if _, _, ok := c.Nearest(8, 4); ok {
		t.Fatal("Nearest matched a profile that is not cached")
	}
	// Eviction prunes the profile index.
	small := NewMemory(1)
	small.Put(testKey(1), testEntry(4, 7))
	small.Put(testKey(2), testEntry(4, 8))
	if _, _, ok := small.Nearest(7, 4); ok {
		t.Fatal("Nearest returned an evicted entry")
	}
}

func TestCanonizeDecanonizeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		labeling := make([]int32, n)
		for i, v := range rng.Perm(n) {
			labeling[i] = int32(v)
		}
		p := layout.Placement(rng.Perm(n))
		got := Decanonize(Canonize(p, labeling), labeling)
		for i := range p {
			if got[i] != p[i] {
				t.Fatalf("trial %d: roundtrip mismatch at %d: %d vs %d", trial, i, got[i], p[i])
			}
		}
	}
}

func TestPersistenceRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := New(Options{MaxEntries: 8, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]Entry{}
	for i := 0; i < 3; i++ {
		e := testEntry(4+i, uint64(i))
		c.Put(testKey(i), e)
		want[i] = e
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := New(Options{MaxEntries: 8, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 {
		t.Fatalf("reloaded %d entries, want 3", re.Len())
	}
	for i, w := range want {
		e, ok := re.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d lost across reload", i)
		}
		if e.Cost != w.Cost || e.Profile != w.Profile || len(e.Placement) != len(w.Placement) {
			t.Fatalf("key %d corrupted across reload: %+v vs %+v", i, e, w)
		}
		for j := range e.Placement {
			if e.Placement[j] != w.Placement[j] {
				t.Fatalf("key %d placement diverged at %d", i, j)
			}
		}
	}
}

func TestPersistenceSkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(testKey(1), testEntry(4, 7))
	c.Put(testKey(2), testEntry(5, 8))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("log has %d lines, want 2", len(lines))
	}
	// Corrupt line 2's checksum, add garbage and a truncated line.
	lines[1] = strings.Replace(lines[1], `"sum":"`, `"sum":"0`, 1)
	lines = append(lines, "not json at all", lines[0][:len(lines[0])/2])
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("reloaded %d entries, want 1 (corrupt lines skipped)", re.Len())
	}
	if _, ok := re.Get(testKey(1)); !ok {
		t.Fatal("the intact record was not loaded")
	}
}

// TestPersistenceTornTailTruncateAndContinue is the crash-recovery
// regression: a record torn mid-line (no trailing newline — what a
// crash mid-append leaves) must be truncated away, and the NEXT record
// appended must survive the following reload. Before truncation was
// added, the new line was glued onto the torn fragment at the physical
// end of the file, corrupting both.
func TestPersistenceTornTailTruncateAndContinue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(testKey(1), testEntry(4, 7))
	c.Put(testKey(2), testEntry(5, 8))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: cut the file in the middle of record 2's line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLineEnd := strings.IndexByte(string(raw), '\n') + 1
	cut := firstLineEnd + (len(raw)-firstLineEnd)/2
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("reloaded %d entries after torn tail, want 1", re.Len())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(firstLineEnd) {
		t.Fatalf("torn tail not truncated: size %d, want %d", fi.Size(), firstLineEnd)
	}
	// The regression proper: continue appending after recovery, then
	// reload once more — both the surviving and the new record must load.
	re.Put(testKey(3), testEntry(6, 9))
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 2 {
		t.Fatalf("reloaded %d entries after post-recovery append, want 2", re2.Len())
	}
	if _, ok := re2.Get(testKey(3)); !ok {
		t.Fatal("the record appended after torn-tail recovery was lost")
	}
}

func buildGraph(t *testing.T, seed int64, items, length int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New("placecache-test", items)
	for i := 0; i < length; i++ {
		tr.Read(rng.Intn(items))
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestForAnnealHitIsByteIdenticalToCold(t *testing.T) {
	g := buildGraph(t, 21, 24, 3000)
	start := layout.Identity(24)
	opts := core.AnnealOptions{Seed: 5, Iterations: 4000}

	cold, coldCost, err := core.Anneal(g, start, opts)
	if err != nil {
		t.Fatal(err)
	}

	c := NewMemory(8)
	withCache := opts
	withCache.Cache = c.ForAnneal("linear")
	miss, missCost, err := core.Anneal(g, start, withCache)
	if err != nil {
		t.Fatal(err)
	}
	hit, hitCost, err := core.Anneal(g, start, withCache)
	if err != nil {
		t.Fatal(err)
	}
	if missCost != coldCost || hitCost != coldCost {
		t.Fatalf("costs diverged: cold %d, miss %d, hit %d", coldCost, missCost, hitCost)
	}
	for i := range cold {
		if miss[i] != cold[i] || hit[i] != cold[i] {
			t.Fatalf("placement diverged at %d: cold %d, miss %d, hit %d",
				i, cold[i], miss[i], hit[i])
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

func TestForAnnealKeySensitivity(t *testing.T) {
	g := buildGraph(t, 22, 16, 1500)
	start := layout.Identity(16)
	c := NewMemory(16)
	cache := c.ForAnneal("linear")
	base := core.AnnealOptions{Seed: 1, Iterations: 1000, Cache: cache}
	if _, _, err := core.Anneal(g, start, base); err != nil {
		t.Fatal(err)
	}
	// Different seed, iterations, start, and device must all miss.
	for name, opts := range map[string]core.AnnealOptions{
		"seed":       {Seed: 2, Iterations: 1000, Cache: cache},
		"iterations": {Seed: 1, Iterations: 2000, Cache: cache},
	} {
		before := c.Len()
		if _, _, err := core.Anneal(g, start, opts); err != nil {
			t.Fatal(err)
		}
		if c.Len() != before+1 {
			t.Fatalf("%s change did not produce a fresh entry", name)
		}
	}
	otherStart := layout.Placement(layout.Identity(16)).Mirror(16)
	before := c.Len()
	if _, _, err := core.Anneal(g, otherStart, base); err != nil {
		t.Fatal(err)
	}
	if c.Len() != before+1 {
		t.Fatal("start-placement change did not produce a fresh entry")
	}
	otherDevice := core.AnnealOptions{Seed: 1, Iterations: 1000, Cache: c.ForAnneal("other")}
	before = c.Len()
	if _, _, err := core.Anneal(g, start, otherDevice); err != nil {
		t.Fatal(err)
	}
	if c.Len() != before+1 {
		t.Fatal("device change did not produce a fresh entry")
	}
}
