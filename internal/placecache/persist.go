package placecache

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"

	"repro/internal/graph"
	"repro/internal/obs"
)

var (
	obsPersistLoaded  = obs.GetCounter("placecache.persist.loaded")
	obsPersistSkipped = obs.GetCounter("placecache.persist.skipped")
	obsPersistTorn    = obs.GetCounter("placecache.persist.torn_truncations")
)

// record is the on-disk form of one (Key, Entry) pair.
type record struct {
	FP         string `json:"fp"` // 32 hex digits, Fingerprint.String
	Policy     string `json:"policy"`
	Device     string `json:"device"`
	Seed       int64  `json:"seed"`
	Iterations int    `json:"iterations"`
	Restarts   int    `json:"restarts"`
	Aux        uint64 `json:"aux"`
	Profile    uint64 `json:"profile"`
	Cost       int64  `json:"cost"`
	Placement  []int  `json:"placement"`
}

// envelope wraps a record with its checksum: Sum is the FNV-64a hash of
// the record's JSON bytes, rendered as 16 hex digits. A torn or edited
// line fails the check and is skipped on load instead of poisoning the
// cache.
type envelope struct {
	Sum string          `json:"sum"`
	Rec json.RawMessage `json:"rec"`
}

func checksum(rec []byte) string {
	h := fnv.New64a()
	h.Write(rec)
	return fmt.Sprintf("%016x", h.Sum64())
}

func parseFP(s string) (graph.Fingerprint, error) {
	var fp graph.Fingerprint
	if len(s) != 32 {
		return fp, fmt.Errorf("fingerprint %q: want 32 hex digits", s)
	}
	hi, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return fp, err
	}
	lo, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return fp, err
	}
	return graph.Fingerprint{hi, lo}, nil
}

// persister owns the append-only JSONL file.
type persister struct {
	f *os.File
	w *bufio.Writer
}

func newPersister(path string) (*persister, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &persister{f: f, w: bufio.NewWriter(f)}, nil
}

// load replays every valid record into the cache (oldest first, so LRU
// recency mirrors append order), skipping malformed lines, checksum
// mismatches, and invalid placements. A torn tail — bytes after the
// last newline, the artifact of a crash mid-append — is truncated away
// before appends resume: seeking to the physical end instead would
// concatenate the next record onto the torn fragment and corrupt both
// (the fragment is unreadable already; the checksum envelope cannot
// protect a record written onto a dirty tail).
func (p *persister) load(c *Cache) error {
	br := bufio.NewReaderSize(p.f, 1<<16)
	var end int64 // offset just past the last newline-terminated line
	for {
		raw, err := br.ReadBytes('\n')
		if err != nil {
			if err != io.EOF {
				return fmt.Errorf("load %s: %w", p.f.Name(), err)
			}
			if len(raw) > 0 {
				// Torn tail: cut it so the next append starts a clean line.
				obsPersistTorn.Inc()
				if terr := p.f.Truncate(end); terr != nil {
					return fmt.Errorf("truncate torn tail of %s: %w", p.f.Name(), terr)
				}
			}
			break
		}
		end += int64(len(raw))
		line := bytes.TrimRight(raw, "\r\n")
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			obsPersistSkipped.Inc()
			continue
		}
		if checksum(env.Rec) != env.Sum {
			obsPersistSkipped.Inc()
			continue
		}
		var rec record
		if err := json.Unmarshal(env.Rec, &rec); err != nil {
			obsPersistSkipped.Inc()
			continue
		}
		fp, err := parseFP(rec.FP)
		if err != nil || !validPlacement(rec.Placement) {
			obsPersistSkipped.Inc()
			continue
		}
		k := Key{
			FP:         fp,
			Policy:     rec.Policy,
			Device:     rec.Device,
			Seed:       rec.Seed,
			Iterations: rec.Iterations,
			Restarts:   rec.Restarts,
			Aux:        rec.Aux,
		}
		c.put(k, Entry{Placement: rec.Placement, Cost: rec.Cost, Profile: rec.Profile}, false)
		obsPersistLoaded.Inc()
	}
	if _, err := p.f.Seek(end, 0); err != nil {
		return fmt.Errorf("seek %s: %w", p.f.Name(), err)
	}
	return nil
}

// validPlacement checks that a loaded placement is a permutation of
// [0, n) — the invariant Decanonize and downstream consumers rely on.
func validPlacement(pl []int) bool {
	if len(pl) == 0 {
		return false
	}
	seen := make([]bool, len(pl))
	for _, s := range pl {
		if s < 0 || s >= len(pl) || seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// append writes one record; called under the cache lock, so appends are
// serialized. Each line is flushed immediately — the log is a cache, but
// a half-buffered line after a crash would be skipped on load anyway
// thanks to the checksum.
func (p *persister) append(k Key, e Entry) {
	rec, err := json.Marshal(record{
		FP:         k.FP.String(),
		Policy:     k.Policy,
		Device:     k.Device,
		Seed:       k.Seed,
		Iterations: k.Iterations,
		Restarts:   k.Restarts,
		Aux:        k.Aux,
		Profile:    e.Profile,
		Cost:       e.Cost,
		Placement:  e.Placement,
	})
	if err != nil {
		return
	}
	env, err := json.Marshal(envelope{Sum: checksum(rec), Rec: rec})
	if err != nil {
		return
	}
	p.w.Write(env)
	p.w.WriteByte('\n')
	p.w.Flush()
}

func (p *persister) close() error {
	if err := p.w.Flush(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
