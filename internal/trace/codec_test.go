package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := New("fir taps=8", 16)
	tr.Read(3)
	tr.Write(5)
	tr.Read(0)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	tr := New("bad", 2)
	tr.Read(5)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err == nil {
		t.Error("Encode accepted invalid trace")
	}
}

func TestDecodeToleratesCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
dwmtrace 1

name demo
items 3
# body
R 0

W 2
`
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "demo" || tr.NumItems != 3 || tr.Len() != 2 {
		t.Errorf("decoded %+v", tr)
	}
	if !tr.Accesses[1].Write || tr.Accesses[1].Item != 2 {
		t.Errorf("second access = %+v", tr.Accesses[1])
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad magic", "nottrace 1\nitems 1\n"},
		{"bad version", "dwmtrace 9\nitems 1\n"},
		{"missing items", "dwmtrace 1\nname x\nR 0\n"},
		{"bad items", "dwmtrace 1\nitems many\n"},
		{"bad id", "dwmtrace 1\nitems 2\nR x\n"},
		{"out of range", "dwmtrace 1\nitems 2\nR 2\n"},
		{"junk line", "dwmtrace 1\nitems 2\nZ 0\n"},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDecodeNameWithSpaces(t *testing.T) {
	in := "dwmtrace 1\nname matrix multiply 4x4\nitems 1\nR 0\n"
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "matrix multiply 4x4" {
		t.Errorf("Name = %q", tr.Name)
	}
}

// Property: Decode(Encode(t)) == t for arbitrary valid traces.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		tr := New("prop", n)
		for i := 0; i < rng.Intn(500); i++ {
			if rng.Intn(2) == 0 {
				tr.Read(rng.Intn(n))
			} else {
				tr.Write(rng.Intn(n))
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
