package trace

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// The text format is line oriented:
//
//	dwmtrace 1
//	name <workload name, may contain spaces>
//	items <N>
//	R <item>
//	W <item>
//	...
//
// Blank lines and lines starting with '#' are ignored. The format is
// deliberately trivial so traces can be produced by any tool (or by hand)
// and inspected with standard text utilities.

const formatMagic = "dwmtrace"

// Encode writes the trace in the text format.
func Encode(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s 1\n", formatMagic)
	if t.Name != "" {
		fmt.Fprintf(bw, "name %s\n", t.Name)
	}
	fmt.Fprintf(bw, "items %d\n", t.NumItems)
	for _, a := range t.Accesses {
		op := "R"
		if a.Write {
			op = "W"
		}
		fmt.Fprintf(bw, "%s %d\n", op, a.Item)
	}
	return bw.Flush()
}

// Decode parses a trace from the text format and validates it.
func Decode(r io.Reader) (*Trace, error) {
	_, span := obs.StartSpan(context.Background(), "trace.decode")
	defer span.End()
	t, err := decode(r)
	if err != nil {
		span.SetAttr("error", true)
		return nil, err
	}
	span.SetAttr("name", t.Name).
		SetAttr("accesses", t.Len()).
		SetAttr("items", t.NumItems)
	return t, nil
}

func decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}

	hdr, ok := next()
	if !ok {
		return nil, fmt.Errorf("trace: empty input")
	}
	fields := strings.Fields(hdr)
	if len(fields) != 2 || fields[0] != formatMagic {
		return nil, fmt.Errorf("trace: line %d: bad magic %q", line, hdr)
	}
	if fields[1] != "1" {
		return nil, fmt.Errorf("trace: line %d: unsupported version %q", line, fields[1])
	}

	t := &Trace{}
	seenItems := false
	for {
		s, ok := next()
		if !ok {
			break
		}
		switch {
		case s == "name": // explicit empty name
			t.Name = ""
		case strings.HasPrefix(s, "name "):
			t.Name = strings.TrimSpace(strings.TrimPrefix(s, "name "))
		case strings.HasPrefix(s, "items "):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(s, "items ")))
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad items count: %v", line, err)
			}
			t.NumItems = n
			seenItems = true
		case strings.HasPrefix(s, "R ") || strings.HasPrefix(s, "W "):
			id, err := strconv.Atoi(strings.TrimSpace(s[2:]))
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad item id: %v", line, err)
			}
			t.Accesses = append(t.Accesses, Access{Item: id, Write: s[0] == 'W'})
		default:
			return nil, fmt.Errorf("trace: line %d: unrecognized line %q", line, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if !seenItems {
		return nil, fmt.Errorf("trace: missing 'items' header")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
