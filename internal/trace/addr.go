package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// AddrEvent is one event of a raw address trace: a byte address and a
// read/write flag.
type AddrEvent struct {
	Addr  uint64
	Write bool
}

// MapAddresses converts a raw address stream into an item trace at word
// granularity: addresses are truncated to wordBytes-aligned words and
// distinct words become items in first-touch order. It returns the trace
// together with the item → word-address table, so placements can be
// translated back to the original address space. wordBytes must be a
// power of two.
func MapAddresses(name string, events []AddrEvent, wordBytes int) (*Trace, []uint64, error) {
	if wordBytes <= 0 || wordBytes&(wordBytes-1) != 0 {
		return nil, nil, fmt.Errorf("trace: wordBytes %d is not a positive power of two", wordBytes)
	}
	if len(events) == 0 {
		return nil, nil, fmt.Errorf("trace: empty address stream")
	}
	mask := ^uint64(wordBytes - 1)
	id := make(map[uint64]int)
	var words []uint64
	t := &Trace{Name: name}
	for _, e := range events {
		w := e.Addr & mask
		item, ok := id[w]
		if !ok {
			item = len(words)
			id[w] = item
			words = append(words, w)
		}
		t.Accesses = append(t.Accesses, Access{Item: item, Write: e.Write})
	}
	t.NumItems = len(words)
	return t, words, nil
}

// DecodeAddr parses a raw address trace in the line format
//
//	R 0x7f001000
//	W 4096
//
// (hex with 0x prefix or decimal; blank lines and '#' comments ignored)
// and maps it to an item trace at the given word granularity.
func DecodeAddr(r io.Reader, name string, wordBytes int) (*Trace, []uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []AddrEvent
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 2 || (fields[0] != "R" && fields[0] != "W") {
			return nil, nil, fmt.Errorf("trace: line %d: want 'R <addr>' or 'W <addr>', got %q", line, s)
		}
		addr, err := strconv.ParseUint(fields[1], 0, 64) // base 0: 0x.., 0b.., decimal
		if err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: bad address %q: %v", line, fields[1], err)
		}
		events = append(events, AddrEvent{Addr: addr, Write: fields[0] == "W"})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: read: %w", err)
	}
	return MapAddresses(name, events, wordBytes)
}
