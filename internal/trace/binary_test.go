package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := New("binary demo", 10)
	tr.Read(3)
	tr.Write(9)
	tr.Read(0)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		tr := New("p", n)
		for i := 0; i < rng.Intn(2000); i++ {
			if rng.Intn(2) == 0 {
				tr.Read(rng.Intn(n))
			} else {
				tr.Write(rng.Intn(n))
			}
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, tr); err != nil {
			return false
		}
		got, err := DecodeBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryIsSmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New("size", 64)
	for i := 0; i < 10000; i++ {
		tr.Read(rng.Intn(64))
	}
	var txt, bin bytes.Buffer
	if err := Encode(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*3 > txt.Len() {
		t.Errorf("binary %d bytes not substantially smaller than text %d", bin.Len(), txt.Len())
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("DW")},
		{"bad magic", []byte("XXXX....")},
		{"truncated header", []byte("DWMB")},
		{"bad version", append([]byte("DWMB"), 9)},
		{"truncated body", append([]byte("DWMB"), 1, 0, 5, 10)}, // claims 10 accesses, has none
	}
	for _, c := range cases {
		if _, err := DecodeBinary(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Out-of-range item inside an otherwise well-formed stream.
	var buf bytes.Buffer
	tr := New("x", 2)
	tr.Read(1)
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] = 0x7F // item 63 in a 2-item trace
	if _, err := DecodeBinary(bytes.NewReader(data)); err == nil {
		t.Error("out-of-range item accepted")
	}
}

func TestDecodeAnySniffsBothFormats(t *testing.T) {
	tr := New("any", 5)
	tr.Read(2)
	tr.Write(4)

	var txt bytes.Buffer
	if err := Encode(&txt, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAny(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("text sniff mismatch")
	}

	var bin bytes.Buffer
	if err := EncodeBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	got, err = DecodeAny(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("binary sniff mismatch")
	}

	if _, err := DecodeAny(bytes.NewReader([]byte("no"))); err == nil {
		t.Error("short junk accepted")
	}
}

func FuzzDecodeBinary(f *testing.F) {
	var seedBuf bytes.Buffer
	tr := New("seed", 3)
	tr.Read(0)
	tr.Write(2)
	if err := EncodeBinary(&seedBuf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte("DWMB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoded invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(back, got) {
			t.Fatal("binary round trip mismatch")
		}
	})
}
