// Package trace represents memory access traces over abstract data items.
//
// A trace is the input to the data-placement problem: an ordered sequence
// of read/write accesses to items identified by small integers. Traces are
// produced by the workload generators (standing in for compiler-extracted
// variable access dumps), can be saved to and loaded from a line-oriented
// text format, and expose the statistics the placement algorithms and the
// evaluation harness need (frequencies, transition counts, reuse
// distances).
package trace

import (
	"fmt"
	"sort"
)

// Access is a single trace event: which item, and whether it is a write.
type Access struct {
	Item  int
	Write bool
}

// Trace is an ordered access sequence over items 0..NumItems-1.
type Trace struct {
	// Name labels the workload that produced the trace.
	Name string
	// NumItems is the number of distinct addressable items. Item IDs in
	// Accesses must lie in [0, NumItems).
	NumItems int
	// Accesses is the ordered event sequence.
	Accesses []Access
}

// New returns an empty trace for n items.
func New(name string, n int) *Trace {
	return &Trace{Name: name, NumItems: n}
}

// Read appends a read of item to the trace.
func (t *Trace) Read(item int) { t.Accesses = append(t.Accesses, Access{Item: item}) }

// Write appends a write of item to the trace.
func (t *Trace) Write(item int) { t.Accesses = append(t.Accesses, Access{Item: item, Write: true}) }

// Len returns the number of accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// Validate checks that every access references a valid item.
func (t *Trace) Validate() error {
	if t.NumItems <= 0 {
		return fmt.Errorf("trace %q: NumItems = %d, want > 0", t.Name, t.NumItems)
	}
	for i, a := range t.Accesses {
		if a.Item < 0 || a.Item >= t.NumItems {
			return fmt.Errorf("trace %q: access %d references item %d outside [0,%d)",
				t.Name, i, a.Item, t.NumItems)
		}
	}
	return nil
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Name: t.Name, NumItems: t.NumItems}
	c.Accesses = append([]Access(nil), t.Accesses...)
	return c
}

// Items returns the sequence of item IDs, dropping the read/write flag.
// Placement algorithms that only care about adjacency use this view.
func (t *Trace) Items() []int {
	ids := make([]int, len(t.Accesses))
	for i, a := range t.Accesses {
		ids[i] = a.Item
	}
	return ids
}

// Touched returns the set of items that actually appear in the trace, as a
// sorted slice. NumItems may exceed len(Touched()) when some items are
// declared but never accessed.
func (t *Trace) Touched() []int {
	seen := make([]bool, t.NumItems)
	for _, a := range t.Accesses {
		seen[a.Item] = true
	}
	var out []int
	for i, s := range seen {
		if s {
			out = append(out, i)
		}
	}
	return out
}

// Compact renumbers items so that only touched items remain, preserving
// first-touch order, and returns the compacted trace together with the
// mapping from new IDs back to original IDs. The receiver is unchanged.
func (t *Trace) Compact() (*Trace, []int) {
	newID := make([]int, t.NumItems)
	for i := range newID {
		newID[i] = -1
	}
	var oldID []int
	c := &Trace{Name: t.Name}
	c.Accesses = make([]Access, len(t.Accesses))
	for i, a := range t.Accesses {
		if newID[a.Item] < 0 {
			newID[a.Item] = len(oldID)
			oldID = append(oldID, a.Item)
		}
		c.Accesses[i] = Access{Item: newID[a.Item], Write: a.Write}
	}
	c.NumItems = len(oldID)
	if c.NumItems == 0 {
		c.NumItems = 1 // keep the invariant NumItems > 0 for empty traces
	}
	return c, oldID
}

// Slice returns a sub-trace covering accesses [lo, hi).
func (t *Trace) Slice(lo, hi int) (*Trace, error) {
	if lo < 0 || hi > len(t.Accesses) || lo > hi {
		return nil, fmt.Errorf("trace %q: slice [%d,%d) outside [0,%d]",
			t.Name, lo, hi, len(t.Accesses))
	}
	c := &Trace{Name: t.Name, NumItems: t.NumItems}
	c.Accesses = append([]Access(nil), t.Accesses[lo:hi]...)
	return c, nil
}

// Concat appends the accesses of other (which must have the same
// NumItems) to a copy of t.
func (t *Trace) Concat(other *Trace) (*Trace, error) {
	if t.NumItems != other.NumItems {
		return nil, fmt.Errorf("trace concat: item spaces differ (%d vs %d)",
			t.NumItems, other.NumItems)
	}
	c := t.Clone()
	c.Accesses = append(c.Accesses, other.Accesses...)
	return c, nil
}

// Frequencies returns, for each item, how many times it is accessed.
func (t *Trace) Frequencies() []int64 {
	f := make([]int64, t.NumItems)
	for _, a := range t.Accesses {
		f[a.Item]++
	}
	return f
}

// ReadWriteCounts returns the number of reads and writes in the trace.
func (t *Trace) ReadWriteCounts() (reads, writes int64) {
	for _, a := range t.Accesses {
		if a.Write {
			writes++
		} else {
			reads++
		}
	}
	return reads, writes
}

// Transitions returns the symmetric transition-count map: for every pair
// of consecutive accesses to distinct items u != v, the count of the
// unordered pair {u,v}. This is the edge-weight function of the access
// transition graph.
func (t *Trace) Transitions() map[[2]int]int64 {
	m := make(map[[2]int]int64)
	for i := 1; i < len(t.Accesses); i++ {
		u, v := t.Accesses[i-1].Item, t.Accesses[i].Item
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		m[[2]int{u, v}]++
	}
	return m
}

// ReuseDistances returns the distribution of reuse distances: for each
// access to an item seen before, the number of *distinct* other items
// accessed since its previous access. The result maps distance to count.
// Cold (first) accesses are not counted.
func (t *Trace) ReuseDistances() map[int]int64 {
	// Classic stack-distance computation with a move-to-front list.
	// O(T * D) where D is the stack depth actually reached; fine for the
	// trace sizes used here and has no dependencies.
	dist := make(map[int]int64)
	var stack []int // most recent first
	posOf := make(map[int]int)
	for _, a := range t.Accesses {
		if p, ok := posOf[a.Item]; ok {
			dist[p]++
			// Move to front.
			copy(stack[1:p+1], stack[0:p])
			stack[0] = a.Item
			for i := 0; i <= p; i++ {
				posOf[stack[i]] = i
			}
			continue
		}
		stack = append(stack, 0)
		copy(stack[1:], stack[0:len(stack)-1])
		stack[0] = a.Item
		for i := range stack {
			posOf[stack[i]] = i
		}
	}
	return dist
}

// Stats summarizes a trace for reporting.
type Stats struct {
	Name        string
	Length      int
	NumItems    int
	Touched     int
	Reads       int64
	Writes      int64
	Transitions int     // distinct adjacent pairs
	MeanReuse   float64 // mean reuse distance over non-cold accesses (-1 if none)
}

// Summarize computes the descriptive statistics used in experiment E1.
func (t *Trace) Summarize() Stats {
	r, w := t.ReadWriteCounts()
	s := Stats{
		Name:        t.Name,
		Length:      t.Len(),
		NumItems:    t.NumItems,
		Touched:     len(t.Touched()),
		Reads:       r,
		Writes:      w,
		Transitions: len(t.Transitions()),
	}
	var sum, cnt int64
	for d, c := range t.ReuseDistances() {
		sum += int64(d) * c
		cnt += c
	}
	if cnt == 0 {
		s.MeanReuse = -1
	} else {
		s.MeanReuse = float64(sum) / float64(cnt)
	}
	return s
}

// HotItems returns the item IDs sorted by descending access frequency,
// breaking ties by ascending ID for determinism.
func (t *Trace) HotItems() []int {
	f := t.Frequencies()
	ids := make([]int, t.NumItems)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if f[ids[a]] != f[ids[b]] {
			return f[ids[a]] > f[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}
