package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: compact varint encoding for large traces.
//
//	magic   "DWMB" (4 bytes)
//	version uvarint (1)
//	nameLen uvarint, name bytes (UTF-8)
//	items   uvarint
//	count   uvarint
//	count x access: uvarint(item<<1 | writeBit)
//
// The binary form is typically 5-10x smaller than the text form and an
// order of magnitude faster to parse; tracegen and the simulator accept
// either (Decode sniffs the magic).

var binaryMagic = [4]byte{'D', 'W', 'M', 'B'}

// EncodeBinary writes the trace in the binary format.
func EncodeBinary(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(1); err != nil { // version
		return err
	}
	if err := put(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := put(uint64(t.NumItems)); err != nil {
		return err
	}
	if err := put(uint64(len(t.Accesses))); err != nil {
		return err
	}
	for _, a := range t.Accesses {
		v := uint64(a.Item) << 1
		if a.Write {
			v |= 1
		}
		if err := put(v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeBinary parses a trace from the binary format and validates it.
func DecodeBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", magic)
	}
	get := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: binary %s: %w", what, err)
		}
		return v, nil
	}
	version, err := get("version")
	if err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("trace: unsupported binary version %d", version)
	}
	nameLen, err := get("name length")
	if err != nil {
		return nil, err
	}
	const maxName = 1 << 16
	if nameLen > maxName {
		return nil, fmt.Errorf("trace: binary name length %d exceeds %d", nameLen, maxName)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: binary name: %w", err)
	}
	items, err := get("item count")
	if err != nil {
		return nil, err
	}
	count, err := get("access count")
	if err != nil {
		return nil, err
	}
	const maxCount = 1 << 31
	if items > maxCount || count > maxCount {
		return nil, fmt.Errorf("trace: binary counts out of range (items %d, accesses %d)", items, count)
	}
	t := &Trace{Name: string(name), NumItems: int(items)}
	// The count is untrusted: cap the preallocation and let append grow
	// if the stream really carries that many accesses (each takes at
	// least one byte, so a lying header hits EOF almost immediately).
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t.Accesses = make([]Access, 0, capHint)
	for i := uint64(0); i < count; i++ {
		v, err := get("access")
		if err != nil {
			return nil, err
		}
		t.Accesses = append(t.Accesses, Access{Item: int(v >> 1), Write: v&1 == 1})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeAny sniffs the input (binary magic vs text magic) and decodes
// either format. The reader is consumed.
func DecodeAny(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: sniff: %w", err)
	}
	if [4]byte(head) == binaryMagic {
		return DecodeBinary(br)
	}
	return Decode(br)
}
