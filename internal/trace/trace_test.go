package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func buildTrace(name string, n int, seq ...int) *Trace {
	t := New(name, n)
	for i, it := range seq {
		if i%3 == 2 {
			t.Write(it)
		} else {
			t.Read(it)
		}
	}
	return t
}

func TestValidate(t *testing.T) {
	tr := buildTrace("ok", 4, 0, 1, 2, 3)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := New("bad", 2)
	bad.Read(2)
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range item accepted")
	}
	neg := New("neg", 2)
	neg.Read(-1)
	if err := neg.Validate(); err == nil {
		t.Error("negative item accepted")
	}
	zero := New("zero", 0)
	if err := zero.Validate(); err == nil {
		t.Error("zero NumItems accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := buildTrace("a", 3, 0, 1, 2)
	b := a.Clone()
	b.Read(0)
	b.Accesses[0].Item = 2
	if a.Len() != 3 || a.Accesses[0].Item != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestItemsAndTouched(t *testing.T) {
	tr := buildTrace("t", 6, 4, 1, 4, 1)
	if got := tr.Items(); !reflect.DeepEqual(got, []int{4, 1, 4, 1}) {
		t.Errorf("Items = %v", got)
	}
	if got := tr.Touched(); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("Touched = %v", got)
	}
}

func TestCompact(t *testing.T) {
	tr := buildTrace("t", 10, 7, 2, 7, 9)
	c, oldID := tr.Compact()
	if c.NumItems != 3 {
		t.Fatalf("compact NumItems = %d, want 3", c.NumItems)
	}
	if !reflect.DeepEqual(oldID, []int{7, 2, 9}) {
		t.Errorf("oldID = %v, want [7 2 9]", oldID)
	}
	if got := c.Items(); !reflect.DeepEqual(got, []int{0, 1, 0, 2}) {
		t.Errorf("compact Items = %v, want [0 1 0 2]", got)
	}
	// Read/write flags preserved.
	for i := range tr.Accesses {
		if tr.Accesses[i].Write != c.Accesses[i].Write {
			t.Errorf("access %d write flag changed", i)
		}
	}
	// Original untouched.
	if tr.NumItems != 10 {
		t.Error("Compact mutated receiver")
	}
}

func TestCompactEmpty(t *testing.T) {
	tr := New("empty", 5)
	c, oldID := tr.Compact()
	if c.NumItems != 1 || len(oldID) != 0 || c.Len() != 0 {
		t.Errorf("compact empty: NumItems=%d oldID=%v len=%d", c.NumItems, oldID, c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("compact empty invalid: %v", err)
	}
}

func TestSlice(t *testing.T) {
	tr := buildTrace("t", 5, 0, 1, 2, 3, 4)
	s, err := tr.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Items(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Slice items = %v", got)
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 6}, {3, 2}} {
		if _, err := tr.Slice(bad[0], bad[1]); err == nil {
			t.Errorf("Slice(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestConcat(t *testing.T) {
	a := buildTrace("a", 3, 0, 1)
	b := buildTrace("b", 3, 2)
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Items(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Concat items = %v", got)
	}
	if a.Len() != 2 {
		t.Error("Concat mutated receiver")
	}
	d := buildTrace("d", 4, 0)
	if _, err := a.Concat(d); err == nil {
		t.Error("Concat across item spaces accepted")
	}
}

func TestFrequenciesAndRW(t *testing.T) {
	tr := New("t", 3)
	tr.Read(0)
	tr.Read(1)
	tr.Write(1)
	tr.Write(2)
	f := tr.Frequencies()
	if !reflect.DeepEqual(f, []int64{1, 2, 1}) {
		t.Errorf("Frequencies = %v", f)
	}
	r, w := tr.ReadWriteCounts()
	if r != 2 || w != 2 {
		t.Errorf("ReadWriteCounts = %d,%d, want 2,2", r, w)
	}
}

func TestTransitions(t *testing.T) {
	tr := buildTrace("t", 3, 0, 1, 0, 0, 2, 1)
	m := tr.Transitions()
	want := map[[2]int]int64{
		{0, 1}: 2, // 0->1 and 1->0
		{0, 2}: 1,
		{1, 2}: 1,
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("Transitions = %v, want %v", m, want)
	}
}

func TestReuseDistances(t *testing.T) {
	// Sequence: a b c a  -> reuse of a at stack distance 2.
	tr := buildTrace("t", 3, 0, 1, 2, 0)
	d := tr.ReuseDistances()
	if !reflect.DeepEqual(d, map[int]int64{2: 1}) {
		t.Errorf("ReuseDistances = %v, want map[2:1]", d)
	}
	// Immediate reuse has distance 0.
	tr2 := buildTrace("t2", 2, 0, 0, 1, 1)
	d2 := tr2.ReuseDistances()
	if !reflect.DeepEqual(d2, map[int]int64{0: 2}) {
		t.Errorf("ReuseDistances = %v, want map[0:2]", d2)
	}
}

func TestSummarize(t *testing.T) {
	tr := buildTrace("sum", 5, 0, 1, 0, 2)
	s := tr.Summarize()
	if s.Name != "sum" || s.Length != 4 || s.NumItems != 5 || s.Touched != 3 {
		t.Errorf("Stats basic fields wrong: %+v", s)
	}
	if s.Reads+s.Writes != 4 {
		t.Errorf("Stats rw = %d+%d, want 4 total", s.Reads, s.Writes)
	}
	if s.Transitions != 2 { // pairs {0,1} and {0,2}
		t.Errorf("Stats.Transitions = %d, want 2", s.Transitions)
	}
	if s.MeanReuse != 1 { // single reuse of item 0 at distance 1
		t.Errorf("Stats.MeanReuse = %g, want 1", s.MeanReuse)
	}
	cold := buildTrace("cold", 3, 0, 1, 2)
	if s := cold.Summarize(); s.MeanReuse != -1 {
		t.Errorf("MeanReuse with no reuses = %g, want -1", s.MeanReuse)
	}
}

func TestHotItems(t *testing.T) {
	tr := buildTrace("t", 4, 3, 3, 3, 1, 1, 0)
	got := tr.HotItems()
	want := []int{3, 1, 0, 2} // 2 unaccessed, ties by ID
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HotItems = %v, want %v", got, want)
	}
}

// Property: sum of frequencies equals trace length; transition counts sum
// to at most Len-1.
func TestFrequencyTransitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		tr := New("p", n)
		for i := 0; i < 300; i++ {
			tr.Read(rng.Intn(n))
		}
		var fs int64
		for _, c := range tr.Frequencies() {
			fs += c
		}
		if fs != int64(tr.Len()) {
			return false
		}
		var ts int64
		for _, c := range tr.Transitions() {
			ts += c
		}
		return ts <= int64(tr.Len()-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: number of reuses equals Len - Touched (every non-first access
// to an item is a reuse).
func TestReuseCountInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 1
		tr := New("p", n)
		for i := 0; i < 200; i++ {
			tr.Read(rng.Intn(n))
		}
		var reuses int64
		for _, c := range tr.ReuseDistances() {
			reuses += c
		}
		return reuses == int64(tr.Len()-len(tr.Touched()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
