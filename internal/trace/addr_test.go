package trace

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMapAddressesWordTruncation(t *testing.T) {
	events := []AddrEvent{
		{Addr: 0x1000},              // word 0x1000 -> item 0
		{Addr: 0x1004, Write: true}, // same 8-byte word -> item 0
		{Addr: 0x1008},              // next word -> item 1
		{Addr: 0x1000},              // item 0 again
	}
	tr, words, err := MapAddresses("t", events, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumItems != 2 {
		t.Fatalf("NumItems = %d", tr.NumItems)
	}
	if !reflect.DeepEqual(words, []uint64{0x1000, 0x1008}) {
		t.Errorf("words = %#x", words)
	}
	wantItems := []int{0, 0, 1, 0}
	if got := tr.Items(); !reflect.DeepEqual(got, wantItems) {
		t.Errorf("items = %v", got)
	}
	if !tr.Accesses[1].Write || tr.Accesses[0].Write {
		t.Error("write flags lost")
	}
}

func TestMapAddressesErrors(t *testing.T) {
	if _, _, err := MapAddresses("t", nil, 8); err == nil {
		t.Error("empty stream accepted")
	}
	ev := []AddrEvent{{Addr: 1}}
	for _, wb := range []int{0, -4, 3, 12} {
		if _, _, err := MapAddresses("t", ev, wb); err == nil {
			t.Errorf("wordBytes %d accepted", wb)
		}
	}
}

func TestDecodeAddr(t *testing.T) {
	in := `
# raw pin trace
R 0x1000
W 0x1004
R 4104
`
	tr, words, err := DecodeAddr(strings.NewReader(in), "pin", 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "pin" || tr.NumItems != 2 || tr.Len() != 3 {
		t.Errorf("trace %+v", tr)
	}
	// 4104 = 0x1008.
	if words[1] != 0x1008 {
		t.Errorf("words = %#x", words)
	}
}

func TestDecodeAddrErrors(t *testing.T) {
	cases := []string{
		"X 0x10\n",
		"R\n",
		"R nothex\n",
		"R 0x10 extra\n",
		"", // empty -> empty stream
	}
	for i, in := range cases {
		if _, _, err := DecodeAddr(strings.NewReader(in), "t", 8); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: the mapped trace validates, item count equals distinct words,
// and round-tripping through the words table reproduces the word
// addresses.
func TestMapAddressesProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		events := make([]AddrEvent, n)
		for i := range events {
			events[i] = AddrEvent{
				Addr:  uint64(rng.Intn(64)) * 4,
				Write: rng.Intn(2) == 0,
			}
		}
		tr, words, err := MapAddresses("p", events, 16)
		if err != nil {
			return false
		}
		if tr.Validate() != nil || tr.NumItems != len(words) {
			return false
		}
		for i, e := range events {
			if words[tr.Accesses[i].Item] != e.Addr&^uint64(15) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func FuzzDecode(f *testing.F) {
	f.Add("dwmtrace 1\nname x\nitems 3\nR 0\nW 2\n")
	f.Add("dwmtrace 1\nitems 1\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		// Anything Decode accepts must validate and re-encode cleanly.
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoded invalid trace: %v", err)
		}
		var sb strings.Builder
		if err := Encode(&sb, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Decode(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(back, tr) {
			t.Fatal("re-decode mismatch")
		}
	})
}

func FuzzDecodeAddr(f *testing.F) {
	f.Add("R 0x10\nW 32\n")
	f.Add("# comment\n\nR 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, words, err := DecodeAddr(strings.NewReader(in), "fuzz", 8)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoded invalid trace: %v", err)
		}
		if tr.NumItems != len(words) {
			t.Fatalf("items %d != words %d", tr.NumItems, len(words))
		}
	})
}
