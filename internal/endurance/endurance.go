// Package endurance models the limited shift endurance of DWM nanowires
// under process variation, and the tape-remapping optimization that
// variation enables.
//
// Every shift stresses all domain walls on its wire, so a wire fails
// after a finite number of shifts. Fabrication variation makes that
// budget differ wire to wire. For a periodic workload, the device dies
// when its weakest-provisioned wire exhausts its budget:
//
//	lifetime (iterations) = min over tapes  endurance[phys] / rate[logical]
//
// Because the placement pipeline fixes the per-logical-tape shift rate,
// the controller still has one free knob: which physical wire backs which
// logical tape. BestMapping pairs the highest-rate logical tape with the
// highest-endurance wire (sorted matching), which provably maximizes the
// minimum ratio.
package endurance

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Profile holds the per-physical-tape shift endurance budgets.
type Profile struct {
	PerTape []float64
}

// SampleProfile draws a variation profile: each wire's endurance is
// nominal x exp(sigma*N(0,1)), the standard lognormal model for
// multiplicative process variation. sigma = 0 returns uniform wires.
func SampleProfile(tapes int, nominal, sigma float64, seed int64) (Profile, error) {
	if tapes <= 0 {
		return Profile{}, fmt.Errorf("endurance: need at least one tape, got %d", tapes)
	}
	if nominal <= 0 {
		return Profile{}, fmt.Errorf("endurance: nominal endurance must be positive, got %g", nominal)
	}
	if sigma < 0 {
		return Profile{}, fmt.Errorf("endurance: sigma must be non-negative, got %g", sigma)
	}
	rng := rand.New(rand.NewSource(seed))
	p := Profile{PerTape: make([]float64, tapes)}
	for i := range p.PerTape {
		p.PerTape[i] = nominal * math.Exp(sigma*rng.NormFloat64())
	}
	return p, nil
}

// Lifetime returns the number of workload iterations until the first wire
// dies, for the given logical-to-physical mapping (mapping[logical] =
// physical wire). Logical tapes with zero shift rate never wear their
// wire. Returns +Inf when no tape ever shifts.
func (p Profile) Lifetime(rates []int64, mapping []int) (float64, error) {
	if len(rates) != len(p.PerTape) || len(mapping) != len(p.PerTape) {
		return 0, fmt.Errorf("endurance: %d rates / %d mapping entries for %d tapes",
			len(rates), len(mapping), len(p.PerTape))
	}
	seen := make([]bool, len(p.PerTape))
	life := math.Inf(1)
	for logical, phys := range mapping {
		if phys < 0 || phys >= len(p.PerTape) {
			return 0, fmt.Errorf("endurance: mapping[%d] = %d outside [0,%d)", logical, phys, len(p.PerTape))
		}
		if seen[phys] {
			return 0, fmt.Errorf("endurance: physical tape %d mapped twice", phys)
		}
		seen[phys] = true
		if rates[logical] <= 0 {
			continue
		}
		if l := p.PerTape[phys] / float64(rates[logical]); l < life {
			life = l
		}
	}
	return life, nil
}

// IdentityMapping returns the variation-oblivious mapping (logical tape i
// on physical wire i).
func IdentityMapping(tapes int) []int {
	m := make([]int, tapes)
	for i := range m {
		m[i] = i
	}
	return m
}

// BestMapping returns the lifetime-maximizing logical-to-physical
// assignment: logical tapes sorted by descending shift rate take physical
// wires sorted by descending endurance. By the exchange argument this
// maximizes min(endurance/rate) over all permutations.
func (p Profile) BestMapping(rates []int64) ([]int, error) {
	if len(rates) != len(p.PerTape) {
		return nil, fmt.Errorf("endurance: %d rates for %d tapes", len(rates), len(p.PerTape))
	}
	n := len(rates)
	logical := make([]int, n)
	physical := make([]int, n)
	for i := 0; i < n; i++ {
		logical[i], physical[i] = i, i
	}
	sort.SliceStable(logical, func(a, b int) bool { return rates[logical[a]] > rates[logical[b]] })
	sort.SliceStable(physical, func(a, b int) bool { return p.PerTape[physical[a]] > p.PerTape[physical[b]] })
	mapping := make([]int, n)
	for i := 0; i < n; i++ {
		mapping[logical[i]] = physical[i]
	}
	return mapping, nil
}
