package endurance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleProfileValidation(t *testing.T) {
	if _, err := SampleProfile(0, 1e8, 0.2, 1); err == nil {
		t.Error("zero tapes accepted")
	}
	if _, err := SampleProfile(4, 0, 0.2, 1); err == nil {
		t.Error("zero nominal accepted")
	}
	if _, err := SampleProfile(4, 1e8, -1, 1); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestSampleProfileZeroSigmaUniform(t *testing.T) {
	p, err := SampleProfile(4, 1e8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range p.PerTape {
		if e != 1e8 {
			t.Errorf("tape %d endurance %g, want 1e8", i, e)
		}
	}
}

func TestSampleProfileDeterministic(t *testing.T) {
	a, err := SampleProfile(8, 1e8, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleProfile(8, 1e8, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerTape {
		if a.PerTape[i] != b.PerTape[i] {
			t.Fatal("same seed, different profiles")
		}
	}
}

func TestLifetimeBasics(t *testing.T) {
	p := Profile{PerTape: []float64{100, 200}}
	// rates 10 and 10: identity lifetime = min(10, 20) = 10.
	l, err := p.Lifetime([]int64{10, 10}, IdentityMapping(2))
	if err != nil || l != 10 {
		t.Errorf("lifetime = %g, %v", l, err)
	}
	// Swap: min(200/10, 100/10) = 10 as well (symmetric rates).
	l, err = p.Lifetime([]int64{10, 10}, []int{1, 0})
	if err != nil || l != 10 {
		t.Errorf("swapped lifetime = %g, %v", l, err)
	}
	// Skewed rates: hot tape on strong wire doubles lifetime.
	l, err = p.Lifetime([]int64{20, 5}, []int{1, 0})
	if err != nil || l != 10 { // min(200/20, 100/5) = min(10,20) = 10
		t.Errorf("aware lifetime = %g, %v", l, err)
	}
	l, err = p.Lifetime([]int64{20, 5}, IdentityMapping(2))
	if err != nil || l != 5 { // min(100/20, 200/5) = 5
		t.Errorf("oblivious lifetime = %g, %v", l, err)
	}
}

func TestLifetimeZeroRatesInfinite(t *testing.T) {
	p := Profile{PerTape: []float64{100, 100}}
	l, err := p.Lifetime([]int64{0, 0}, IdentityMapping(2))
	if err != nil || !math.IsInf(l, 1) {
		t.Errorf("lifetime = %g, %v; want +Inf", l, err)
	}
}

func TestLifetimeValidation(t *testing.T) {
	p := Profile{PerTape: []float64{100, 100}}
	if _, err := p.Lifetime([]int64{1}, IdentityMapping(2)); err == nil {
		t.Error("rate length mismatch accepted")
	}
	if _, err := p.Lifetime([]int64{1, 1}, []int{0, 0}); err == nil {
		t.Error("duplicate physical tape accepted")
	}
	if _, err := p.Lifetime([]int64{1, 1}, []int{0, 5}); err == nil {
		t.Error("out-of-range physical tape accepted")
	}
}

func TestBestMappingPairsSorted(t *testing.T) {
	p := Profile{PerTape: []float64{50, 300, 100}}
	rates := []int64{5, 30, 1}
	m, err := p.BestMapping(rates)
	if err != nil {
		t.Fatal(err)
	}
	// Hottest logical (1, rate 30) -> strongest wire (1, 300);
	// next (0, rate 5) -> wire 2 (100); coldest (2) -> wire 0 (50).
	want := []int{2, 1, 0}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("mapping = %v, want %v", m, want)
		}
	}
}

// Property: BestMapping achieves the maximum lifetime over all
// permutations (exhaustively checked for small n).
func TestBestMappingOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1 // 1..5 tapes: n! <= 120
		prof, err := SampleProfile(n, 1e6, 0.5, seed)
		if err != nil {
			return false
		}
		rates := make([]int64, n)
		for i := range rates {
			rates[i] = int64(rng.Intn(100)) // zeros allowed
		}
		best, err := prof.BestMapping(rates)
		if err != nil {
			return false
		}
		bestLife, err := prof.Lifetime(rates, best)
		if err != nil {
			return false
		}
		// Exhaustive permutations.
		perm := make([]int, n)
		var rec func(used int, depth int) bool
		cur := make([]int, n)
		rec = func(used, depth int) bool {
			if depth == n {
				copy(perm, cur)
				l, err := prof.Lifetime(rates, perm)
				if err != nil {
					return false
				}
				return l <= bestLife+1e-9 || math.IsInf(bestLife, 1)
			}
			for p := 0; p < n; p++ {
				if used&(1<<p) != 0 {
					continue
				}
				cur[depth] = p
				if !rec(used|1<<p, depth+1) {
					return false
				}
			}
			return true
		}
		return rec(0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBestMappingValidation(t *testing.T) {
	p := Profile{PerTape: []float64{1, 2}}
	if _, err := p.BestMapping([]int64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}
