// Package spec implements a small kernel-specification language that
// compiles to access traces, standing in for the compiler frontend that
// produced the paper's traces. A spec declares scratchpad arrays and
// describes the loop nest that accesses them:
//
//	# 8-tap FIR over 16 samples
//	array d 8
//	array c 8
//	loop s 0 16 {
//	    loop i 0 8 {
//	        read d[i]
//	        read c[i]
//	    }
//	    write d[0]
//	}
//
// Index expressions are integer arithmetic (+ - * / %) over loop
// variables and literals, with parentheses; multi-dimensional arrays use
// comma-separated indices (array m 4 4; read m[i, j]). Parse builds the
// program; Program.Trace executes the loop nest and records every access,
// bounds-checked against the declarations.
package spec

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokLBrace  // {
	tokRBrace  // }
	tokLBrack  // [
	tokRBrack  // ]
	tokLParen  // (
	tokRParen  // )
	tokComma   // ,
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokSlash   // /
	tokPercent // %
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	}
	return "unknown token"
}

// token is one lexeme with its source line for error reporting.
type token struct {
	kind tokenKind
	text string
	val  int // for tokInt
	line int
}

// lex tokenizes the source. '#' starts a comment to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '#':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: string(rs[i:j]), line: line})
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			v, err := strconv.Atoi(string(rs[i:j]))
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: bad integer %q", line, string(rs[i:j]))
			}
			toks = append(toks, token{kind: tokInt, text: string(rs[i:j]), val: v, line: line})
			i = j
		default:
			kind := tokEOF
			switch r {
			case '{':
				kind = tokLBrace
			case '}':
				kind = tokRBrace
			case '[':
				kind = tokLBrack
			case ']':
				kind = tokRBrack
			case '(':
				kind = tokLParen
			case ')':
				kind = tokRParen
			case ',':
				kind = tokComma
			case '+':
				kind = tokPlus
			case '-':
				kind = tokMinus
			case '*':
				kind = tokStar
			case '/':
				kind = tokSlash
			case '%':
				kind = tokPercent
			default:
				return nil, fmt.Errorf("spec: line %d: unexpected character %q", line, string(r))
			}
			toks = append(toks, token{kind: kind, text: string(r), line: line})
			i++
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}
