package spec

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return p
}

func mustTrace(t *testing.T, src string) *trace.Trace {
	t.Helper()
	tr, err := mustParse(t, src).Trace("test")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSimpleSequence(t *testing.T) {
	tr := mustTrace(t, `
array a 4
read a[0]
write a[3]
read a[1]
`)
	if tr.NumItems != 4 {
		t.Errorf("NumItems = %d", tr.NumItems)
	}
	want := []trace.Access{{Item: 0}, {Item: 3, Write: true}, {Item: 1}}
	if !reflect.DeepEqual(tr.Accesses, want) {
		t.Errorf("accesses = %+v", tr.Accesses)
	}
}

func TestLoopAndExpressions(t *testing.T) {
	tr := mustTrace(t, `
array a 16
loop i 0 4 {
    read a[i*2+1]
}
`)
	want := []int{1, 3, 5, 7}
	if !reflect.DeepEqual(tr.Items(), want) {
		t.Errorf("items = %v, want %v", tr.Items(), want)
	}
}

func TestOperatorPrecedenceAndParens(t *testing.T) {
	tr := mustTrace(t, `
array a 32
read a[2+3*4]
read a[(2+3)*4]
read a[10-8/2]
read a[10%3]
read a[-(1-4)]
`)
	want := []int{14, 20, 6, 1, 3}
	if !reflect.DeepEqual(tr.Items(), want) {
		t.Errorf("items = %v, want %v", tr.Items(), want)
	}
}

func TestNestedLoopsAndMultipleArrays(t *testing.T) {
	tr := mustTrace(t, `
array x 3
array y 2 3
loop i 0 2 {
    loop j 0 3 {
        read x[j]
        write y[i, j]
    }
}
`)
	// x occupies items 0..2, y items 3..8 (row major).
	if tr.NumItems != 9 {
		t.Fatalf("NumItems = %d", tr.NumItems)
	}
	want := []int{0, 3, 1, 4, 2, 5, 0, 6, 1, 7, 2, 8}
	if !reflect.DeepEqual(tr.Items(), want) {
		t.Errorf("items = %v, want %v", tr.Items(), want)
	}
	for i, a := range tr.Accesses {
		if (i%2 == 1) != a.Write {
			t.Fatalf("access %d write flag wrong", i)
		}
	}
}

func TestLoopBoundsUseOuterVariables(t *testing.T) {
	tr := mustTrace(t, `
array a 8
loop i 0 3 {
    loop j 0 i+1 {
        read a[j]
    }
}
`)
	want := []int{0, 0, 1, 0, 1, 2}
	if !reflect.DeepEqual(tr.Items(), want) {
		t.Errorf("items = %v, want %v", tr.Items(), want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"no arrays", "loop i 0 2 { read a[0] }"},
		{"no statements", "array a 4"},
		{"redeclared", "array a 4\narray a 4\nread a[0]"},
		{"zero dim", "array a 0\nread a[0]"},
		{"no dim", "array a\nread a[0]"},
		{"keyword name", "array loop 4\nread loop[0]"},
		{"bad stmt", "array a 4\nfoo a[0]"},
		{"unterminated loop", "array a 4\nloop i 0 2 { read a[0]"},
		{"missing bracket", "array a 4\nread a 0]"},
		{"missing rbrack", "array a 4\nread a[0"},
		{"bad expr", "array a 4\nread a[+]"},
		{"unbalanced paren", "array a 4\nread a[(1+2]"},
		{"stray char", "array a 4\nread a[0]!"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undeclared array", "array a 4\nread b[0]"},
		{"wrong arity", "array a 4 4\nread a[1]"},
		{"out of range", "array a 4\nread a[4]"},
		{"negative index", "array a 4\nread a[0-1]"},
		{"undefined var", "array a 4\nread a[i]"},
		{"div by zero", "array a 4\nread a[1/0]"},
		{"mod by zero", "array a 4\nread a[1%0]"},
		{"shadowed loop var", "array a 4\nloop i 0 2 { loop i 0 2 { read a[i] } }"},
		{"empty loop trace", "array a 4\nloop i 0 0 { read a[0] }"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			continue // some are caught at parse time, fine either way
		}
		if _, err := p.Trace("t"); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	tr := mustTrace(t, `
# leading comment
array a 2   # trailing comment
read a[0]   # another
`)
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestProgramMetadata(t *testing.T) {
	p := mustParse(t, `
array x 3
array y 2 3
read x[0]
`)
	if p.Items() != 9 {
		t.Errorf("Items = %d", p.Items())
	}
	if got := p.ArrayNames(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("ArrayNames = %v", got)
	}
	want := []int{0, 0, 0, 1, 1, 1, 1, 1, 1}
	if got := p.Groups(); !reflect.DeepEqual(got, want) {
		t.Errorf("Groups = %v", got)
	}
}

// TestSpecReproducesFIRWorkload checks that a spec file expressing the
// FIR kernel produces exactly the trace the built-in generator emits —
// the two frontends are interchangeable.
func TestSpecReproducesFIRWorkload(t *testing.T) {
	taps, samples := 8, 16
	src := `
array d 8
array c 8
loop s 0 16 {
    loop i 0 7 {
        read d[6-i]
        write d[7-i]
    }
    write d[0]
    loop i 0 8 {
        read d[i]
        read c[i]
    }
}
`
	got := mustTrace(t, src)
	want := workload.FIR(taps, samples)
	if got.NumItems != want.NumItems {
		t.Fatalf("NumItems %d != %d", got.NumItems, want.NumItems)
	}
	if !reflect.DeepEqual(got.Accesses, want.Accesses) {
		t.Fatalf("spec FIR differs from generator FIR (lens %d vs %d)", got.Len(), want.Len())
	}
}

func TestTraceLengthGuard(t *testing.T) {
	// A loop nest exceeding MaxTraceLen must be rejected, not OOM.
	src := `
array a 1
loop i 0 100000 {
    loop j 0 100000 {
        read a[0]
    }
}
`
	p := mustParse(t, src)
	if _, err := p.Trace("big"); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("runaway loop not guarded: %v", err)
	}
}
