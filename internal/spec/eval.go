package spec

import (
	"fmt"

	"repro/internal/trace"
)

// MaxTraceLen caps the number of accesses a spec may generate, guarding
// against runaway loop bounds in user-supplied files. Two million
// accesses is two orders of magnitude above the largest evaluation trace
// while keeping the worst-case allocation a few tens of megabytes.
const MaxTraceLen = 2_000_000

// arrayLayout is the resolved item-space layout of one array.
type arrayLayout struct {
	base int
	dims []int
	size int
}

// Trace executes the program and returns the recorded access trace.
// Arrays occupy item IDs in declaration order (row-major within an
// array); every index is bounds-checked per dimension.
func (p *Program) Trace(name string) (*trace.Trace, error) {
	layouts := make(map[string]arrayLayout, len(p.arrays))
	base := 0
	for _, d := range p.arrays {
		size := 1
		for _, dim := range d.dims {
			size *= dim
		}
		layouts[d.name] = arrayLayout{base: base, dims: d.dims, size: size}
		base += size
	}
	t := trace.New(name, base)
	env := map[string]int{}
	if err := p.run(p.body, env, layouts, t); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("spec: program generated no accesses")
	}
	return t, nil
}

// Items returns the total declared item count (the scratchpad footprint).
func (p *Program) Items() int {
	total := 0
	for _, d := range p.arrays {
		size := 1
		for _, dim := range d.dims {
			size *= dim
		}
		total += size
	}
	return total
}

// ArrayNames returns the declared array names in order.
func (p *Program) ArrayNames() []string {
	names := make([]string, len(p.arrays))
	for i, d := range p.arrays {
		names[i] = d.name
	}
	return names
}

// Groups returns the item -> array-index table (for object-granularity
// placement of spec programs).
func (p *Program) Groups() []int {
	g := make([]int, 0, p.Items())
	for gi, d := range p.arrays {
		size := 1
		for _, dim := range d.dims {
			size *= dim
		}
		for k := 0; k < size; k++ {
			g = append(g, gi)
		}
	}
	return g
}

func (p *Program) run(body []stmt, env map[string]int, layouts map[string]arrayLayout, t *trace.Trace) error {
	for _, s := range body {
		switch s := s.(type) {
		case accessStmt:
			item, err := p.resolve(s, env, layouts)
			if err != nil {
				return err
			}
			if t.Len() >= MaxTraceLen {
				return fmt.Errorf("spec: trace exceeds %d accesses; check loop bounds", MaxTraceLen)
			}
			if s.write {
				t.Write(item)
			} else {
				t.Read(item)
			}
		case loopStmt:
			lo, err := s.lo.eval(env)
			if err != nil {
				return err
			}
			hi, err := s.hi.eval(env)
			if err != nil {
				return err
			}
			if _, shadow := env[s.varName]; shadow {
				return fmt.Errorf("spec: line %d: loop variable %q shadows an outer loop", s.line, s.varName)
			}
			for v := lo; v < hi; v++ {
				env[s.varName] = v
				if err := p.run(s.body, env, layouts, t); err != nil {
					return err
				}
			}
			delete(env, s.varName)
		default:
			return fmt.Errorf("spec: internal: unknown statement %T", s)
		}
	}
	return nil
}

func (p *Program) resolve(s accessStmt, env map[string]int, layouts map[string]arrayLayout) (int, error) {
	lay, ok := layouts[s.array]
	if !ok {
		return 0, fmt.Errorf("spec: line %d: undeclared array %q", s.line, s.array)
	}
	if len(s.indices) != len(lay.dims) {
		return 0, fmt.Errorf("spec: line %d: array %q has %d dimensions, got %d indices",
			s.line, s.array, len(lay.dims), len(s.indices))
	}
	offset := 0
	for k, e := range s.indices {
		v, err := e.eval(env)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= lay.dims[k] {
			return 0, fmt.Errorf("spec: line %d: %s index %d out of range [0,%d)",
				s.line, s.array, v, lay.dims[k])
		}
		offset = offset*lay.dims[k] + v
	}
	return lay.base + offset, nil
}
