package spec_test

import (
	"fmt"
	"log"

	"repro/internal/spec"
)

// ExampleParse compiles a two-array kernel and executes it into a trace.
func ExampleParse() {
	prog, err := spec.Parse(`
array src 4
array dst 4
loop i 0 4 {
    read src[i]
    write dst[3-i]
}
`)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := prog.Trace("reverse copy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrays: %v\n", prog.ArrayNames())
	fmt.Printf("items: %d, accesses: %d\n", tr.NumItems, tr.Len())
	fmt.Printf("first four: %v\n", tr.Items()[:4])
	// Output:
	// arrays: [src dst]
	// items: 8, accesses: 8
	// first four: [0 7 1 6]
}
