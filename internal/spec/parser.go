package spec

import "fmt"

// AST node types. The language is small enough that a flat statement
// union with a recursive-descent parser stays readable.

// expr is an integer expression over loop variables.
type expr interface {
	eval(env map[string]int) (int, error)
}

type intLit struct{ v int }

func (e intLit) eval(map[string]int) (int, error) { return e.v, nil }

type varRef struct {
	name string
	line int
}

func (e varRef) eval(env map[string]int) (int, error) {
	v, ok := env[e.name]
	if !ok {
		return 0, fmt.Errorf("spec: line %d: undefined loop variable %q", e.line, e.name)
	}
	return v, nil
}

type binOp struct {
	op   tokenKind
	l, r expr
	line int
}

func (e binOp) eval(env map[string]int) (int, error) {
	l, err := e.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := e.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch e.op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, fmt.Errorf("spec: line %d: division by zero", e.line)
		}
		return l / r, nil
	case tokPercent:
		if r == 0 {
			return 0, fmt.Errorf("spec: line %d: modulo by zero", e.line)
		}
		return l % r, nil
	}
	return 0, fmt.Errorf("spec: line %d: bad operator", e.line)
}

type negOp struct {
	x    expr
	line int
}

func (e negOp) eval(env map[string]int) (int, error) {
	v, err := e.x.eval(env)
	return -v, err
}

// stmt is one statement of the loop nest.
type stmt interface{ isStmt() }

// accessStmt is `read arr[idx...]` or `write arr[idx...]`.
type accessStmt struct {
	write   bool
	array   string
	indices []expr
	line    int
}

func (accessStmt) isStmt() {}

// loopStmt is `loop v lo hi { body }` iterating v over [lo, hi).
type loopStmt struct {
	varName string
	lo, hi  expr
	body    []stmt
	line    int
}

func (loopStmt) isStmt() {}

// arrayDecl declares a scratchpad array with one or more dimensions.
type arrayDecl struct {
	name string
	dims []int
	line int
}

// Program is a parsed kernel specification.
type Program struct {
	arrays []arrayDecl
	body   []stmt
}

// Parse compiles a kernel specification.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("spec: line %d: expected %v, got %v %q", t.line, k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	seen := map[string]bool{}
	for p.peek().kind != tokEOF {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("spec: line %d: expected statement, got %v %q", t.line, t.kind, t.text)
		}
		if t.text == "array" {
			d, err := p.arrayDecl()
			if err != nil {
				return nil, err
			}
			if seen[d.name] {
				return nil, fmt.Errorf("spec: line %d: array %q redeclared", d.line, d.name)
			}
			seen[d.name] = true
			prog.arrays = append(prog.arrays, d)
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.body = append(prog.body, s)
	}
	if len(prog.arrays) == 0 {
		return nil, fmt.Errorf("spec: no arrays declared")
	}
	if len(prog.body) == 0 {
		return nil, fmt.Errorf("spec: no statements")
	}
	return prog, nil
}

func (p *parser) arrayDecl() (arrayDecl, error) {
	kw := p.next() // "array"
	name, err := p.expect(tokIdent)
	if err != nil {
		return arrayDecl{}, err
	}
	switch name.text {
	case "array", "loop", "read", "write":
		return arrayDecl{}, fmt.Errorf("spec: line %d: %q is a keyword", name.line, name.text)
	}
	var dims []int
	for p.peek().kind == tokInt {
		d := p.next()
		if d.val <= 0 {
			return arrayDecl{}, fmt.Errorf("spec: line %d: dimension must be positive, got %d", d.line, d.val)
		}
		dims = append(dims, d.val)
	}
	if len(dims) == 0 {
		return arrayDecl{}, fmt.Errorf("spec: line %d: array %q needs at least one dimension", kw.line, name.text)
	}
	return arrayDecl{name: name.text, dims: dims, line: kw.line}, nil
}

func (p *parser) stmt() (stmt, error) {
	t := p.peek()
	switch t.text {
	case "loop":
		return p.loopStmt()
	case "read", "write":
		return p.accessStmt()
	}
	return nil, fmt.Errorf("spec: line %d: expected loop/read/write, got %q", t.line, t.text)
}

func (p *parser) loopStmt() (stmt, error) {
	kw := p.next() // "loop"
	v, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var body []stmt
	for p.peek().kind != tokRBrace {
		if p.peek().kind == tokEOF {
			return nil, fmt.Errorf("spec: line %d: unterminated loop body", kw.line)
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	p.next() // consume '}'
	return loopStmt{varName: v.text, lo: lo, hi: hi, body: body, line: kw.line}, nil
}

func (p *parser) accessStmt() (stmt, error) {
	kw := p.next() // "read" or "write"
	arr, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrack); err != nil {
		return nil, err
	}
	var indices []expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		indices = append(indices, e)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrack); err != nil {
		return nil, err
	}
	return accessStmt{
		write:   kw.text == "write",
		array:   arr.text,
		indices: indices,
		line:    kw.line,
	}, nil
}

// expr parses addition/subtraction (lowest precedence).
func (p *parser) expr() (expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPlus && t.kind != tokMinus {
			return l, nil
		}
		p.next()
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = binOp{op: t.kind, l: l, r: r, line: t.line}
	}
}

// term parses multiplication/division/modulo.
func (p *parser) term() (expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokStar && t.kind != tokSlash && t.kind != tokPercent {
			return l, nil
		}
		p.next()
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = binOp{op: t.kind, l: l, r: r, line: t.line}
	}
}

// factor parses literals, variables, parens, and unary minus.
func (p *parser) factor() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		return intLit{v: t.val}, nil
	case tokIdent:
		return varRef{name: t.text, line: t.line}, nil
	case tokMinus:
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		return negOp{x: x, line: t.line}, nil
	case tokLParen:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("spec: line %d: expected expression, got %v %q", t.line, t.kind, t.text)
}
