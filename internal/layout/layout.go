// Package layout defines the placement types shared by the cost
// evaluators, the placement algorithms, and the simulator.
//
// A Placement maps items to slots on a single tape; a MultiPlacement maps
// items to (tape, slot) pairs on a multi-tape device. Both are plain
// slices so optimizers can mutate them in place, with Validate methods
// enforcing the injectivity invariants at package boundaries.
package layout

import "fmt"

// Placement maps item ID to tape slot: Placement[item] = slot. A valid
// placement over `slots` tape positions is injective into [0, slots).
type Placement []int

// Identity returns the placement that puts item i in slot i.
func Identity(n int) Placement {
	p := make(Placement, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// FromOrder builds a placement from a slot ordering: order[s] is the item
// stored in slot s. Every item must appear exactly once.
func FromOrder(order []int) (Placement, error) {
	p := make(Placement, len(order))
	for i := range p {
		p[i] = -1
	}
	for s, item := range order {
		if item < 0 || item >= len(order) {
			return nil, fmt.Errorf("layout: order slot %d holds item %d outside [0,%d)",
				s, item, len(order))
		}
		if p[item] != -1 {
			return nil, fmt.Errorf("layout: item %d appears twice in order", item)
		}
		p[item] = s
	}
	return p, nil
}

// Order returns the inverse view over exactly len(p) slots: result[s] is
// the item in slot s. It requires the placement to be a permutation of
// [0, len(p)); use Validate for sparse placements on longer tapes.
func (p Placement) Order() ([]int, error) {
	if err := p.Validate(len(p)); err != nil {
		return nil, err
	}
	order := make([]int, len(p))
	for item, s := range p {
		order[s] = item
	}
	return order, nil
}

// Validate checks that the placement maps every item to a distinct slot in
// [0, slots).
func (p Placement) Validate(slots int) error {
	if len(p) == 0 {
		return fmt.Errorf("layout: empty placement")
	}
	if slots < len(p) {
		return fmt.Errorf("layout: %d items cannot fit in %d slots", len(p), slots)
	}
	seen := make(map[int]int, len(p))
	for item, s := range p {
		if s < 0 || s >= slots {
			return fmt.Errorf("layout: item %d placed at slot %d outside [0,%d)", item, s, slots)
		}
		if prev, dup := seen[s]; dup {
			return fmt.Errorf("layout: items %d and %d share slot %d", prev, item, s)
		}
		seen[s] = item
	}
	return nil
}

// Clone returns a copy of the placement.
func (p Placement) Clone() Placement {
	return append(Placement(nil), p...)
}

// Swap exchanges the slots of items u and v.
func (p Placement) Swap(u, v int) { p[u], p[v] = p[v], p[u] }

// Mirror returns the placement reflected across the tape: slot s becomes
// slots-1-s. Mirroring preserves single-port-at-center costs and is used
// by symmetry property tests.
func (p Placement) Mirror(slots int) Placement {
	m := make(Placement, len(p))
	for item, s := range p {
		m[item] = slots - 1 - s
	}
	return m
}

// MultiPlacement maps each item to a tape and a slot on that tape.
type MultiPlacement struct {
	Tape []int
	Slot []int
}

// NewMultiPlacement returns a multi-placement for n items with all
// entries set to -1 (unassigned).
func NewMultiPlacement(n int) MultiPlacement {
	mp := MultiPlacement{Tape: make([]int, n), Slot: make([]int, n)}
	for i := 0; i < n; i++ {
		mp.Tape[i] = -1
		mp.Slot[i] = -1
	}
	return mp
}

// Items returns the number of items covered.
func (mp MultiPlacement) Items() int { return len(mp.Tape) }

// Validate checks the multi-placement against a device shape: every item
// assigned a valid tape and slot, no two items sharing a (tape, slot).
func (mp MultiPlacement) Validate(tapes, slotsPerTape int) error {
	if len(mp.Tape) == 0 || len(mp.Tape) != len(mp.Slot) {
		return fmt.Errorf("layout: malformed multi-placement (%d tapes entries, %d slot entries)",
			len(mp.Tape), len(mp.Slot))
	}
	if len(mp.Tape) > tapes*slotsPerTape {
		return fmt.Errorf("layout: %d items cannot fit on %d tapes of %d slots",
			len(mp.Tape), tapes, slotsPerTape)
	}
	type loc struct{ t, s int }
	seen := make(map[loc]int, len(mp.Tape))
	for item := range mp.Tape {
		t, s := mp.Tape[item], mp.Slot[item]
		if t < 0 || t >= tapes {
			return fmt.Errorf("layout: item %d on tape %d outside [0,%d)", item, t, tapes)
		}
		if s < 0 || s >= slotsPerTape {
			return fmt.Errorf("layout: item %d at slot %d outside [0,%d)", item, s, slotsPerTape)
		}
		if prev, dup := seen[loc{t, s}]; dup {
			return fmt.Errorf("layout: items %d and %d share tape %d slot %d", prev, item, t, s)
		}
		seen[loc{t, s}] = item
	}
	return nil
}

// Clone returns a deep copy.
func (mp MultiPlacement) Clone() MultiPlacement {
	return MultiPlacement{
		Tape: append([]int(nil), mp.Tape...),
		Slot: append([]int(nil), mp.Slot...),
	}
}

// SingleTape lifts a single-tape placement into a multi-placement on
// tape 0.
func SingleTape(p Placement) MultiPlacement {
	mp := MultiPlacement{Tape: make([]int, len(p)), Slot: append([]int(nil), p...)}
	return mp
}
