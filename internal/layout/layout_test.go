package layout

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(4)
	if !reflect.DeepEqual(p, Placement{0, 1, 2, 3}) {
		t.Errorf("Identity = %v", p)
	}
	if err := p.Validate(4); err != nil {
		t.Error(err)
	}
}

func TestFromOrderAndOrderInverse(t *testing.T) {
	order := []int{2, 0, 1} // slot0=item2, slot1=item0, slot2=item1
	p, err := FromOrder(order)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, Placement{1, 2, 0}) {
		t.Errorf("FromOrder = %v", p)
	}
	back, err := p.Order()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, order) {
		t.Errorf("Order = %v, want %v", back, order)
	}
}

func TestFromOrderErrors(t *testing.T) {
	if _, err := FromOrder([]int{0, 0}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := FromOrder([]int{0, 5}); err == nil {
		t.Error("out of range accepted")
	}
	if _, err := FromOrder([]int{-1, 0}); err == nil {
		t.Error("negative accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := (Placement{0, 2}).Validate(3); err != nil {
		t.Errorf("sparse placement rejected: %v", err)
	}
	cases := []struct {
		p     Placement
		slots int
	}{
		{Placement{}, 1},
		{Placement{0, 1, 2}, 2},
		{Placement{0, 0}, 2},
		{Placement{0, 3}, 3},
		{Placement{-1, 0}, 2},
	}
	for i, c := range cases {
		if err := c.p.Validate(c.slots); err == nil {
			t.Errorf("case %d accepted: %v over %d", i, c.p, c.slots)
		}
	}
}

func TestOrderRejectsSparse(t *testing.T) {
	if _, err := (Placement{0, 2}).Order(); err == nil {
		t.Error("Order on sparse placement accepted")
	}
}

func TestCloneAndSwap(t *testing.T) {
	p := Identity(3)
	q := p.Clone()
	q.Swap(0, 2)
	if !reflect.DeepEqual(p, Placement{0, 1, 2}) {
		t.Error("Clone shares storage")
	}
	if !reflect.DeepEqual(q, Placement{2, 1, 0}) {
		t.Errorf("Swap = %v", q)
	}
}

func TestMirror(t *testing.T) {
	p := Placement{0, 3, 1}
	m := p.Mirror(4)
	if !reflect.DeepEqual(m, Placement{3, 0, 2}) {
		t.Errorf("Mirror = %v", m)
	}
	// Mirror twice is identity.
	if !reflect.DeepEqual(m.Mirror(4), p) {
		t.Error("double mirror is not identity")
	}
}

func TestMultiPlacementValidate(t *testing.T) {
	mp := NewMultiPlacement(3)
	if err := mp.Validate(2, 4); err == nil {
		t.Error("unassigned entries accepted")
	}
	mp.Tape = []int{0, 0, 1}
	mp.Slot = []int{0, 1, 0}
	if err := mp.Validate(2, 4); err != nil {
		t.Errorf("valid multi-placement rejected: %v", err)
	}
	dup := MultiPlacement{Tape: []int{0, 0}, Slot: []int{1, 1}}
	if err := dup.Validate(1, 4); err == nil {
		t.Error("colliding placement accepted")
	}
	if err := (MultiPlacement{Tape: []int{2}, Slot: []int{0}}).Validate(2, 4); err == nil {
		t.Error("bad tape accepted")
	}
	if err := (MultiPlacement{Tape: []int{0}, Slot: []int{4}}).Validate(2, 4); err == nil {
		t.Error("bad slot accepted")
	}
	if err := (MultiPlacement{Tape: []int{0}, Slot: []int{0, 1}}).Validate(2, 4); err == nil {
		t.Error("mismatched lengths accepted")
	}
	big := MultiPlacement{Tape: []int{0, 0, 0}, Slot: []int{0, 1, 2}}
	if err := big.Validate(1, 2); err == nil {
		t.Error("overfull device accepted")
	}
}

func TestMultiPlacementCloneIndependence(t *testing.T) {
	mp := MultiPlacement{Tape: []int{0, 1}, Slot: []int{2, 3}}
	c := mp.Clone()
	c.Tape[0], c.Slot[0] = 9, 9
	if mp.Tape[0] != 0 || mp.Slot[0] != 2 {
		t.Error("Clone shares storage")
	}
}

func TestSingleTape(t *testing.T) {
	p := Placement{2, 0, 1}
	mp := SingleTape(p)
	if err := mp.Validate(1, 3); err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if mp.Tape[i] != 0 || mp.Slot[i] != p[i] {
			t.Errorf("item %d: tape %d slot %d", i, mp.Tape[i], mp.Slot[i])
		}
	}
}

// Property: FromOrder and Order are inverse bijections on permutations.
func TestOrderRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		order := rng.Perm(n)
		p, err := FromOrder(order)
		if err != nil {
			return false
		}
		back, err := p.Order()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(order, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
