// Package workload generates the access traces used throughout the
// evaluation.
//
// The original paper evaluates on variable access sequences extracted from
// embedded benchmark kernels. This reproduction substitutes generators that
// emit the access sequences the named kernels actually perform: a FIR
// filter really does slide a window over its delay line and coefficient
// array, matrix multiply really does walk rows and columns, and so on. The
// placement problem sees only the resulting sequence, so the locality
// structure that drives the paper's results is preserved (substitution
// documented in DESIGN.md §4).
//
// Every generator is deterministic given its seed, so experiments are
// exactly reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/trace"
)

// Generator produces a trace from a seed. Generators with no random
// component ignore the seed.
type Generator struct {
	// Name identifies the workload (used in tables and trace files).
	Name string
	// Description says what kernel the trace models.
	Description string
	// Make builds the trace.
	Make func(seed int64) *trace.Trace
}

// Suite returns the standard benchmark suite used by the experiments, in
// table order. Sizes are chosen so that working sets are in the tens of
// items (scratchpad scale, matching a DWM placement study) and traces are
// thousands of accesses long.
func Suite() []Generator {
	return []Generator{
		{
			Name:        "fir",
			Description: "32-tap FIR filter over 256 samples (delay line + coefficients)",
			Make:        func(int64) *trace.Trace { return FIR(32, 256) },
		},
		{
			Name:        "iir",
			Description: "cascade of 8 biquad IIR sections over 256 samples",
			Make:        func(int64) *trace.Trace { return IIR(8, 256) },
		},
		{
			Name:        "matmul",
			Description: "6x6 dense matrix multiply (A, B, C element variables)",
			Make:        func(int64) *trace.Trace { return MatMul(6) },
		},
		{
			Name:        "fft",
			Description: "64-point in-place radix-2 FFT butterfly accesses",
			Make:        func(int64) *trace.Trace { return FFT(64) },
		},
		{
			Name:        "sort",
			Description: "insertion sort of 48 elements (data-dependent trace)",
			Make:        func(seed int64) *trace.Trace { return InsertionSort(48, seed) },
		},
		{
			Name:        "stencil",
			Description: "1D 3-point stencil over a 64-cell array, 32 sweeps",
			Make:        func(int64) *trace.Trace { return Stencil1D(64, 32) },
		},
		{
			Name:        "histogram",
			Description: "Zipf-distributed histogram over 64 bins, 8192 updates",
			Make:        func(seed int64) *trace.Trace { return Histogram(64, 8192, 1.1, seed) },
		},
		{
			Name:        "ptrchase",
			Description: "pointer chase over 64 nodes, 4096 hops",
			Make:        func(seed int64) *trace.Trace { return PointerChase(64, 4096, seed) },
		},
		{
			Name:        "crc",
			Description: "byte-wise CRC over 2048 bytes with a 32-entry nibble table",
			Make:        func(seed int64) *trace.Trace { return CRC(2048, seed) },
		},
		{
			Name:        "zigzag",
			Description: "JPEG-style zigzag scans of 8x8 blocks, 64 blocks",
			Make:        func(int64) *trace.Trace { return Zigzag(64) },
		},
		{
			Name:        "conv2d",
			Description: "3x3 convolution over an 8x8 output tile (inputs + weights + outputs)",
			Make:        func(int64) *trace.Trace { return Conv2D(8) },
		},
		{
			Name:        "spmv",
			Description: "sparse matrix-vector product, 32x32, 4 nnz/row, 64 iterations",
			Make:        func(seed int64) *trace.Trace { return SpMV(32, 4, 64, seed) },
		},
		{
			Name:        "markov",
			Description: "1D locality walk over 64 items with scrambled numbering",
			Make:        func(seed int64) *trace.Trace { return Markov(64, 8192, seed) },
		},
		{
			Name:        "uniform",
			Description: "uniform random accesses over 64 items (adversarial baseline)",
			Make:        func(seed int64) *trace.Trace { return Uniform(64, 8192, seed) },
		},
		{
			Name:        "zipf",
			Description: "Zipf(1.3) random accesses over 64 items",
			Make:        func(seed int64) *trace.Trace { return Zipf(64, 8192, 1.3, seed) },
		},
	}
}

// ByName returns the named generator from the standard suite.
func ByName(name string) (Generator, error) {
	for _, g := range Suite() {
		if g.Name == name {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the workloads in the standard suite.
func Names() []string {
	gens := Suite()
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name
	}
	return names
}

// zipfWeights returns normalized cumulative weights for Zipf(s) over n
// ranks, used by the Zipf-shaped generators. rank 0 is the most popular.
func zipfCumulative(n int, s float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1.0 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	cum := make([]float64, n)
	run := 0.0
	for i := range w {
		run += w[i] / total
		cum[i] = run
	}
	cum[n-1] = 1.0 // guard against rounding
	return cum
}

// sampleCumulative draws an index from a cumulative distribution.
func sampleCumulative(cum []float64, rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(cum, u)
}
