package workload

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestSuiteAllValidAndDeterministic(t *testing.T) {
	for _, g := range Suite() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			a := g.Make(1)
			if err := a.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if a.Len() == 0 {
				t.Fatal("empty trace")
			}
			if a.Name == "" {
				t.Error("trace has no name")
			}
			b := g.Make(1)
			if !reflect.DeepEqual(a, b) {
				t.Error("generator not deterministic for equal seeds")
			}
		})
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("fir")
	if err != nil || g.Name != "fir" {
		t.Errorf("ByName(fir) = %+v, %v", g, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) accepted")
	}
}

func TestNamesMatchesSuite(t *testing.T) {
	names := Names()
	suite := Suite()
	if len(names) != len(suite) {
		t.Fatalf("Names len %d != Suite len %d", len(names), len(suite))
	}
	for i := range names {
		if names[i] != suite[i].Name {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], suite[i].Name)
		}
	}
}

func TestFIRShape(t *testing.T) {
	taps, samples := 4, 3
	tr := FIR(taps, samples)
	if tr.NumItems != 2*taps {
		t.Errorf("NumItems = %d, want %d", tr.NumItems, 2*taps)
	}
	// Per sample: (taps-1) read+write pairs, 1 write, taps read pairs.
	want := samples * ((taps-1)*2 + 1 + taps*2)
	if tr.Len() != want {
		t.Errorf("Len = %d, want %d", tr.Len(), want)
	}
	// Delay-line neighbors must be adjacent in the trace.
	trans := tr.Transitions()
	if trans[[2]int{0, 1}] == 0 {
		t.Error("expected d[0]-d[1] adjacency")
	}
	// d[i] and c[i] are adjacent in the MAC loop.
	if trans[[2]int{1, taps + 1}] == 0 {
		t.Error("expected d[1]-c[1] adjacency")
	}
}

func TestIIRShape(t *testing.T) {
	tr := IIR(2, 5)
	if tr.NumItems != 14 {
		t.Errorf("NumItems = %d, want 14", tr.NumItems)
	}
	if tr.Len() != 5*2*11 {
		t.Errorf("Len = %d, want %d", tr.Len(), 5*2*11)
	}
	// No cross-section adjacency except at the section boundary
	// (w1 of sec0 -> a1 of sec1).
	trans := tr.Transitions()
	if trans[[2]int{0, 7 + 5}] == 0 {
		t.Error("expected sec0.w1 - sec1.a1 boundary adjacency")
	}
}

func TestMatMulShape(t *testing.T) {
	n := 3
	tr := MatMul(n)
	if tr.NumItems != 3*n*n {
		t.Errorf("NumItems = %d, want %d", tr.NumItems, 3*n*n)
	}
	if tr.Len() != n*n*(2*n)+n*n {
		t.Errorf("Len = %d, want %d", tr.Len(), n*n*2*n+n*n)
	}
	// Every item is touched.
	if got := len(tr.Touched()); got != 3*n*n {
		t.Errorf("Touched = %d, want %d", got, 3*n*n)
	}
	// C is write-only.
	for _, a := range tr.Accesses {
		if a.Item >= 2*n*n && !a.Write {
			t.Fatalf("read of C element %d", a.Item)
		}
	}
}

func TestFFTShape(t *testing.T) {
	n := 8
	tr := FFT(n)
	if tr.NumItems != n+n/2 {
		t.Errorf("NumItems = %d, want %d", tr.NumItems, n+n/2)
	}
	// log2(n) stages of n/2 butterflies, 5 accesses each, plus
	// bit-reversal swaps (4 accesses per swapped pair).
	swaps := 0
	for i := 0; i < n; i++ {
		// count pairs i < rev(i) for 3 bits
		r := (i&1)<<2 | (i & 2) | (i&4)>>2
		if i < r {
			swaps++
		}
	}
	want := swaps*4 + 3*(n/2)*5
	if tr.Len() != want {
		t.Errorf("Len = %d, want %d", tr.Len(), want)
	}
	// Twiddle items are read-only.
	for _, a := range tr.Accesses {
		if a.Item >= n && a.Write {
			t.Fatalf("write to twiddle %d", a.Item)
		}
	}
}

func TestFFTPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT(%d) did not panic", n)
				}
			}()
			FFT(n)
		}()
	}
}

func TestInsertionSortSortsAndSeedMatters(t *testing.T) {
	a := InsertionSort(20, 1)
	b := InsertionSort(20, 2)
	if reflect.DeepEqual(a.Accesses, b.Accesses) {
		t.Error("different seeds produced identical data-dependent traces")
	}
	if a.NumItems != 20 {
		t.Errorf("NumItems = %d", a.NumItems)
	}
	// Trace length bounded by O(m^2) accesses.
	if a.Len() < 19*2 || a.Len() > 20*20*3 {
		t.Errorf("suspicious trace length %d", a.Len())
	}
}

func TestStencilShape(t *testing.T) {
	cells, sweeps := 8, 2
	tr := Stencil1D(cells, sweeps)
	if tr.NumItems != 2*cells {
		t.Errorf("NumItems = %d", tr.NumItems)
	}
	// Per sweep: 2 boundary cells x2 accesses + (cells-2) interior x4.
	want := sweeps * (2*2 + (cells-2)*4)
	if tr.Len() != want {
		t.Errorf("Len = %d, want %d", tr.Len(), want)
	}
	// Sweep 0 writes only into B, sweep 1 only into A.
	half := tr.Len() / sweeps
	for i, a := range tr.Accesses {
		if !a.Write {
			continue
		}
		inB := a.Item >= cells
		if i < half && !inB {
			t.Fatalf("sweep 0 wrote into A at access %d", i)
		}
		if i >= half && inB {
			t.Fatalf("sweep 1 wrote into B at access %d", i)
		}
	}
}

func TestHistogramZipfSkew(t *testing.T) {
	tr := Histogram(32, 4000, 1.2, 7)
	f := tr.Frequencies()
	sort.Slice(f, func(i, j int) bool { return f[i] > f[j] })
	// The hottest bin should dominate the median bin decisively.
	if f[0] < 4*f[16] {
		t.Errorf("Zipf skew too weak: hottest %d vs median %d", f[0], f[16])
	}
	// Every access pair is read-then-write of the same bin.
	for i := 0; i < tr.Len(); i += 2 {
		if tr.Accesses[i].Write || !tr.Accesses[i+1].Write ||
			tr.Accesses[i].Item != tr.Accesses[i+1].Item {
			t.Fatalf("access pair %d malformed", i)
		}
	}
}

func TestPointerChaseIsCyclic(t *testing.T) {
	nodes, hops := 16, 64
	tr := PointerChase(nodes, hops, 3)
	if tr.Len() != hops {
		t.Fatalf("Len = %d, want %d", tr.Len(), hops)
	}
	// Successor must be a function: each item always followed by the same
	// item.
	next := map[int]int{}
	items := tr.Items()
	for i := 1; i < len(items); i++ {
		u, v := items[i-1], items[i]
		if w, ok := next[u]; ok && w != v {
			t.Fatalf("node %d has successors %d and %d", u, w, v)
		}
		next[u] = v
	}
	// A full cycle over 16 nodes in 64 hops touches all nodes.
	if got := len(tr.Touched()); got != nodes {
		t.Errorf("Touched = %d, want %d", got, nodes)
	}
}

func TestCRCShape(t *testing.T) {
	tr := CRC(100, 5)
	if tr.NumItems != 32 {
		t.Errorf("NumItems = %d, want 32", tr.NumItems)
	}
	if tr.Len() != 200 {
		t.Errorf("Len = %d, want 200", tr.Len())
	}
	// Alternates: even accesses in the high table [0,16), odd in [16,32).
	for i, a := range tr.Accesses {
		if i%2 == 0 && a.Item >= 16 {
			t.Fatalf("access %d: high-table read out of range: %d", i, a.Item)
		}
		if i%2 == 1 && a.Item < 16 {
			t.Fatalf("access %d: low-table read out of range: %d", i, a.Item)
		}
	}
}

func TestZigzagOrderIsPermutation(t *testing.T) {
	order := zigzagOrder(8)
	if len(order) != 64 {
		t.Fatalf("len = %d", len(order))
	}
	seen := map[int]bool{}
	for _, x := range order {
		if x < 0 || x >= 64 || seen[x] {
			t.Fatalf("bad zigzag entry %d", x)
		}
		seen[x] = true
	}
	// Standard zigzag prefix for 8x8: 0, 1, 8, 16, 9, 2, 3, 10 ...
	want := []int{0, 1, 8, 16, 9, 2, 3, 10}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order[%d] = %d, want %d (prefix %v)", i, order[i], w, order[:8])
		}
	}
}

func TestZigzagTrace(t *testing.T) {
	tr := Zigzag(3)
	if tr.Len() != 3*64 || tr.NumItems != 64 {
		t.Errorf("Len=%d NumItems=%d", tr.Len(), tr.NumItems)
	}
	// Blocks repeat the identical order.
	items := tr.Items()
	for i := 0; i < 64; i++ {
		if items[i] != items[64+i] || items[i] != items[128+i] {
			t.Fatal("blocks differ")
		}
	}
}

func TestUniformCoversItems(t *testing.T) {
	tr := Uniform(16, 2000, 11)
	if got := len(tr.Touched()); got != 16 {
		t.Errorf("Touched = %d, want 16", got)
	}
}

func TestZipfCumulativeProperties(t *testing.T) {
	cum := zipfCumulative(10, 1.0)
	if len(cum) != 10 {
		t.Fatalf("len = %d", len(cum))
	}
	prev := 0.0
	for i, c := range cum {
		if c < prev {
			t.Fatalf("cumulative not monotone at %d: %v", i, cum)
		}
		prev = c
	}
	if math.Abs(cum[9]-1.0) > 1e-12 {
		t.Errorf("cumulative does not end at 1: %g", cum[9])
	}
	// First rank of Zipf(1) over 10 items has probability 1/H(10) ~ 0.341.
	if math.Abs(cum[0]-0.3414) > 0.01 {
		t.Errorf("first mass = %g, want ~0.341", cum[0])
	}
}
