package workload

import (
	"reflect"
	"testing"
)

func TestConv2DShape(t *testing.T) {
	out := 4
	tr := Conv2D(out)
	in := out + 2
	if tr.NumItems != in*in+9+out*out {
		t.Errorf("NumItems = %d", tr.NumItems)
	}
	if tr.Len() != out*out*(9*2)+out*out {
		t.Errorf("Len = %d", tr.Len())
	}
	// Outputs are write-only, inputs and weights read-only.
	for _, a := range tr.Accesses {
		isOutput := a.Item >= in*in+9
		if isOutput != a.Write {
			t.Fatalf("access %+v violates read/write roles", a)
		}
	}
	// Every item touched.
	if got := len(tr.Touched()); got != tr.NumItems {
		t.Errorf("Touched = %d, want %d", got, tr.NumItems)
	}
}

func TestConv2DPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Conv2D(0) did not panic")
		}
	}()
	Conv2D(0)
}

func TestSpMVShape(t *testing.T) {
	n, nnz, reps := 16, 3, 5
	tr := SpMV(n, nnz, reps, 7)
	if tr.NumItems != 2*n {
		t.Errorf("NumItems = %d", tr.NumItems)
	}
	if tr.Len() != reps*n*(nnz+1) {
		t.Errorf("Len = %d", tr.Len())
	}
	// y is write-only, x read-only.
	for _, a := range tr.Accesses {
		if (a.Item >= n) != a.Write {
			t.Fatalf("access %+v violates vector roles", a)
		}
	}
	// The sparsity pattern is static: repetitions are identical.
	per := tr.Len() / reps
	for i := 0; i < per; i++ {
		if tr.Accesses[i] != tr.Accesses[per+i] {
			t.Fatal("pattern differs across repetitions")
		}
	}
}

func TestSpMVClampsNNZ(t *testing.T) {
	tr := SpMV(4, 100, 1, 1)
	if tr.Len() != 4*(4+1) {
		t.Errorf("Len = %d, want nnz clamped to n", tr.Len())
	}
}

func TestMarkovStaysInRangeAndLocal(t *testing.T) {
	n := 32
	tr := Markov(n, 5000, 9)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Recover the hidden chain coordinates: the relabeling is a
	// bijection, so consecutive accesses must be within 3 steps in the
	// hidden space. Verify through the transition graph instead: the
	// graph of a locality walk has bounded degree (each hidden position
	// has <= 6 neighbors).
	m := tr.Transitions()
	deg := map[int]int{}
	for k := range m {
		deg[k[0]]++
		deg[k[1]]++
	}
	for item, d := range deg {
		if d > 6 {
			t.Fatalf("item %d has %d distinct neighbors, want <= 6", item, d)
		}
	}
}

func TestMarkovSeedChangesRelabeling(t *testing.T) {
	a := Markov(16, 200, 1)
	b := Markov(16, 200, 2)
	if reflect.DeepEqual(a.Accesses, b.Accesses) {
		t.Error("different seeds produced identical walks")
	}
}

func TestPhasedShape(t *testing.T) {
	tr := Phased(16, 1000, 4, 1.2, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 || tr.NumItems != 16 {
		t.Errorf("len=%d items=%d", tr.Len(), tr.NumItems)
	}
	// Phases differ: the hottest item of phase 1 should differ from
	// phase 2's with overwhelming probability.
	hot := func(lo, hi int) int {
		counts := map[int]int{}
		for _, a := range tr.Accesses[lo:hi] {
			counts[a.Item]++
		}
		best, bestC := -1, -1
		for it, c := range counts {
			if c > bestC {
				best, bestC = it, c
			}
		}
		return best
	}
	h1 := hot(0, 250)
	different := false
	for p := 1; p < 4; p++ {
		if hot(p*250, (p+1)*250) != h1 {
			different = true
		}
	}
	if !different {
		t.Error("hot set never rotated across phases")
	}
	// phases < 1 clamps.
	if Phased(4, 100, 0, 1.0, 1).Len() != 100 {
		t.Error("phases=0 not clamped")
	}
}
