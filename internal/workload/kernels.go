package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// The kernel generators model scratchpad-resident arrays as placeable
// items and assume scalar temporaries (loop counters, accumulators) are
// register allocated, which is how embedded compilers treat them and how
// DWM placement studies frame the problem: only memory-resident data pays
// shifts.

// FIR generates the access trace of a taps-tap FIR filter processing the
// given number of samples. Items are the delay line d[0..taps-1] followed
// by the coefficient array c[0..taps-1]. Per sample the kernel shifts the
// delay line (read d[i-1], write d[i]), writes the new sample into d[0],
// and then runs the multiply-accumulate loop (read d[i], read c[i]).
func FIR(taps, samples int) *trace.Trace {
	tr := trace.New(fmt.Sprintf("fir taps=%d samples=%d", taps, samples), 2*taps)
	d := func(i int) int { return i }
	c := func(i int) int { return taps + i }
	for s := 0; s < samples; s++ {
		for i := taps - 1; i >= 1; i-- {
			tr.Read(d(i - 1))
			tr.Write(d(i))
		}
		tr.Write(d(0))
		for i := 0; i < taps; i++ {
			tr.Read(d(i))
			tr.Read(c(i))
		}
	}
	return tr
}

// IIR generates the access trace of a cascade of biquad IIR sections, each
// with two state variables and five coefficients, processing the given
// number of samples. Items are laid out per section:
// [w1, w2, b0, b1, b2, a1, a2]. The per-sample, per-section direct-form-II
// evaluation touches the section's items in a fixed order, giving the
// strongly clustered access structure typical of DSP kernels.
func IIR(sections, samples int) *trace.Trace {
	const vars = 7
	tr := trace.New(fmt.Sprintf("iir sections=%d samples=%d", sections, samples), vars*sections)
	at := func(sec, v int) int { return sec*vars + v }
	for s := 0; s < samples; s++ {
		for sec := 0; sec < sections; sec++ {
			w1, w2 := at(sec, 0), at(sec, 1)
			b0, b1, b2 := at(sec, 2), at(sec, 3), at(sec, 4)
			a1, a2 := at(sec, 5), at(sec, 6)
			// w0 = x - a1*w1 - a2*w2
			tr.Read(a1)
			tr.Read(w1)
			tr.Read(a2)
			tr.Read(w2)
			// y = b0*w0 + b1*w1 + b2*w2
			tr.Read(b0)
			tr.Read(b1)
			tr.Read(w1)
			tr.Read(b2)
			tr.Read(w2)
			// state update
			tr.Write(w2)
			tr.Write(w1)
		}
	}
	return tr
}

// MatMul generates the access trace of an n x n dense matrix multiply
// C = A*B with a register-allocated accumulator. Items are the elements of
// A, then B, then C (3*n*n items).
func MatMul(n int) *trace.Trace {
	tr := trace.New(fmt.Sprintf("matmul n=%d", n), 3*n*n)
	a := func(i, k int) int { return i*n + k }
	b := func(k, j int) int { return n*n + k*n + j }
	c := func(i, j int) int { return 2*n*n + i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				tr.Read(a(i, k))
				tr.Read(b(k, j))
			}
			tr.Write(c(i, j))
		}
	}
	return tr
}

// FFT generates the access trace of an in-place radix-2 decimation-in-time
// FFT of size n (a power of two). Items are the n complex data elements
// followed by the n/2 twiddle factors. The trace covers the bit-reversal
// permutation and every butterfly (read both ends and the twiddle, write
// both ends).
func FFT(n int) *trace.Trace {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("workload: FFT size %d is not a power of two >= 2", n))
	}
	tr := trace.New(fmt.Sprintf("fft n=%d", n), n+n/2)
	tw := func(i int) int { return n + i }
	// Bit-reversal permutation: swap x[i] and x[rev(i)] for i < rev(i).
	bits := 0
	for 1<<bits < n {
		bits++
	}
	rev := func(x int) int {
		r := 0
		for b := 0; b < bits; b++ {
			if x&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		return r
	}
	for i := 0; i < n; i++ {
		j := rev(i)
		if i < j {
			tr.Read(i)
			tr.Read(j)
			tr.Write(i)
			tr.Write(j)
		}
	}
	// Butterfly stages.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tr.Read(tw(k * step))
				tr.Read(start + k)
				tr.Read(start + k + half)
				tr.Write(start + k)
				tr.Write(start + k + half)
			}
		}
	}
	return tr
}

// InsertionSort generates the data-dependent access trace of insertion
// sort over m elements whose initial values are drawn from the seeded RNG.
// Items are the array elements by position.
func InsertionSort(m int, seed int64) *trace.Trace {
	tr := trace.New(fmt.Sprintf("insertion-sort m=%d", m), m)
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int, m)
	for i := range vals {
		vals[i] = rng.Intn(1 << 20)
	}
	for i := 1; i < m; i++ {
		tr.Read(i) // key = a[i]
		key := vals[i]
		j := i - 1
		for j >= 0 {
			tr.Read(j)
			if vals[j] <= key {
				break
			}
			tr.Write(j + 1) // a[j+1] = a[j]
			vals[j+1] = vals[j]
			j--
		}
		tr.Write(j + 1) // a[j+1] = key
		vals[j+1] = key
	}
	return tr
}

// Stencil1D generates the trace of a ping-pong 3-point stencil over two
// arrays of the given cell count, for the given number of sweeps. Items
// 0..cells-1 are array A, cells..2*cells-1 are array B. Even sweeps read A
// and write B; odd sweeps read B and write A. Boundary cells are copied.
func Stencil1D(cells, sweeps int) *trace.Trace {
	tr := trace.New(fmt.Sprintf("stencil1d cells=%d sweeps=%d", cells, sweeps), 2*cells)
	for s := 0; s < sweeps; s++ {
		src, dst := 0, cells
		if s%2 == 1 {
			src, dst = cells, 0
		}
		for i := 0; i < cells; i++ {
			if i == 0 || i == cells-1 {
				tr.Read(src + i)
				tr.Write(dst + i)
				continue
			}
			tr.Read(src + i - 1)
			tr.Read(src + i)
			tr.Read(src + i + 1)
			tr.Write(dst + i)
		}
	}
	return tr
}

// Histogram generates the trace of histogram construction over the given
// number of bins with Zipf(s)-distributed bin indices: each update reads
// and then writes the selected bin. The bin-to-rank assignment is a seeded
// random permutation so popular bins are scattered across the ID space (a
// placement algorithm must discover them; they are not pre-sorted).
func Histogram(bins, updates int, s float64, seed int64) *trace.Trace {
	tr := trace.New(fmt.Sprintf("histogram bins=%d updates=%d s=%g", bins, updates, s), bins)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(bins)
	cum := zipfCumulative(bins, s)
	for i := 0; i < updates; i++ {
		b := perm[sampleCumulative(cum, rng)]
		tr.Read(b)
		tr.Write(b)
	}
	return tr
}

// PointerChase generates the trace of walking a random singly linked list
// of the given node count for the given number of hops. The list is a
// single cycle drawn from the seeded RNG, so every node is always followed
// by the same successor: the trace has perfectly predictable adjacency
// that a good placement can exploit almost completely.
func PointerChase(nodes, hops int, seed int64) *trace.Trace {
	tr := trace.New(fmt.Sprintf("ptrchase nodes=%d hops=%d", nodes, hops), nodes)
	rng := rand.New(rand.NewSource(seed))
	// A random cyclic permutation via Sattolo's algorithm.
	next := make([]int, nodes)
	order := rng.Perm(nodes)
	for i := 0; i < nodes; i++ {
		next[order[i]] = order[(i+1)%nodes]
	}
	cur := order[0]
	for i := 0; i < hops; i++ {
		tr.Read(cur)
		cur = next[cur]
	}
	return tr
}

// CRC generates the trace of a nibble-at-a-time table-driven CRC over the
// given number of random input bytes. Items are the two 16-entry lookup
// tables (high and low nibble), 32 items total; each input byte reads one
// entry of each.
func CRC(nbytes int, seed int64) *trace.Trace {
	tr := trace.New(fmt.Sprintf("crc bytes=%d", nbytes), 32)
	rng := rand.New(rand.NewSource(seed))
	crc := uint32(0xFFFFFFFF)
	for i := 0; i < nbytes; i++ {
		b := uint32(rng.Intn(256))
		x := (crc ^ b) & 0xFF
		tr.Read(int(x >> 4))            // high-nibble table entry
		tr.Read(16 + int(x&0xF))        // low-nibble table entry
		crc = crc>>8 ^ (x * 2654435761) // stand-in table value mix
	}
	return tr
}

// Zigzag generates the trace of reading 8x8 coefficient blocks in JPEG
// zigzag order, once per block. Items are the 64 block positions in
// row-major order; the access order is the fixed zigzag walk, so the trace
// is a repeated fixed permutation of the items.
func Zigzag(blocks int) *trace.Trace {
	tr := trace.New(fmt.Sprintf("zigzag blocks=%d", blocks), 64)
	order := zigzagOrder(8)
	for b := 0; b < blocks; b++ {
		for _, it := range order {
			tr.Read(it)
		}
	}
	return tr
}

// zigzagOrder returns the zigzag scan order of an n x n block as row-major
// indices.
func zigzagOrder(n int) []int {
	out := make([]int, 0, n*n)
	for d := 0; d < 2*n-1; d++ {
		if d%2 == 0 { // walk up-right
			i := d
			if i > n-1 {
				i = n - 1
			}
			j := d - i
			for i >= 0 && j < n {
				out = append(out, i*n+j)
				i--
				j++
			}
		} else { // walk down-left
			j := d
			if j > n-1 {
				j = n - 1
			}
			i := d - j
			for j >= 0 && i < n {
				out = append(out, i*n+j)
				i++
				j--
			}
		}
	}
	return out
}

// Phased generates a workload whose hot set rotates: the trace runs for
// the given number of phases, each phase drawing Zipf(s)-distributed
// accesses over a different random rank-to-item assignment. Static
// placements tuned to one phase lose their advantage in the next, which
// is the scenario the adaptive (online) placement extension targets.
func Phased(n, length, phases int, s float64, seed int64) *trace.Trace {
	if phases < 1 {
		phases = 1
	}
	tr := trace.New(fmt.Sprintf("phased n=%d len=%d phases=%d s=%g", n, length, phases, s), n)
	rng := rand.New(rand.NewSource(seed))
	cum := zipfCumulative(n, s)
	for p := 0; p < phases; p++ {
		perm := rng.Perm(n)
		lo := p * length / phases
		hi := (p + 1) * length / phases
		for i := lo; i < hi; i++ {
			tr.Read(perm[sampleCumulative(cum, rng)])
		}
	}
	return tr
}

// Uniform generates length accesses uniformly at random over n items.
// This is the adversarial case for placement: no adjacency structure to
// exploit beyond frequency centering.
func Uniform(n, length int, seed int64) *trace.Trace {
	tr := trace.New(fmt.Sprintf("uniform n=%d len=%d", n, length), n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < length; i++ {
		tr.Read(rng.Intn(n))
	}
	return tr
}

// Zipf generates length accesses over n items with Zipf(s)-distributed
// popularity and a seeded random rank-to-item assignment.
func Zipf(n, length int, s float64, seed int64) *trace.Trace {
	tr := trace.New(fmt.Sprintf("zipf n=%d len=%d s=%g", n, length, s), n)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	cum := zipfCumulative(n, s)
	for i := 0; i < length; i++ {
		tr.Read(perm[sampleCumulative(cum, rng)])
	}
	return tr
}
