package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// Conv2D generates the trace of a 3x3 convolution over an out x out
// output tile: inputs are an (out+2) x (out+2) tile, followed by the 9
// kernel weights, followed by the out x out outputs. Per output pixel the
// kernel reads each input/weight pair and writes the result, giving the
// 2D-neighborhood access structure that distinguishes convolutions from
// 1D streams.
func Conv2D(out int) *trace.Trace {
	if out < 1 {
		panic(fmt.Sprintf("workload: Conv2D output size %d < 1", out))
	}
	in := out + 2
	inAt := func(i, j int) int { return i*in + j }
	wAt := func(k int) int { return in*in + k }
	outAt := func(i, j int) int { return in*in + 9 + i*out + j }
	tr := trace.New(fmt.Sprintf("conv2d out=%dx%d", out, out), in*in+9+out*out)
	for i := 0; i < out; i++ {
		for j := 0; j < out; j++ {
			for di := 0; di < 3; di++ {
				for dj := 0; dj < 3; dj++ {
					tr.Read(inAt(i+di, j+dj))
					tr.Read(wAt(di*3 + dj))
				}
			}
			tr.Write(outAt(i, j))
		}
	}
	return tr
}

// SpMV generates the trace of y = A*x for a sparse n x n matrix with
// nnzPerRow random nonzeros per row (seeded pattern, fixed across the
// given number of repetitions — the matrix structure is static, as in
// iterative solvers). The matrix values stream from main memory; only the
// x vector (items 0..n-1) and y vector (items n..2n-1) live on the
// scratchpad.
func SpMV(n, nnzPerRow, reps int, seed int64) *trace.Trace {
	if nnzPerRow > n {
		nnzPerRow = n
	}
	tr := trace.New(fmt.Sprintf("spmv n=%d nnz/row=%d reps=%d", n, nnzPerRow, reps), 2*n)
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int, n)
	for i := range cols {
		cols[i] = append(cols[i], rng.Perm(n)[:nnzPerRow]...)
	}
	for r := 0; r < reps; r++ {
		for i := 0; i < n; i++ {
			for _, k := range cols[i] {
				tr.Read(k) // x[k]
			}
			tr.Write(n + i) // y[i]
		}
	}
	return tr
}

// Markov generates a bounded 1D locality walk: the next item is the
// current one plus a small step (weighted toward short steps), reflected
// at the boundaries. The trace has strong but noisy spatial structure
// that a placement algorithm must *discover* — the item numbering is
// scrambled by a seeded permutation first, so program order sees no
// locality at all.
func Markov(n, length int, seed int64) *trace.Trace {
	tr := trace.New(fmt.Sprintf("markov n=%d len=%d", n, length), n)
	rng := rand.New(rand.NewSource(seed))
	relabel := rng.Perm(n) // hide the chain structure from first-touch order
	steps := []int{-3, -2, -1, 1, 2, 3}
	weights := []int{1, 3, 8, 8, 3, 1}
	totalW := 0
	for _, w := range weights {
		totalW += w
	}
	cur := n / 2
	for i := 0; i < length; i++ {
		tr.Read(relabel[cur])
		u := rng.Intn(totalW)
		step := 0
		for k, w := range weights {
			if u < w {
				step = steps[k]
				break
			}
			u -= w
		}
		cur += step
		if cur < 0 {
			cur = -cur
		}
		if cur >= n {
			cur = 2*(n-1) - cur
		}
	}
	return tr
}
