package graph

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Freeze instrumentation (see internal/obs): hits return the cached CSR,
// misses pay for a rebuild (first freeze or freeze after a mutation).
var (
	obsFreezeHits   = obs.GetCounter("graph.freeze.hits")
	obsFreezeMisses = obs.GetCounter("graph.freeze.misses")
)

// CSR is an immutable compressed-sparse-row snapshot of a Graph. The
// adjacency of vertex u occupies colIdx/weights[rowPtr[u]:rowPtr[u+1]],
// with neighbors in ascending ID order, so the optimizer hot loops
// (SwapDelta, barycenter averaging, affinity scans) iterate flat,
// cache-friendly slices instead of Go maps. Obtain one with
// Graph.Freeze; the zero value is unusable.
type CSR struct {
	n       int
	rowPtr  []int   //dwmlint:frozen Freeze ApplyDeltas
	colIdx  []int32 //dwmlint:frozen Freeze ApplyDeltas
	weights []int64 //dwmlint:frozen Freeze ApplyDeltas
	wdeg    []int64 //dwmlint:frozen Freeze ApplyDeltas
	totalW  int64

	edgesOnce sync.Once
	edges     []Edge // lazily built descending-weight edge list

	canonOnce sync.Once
	canon     *Canonical // lazily built canonical relabeling, see Canon
}

// maxCSRVertices bounds the vertex count a CSR can index with int32
// neighbor IDs.
const maxCSRVertices = 1 << 31

// Freeze returns the CSR view of the graph, building it on first use and
// caching it until the next mutation (AddWeight invalidates the cache).
// The returned CSR is immutable and safe for concurrent readers; freezing
// concurrently with mutation is not.
func (g *Graph) Freeze() *CSR {
	if c := g.frozen.Load(); c != nil {
		obsFreezeHits.Inc()
		return c
	}
	obsFreezeMisses.Inc()
	_, span := obs.StartSpan(context.Background(), "graph.freeze.build")
	c := buildCSR(g)
	span.SetAttr("n", c.n).SetAttr("edges", c.NumEdges())
	span.End()
	g.frozen.Store(c)
	return c
}

func buildCSR(g *Graph) *CSR {
	if g.n >= maxCSRVertices {
		panic(fmt.Sprintf("graph: %d vertices exceed the CSR limit %d", g.n, maxCSRVertices))
	}
	c := &CSR{
		n:      g.n,
		rowPtr: make([]int, g.n+1),
		wdeg:   make([]int64, g.n),
	}
	arcs := 0
	for u := 0; u < g.n; u++ {
		arcs += len(g.adj[u])
	}
	c.colIdx = make([]int32, 0, arcs)
	c.weights = make([]int64, 0, arcs)
	var row []int
	for u := 0; u < g.n; u++ {
		row = row[:0]
		for v := range g.adj[u] {
			row = append(row, v)
		}
		sort.Ints(row)
		var wd int64
		for _, v := range row {
			w := g.adj[u][v]
			c.colIdx = append(c.colIdx, int32(v))
			c.weights = append(c.weights, w)
			wd += w
		}
		c.wdeg[u] = wd
		c.rowPtr[u+1] = len(c.colIdx)
		c.totalW += wd
	}
	c.totalW /= 2 // every edge contributes to two rows
	return c
}

// N returns the number of vertices.
func (c *CSR) N() int { return c.n }

// NumEdges returns the number of distinct edges.
func (c *CSR) NumEdges() int { return len(c.colIdx) / 2 }

// TotalWeight returns the sum of all edge weights.
func (c *CSR) TotalWeight() int64 { return c.totalW }

func (c *CSR) checkVertex(u int) {
	if u < 0 || u >= c.n {
		panic(fmt.Sprintf("graph: vertex %d outside [0,%d)", u, c.n))
	}
}

// Row returns vertex u's neighbor IDs and the matching edge weights as
// shared read-only slices in ascending neighbor order. This is the
// allocation-free primitive the hot loops index directly.
func (c *CSR) Row(u int) ([]int32, []int64) {
	c.checkVertex(u)
	lo, hi := c.rowPtr[u], c.rowPtr[u+1]
	return c.colIdx[lo:hi], c.weights[lo:hi]
}

// Neighbors calls fn for every neighbor of u with the edge weight, in
// ascending neighbor order, mirroring Graph.Neighbors without the
// per-call sort and allocation.
func (c *CSR) Neighbors(u int, fn func(v int, w int64)) {
	cols, ws := c.Row(u)
	for i, v := range cols {
		fn(int(v), ws[i])
	}
}

// Degree returns the number of distinct neighbors of u.
func (c *CSR) Degree(u int) int {
	c.checkVertex(u)
	return c.rowPtr[u+1] - c.rowPtr[u]
}

// WeightedDegree returns the sum of edge weights incident to u.
func (c *CSR) WeightedDegree(u int) int64 {
	c.checkVertex(u)
	return c.wdeg[u]
}

// Weight returns the weight of edge {u,v}, zero if absent, by binary
// search over the sparser of the two rows.
func (c *CSR) Weight(u, v int) int64 {
	c.checkVertex(u)
	c.checkVertex(v)
	if c.Degree(v) < c.Degree(u) {
		u, v = v, u
	}
	cols, ws := c.Row(u)
	i := sort.Search(len(cols), func(i int) bool { return int(cols[i]) >= v })
	if i < len(cols) && int(cols[i]) == v {
		return ws[i]
	}
	return 0
}

// EachEdge calls fn for every distinct edge exactly once, in ascending
// (u, v) order.
func (c *CSR) EachEdge(fn func(u, v int, w int64)) {
	for u := 0; u < c.n; u++ {
		cols, ws := c.Row(u)
		for i, v := range cols {
			if int(v) > u {
				fn(u, int(v), ws[i])
			}
		}
	}
}

// Edges returns all edges sorted by descending weight, ties broken by
// (U,V) ascending — the same deterministic order as Graph.Edges. The
// slice is built once per CSR and shared between callers; treat it as
// read-only.
func (c *CSR) Edges() []Edge {
	c.edgesOnce.Do(func() {
		es := make([]Edge, 0, c.NumEdges())
		c.EachEdge(func(u, v int, w int64) {
			es = append(es, Edge{U: u, V: v, W: w})
		})
		sort.Slice(es, func(i, j int) bool {
			if es[i].W != es[j].W {
				return es[i].W > es[j].W
			}
			if es[i].U != es[j].U {
				return es[i].U < es[j].U
			}
			return es[i].V < es[j].V
		})
		c.edges = es
	})
	return c.edges
}
