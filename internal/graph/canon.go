package graph

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// Canonicalization instrumentation (see internal/obs): how many CSR
// views were canonicalized (cache misses on the per-CSR memo) and how
// many refinement rounds the last mile of each build needed.
var (
	obsCanonBuilds = obs.GetCounter("graph.canon.builds")
	obsCanonRounds = obs.GetCounter("graph.canon.rounds")
)

// Fingerprint is a 128-bit content address of a graph's structure,
// invariant under vertex renumbering: two graphs that differ only by a
// relabeling of their vertices hash to the same fingerprint, and graphs
// with different edge structure or weights hash to different ones
// (up to 128-bit hash collision). It is the cache key primitive of
// internal/placecache.
type Fingerprint [2]uint64

// String renders the fingerprint as 32 lowercase hex digits.
func (f Fingerprint) String() string {
	var b [32]byte
	hex := func(dst []byte, v uint64) {
		s := strconv.FormatUint(v, 16)
		pad := 16 - len(s)
		for i := 0; i < pad; i++ {
			dst[i] = '0'
		}
		copy(dst[pad:], s)
	}
	hex(b[:16], f[0])
	hex(b[16:], f[1])
	return string(b[:])
}

// Canonical is the canonical relabeling of a CSR view, produced by Canon.
type Canonical struct {
	// Labeling maps original vertex ID to its canonical index: vertex u
	// of the source graph is vertex Labeling[u] of the canonical form.
	// It is a permutation of [0, N).
	Labeling []int32
	// FP is the fingerprint of the canonically relabeled adjacency.
	// Equal fingerprints mean the two graphs' canonical forms are
	// byte-identical, so a placement computed on one maps onto the other
	// through the labelings with its cost preserved.
	FP Fingerprint
	// Profile is the weaker degree-profile signature: a hash of the
	// sorted (degree, weighted degree) multiset, the vertex count, and
	// the total weight. It is invariant under renumbering by
	// construction and groups "similar-shape" graphs for warm-start
	// lookups even when their exact adjacency differs.
	Profile uint64
}

// Canon returns the canonical relabeling of this CSR, building it on
// first use and memoizing it for the CSR's lifetime (the CSR is
// immutable, so the canonical form is too).
//
// The construction is Weisfeiler–Lehman style iterative refinement:
// vertices start colored by a hash of (degree, weighted degree), and
// each round recolors every vertex with a hash of its own color and the
// sorted multiset of (neighbor color, edge weight) hashes. When the
// partition stops refining before every vertex has a distinct color
// (symmetric graphs: rings, stars, mirrored paths), one vertex of the
// first ambiguous class — chosen by (class size, class color), which is
// renumbering-invariant — is individualized and refinement resumes, the
// standard individualization-refinement step. Vertices that remain tied
// after refinement are broken by original ID; for automorphic vertices
// (the common case for surviving ties) any tie-break yields the same
// canonical adjacency, so the fingerprint stays renumbering-invariant.
// WL-equivalent but non-automorphic ties — which require backtracking
// search to canonicalize exactly — can in principle produce different
// fingerprints for renumbered twins; that costs a cache miss, never a
// wrong hit, because hits compare full canonical adjacency hashes.
func (c *CSR) Canon() *Canonical {
	c.canonOnce.Do(func() {
		_, span := obs.StartSpan(context.Background(), "graph.canon.build")
		c.canon = canonicalize(c)
		obsCanonBuilds.Inc()
		span.SetAttr("n", c.n).SetAttr("fp", c.canon.FP.String())
		span.End()
	})
	return c.canon
}

// mix64 is the splitmix64 finalizer, the same mixer the seed-derivation
// helpers use: a cheap bijection on uint64 with full avalanche.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// h64 hashes one value, offset by the golden-ratio constant so zero
// inputs do not map to zero.
func h64(z uint64) uint64 { return mix64(z + 0x9E3779B97F4A7C15) }

// foldSeq absorbs v into an order-dependent running hash.
func foldSeq(h, v uint64) uint64 { return mix64(h*0x100000001B3 + v) }

// distinctColors counts the distinct values in colors using scratch
// (resized as needed) for the sort.
func distinctColors(colors []uint64, scratch []uint64) (int, []uint64) {
	scratch = append(scratch[:0], colors...)
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	n := 0
	for i, v := range scratch {
		if i == 0 || v != scratch[i-1] {
			n++
		}
	}
	return n, scratch
}

// canonicalize runs the refinement described on Canon.
func canonicalize(c *CSR) *Canonical {
	n := c.n
	colors := make([]uint64, n)
	for u := 0; u < n; u++ {
		deg := uint64(c.rowPtr[u+1] - c.rowPtr[u])
		colors[u] = mix64(h64(deg) ^ h64(uint64(c.wdeg[u])<<1|1))
	}
	next := make([]uint64, n)
	var scratch, sig []uint64
	classes, scratch := distinctColors(colors, scratch)
	rounds := 0

	refine := func() {
		// One WL round: recolor by own color + sorted neighbor signature.
		for {
			for u := 0; u < n; u++ {
				cols, ws := c.Row(u)
				sig = sig[:0]
				for i, v := range cols {
					sig = append(sig, mix64(colors[v]^h64(uint64(ws[i]))))
				}
				sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] })
				h := h64(colors[u])
				for _, s := range sig {
					h = foldSeq(h, s)
				}
				next[u] = h
			}
			colors, next = next, colors
			rounds++
			// Refinement only ever splits classes (own color feeds the
			// new color), so an unchanged count means a stable partition.
			nc, sc := distinctColors(colors, scratch)
			scratch = sc
			if nc == classes {
				return
			}
			classes = nc
		}
	}

	refine()
	for classes < n {
		// Stable but not discrete: individualize one vertex of the
		// target class — (smallest size, then smallest color value),
		// both renumbering-invariant — and refine again. Within the
		// class the member with the smallest original ID is picked;
		// see Canon for why that preserves invariance in practice.
		// scratch holds the sorted colors, so class sizes are run
		// lengths.
		var targetColor uint64
		targetSize := n + 1
		for i := 0; i < n; {
			j := i
			for j < n && scratch[j] == scratch[i] {
				j++
			}
			if size := j - i; size > 1 && (size < targetSize ||
				(size == targetSize && scratch[i] < targetColor)) {
				targetSize, targetColor = size, scratch[i]
			}
			i = j
		}
		pick := -1
		for u := 0; u < n; u++ {
			if colors[u] == targetColor {
				pick = u
				break
			}
		}
		colors[pick] = mix64(colors[pick] ^ 0xA5A5_5A5A_DEAD_BEEF)
		classes, scratch = distinctColors(colors, scratch)
		refine()
	}
	obsCanonRounds.Add(int64(rounds))

	// Canonical order: by (final color, original ID). With a discrete
	// partition the ID tie-break is inert; it only matters for the
	// residual-tie case documented on Canon.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if colors[order[a]] != colors[order[b]] {
			return colors[order[a]] < colors[order[b]]
		}
		return order[a] < order[b]
	})
	labeling := make([]int32, n)
	for ci, u := range order {
		labeling[u] = int32(ci)
	}

	return &Canonical{
		Labeling: labeling,
		FP:       fingerprintCanonical(c, order, labeling),
		Profile:  degreeProfile(c),
	}
}

// canonEdge is one adjacency entry in canonical vertex space.
type canonEdge struct {
	v int32
	w int64
}

// fingerprintCanonical hashes the canonically relabeled adjacency into
// two independent 64-bit lanes.
func fingerprintCanonical(c *CSR, order []int, labeling []int32) Fingerprint {
	h0 := h64(0x517C_C1B7_2722_0A95 ^ uint64(c.n))
	h1 := h64(0x2545_F491_4F6C_DD1D ^ uint64(c.n))
	var row []canonEdge
	for _, u := range order {
		cols, ws := c.Row(u)
		row = row[:0]
		for i, v := range cols {
			row = append(row, canonEdge{v: labeling[v], w: ws[i]})
		}
		sort.Slice(row, func(i, j int) bool { return row[i].v < row[j].v })
		h0 = foldSeq(h0, uint64(len(row)))
		h1 = foldSeq(h1, uint64(len(row))^0xFF)
		for _, e := range row {
			h0 = foldSeq(foldSeq(h0, uint64(e.v)), uint64(e.w))
			h1 = foldSeq(foldSeq(h1, uint64(e.w)), uint64(e.v))
		}
	}
	return Fingerprint{h0, h1}
}

// degreeProfile hashes the renumbering-invariant shape summary: the
// sorted multiset of per-vertex (degree, weighted degree) hashes plus
// the vertex count and total weight.
func degreeProfile(c *CSR) uint64 {
	hs := make([]uint64, c.n)
	for u := 0; u < c.n; u++ {
		deg := uint64(c.rowPtr[u+1] - c.rowPtr[u])
		hs[u] = mix64(h64(deg) ^ h64(uint64(c.wdeg[u])*3+1))
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	p := h64(uint64(c.n) ^ 0xABCD_EF01_2345_6789)
	for _, h := range hs {
		p = foldSeq(p, h)
	}
	return foldSeq(p, uint64(c.totalW))
}

// CheckLabeling validates that a labeling is a permutation of [0, n),
// the invariant decanonicalization relies on.
func CheckLabeling(labeling []int32, n int) error {
	if len(labeling) != n {
		return fmt.Errorf("graph: labeling covers %d vertices, want %d", len(labeling), n)
	}
	seen := make([]bool, n)
	for u, ci := range labeling {
		if ci < 0 || int(ci) >= n || seen[ci] {
			return fmt.Errorf("graph: labeling is not a permutation at vertex %d -> %d", u, ci)
		}
		seen[ci] = true
	}
	return nil
}
