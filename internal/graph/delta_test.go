package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// csrEqual compares two CSR views structurally, byte for byte across
// every array the hot paths read.
func csrEqual(t *testing.T, got, want *CSR) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n: got %d, want %d", got.n, want.n)
	}
	if got.totalW != want.totalW {
		t.Fatalf("totalW: got %d, want %d", got.totalW, want.totalW)
	}
	if len(got.colIdx) != len(want.colIdx) {
		t.Fatalf("arcs: got %d, want %d", len(got.colIdx), len(want.colIdx))
	}
	for u := 0; u <= got.n; u++ {
		if got.rowPtr[u] != want.rowPtr[u] {
			t.Fatalf("rowPtr[%d]: got %d, want %d", u, got.rowPtr[u], want.rowPtr[u])
		}
	}
	for i := range got.colIdx {
		if got.colIdx[i] != want.colIdx[i] || got.weights[i] != want.weights[i] {
			t.Fatalf("arc %d: got (%d,%d), want (%d,%d)",
				i, got.colIdx[i], got.weights[i], want.colIdx[i], want.weights[i])
		}
	}
	for u := 0; u < got.n; u++ {
		if got.wdeg[u] != want.wdeg[u] {
			t.Fatalf("wdeg[%d]: got %d, want %d", u, got.wdeg[u], want.wdeg[u])
		}
	}
}

// rebuildReference clones g's current adjacency into a fresh graph via
// AddWeight and freezes it cold — the from-scratch answer ApplyDeltas
// must agree with.
func rebuildReference(t *testing.T, g *Graph) *CSR {
	t.Helper()
	ref, err := New(g.N())
	if err != nil {
		t.Fatal(err)
	}
	g.EachEdge(func(u, v int, w int64) {
		ref.AddWeight(u, v, w)
	})
	return ref.Freeze()
}

// TestApplyDeltasMatchesRebuild is the structural property test:
// randomized delta sequences — increments, decrements, edge creation,
// and deletion via weights reaching zero — applied through the patch
// path must leave a CSR identical to a cold rebuild, round after round,
// including the canonical fingerprint memo of the patched view.
func TestApplyDeltasMatchesRebuild(t *testing.T) {
	for _, n := range []int{2, 8, 33, 120} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + n)))
			g, err := New(n)
			if err != nil {
				t.Fatal(err)
			}
			// Seed with a random starting graph so round 0 has edges to
			// delete, then freeze so the first batch patches a live CSR.
			for i := 0; i < 4*n; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					g.AddWeight(u, v, int64(rng.Intn(8)+1))
				}
			}
			g.Freeze()
			for round := 0; round < 25; round++ {
				batch := make([]Delta, 0, 8)
				// pend tracks the net in-batch weight per edge so a batch
				// never drives a weight negative (which ApplyDeltas rejects
				// by contract — covered separately in the validation test).
				pend := make(map[[2]int]int64)
				for len(batch) < 1+rng.Intn(8) {
					u, v := rng.Intn(n), rng.Intn(n)
					if u == v {
						continue
					}
					if u > v {
						u, v = v, u
					}
					key := [2]int{u, v}
					cur, seen := pend[key]
					if !seen {
						cur = g.Weight(u, v)
					}
					var w int64
					switch rng.Intn(4) {
					case 0: // exact deletion when the edge exists
						w = -cur
						if w == 0 {
							w = 1
						}
					case 1: // partial decrement, clamped non-negative
						if cur > 1 {
							w = -rng.Int63n(cur)
						} else {
							w = 1
						}
					default:
						w = int64(rng.Intn(5) + 1)
					}
					pend[key] = cur + w
					batch = append(batch, Delta{U: u, V: v, W: w})
				}
				if err := g.ApplyDeltas(batch); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				got := g.Freeze()
				want := rebuildReference(t, g)
				csrEqual(t, got, want)
				if got.Canon().FP != want.Canon().FP {
					t.Fatalf("round %d: patched fingerprint %s != rebuilt %s",
						round, got.Canon().FP, want.Canon().FP)
				}
			}
		})
	}
}

// TestApplyDeltasValidation pins the all-or-nothing contract: a batch
// with any invalid delta leaves both the graph and its frozen view
// untouched.
func TestApplyDeltasValidation(t *testing.T) {
	g, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	g.AddWeight(0, 1, 3)
	before := g.Freeze()
	cases := [][]Delta{
		{{U: 0, V: 0, W: 1}},                       // self loop
		{{U: -1, V: 2, W: 1}},                      // vertex out of range
		{{U: 0, V: 4, W: 1}},                       // vertex out of range
		{{U: 0, V: 1, W: -4}},                      // weight would go negative
		{{U: 0, V: 1, W: 2}, {U: 2, V: 2, W: 1}},   // valid then invalid
		{{U: 0, V: 1, W: -2}, {U: 0, V: 1, W: -2}}, // net negative across the batch
	}
	for i, ds := range cases {
		if err := g.ApplyDeltas(ds); err == nil {
			t.Fatalf("case %d: want error, got nil", i)
		}
		if g.Weight(0, 1) != 3 {
			t.Fatalf("case %d: failed batch mutated the graph", i)
		}
		if g.Freeze() != before {
			t.Fatalf("case %d: failed batch replaced the frozen view", i)
		}
	}
	// A batch that nets to zero is a no-op and must keep the same CSR
	// pointer (memos untouched).
	if err := g.ApplyDeltas([]Delta{{U: 0, V: 1, W: 2}, {U: 0, V: 1, W: -2}}); err != nil {
		t.Fatal(err)
	}
	if g.Freeze() != before {
		t.Fatal("net-zero batch replaced the frozen view")
	}
}

// TestApplyDeltasSnapshotImmutable pins that a reader holding the old
// CSR snapshot never observes a patch: both the weight-only and the
// structural path must leave the prior snapshot byte-identical.
func TestApplyDeltasSnapshotImmutable(t *testing.T) {
	g, err := New(6)
	if err != nil {
		t.Fatal(err)
	}
	g.AddWeight(0, 1, 2)
	g.AddWeight(1, 2, 5)
	old := g.Freeze()
	oldEdges := append([]Edge(nil), old.Edges()...)

	// Weight-only patch.
	if err := g.ApplyDeltas([]Delta{{U: 0, V: 1, W: 7}}); err != nil {
		t.Fatal(err)
	}
	// Structural patch (new edge + deletion).
	if err := g.ApplyDeltas([]Delta{{U: 3, V: 4, W: 1}, {U: 1, V: 2, W: -5}}); err != nil {
		t.Fatal(err)
	}
	if got := old.Weight(0, 1); got != 2 {
		t.Fatalf("old snapshot weight(0,1) = %d, want 2", got)
	}
	if got := old.Weight(1, 2); got != 5 {
		t.Fatalf("old snapshot weight(1,2) = %d, want 5", got)
	}
	for i, e := range old.Edges() {
		if e != oldEdges[i] {
			t.Fatalf("old snapshot edge list changed at %d: %+v != %+v", i, e, oldEdges[i])
		}
	}
	// And the live view reflects both patches.
	cur := g.Freeze()
	if got := cur.Weight(0, 1); got != 9 {
		t.Fatalf("patched weight(0,1) = %d, want 9", got)
	}
	if got := cur.Weight(1, 2); got != 0 {
		t.Fatalf("patched weight(1,2) = %d, want 0", got)
	}
	if got := cur.Weight(3, 4); got != 1 {
		t.Fatalf("patched weight(3,4) = %d, want 1", got)
	}
}

// TestFromTraceOversized pins the boundary bugfix: a trace whose item
// space reaches the CSR's int32 vertex limit must fail FromTrace with
// ErrTooManyVertices instead of building a graph whose Freeze panics.
func TestFromTraceOversized(t *testing.T) {
	tr := trace.New("huge", MaxVertices)
	tr.Read(0)
	tr.Read(1)
	if _, err := FromTrace(tr); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("FromTrace at the limit: err = %v, want ErrTooManyVertices", err)
	}
	tr.NumItems = MaxVertices + 1
	if _, err := FromTrace(tr); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("FromTrace above the limit: err = %v, want ErrTooManyVertices", err)
	}
	if _, err := New(MaxVertices); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("New at the limit: err = %v, want ErrTooManyVertices", err)
	}
	// Just below the limit is legal in principle; we cannot allocate a
	// 2^31-vertex graph in a unit test, so pin only that a small graph
	// still works and the limit itself is the documented constant.
	if MaxVertices != 1<<31 {
		t.Fatalf("MaxVertices = %d, want %d", MaxVertices, 1<<31)
	}
	small := trace.New("ok", 8)
	small.Read(0)
	small.Read(3)
	if _, err := FromTrace(small); err != nil {
		t.Fatalf("FromTrace on a small trace: %v", err)
	}
}

// deltaBenchGraph builds an E10-scale transition graph (a few thousand
// items, tens of thousands of edges) for the patch-vs-rebuild benchmark.
func deltaBenchGraph(b *testing.B, n, edges int) *Graph {
	b.Helper()
	g, err := New(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddWeight(u, v, int64(rng.Intn(16)+1))
		}
	}
	g.Freeze()
	return g
}

// benchDeltas yields a small batch touching existing edges (the
// streaming steady state: transitions between already-seen item pairs).
func benchDeltas(g *Graph, k int) []Delta {
	c := g.Freeze()
	ds := make([]Delta, 0, k)
	c.EachEdge(func(u, v int, w int64) {
		if len(ds) < k {
			ds = append(ds, Delta{U: u, V: v, W: 1})
		}
	})
	return ds
}

// BenchmarkApplyDeltas measures the incremental path: a 16-edge batch
// patched into a warm CSR.
func BenchmarkApplyDeltas(b *testing.B) {
	g := deltaBenchGraph(b, 4096, 1<<16)
	ds := benchDeltas(g, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.ApplyDeltas(ds); err != nil {
			b.Fatal(err)
		}
		if g.Freeze() == nil {
			b.Fatal("no CSR")
		}
	}
}

// BenchmarkApplyDeltasRebuild is the old path for the same update: the
// same 16 increments via AddWeight (which drops the cached CSR) followed
// by the full Freeze rebuild every streaming batch used to pay.
func BenchmarkApplyDeltasRebuild(b *testing.B) {
	g := deltaBenchGraph(b, 4096, 1<<16)
	ds := benchDeltas(g, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			g.AddWeight(d.U, d.V, d.W)
		}
		if g.Freeze() == nil {
			b.Fatal("no CSR")
		}
	}
}

// BenchmarkApplyDeltasStructural measures the splice path: each batch
// inserts a fresh edge (and removes it again next round), forcing the
// touched-row rebuild while everything else block-copies.
func BenchmarkApplyDeltasStructural(b *testing.B) {
	g := deltaBenchGraph(b, 4096, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	on := false
	for i := 0; i < b.N; i++ {
		w := int64(1)
		if on {
			w = -1
		}
		on = !on
		if err := g.ApplyDeltas([]Delta{{U: 0, V: 1, W: w}, {U: 2, V: 3, W: w}}); err != nil {
			b.Fatal(err)
		}
		if g.Freeze() == nil {
			b.Fatal("no CSR")
		}
	}
}
