package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format for transition graphs, so placement problems can be
// exchanged without their traces:
//
//	dwmgraph 1
//	vertices <N>
//	e <u> <v> <w>
//	...
//
// Blank lines and '#' comments are ignored. Edges are written sorted
// (descending weight, then by endpoints), which makes the encoding
// canonical: equal graphs encode to equal bytes.

const graphMagic = "dwmgraph"

// Encode writes the graph in the canonical text format.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s 1\n", graphMagic)
	fmt.Fprintf(bw, "vertices %d\n", g.N())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d %d\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}

// Decode parses a graph from the text format.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}
	hdr, ok := next()
	if !ok {
		return nil, fmt.Errorf("graph: empty input")
	}
	fields := strings.Fields(hdr)
	if len(fields) != 2 || fields[0] != graphMagic || fields[1] != "1" {
		return nil, fmt.Errorf("graph: line %d: bad header %q", line, hdr)
	}
	var g *Graph
	for {
		s, ok := next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(s, "vertices "):
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate vertices header", line)
			}
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(s, "vertices ")))
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex count: %v", line, err)
			}
			if g, err = New(n); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		case strings.HasPrefix(s, "e "):
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before vertices header", line)
			}
			f := strings.Fields(s)
			if len(f) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'e u v w', got %q", line, s)
			}
			u, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.Atoi(f[2])
			wgt, err3 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, s)
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() || u == v || wgt <= 0 {
				return nil, fmt.Errorf("graph: line %d: invalid edge %d-%d w=%d", line, u, v, wgt)
			}
			if g.Weight(u, v) != 0 {
				return nil, fmt.Errorf("graph: line %d: duplicate edge %d-%d", line, u, v)
			}
			g.AddWeight(u, v, wgt)
		default:
			return nil, fmt.Errorf("graph: line %d: unrecognized line %q", line, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing vertices header")
	}
	return g, nil
}
