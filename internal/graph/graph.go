// Package graph implements the weighted undirected access-transition
// graph that underlies the data-placement problem.
//
// For a trace a_1..a_T, the graph has one vertex per item and an edge
// {u,v} weighted by the number of times u and v appear consecutively in
// the trace. On a single-port tape whose head rests where the last access
// left it, the total shift count of a placement equals the graph cost
// Σ w(u,v)·|pos(u)-pos(v)| (plus the initial seek), which is the Minimum
// Linear Arrangement objective. The placement algorithms in internal/core
// operate on this graph.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/trace"
)

// MaxVertices is the largest vertex count a Graph can hold: the CSR view
// indexes neighbors with int32 IDs, so graphs must stay below 2^31
// vertices. New and FromTrace reject larger inputs with
// ErrTooManyVertices instead of building a graph whose Freeze would
// panic.
const MaxVertices = maxCSRVertices

// ErrTooManyVertices is returned (wrapped) by New and FromTrace when the
// requested vertex count reaches MaxVertices. Callers can errors.Is on
// it to map oversized inputs to a client error instead of a crash.
var ErrTooManyVertices = errors.New("graph: vertex count exceeds the CSR limit")

// Edge is an undirected weighted edge with U < V.
type Edge struct {
	U, V int
	W    int64
}

// Graph is a weighted undirected graph over vertices 0..N-1 with no self
// loops. The zero value is unusable; use New or FromTrace.
type Graph struct {
	n   int
	adj []map[int]int64 // adj[u][v] = w, mirrored

	// frozen caches the CSR view between mutations; AddWeight
	// invalidates it. See Freeze.
	frozen atomic.Pointer[CSR]
}

// New returns an empty graph on n vertices.
func New(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: need at least one vertex, got %d", n)
	}
	if n >= maxCSRVertices {
		return nil, fmt.Errorf("graph: %d vertices: %w (limit %d)", n, ErrTooManyVertices, maxCSRVertices)
	}
	g := &Graph{n: n, adj: make([]map[int]int64, n)}
	return g, nil
}

// FromTrace builds the access-transition graph of a trace: one vertex per
// item, edge weights counting consecutive accesses to distinct items.
//
// Transitions are pre-counted into a single packed-key map and the
// per-vertex adjacency maps are allocated at their exact final size, so
// large traces avoid the rehash-and-regrow churn of incremental
// AddWeight calls.
func FromTrace(t *trace.Trace) (*Graph, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Reject oversized item spaces before allocating anything: a graph
	// this wide could be assembled edge by edge, but its Freeze — which
	// every placement path relies on — would panic on the int32 neighbor
	// IDs of the CSR. Failing here turns a would-be panic deep in a
	// worker into an ordinary validation error at the boundary.
	if t.NumItems >= maxCSRVertices {
		return nil, fmt.Errorf("graph: trace %q declares %d items: %w (limit %d)",
			t.Name, t.NumItems, ErrTooManyVertices, maxCSRVertices)
	}
	g, err := New(t.NumItems)
	if err != nil {
		return nil, err
	}
	counts := make(map[uint64]int64, t.NumItems)
	for i := 1; i < t.Len(); i++ {
		u, v := t.Accesses[i-1].Item, t.Accesses[i].Item
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		counts[uint64(u)<<32|uint64(v)]++
	}
	deg := make([]int, t.NumItems)
	for k := range counts {
		deg[int(k>>32)]++
		deg[int(uint32(k))]++
	}
	for u, d := range deg {
		if d > 0 {
			g.adj[u] = make(map[int]int64, d)
		}
	}
	for k, w := range counts {
		u, v := int(k>>32), int(uint32(k))
		g.adj[u][v] = w
		g.adj[v][u] = w
	}
	return g, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// check panics on an invalid vertex pair; graph methods are hot paths in
// optimizers so they use panics for programmer errors rather than
// returning errors on every call.
func (g *Graph) check(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex pair (%d,%d) outside [0,%d)", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self loop on %d", u))
	}
}

// AddWeight adds w (which may be negative, as long as the resulting weight
// stays non-negative) to edge {u,v}, creating it if absent. A weight that
// reaches zero removes the edge.
func (g *Graph) AddWeight(u, v int, w int64) {
	g.check(u, v)
	g.frozen.Store(nil) // mutation invalidates the cached CSR view
	nw := g.Weight(u, v) + w
	if nw < 0 {
		panic(fmt.Sprintf("graph: edge {%d,%d} weight would go negative", u, v))
	}
	set := func(a, b int) {
		if nw == 0 {
			delete(g.adj[a], b)
			return
		}
		if g.adj[a] == nil {
			g.adj[a] = make(map[int]int64)
		}
		g.adj[a][b] = nw
	}
	set(u, v)
	set(v, u)
}

// Weight returns the weight of edge {u,v}, zero if absent.
func (g *Graph) Weight(u, v int) int64 {
	g.check(u, v)
	return g.adj[u][v]
}

// Neighbors calls fn for every neighbor of u with the edge weight, in
// ascending neighbor order (deterministic iteration matters for
// reproducible heuristics).
func (g *Graph) Neighbors(u int, fn func(v int, w int64)) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d outside [0,%d)", u, g.n))
	}
	vs := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs {
		fn(v, g.adj[u][v])
	}
}

// Degree returns the number of distinct neighbors of u.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d outside [0,%d)", u, g.n))
	}
	return len(g.adj[u])
}

// WeightedDegree returns the sum of edge weights incident to u.
func (g *Graph) WeightedDegree(u int) int64 {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d outside [0,%d)", u, g.n))
	}
	var s int64
	for _, w := range g.adj[u] {
		s += w
	}
	return s
}

// Edges returns all edges sorted by descending weight, breaking ties by
// (U,V) ascending for determinism.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v, W: w})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].W != es[j].W {
			return es[i].W > es[j].W
		}
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// EachEdge calls fn for every distinct edge in unspecified order. It is
// the allocation- and sort-free iteration used by hot evaluation paths;
// use Edges when deterministic ordering matters.
func (g *Graph) EachEdge(fn func(u, v int, w int64)) {
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			if u < v {
				fn(u, v, w)
			}
		}
	}
}

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.adj[u])
	}
	return total / 2
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 {
	var s int64
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			if u < v {
				s += w
			}
		}
	}
	return s
}

// Components returns the connected components as slices of vertex IDs,
// each sorted ascending, ordered by their smallest vertex. Isolated
// vertices form singleton components. The DFS visits neighbors in
// sorted order so the whole traversal — not just the returned slices —
// is independent of map layout.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	var nbrs []int // per-vertex scratch, reused across pops
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			nbrs = nbrs[:0]
			for v := range g.adj[u] {
				nbrs = append(nbrs, v)
			}
			sort.Ints(nbrs)
			for _, v := range nbrs {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// CutWeight returns the total weight of edges with exactly one endpoint in
// the given set (passed as a membership mask of length N).
func (g *Graph) CutWeight(inSet []bool) int64 {
	if len(inSet) != g.n {
		panic(fmt.Sprintf("graph: mask length %d != N %d", len(inSet), g.n))
	}
	var s int64
	for u := 0; u < g.n; u++ {
		if !inSet[u] {
			continue
		}
		for v, w := range g.adj[u] {
			if !inSet[v] {
				s += w
			}
		}
	}
	return s
}

// Subgraph returns the induced subgraph on the given vertices together
// with the mapping from new IDs (0..len(vs)-1) to original IDs. Vertices
// must be distinct and valid.
func (g *Graph) Subgraph(vs []int) (*Graph, []int, error) {
	if len(vs) == 0 {
		return nil, nil, fmt.Errorf("graph: empty subgraph")
	}
	newID := make(map[int]int, len(vs))
	for i, v := range vs {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph: subgraph vertex %d outside [0,%d)", v, g.n)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate subgraph vertex %d", v)
		}
		newID[v] = i
	}
	sub, err := New(len(vs))
	if err != nil {
		return nil, nil, err
	}
	for _, u := range vs {
		for v, w := range g.adj[u] {
			nu, nv := newID[u], 0
			var ok bool
			if nv, ok = newID[v]; !ok {
				continue
			}
			if nu < nv {
				sub.AddWeight(nu, nv, w)
			}
		}
	}
	return sub, append([]int(nil), vs...), nil
}

// MaxSpanningForest returns the edges of a maximum-weight spanning forest
// (Kruskal over descending weights). Heavy edges kept together guide the
// chain-growing heuristic.
func (g *Graph) MaxSpanningForest() []Edge {
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var forest []Edge
	for _, e := range g.Edges() {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			forest = append(forest, e)
		}
	}
	return forest
}
