package graph

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New(6)
	if err != nil {
		t.Fatal(err)
	}
	g.AddWeight(0, 1, 5)
	g.AddWeight(0, 2, 2)
	g.AddWeight(1, 2, 7)
	g.AddWeight(3, 4, 1)
	g.AddWeight(0, 4, 3)
	return g
}

func TestFreezeMatchesGraph(t *testing.T) {
	g := buildTestGraph(t)
	c := g.Freeze()
	if c.N() != g.N() {
		t.Fatalf("N: csr %d, graph %d", c.N(), g.N())
	}
	if c.NumEdges() != g.NumEdges() {
		t.Errorf("NumEdges: csr %d, graph %d", c.NumEdges(), g.NumEdges())
	}
	if c.TotalWeight() != g.TotalWeight() {
		t.Errorf("TotalWeight: csr %d, graph %d", c.TotalWeight(), g.TotalWeight())
	}
	for u := 0; u < g.N(); u++ {
		if c.Degree(u) != g.Degree(u) {
			t.Errorf("Degree(%d): csr %d, graph %d", u, c.Degree(u), g.Degree(u))
		}
		if c.WeightedDegree(u) != g.WeightedDegree(u) {
			t.Errorf("WeightedDegree(%d): csr %d, graph %d",
				u, c.WeightedDegree(u), g.WeightedDegree(u))
		}
		var fromG, fromC [][2]int64
		g.Neighbors(u, func(v int, w int64) { fromG = append(fromG, [2]int64{int64(v), w}) })
		c.Neighbors(u, func(v int, w int64) { fromC = append(fromC, [2]int64{int64(v), w}) })
		if !reflect.DeepEqual(fromG, fromC) {
			t.Errorf("Neighbors(%d): csr %v, graph %v", u, fromC, fromG)
		}
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			if cw, gw := c.Weight(u, v), g.Weight(u, v); cw != gw {
				t.Errorf("Weight(%d,%d): csr %d, graph %d", u, v, cw, gw)
			}
		}
	}
	if !reflect.DeepEqual(c.Edges(), g.Edges()) {
		t.Errorf("Edges: csr %v, graph %v", c.Edges(), g.Edges())
	}
}

func TestFreezeCachingAndInvalidation(t *testing.T) {
	g := buildTestGraph(t)
	c1 := g.Freeze()
	if c2 := g.Freeze(); c1 != c2 {
		t.Error("Freeze did not return the cached CSR")
	}
	g.AddWeight(2, 3, 9)
	c3 := g.Freeze()
	if c3 == c1 {
		t.Error("AddWeight did not invalidate the cached CSR")
	}
	if c3.Weight(2, 3) != 9 {
		t.Errorf("rebuilt CSR missing new edge: weight %d", c3.Weight(2, 3))
	}
	if c1.Weight(2, 3) != 0 {
		t.Error("old CSR snapshot mutated")
	}
}

func TestCSREachEdgeCoversAll(t *testing.T) {
	g := buildTestGraph(t)
	c := g.Freeze()
	got := map[[2]int]int64{}
	c.EachEdge(func(u, v int, w int64) {
		if u >= v {
			t.Errorf("EachEdge emitted unordered pair (%d,%d)", u, v)
		}
		got[[2]int{u, v}] = w
	})
	want := map[[2]int]int64{}
	g.EachEdge(func(u, v int, w int64) { want[[2]int{u, v}] = w })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("EachEdge: csr %v, graph %v", got, want)
	}
}

func TestCSRRowSlicesAligned(t *testing.T) {
	g := buildTestGraph(t)
	c := g.Freeze()
	cols, ws := c.Row(0)
	if len(cols) != len(ws) || len(cols) != c.Degree(0) {
		t.Fatalf("row 0: %d cols, %d weights, degree %d", len(cols), len(ws), c.Degree(0))
	}
	for i := 1; i < len(cols); i++ {
		if cols[i-1] >= cols[i] {
			t.Errorf("row 0 not ascending: %v", cols)
		}
	}
}

func TestCSRPanicsOnBadVertex(t *testing.T) {
	c := buildTestGraph(t).Freeze()
	for _, fn := range []func(){
		func() { c.Row(-1) },
		func() { c.Degree(6) },
		func() { c.WeightedDegree(99) },
		func() { c.Weight(0, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid vertex")
				}
			}()
			fn()
		}()
	}
}

func TestFromTraceMatchesIncrementalBuild(t *testing.T) {
	tr := trace.New("t", 5)
	for _, it := range []int{0, 1, 2, 1, 0, 0, 3, 4, 3, 1} {
		tr.Read(it)
	}
	got, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tr.Len(); i++ {
		u, v := tr.Accesses[i-1].Item, tr.Accesses[i].Item
		if u != v {
			want.AddWeight(u, v, 1)
		}
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Errorf("FromTrace edges %v, want %v", got.Edges(), want.Edges())
	}
}

func syntheticTrace(n, length int) *trace.Trace {
	tr := trace.New("bench", n)
	x := 1
	for i := 0; i < length; i++ {
		x = (x*1103515245 + 12345) & 0x7fffffff
		tr.Read(x % n)
	}
	return tr
}

func BenchmarkFromTrace(b *testing.B) {
	tr := syntheticTrace(2048, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFreeze(b *testing.B) {
	tr := syntheticTrace(2048, 1<<16)
	g, err := FromTrace(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.frozen.Store(nil) // force a rebuild each iteration
		if c := g.Freeze(); c.N() != g.N() {
			b.Fatal("bad freeze")
		}
	}
}
