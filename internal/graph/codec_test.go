package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestGraphCodecRoundTrip(t *testing.T) {
	g := mustNew(t, 5)
	g.AddWeight(0, 4, 7)
	g.AddWeight(1, 2, 3)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 5 || got.Weight(0, 4) != 7 || got.Weight(1, 2) != 3 || got.NumEdges() != 2 {
		t.Errorf("round trip wrong: %d vertices, %d edges", got.N(), got.NumEdges())
	}
}

func TestGraphCodecCanonical(t *testing.T) {
	// Same graph built in different insertion orders encodes identically.
	a := mustNew(t, 4)
	a.AddWeight(0, 1, 2)
	a.AddWeight(2, 3, 5)
	b := mustNew(t, 4)
	b.AddWeight(3, 2, 5)
	b.AddWeight(1, 0, 2)
	var ba, bb bytes.Buffer
	if err := Encode(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&bb, b); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Errorf("encodings differ:\n%s\nvs\n%s", ba.String(), bb.String())
	}
}

func TestGraphDecodeErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad magic", "nope 1\nvertices 2\n"},
		{"bad version", "dwmgraph 2\nvertices 2\n"},
		{"no vertices", "dwmgraph 1\ne 0 1 1\n"},
		{"dup vertices", "dwmgraph 1\nvertices 2\nvertices 2\n"},
		{"bad count", "dwmgraph 1\nvertices x\n"},
		{"zero count", "dwmgraph 1\nvertices 0\n"},
		{"short edge", "dwmgraph 1\nvertices 2\ne 0 1\n"},
		{"bad edge ints", "dwmgraph 1\nvertices 2\ne 0 x 1\n"},
		{"self loop", "dwmgraph 1\nvertices 2\ne 0 0 1\n"},
		{"range", "dwmgraph 1\nvertices 2\ne 0 2 1\n"},
		{"zero weight", "dwmgraph 1\nvertices 2\ne 0 1 0\n"},
		{"dup edge", "dwmgraph 1\nvertices 2\ne 0 1 1\ne 1 0 2\n"},
		{"junk", "dwmgraph 1\nvertices 2\nzzz\n"},
		{"only header", "dwmgraph 1\n"},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGraphDecodeComments(t *testing.T) {
	in := "# header comment\ndwmgraph 1\n\nvertices 3\n# edge\ne 0 2 4\n"
	g, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 2) != 4 {
		t.Errorf("weight = %d", g.Weight(0, 2))
	}
}

func TestGraphCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		g, err := New(n)
		if err != nil {
			return false
		}
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddWeight(u, v, int64(rng.Intn(50)+1))
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return got.N() == g.N() && reflect.DeepEqual(got.Edges(), g.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
