package graph

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// lcgTrace builds a fixed synthetic trace without any RNG dependency, so
// the only nondeterminism the test could observe is internal to graph.
func lcgTrace(items, accesses int) *trace.Trace {
	tr := trace.New("lcg", items)
	x := uint32(12345)
	for i := 0; i < accesses; i++ {
		x = x*1664525 + 1013904223
		item := int(x>>16) % items
		if x&1 == 0 {
			tr.Read(item)
		} else {
			tr.Write(item)
		}
	}
	return tr
}

// TestGraphViewsStableAcross100Rebuilds guards the determinism contract
// dwmlint's maporder rule enforces structurally: the adjacency storage
// is a map, whose iteration order Go re-randomizes per map instance, so
// every rebuild exercises a different physical order. The ordered views
// (Edges, Components, the frozen CSR) must come out identical every
// time — delete the sort in Edges or the sorted neighbor collection in
// Components and this fails with high probability.
func TestGraphViewsStableAcross100Rebuilds(t *testing.T) {
	tr := lcgTrace(96, 6000)
	build := func() *Graph {
		g, err := FromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	ref := build()
	refEdges := ref.Edges()
	refComps := ref.Components()
	refCSR := ref.Freeze()

	for i := 0; i < 100; i++ {
		g := build()
		if edges := g.Edges(); !reflect.DeepEqual(edges, refEdges) {
			t.Fatalf("rebuild %d: Edges() order differs from reference", i)
		}
		if comps := g.Components(); !reflect.DeepEqual(comps, refComps) {
			t.Fatalf("rebuild %d: Components() differs from reference", i)
		}
		c := g.Freeze()
		for u := 0; u < g.N(); u++ {
			cols, ws := c.Row(u)
			refCols, refWs := refCSR.Row(u)
			if !reflect.DeepEqual(cols, refCols) || !reflect.DeepEqual(ws, refWs) {
				t.Fatalf("rebuild %d: CSR row %d differs from reference", i, u)
			}
		}
	}
}
