package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func mustNew(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
}

func TestAddWeightSymmetric(t *testing.T) {
	g := mustNew(t, 4)
	g.AddWeight(1, 3, 5)
	if g.Weight(1, 3) != 5 || g.Weight(3, 1) != 5 {
		t.Errorf("weights: %d, %d", g.Weight(1, 3), g.Weight(3, 1))
	}
	g.AddWeight(3, 1, 2)
	if g.Weight(1, 3) != 7 {
		t.Errorf("accumulated weight = %d, want 7", g.Weight(1, 3))
	}
	g.AddWeight(1, 3, -7)
	if g.Weight(1, 3) != 0 || g.Degree(1) != 0 {
		t.Error("zeroed edge not removed")
	}
}

func TestPanics(t *testing.T) {
	g := mustNew(t, 3)
	cases := []func(){
		func() { g.AddWeight(0, 0, 1) },
		func() { g.AddWeight(-1, 1, 1) },
		func() { g.AddWeight(0, 3, 1) },
		func() { g.Weight(0, 0) },
		func() { g.Degree(5) },
		func() { g.WeightedDegree(-1) },
		func() { g.Neighbors(9, func(int, int64) {}) },
		func() { g.CutWeight([]bool{true}) },
		func() {
			g.AddWeight(0, 1, 1)
			g.AddWeight(0, 1, -2)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestFromTrace(t *testing.T) {
	tr := trace.New("t", 4)
	for _, it := range []int{0, 1, 0, 0, 2, 1} {
		tr.Read(it)
	}
	g, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Errorf("N = %d", g.N())
	}
	if g.Weight(0, 1) != 2 || g.Weight(0, 2) != 1 || g.Weight(1, 2) != 1 {
		t.Errorf("weights wrong: %d %d %d", g.Weight(0, 1), g.Weight(0, 2), g.Weight(1, 2))
	}
	// Self transition 0->0 ignored.
	if g.TotalWeight() != 4 {
		t.Errorf("TotalWeight = %d, want 4", g.TotalWeight())
	}
	bad := trace.New("bad", 1)
	bad.Read(3)
	if _, err := FromTrace(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestNeighborsDeterministicOrder(t *testing.T) {
	g := mustNew(t, 5)
	g.AddWeight(2, 4, 1)
	g.AddWeight(2, 0, 2)
	g.AddWeight(2, 3, 3)
	var got []int
	g.Neighbors(2, func(v int, w int64) { got = append(got, v) })
	if !reflect.DeepEqual(got, []int{0, 3, 4}) {
		t.Errorf("neighbor order = %v", got)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := mustNew(t, 5)
	g.AddWeight(0, 1, 3)
	g.AddWeight(2, 3, 7)
	g.AddWeight(1, 4, 3)
	es := g.Edges()
	want := []Edge{{2, 3, 7}, {0, 1, 3}, {1, 4, 3}}
	if !reflect.DeepEqual(es, want) {
		t.Errorf("Edges = %v, want %v", es, want)
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestEachEdgeMatchesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := mustNew(t, 12)
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(12), rng.Intn(12)
		if u != v {
			g.AddWeight(u, v, int64(rng.Intn(5)+1))
		}
	}
	got := map[[2]int]int64{}
	g.EachEdge(func(u, v int, w int64) {
		if u >= v {
			t.Fatalf("EachEdge emitted unordered pair (%d,%d)", u, v)
		}
		if _, dup := got[[2]int{u, v}]; dup {
			t.Fatalf("EachEdge emitted (%d,%d) twice", u, v)
		}
		got[[2]int{u, v}] = w
	})
	want := map[[2]int]int64{}
	for _, e := range g.Edges() {
		want[[2]int{e.U, e.V}] = e.W
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("EachEdge = %v, Edges = %v", got, want)
	}
}

func TestDegreeAndWeightedDegree(t *testing.T) {
	g := mustNew(t, 4)
	g.AddWeight(0, 1, 3)
	g.AddWeight(0, 2, 4)
	if g.Degree(0) != 2 || g.WeightedDegree(0) != 7 {
		t.Errorf("deg=%d wdeg=%d", g.Degree(0), g.WeightedDegree(0))
	}
	if g.Degree(3) != 0 || g.WeightedDegree(3) != 0 {
		t.Error("isolated vertex has nonzero degree")
	}
}

func TestComponents(t *testing.T) {
	g := mustNew(t, 6)
	g.AddWeight(0, 1, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(4, 5, 1)
	comps := g.Components()
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("Components = %v, want %v", comps, want)
	}
}

func TestCutWeight(t *testing.T) {
	g := mustNew(t, 4)
	g.AddWeight(0, 1, 3)
	g.AddWeight(1, 2, 5)
	g.AddWeight(2, 3, 7)
	mask := []bool{true, true, false, false}
	if got := g.CutWeight(mask); got != 5 {
		t.Errorf("CutWeight = %d, want 5", got)
	}
	all := []bool{true, true, true, true}
	if got := g.CutWeight(all); got != 0 {
		t.Errorf("CutWeight(all) = %d, want 0", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := mustNew(t, 5)
	g.AddWeight(0, 1, 1)
	g.AddWeight(1, 2, 2)
	g.AddWeight(2, 3, 3)
	sub, ids, err := g.Subgraph([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{1, 2, 4}) {
		t.Errorf("ids = %v", ids)
	}
	if sub.N() != 3 || sub.Weight(0, 1) != 2 || sub.NumEdges() != 1 {
		t.Errorf("subgraph wrong: N=%d w=%d edges=%d", sub.N(), sub.Weight(0, 1), sub.NumEdges())
	}
	if _, _, err := g.Subgraph(nil); err == nil {
		t.Error("empty subgraph accepted")
	}
	if _, _, err := g.Subgraph([]int{0, 0}); err == nil {
		t.Error("duplicate vertices accepted")
	}
	if _, _, err := g.Subgraph([]int{9}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestMaxSpanningForest(t *testing.T) {
	g := mustNew(t, 4)
	g.AddWeight(0, 1, 10)
	g.AddWeight(1, 2, 5)
	g.AddWeight(0, 2, 1) // cycle edge, lightest: excluded
	g.AddWeight(2, 3, 7)
	forest := g.MaxSpanningForest()
	if len(forest) != 3 {
		t.Fatalf("forest size = %d, want 3", len(forest))
	}
	var total int64
	for _, e := range forest {
		total += e.W
	}
	if total != 22 {
		t.Errorf("forest weight = %d, want 22", total)
	}
}

// Property: the forest of an n-vertex graph with c components has n-c
// edges, and total graph weight equals the sum over Edges().
func TestForestAndWeightInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		g, err := New(n)
		if err != nil {
			return false
		}
		var want int64
		for i := 0; i < rng.Intn(40); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := int64(rng.Intn(9) + 1)
			if g.Weight(u, v) == 0 {
				want += w
			} else {
				want += w
			}
			g.AddWeight(u, v, w)
		}
		if g.TotalWeight() != want {
			return false
		}
		forest := g.MaxSpanningForest()
		return len(forest) == n-len(g.Components())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
