package graph

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Delta instrumentation (see internal/obs): batches applied, distinct
// edges edited, and which CSR path each batch took — "patched" batches
// only changed weights of existing edges (arrays copied, rows untouched),
// "spliced" batches inserted or removed edges (touched rows rebuilt,
// untouched rows block-copied), and "cold" batches found no cached CSR to
// patch at all.
var (
	obsDeltaBatches = obs.GetCounter("graph.delta.batches")
	obsDeltaEdges   = obs.GetCounter("graph.delta.edges")
	obsDeltaPatched = obs.GetCounter("graph.delta.patched")
	obsDeltaSpliced = obs.GetCounter("graph.delta.spliced")
	obsDeltaCold    = obs.GetCounter("graph.delta.cold")
)

// Delta is one edge-weight increment: add W (which may be negative) to
// the weight of edge {U,V}. A weight that reaches zero removes the edge;
// an increment on an absent edge creates it. Deltas are the unit of
// streaming graph evolution — a live access stream turns into one Delta
// per observed transition, batched by the session layer.
type Delta struct {
	U, V int
	W    int64
}

// ApplyDeltas applies a batch of edge-weight increments in one step.
// Unlike a sequence of AddWeight calls — each of which discards the
// cached CSR view and forces the next Freeze to pay a full O(V+E)
// rebuild — ApplyDeltas patches the cached view forward: a batch that
// only changes weights of existing edges copies the weight/degree arrays
// and edits the touched entries in place, and a batch that inserts or
// removes edges rebuilds only the touched rows, block-copying the rest.
// Either way the previous CSR snapshot stays immutable and valid for
// readers that still hold it; the graph's cache simply advances to the
// patched successor, whose fingerprint/edges/canon memos are rebuilt
// lazily only if someone asks for them.
//
// The whole batch is validated before anything mutates: an out-of-range
// vertex, a self loop, or a net weight that would go negative fails the
// call with the graph unchanged. The final graph (and its CSR bytes) is
// a pure function of the net per-edge increments — the order of deltas
// within a batch, and the batching itself, never shows through.
func (g *Graph) ApplyDeltas(ds []Delta) error {
	if len(ds) == 0 {
		return nil
	}
	// Net the batch per edge and validate against the current weights.
	net := make(map[uint64]int64, len(ds))
	for i, d := range ds {
		u, v := d.U, d.V
		if u < 0 || u >= g.n || v < 0 || v >= g.n {
			return fmt.Errorf("graph: delta %d: vertex pair (%d,%d) outside [0,%d)", i, u, v, g.n)
		}
		if u == v {
			return fmt.Errorf("graph: delta %d: self loop on %d", i, u)
		}
		if u > v {
			u, v = v, u
		}
		k := uint64(u)<<32 | uint64(v)
		w, seen := net[k]
		if !seen {
			w = g.adj[u][v]
		}
		w += d.W
		if w < 0 {
			return fmt.Errorf("graph: delta %d: edge {%d,%d} weight would go negative", i, u, v)
		}
		net[k] = w
	}

	// Flatten to a sorted edit list (map order must not leak anywhere)
	// and drop no-ops so an inert batch leaves every memo untouched.
	type edit struct {
		u, v     int
		old, new int64
	}
	edits := make([]edit, 0, len(net))
	for k, w := range net {
		u, v := int(k>>32), int(uint32(k))
		if old := g.adj[u][v]; old != w {
			edits = append(edits, edit{u: u, v: v, old: old, new: w})
		}
	}
	if len(edits) == 0 {
		return nil
	}
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].u != edits[j].u {
			return edits[i].u < edits[j].u
		}
		return edits[i].v < edits[j].v
	})

	_, span := obs.StartSpan(context.Background(), "graph.delta.apply")
	defer span.End()
	obsDeltaBatches.Inc()
	obsDeltaEdges.Add(int64(len(edits)))

	// Apply to the adjacency maps.
	structural := false
	for _, e := range edits {
		if (e.old == 0) != (e.new == 0) {
			structural = true
		}
		set := func(a, b int) {
			if e.new == 0 {
				delete(g.adj[a], b)
				return
			}
			if g.adj[a] == nil {
				g.adj[a] = make(map[int]int64)
			}
			g.adj[a][b] = e.new
		}
		set(e.u, e.v)
		set(e.v, e.u)
	}

	old := g.frozen.Load()
	span.SetAttr("edges", len(edits)).SetAttr("structural", structural)
	if old == nil {
		// Nothing cached to patch: the next Freeze rebuilds from the maps.
		obsDeltaCold.Inc()
		span.SetAttr("path", "cold")
		return nil
	}

	var next *CSR
	if !structural {
		next = patchWeights(old, len(edits), func(i int) (int, int, int64) {
			return edits[i].u, edits[i].v, edits[i].new - edits[i].old
		})
		obsDeltaPatched.Inc()
		span.SetAttr("path", "patched")
	} else {
		touched := make([]bool, g.n)
		for _, e := range edits {
			touched[e.u] = true
			touched[e.v] = true
		}
		next = spliceRows(g, old, touched)
		obsDeltaSpliced.Inc()
		span.SetAttr("path", "spliced")
	}
	g.frozen.Store(next)
	return nil
}

// patchWeights derives a CSR from old where only edge weights changed:
// rowPtr and colIdx are structurally identical, so they are shared with
// the old snapshot, and only the weight/degree arrays are copied and
// edited. edit(i) yields the i-th changed edge and its weight increment.
func patchWeights(old *CSR, edits int, edit func(i int) (u, v int, dw int64)) *CSR {
	next := &CSR{
		n:       old.n,
		rowPtr:  old.rowPtr,
		colIdx:  old.colIdx,
		weights: append([]int64(nil), old.weights...),
		wdeg:    append([]int64(nil), old.wdeg...),
		totalW:  old.totalW,
	}
	for i := 0; i < edits; i++ {
		u, v, dw := edit(i)
		next.weights[next.arcIndex(u, v)] += dw
		next.weights[next.arcIndex(v, u)] += dw
		next.wdeg[u] += dw
		next.wdeg[v] += dw
		next.totalW += dw
	}
	return next
}

// arcIndex locates the weights/colIdx index of the directed arc u->v by
// binary search over u's row. The arc must exist.
func (c *CSR) arcIndex(u, v int) int {
	lo, hi := c.rowPtr[u], c.rowPtr[u+1]
	row := c.colIdx[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return int(row[i]) >= v })
	if i >= len(row) || int(row[i]) != v {
		panic(fmt.Sprintf("graph: arc %d->%d absent from CSR during patch", u, v))
	}
	return lo + i
}

// spliceRows derives a CSR from old where the marked rows changed
// structurally: touched rows are rebuilt from the (already updated)
// adjacency maps, untouched rows are block-copied from the old arrays.
// Compared to a full buildCSR this skips the per-row map iteration and
// sort for every untouched row, which is where the rebuild cost lives
// when the batch touches a handful of vertices in a large graph.
func spliceRows(g *Graph, old *CSR, touched []bool) *CSR {
	next := &CSR{
		n:      g.n,
		rowPtr: make([]int, g.n+1),
		wdeg:   make([]int64, g.n),
	}
	arcs := 0
	for u := 0; u < g.n; u++ {
		if touched[u] {
			arcs += len(g.adj[u])
		} else {
			arcs += old.rowPtr[u+1] - old.rowPtr[u]
		}
	}
	next.colIdx = make([]int32, arcs)
	next.weights = make([]int64, arcs)
	var row []int
	at := 0
	for u := 0; u < g.n; u++ {
		if !touched[u] {
			lo, hi := old.rowPtr[u], old.rowPtr[u+1]
			at += copy(next.colIdx[at:], old.colIdx[lo:hi])
			copy(next.weights[at-(hi-lo):], old.weights[lo:hi])
			next.wdeg[u] = old.wdeg[u]
		} else {
			row = row[:0]
			for v := range g.adj[u] {
				row = append(row, v)
			}
			sort.Ints(row)
			var wd int64
			for _, v := range row {
				w := g.adj[u][v]
				next.colIdx[at] = int32(v)
				next.weights[at] = w
				at++
				wd += w
			}
			next.wdeg[u] = wd
		}
		next.rowPtr[u+1] = at
		next.totalW += next.wdeg[u]
	}
	next.totalW /= 2
	return next
}
