package graph

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// permuteTrace relabels every item of t through perm (a permutation of
// [0, NumItems)), modeling the same workload submitted under a different
// item numbering.
func permuteTrace(t *trace.Trace, perm []int) *trace.Trace {
	out := trace.New(t.Name, t.NumItems)
	for _, a := range t.Accesses {
		if a.Write {
			out.Write(perm[a.Item])
		} else {
			out.Read(perm[a.Item])
		}
	}
	return out
}

func randPerm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// randomTrace generates a seeded access trace with locality structure
// (hot pairs plus uniform noise) so the transition graph is non-trivial.
func randomTrace(seed int64, items, length int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := trace.New("canon-rand", items)
	for i := 0; i < length; i++ {
		var it int
		if rng.Intn(4) == 0 {
			it = rng.Intn(items)
		} else {
			it = rng.Intn(items / 2) // hot half
		}
		if rng.Intn(3) == 0 {
			t.Write(it)
		} else {
			t.Read(it)
		}
	}
	return t
}

// ringGraph is a weight-w cycle over n vertices: vertex-transitive, the
// worst case for plain WL refinement (zero classes split), so it
// exercises the individualization loop.
func ringGraph(t *testing.T, n int, w int64) *Graph {
	t.Helper()
	g := mustNew(t, n)
	for i := 0; i < n; i++ {
		g.AddWeight(i, (i+1)%n, w)
	}
	return g
}

// permuteGraph rebuilds g with every vertex u renamed to perm[u].
func permuteGraph(t *testing.T, g *Graph, perm []int) *Graph {
	t.Helper()
	pg := mustNew(t, g.N())
	g.EachEdge(func(u, v int, w int64) {
		pg.AddWeight(perm[u], perm[v], w)
	})
	return pg
}

func TestFingerprintPermutationInvariance(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Graph
	}{
		{"random-trace", func(t *testing.T) *Graph {
			g, err := FromTrace(randomTrace(11, 48, 4000))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"ring-64", func(t *testing.T) *Graph { return ringGraph(t, 64, 3) }},
		{"star", func(t *testing.T) *Graph {
			g := mustNew(t, 17)
			for i := 1; i < 17; i++ {
				g.AddWeight(0, i, int64(1+i%3))
			}
			return g
		}},
		{"two-components", func(t *testing.T) *Graph {
			g := mustNew(t, 10)
			for i := 0; i < 4; i++ {
				g.AddWeight(i, (i+1)%5, 2)
			}
			g.AddWeight(5, 6, 7)
			g.AddWeight(6, 7, 7)
			g.AddWeight(8, 9, 1)
			return g
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			ref := g.Freeze().Canon()
			if err := CheckLabeling(ref.Labeling, g.N()); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 8; trial++ {
				perm := randPerm(rng, g.N())
				pg := permuteGraph(t, g, perm)
				got := pg.Freeze().Canon()
				if got.FP != ref.FP {
					t.Fatalf("trial %d: fingerprint changed under renumbering: %s vs %s",
						trial, got.FP, ref.FP)
				}
				if got.Profile != ref.Profile {
					t.Fatalf("trial %d: degree profile changed under renumbering", trial)
				}
				if err := CheckLabeling(got.Labeling, pg.N()); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestFingerprintPermutationInvarianceOnTraces(t *testing.T) {
	// The end-to-end property the serve cache depends on: renumbering the
	// items of a trace leaves the transition graph's fingerprint fixed.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		tr := randomTrace(int64(100+trial), 32, 2500)
		g, err := FromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		ref := g.Freeze().Canon()
		perm := randPerm(rng, tr.NumItems)
		pg, err := FromTrace(permuteTrace(tr, perm))
		if err != nil {
			t.Fatal(err)
		}
		if got := pg.Freeze().Canon(); got.FP != ref.FP {
			t.Fatalf("trial %d: trace renumbering changed fingerprint: %s vs %s",
				trial, got.FP, ref.FP)
		}
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	builds := map[string]func(t *testing.T) *Graph{
		"path-4": func(t *testing.T) *Graph {
			g := mustNew(t, 4)
			g.AddWeight(0, 1, 1)
			g.AddWeight(1, 2, 1)
			g.AddWeight(2, 3, 1)
			return g
		},
		"ring-4":       func(t *testing.T) *Graph { return ringGraph(t, 4, 1) },
		"ring-4-heavy": func(t *testing.T) *Graph { return ringGraph(t, 4, 2) },
		"ring-5":       func(t *testing.T) *Graph { return ringGraph(t, 5, 1) },
		"path-4-weighted": func(t *testing.T) *Graph {
			g := mustNew(t, 4)
			g.AddWeight(0, 1, 2)
			g.AddWeight(1, 2, 1)
			g.AddWeight(2, 3, 1)
			return g
		},
		"star-4": func(t *testing.T) *Graph {
			g := mustNew(t, 4)
			g.AddWeight(0, 1, 1)
			g.AddWeight(0, 2, 1)
			g.AddWeight(0, 3, 1)
			return g
		},
		"rand-a": func(t *testing.T) *Graph {
			g, err := FromTrace(randomTrace(1, 24, 1500))
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"rand-b": func(t *testing.T) *Graph {
			g, err := FromTrace(randomTrace(2, 24, 1500))
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
	}
	fps := make(map[Fingerprint]string)
	for name, build := range builds {
		fp := build(t).Freeze().Canon().FP
		if prev, dup := fps[fp]; dup {
			t.Errorf("graphs %q and %q share fingerprint %s", name, prev, fp)
		}
		fps[fp] = name
	}
}

func TestCanonDeterministicAcrossBuilds(t *testing.T) {
	// Two independently constructed copies of the same graph — including
	// a different edge insertion order — must agree on everything.
	mk := func(reverse bool) *Canonical {
		g := mustNew(t, 12)
		edges := [][3]int{{0, 1, 5}, {1, 2, 3}, {2, 3, 5}, {3, 4, 1}, {4, 5, 9},
			{0, 6, 2}, {6, 7, 2}, {8, 9, 4}, {10, 11, 4}, {9, 10, 1}}
		if reverse {
			for i := len(edges) - 1; i >= 0; i-- {
				e := edges[i]
				g.AddWeight(e[1], e[0], int64(e[2]))
			}
		} else {
			for _, e := range edges {
				g.AddWeight(e[0], e[1], int64(e[2]))
			}
		}
		return g.Freeze().Canon()
	}
	a, b := mk(false), mk(true)
	if a.FP != b.FP {
		t.Fatalf("insertion order changed fingerprint: %s vs %s", a.FP, b.FP)
	}
	if a.Profile != b.Profile {
		t.Fatal("insertion order changed profile")
	}
	for u, ci := range a.Labeling {
		if b.Labeling[u] != ci {
			t.Fatalf("insertion order changed labeling at vertex %d: %d vs %d", u, ci, b.Labeling[u])
		}
	}
}

// linearCost computes Σ w(u,v)·|p(u)−p(v)| directly; the graph package
// cannot import internal/cost (cost depends on graph).
func linearCost(g *Graph, p []int) int64 {
	var total int64
	g.EachEdge(func(u, v int, w int64) {
		d := int64(p[u] - p[v])
		if d < 0 {
			d = -d
		}
		total += w * d
	})
	return total
}

func TestCanonicalPlacementTransportPreservesCost(t *testing.T) {
	// The cache's replay path: a placement found for one numbering,
	// stored in canonical space, and mapped into a renumbered twin's
	// space must have the same linear cost there.
	g, err := FromTrace(randomTrace(99, 40, 3000))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	perm := randPerm(rng, g.N())
	pg := permuteGraph(t, g, perm)
	ca, cb := g.Freeze().Canon(), pg.Freeze().Canon()
	if ca.FP != cb.FP {
		t.Fatal("renumbered twin has a different fingerprint; transport undefined")
	}
	p := rng.Perm(g.N()) // arbitrary placement on the original numbering
	// Canonical space: pc[L1[u]] = p[u]; twin space: p2[v] = pc[L2[v]].
	pc := make([]int, g.N())
	for u, slot := range p {
		pc[ca.Labeling[u]] = slot
	}
	p2 := make([]int, pg.N())
	for v := range p2 {
		p2[v] = pc[cb.Labeling[v]]
	}
	if got, want := linearCost(pg, p2), linearCost(g, p); got != want {
		t.Fatalf("transported placement cost %d, want %d", got, want)
	}
}

func TestFingerprintString(t *testing.T) {
	s := Fingerprint{0x1, 0xAB}.String()
	if len(s) != 32 {
		t.Fatalf("String() length %d, want 32", len(s))
	}
	if s != "000000000000000100000000000000ab" {
		t.Fatalf("String() = %q", s)
	}
}

func TestCanonMemoized(t *testing.T) {
	c := ringGraph(t, 8, 1).Freeze()
	if a, b := c.Canon(), c.Canon(); a != b {
		t.Fatal("Canon() rebuilt instead of returning the memo")
	}
}
