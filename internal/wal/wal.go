// Package wal implements a checksummed, segment-based write-ahead
// journal. Records are opaque byte payloads framed as
//
//	[4-byte little-endian payload length][4-byte CRC-32C of payload][payload]
//
// and appended to numbered segment files (wal-00000001.seg, ...) that
// rotate at a size threshold. Opening a journal repairs it first: a
// torn tail — the partial record a crash mid-write leaves at the end of
// the last segment — is truncated away, and a corrupt record anywhere
// else (a bit flip, a torn non-final segment) is quarantined: the
// suspect bytes are copied to a .quarantine side file for forensics and
// the segment is truncated at the last valid record. Either way the log
// recovers to the longest valid prefix and keeps appending; it never
// refuses to open because of damage past that prefix.
//
// Durability is governed by a sync policy: SyncAlways (fsync after
// every append — the default, and the only policy under which an
// acknowledged append is guaranteed to survive a crash), SyncInterval
// (fsync every SyncEvery appends), or SyncNever (fsync only on rotation
// and close). Appends are atomic at the record level: a failed write is
// rolled back by truncating the segment to its pre-append size, so a
// record is either fully committed or entirely absent — the invariant
// the fault-injection property tests (see internal/faultfs) pin.
//
// All storage goes through the FS interface (fs.go) so tests can inject
// faults; obs counters and the fsync-latency histogram are registered
// under Options.MetricsPrefix ("wal" by default, "serve.wal" when
// embedded in the placement service).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append. An acknowledged append is
	// durable. This is the zero value.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery appends (and on
	// rotation and close). A crash can lose up to SyncEvery-1
	// acknowledged appends.
	SyncInterval
	// SyncNever fsyncs only on rotation and close.
	SyncNever
)

// MaxRecordBytes bounds a single record's payload. It matches the
// service's request-body cap; a length prefix beyond it is treated as
// corruption during repair.
const MaxRecordBytes = 64 << 20

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// DefaultSyncEvery is the SyncInterval cadence when Options.SyncEvery is
// zero.
const DefaultSyncEvery = 64

// Options configures a journal.
type Options struct {
	// Dir is the journal directory; it is created if missing.
	Dir string
	// SegmentBytes is the rotation threshold; 0 selects
	// DefaultSegmentBytes. A single record larger than the threshold
	// still fits: rotation happens between records, never inside one.
	SegmentBytes int64
	// Policy selects the fsync cadence; the zero value is SyncAlways.
	Policy SyncPolicy
	// SyncEvery is the SyncInterval cadence; 0 selects DefaultSyncEvery.
	SyncEvery int
	// FS is the storage layer; nil selects the real filesystem.
	FS FS
	// MetricsPrefix namespaces the journal's obs series; empty selects
	// "wal". The series are <prefix>.appends, <prefix>.syncs,
	// <prefix>.replayed_records, <prefix>.torn_truncations,
	// <prefix>.quarantines, <prefix>.rotations, <prefix>.append_errors,
	// and the <prefix>.fsync_ms latency histogram.
	MetricsPrefix string
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

func (o Options) syncEvery() int {
	if o.SyncEvery > 0 {
		return o.SyncEvery
	}
	return DefaultSyncEvery
}

// ErrBroken is wrapped by every operation on a log whose storage failed
// in a way that leaves the committed prefix unknowable (a failed append
// rollback, or an fsync error — after fsyncgate, a failed fsync means
// the kernel may have dropped dirty pages silently). The log refuses
// further appends; the next Open repairs to the longest valid prefix.
var ErrBroken = errors.New("wal: log is broken")

// Stats is a point-in-time summary of one log's activity.
type Stats struct {
	// Appends and Syncs count successful operations since Open.
	Appends int64
	Syncs   int64
	// Replayed counts records delivered by Replay.
	Replayed int64
	// TornTruncations counts torn tails truncated during repair;
	// Quarantines counts corrupt regions copied aside during repair.
	TornTruncations int64
	Quarantines     int64
	// Rotations counts segment rollovers since Open.
	Rotations int64
	// Segments is the current number of live segment files.
	Segments int
}

// segInfo describes one committed segment discovered during repair.
type segInfo struct {
	seq  int
	name string // full path
	size int64  // valid bytes (post-repair)
}

// Log is an append-only journal. All methods are safe for concurrent
// use; appends are serialized under one lock, so record order is total.
type Log struct {
	opts Options
	fsys FS

	mu        sync.Mutex
	segs      []segInfo //dwmlint:guard mu
	cur       File      //dwmlint:guard mu
	curSeq    int       //dwmlint:guard mu
	curSize   int64     //dwmlint:guard mu
	sinceSync int       //dwmlint:guard mu
	replaying bool      //dwmlint:guard mu
	broken    error     //dwmlint:guard mu
	stats     Stats     //dwmlint:guard mu

	mAppends    *obs.Counter
	mSyncs      *obs.Counter
	mReplayed   *obs.Counter
	mTorn       *obs.Counter
	mQuarantine *obs.Counter
	mRotations  *obs.Counter
	mAppendErrs *obs.Counter
	mFsyncMS    *obs.Histogram
}

// Open repairs and opens the journal in o.Dir. Damage is healed, never
// fatal: torn tails are truncated, corrupt regions quarantined, and the
// log comes back holding the longest valid record prefix. Call Replay
// to stream the committed records, then Append to extend the log.
func Open(o Options) (*Log, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	fsys := o.FS
	if fsys == nil {
		fsys = OS()
	}
	prefix := o.MetricsPrefix
	if prefix == "" {
		prefix = "wal"
	}
	l := &Log{
		opts:        o,
		fsys:        fsys,
		mAppends:    obs.GetCounter(prefix + ".appends"),
		mSyncs:      obs.GetCounter(prefix + ".syncs"),
		mReplayed:   obs.GetCounter(prefix + ".replayed_records"),
		mTorn:       obs.GetCounter(prefix + ".torn_truncations"),
		mQuarantine: obs.GetCounter(prefix + ".quarantines"),
		mRotations:  obs.GetCounter(prefix + ".rotations"),
		mAppendErrs: obs.GetCounter(prefix + ".append_errors"),
		mFsyncMS: obs.GetHistogram(prefix+".fsync_ms",
			[]float64{1, 5, 10, 50, 100, 500, 1000}),
	}
	if err := fsys.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := l.scanAndRepair(); err != nil {
		return nil, err
	}
	if err := l.openTail(); err != nil {
		return nil, err
	}
	return l, nil
}

// openTail opens the last segment for appending (creating segment 1 in
// a fresh directory) and positions the write offset at its repaired end.
// Runs only from Open, before the Log is published, so it holds mu by
// exclusivity.
//
//dwmlint:holds mu
func (l *Log) openTail() error {
	if len(l.segs) == 0 {
		l.segs = append(l.segs, segInfo{seq: 1, name: l.segPath(1)})
	}
	tail := &l.segs[len(l.segs)-1]
	f, err := l.fsys.OpenFile(tail.name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open tail: %w", err)
	}
	// Seek to the repaired end, not the physical end: repair may have
	// been unable to shrink the file (read-only quarantine failure), and
	// appending past garbage would hide it behind the valid prefix.
	if _, err := f.Seek(tail.size, 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: seek tail: %w", err)
	}
	l.cur = f
	l.curSeq = tail.seq
	l.curSize = tail.size
	l.stats.Segments = len(l.segs)
	return nil
}

// frame renders one record: length, CRC-32C, payload.
func frame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Append commits one record. On return with a nil error the record is
// framed, written, and — under SyncAlways — fsynced; a non-nil error
// means the record was rolled back and is absent from the log (or, if
// the rollback itself failed, the log is broken and says so on every
// subsequent call).
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("wal: empty record")
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds max %d", len(payload), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	buf := frame(payload)
	if l.curSize > 0 && l.curSize+int64(len(buf)) > l.opts.segmentBytes() {
		if err := l.rotate(); err != nil {
			l.mAppendErrs.Inc()
			return err
		}
	}
	n, err := l.cur.Write(buf)
	if err != nil || n != len(buf) {
		if err == nil {
			err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(buf))
		}
		l.mAppendErrs.Inc()
		// Roll the partial record back so the on-disk prefix stays valid.
		// If the rollback fails too, the committed prefix is unknowable
		// from here — brick the log rather than risk interleaving new
		// records with half-written garbage.
		if terr := l.cur.Truncate(l.curSize); terr != nil {
			l.broken = fmt.Errorf("append failed (%v) and rollback failed (%v)", err, terr)
			return fmt.Errorf("%w: %v", ErrBroken, l.broken)
		}
		if _, serr := l.cur.Seek(l.curSize, 0); serr != nil {
			l.broken = fmt.Errorf("append failed (%v) and re-seek failed (%v)", err, serr)
			return fmt.Errorf("%w: %v", ErrBroken, l.broken)
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.curSize += int64(n)
	l.segs[len(l.segs)-1].size = l.curSize
	l.stats.Appends++
	l.mAppends.Inc()
	switch l.opts.Policy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		l.sinceSync++
		if l.sinceSync >= l.opts.syncEvery() {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync forces an fsync of the current segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	return l.syncLocked()
}

// syncLocked fsyncs the current segment and times it. A failed fsync
// breaks the log: the kernel may have dropped the dirty pages, so the
// durable prefix is unknowable until the next Open re-reads the disk.
//
//dwmlint:holds mu
func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.cur.Sync()
	l.mFsyncMS.Observe(time.Since(start).Milliseconds())
	if err != nil {
		l.broken = fmt.Errorf("fsync: %v", err)
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	l.sinceSync = 0
	l.stats.Syncs++
	l.mSyncs.Inc()
	return nil
}

// rotate seals the current segment (fsync + close) and opens the next.
//
//dwmlint:holds mu
func (l *Log) rotate() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		l.broken = fmt.Errorf("close on rotate: %v", err)
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	seq := l.curSeq + 1
	f, err := l.fsys.OpenFile(l.segPath(seq), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		l.broken = fmt.Errorf("open segment %d: %v", seq, err)
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	l.cur = f
	l.curSeq = seq
	l.curSize = 0
	l.segs = append(l.segs, segInfo{seq: seq, name: l.segPath(seq)})
	l.stats.Rotations++
	l.stats.Segments = len(l.segs)
	l.mRotations.Inc()
	return nil
}

// Close fsyncs and closes the journal. A broken log closes without
// syncing (the sync already failed once; the file is closed so the
// process can exit cleanly).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	var err error
	if l.broken == nil {
		err = l.syncLocked()
	}
	if cerr := l.cur.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.cur = nil
	return err
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
