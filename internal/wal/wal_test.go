package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// collect replays a log into a slice of payload copies.
func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func mustOpen(t *testing.T, o Options) *Log {
	t.Helper()
	l, err := Open(o)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := [][]byte{[]byte("a"), []byte("bb"), bytes.Repeat([]byte("x"), 1000)}
	l := mustOpen(t, Options{Dir: dir})
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	if st := l2.Stats(); st.Replayed != int64(len(recs)) {
		t.Errorf("Stats.Replayed = %d, want %d", st.Replayed, len(recs))
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	const n = 40
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatalf("expected rotations with 64-byte segments, got 0")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	for i, p := range got {
		if want := fmt.Sprintf("record-%03d", i); string(p) != want {
			t.Fatalf("record %d = %q, want %q (order not preserved)", i, p, want)
		}
	}
}

// TestOversizedRecordSpansThreshold: a record larger than SegmentBytes
// still commits (rotation happens between records, never inside one).
func TestOversizedRecordSpansThreshold(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 32})
	big := bytes.Repeat([]byte("z"), 500)
	if err := l.Append([]byte("small")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(big); err != nil {
		t.Fatalf("append big: %v", err)
	}
	l.Close()
	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 32})
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 2 || !bytes.Equal(got[1], big) {
		t.Fatalf("oversized record lost: replayed %d records", len(got))
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range names {
		if _, ok := parseSegName(e.Name()); ok {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files found")
	}
	return last
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Crash artifact: half a record (a full header promising 100 bytes,
	// then only 10) at the end of the last segment.
	seg := lastSegment(t, dir)
	torn := frame(bytes.Repeat([]byte("t"), 100))[:18]
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn)
	f.Close()
	before, _ := os.Stat(seg)

	l2 := mustOpen(t, Options{Dir: dir})
	got := collect(t, l2)
	if len(got) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(got))
	}
	if st := l2.Stats(); st.TornTruncations != 1 {
		t.Errorf("TornTruncations = %d, want 1", st.TornTruncations)
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Errorf("segment not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The regression that motivates truncation: appending after recovery
	// must land on a clean record boundary.
	if err := l2.Append([]byte("post-crash")); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	l2.Close()
	l3 := mustOpen(t, Options{Dir: dir})
	defer l3.Close()
	got = collect(t, l3)
	if len(got) != 6 || string(got[5]) != "post-crash" {
		t.Fatalf("post-recovery append lost: got %d records", len(got))
	}
}

func TestBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-number-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip one payload byte in the middle of the file.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(data) / 2
	data[mid] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	got := collect(t, l2)
	if len(got) == 0 || len(got) >= 5 {
		t.Fatalf("replayed %d records after bit flip, want a proper non-empty prefix", len(got))
	}
	for i, p := range got {
		if want := fmt.Sprintf("record-number-%d", i); string(p) != want {
			t.Fatalf("surviving record %d = %q, want %q", i, p, want)
		}
	}
	if st := l2.Stats(); st.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want 1", st.Quarantines)
	}
	if _, err := os.Stat(seg + ".quarantine"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	// The log stays usable after quarantine.
	if err := l2.Append([]byte("alive")); err != nil {
		t.Fatalf("append after quarantine: %v", err)
	}
	l2.Close()
}

// TestCorruptMiddleSegmentKeepsLaterSegments: damage is contained to one
// segment; records in later segments still replay.
func TestCorruptMiddleSegmentKeepsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	const n = 30
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Corrupt the first segment entirely (flip a byte in its first
	// record's payload).
	first := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0xff
	os.WriteFile(first, data, 0o644)

	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	got := collect(t, l2)
	if len(got) == 0 {
		t.Fatal("no records survived a single-segment corruption")
	}
	// Every surviving record must be intact, and at least one must come
	// from a segment after the corrupt one.
	seen := map[string]bool{}
	for _, p := range got {
		seen[string(p)] = true
	}
	if !seen[fmt.Sprintf("record-%03d", n-1)] {
		t.Errorf("later segments lost: newest record missing from replay")
	}
}

func TestEmptyAndOversizedRecordsRejected(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
}

// TestRandomizedRoundTrip is the seeded property test: random record
// sizes and contents, random segment thresholds — replay must return
// exactly what was appended, in order, for every seed.
func TestRandomizedRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		segBytes := int64(64 + rng.Intn(4096))
		l := mustOpen(t, Options{Dir: dir, SegmentBytes: segBytes, Policy: SyncNever})
		n := 20 + rng.Intn(200)
		recs := make([][]byte, n)
		for i := range recs {
			recs[i] = make([]byte, 1+rng.Intn(700))
			rng.Read(recs[i])
			if err := l.Append(recs[i]); err != nil {
				t.Fatalf("seed %d: append %d: %v", seed, i, err)
			}
		}
		l.Close()
		l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: segBytes})
		got := collect(t, l2)
		l2.Close()
		if len(got) != n {
			t.Fatalf("seed %d: replayed %d, want %d", seed, len(got), n)
		}
		for i := range recs {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("seed %d: record %d mismatch", seed, i)
			}
		}
	}
}
