package wal

// The journal talks to storage through the FS interface so tests can
// substitute a fault-injecting layer (internal/faultfs) for the real
// filesystem. The interface is the minimal surface the log needs:
// open/append/read segment files, list a directory, truncate a repaired
// tail, and persist quarantined bytes.

import (
	"io"
	"io/fs"
	"os"
	"sort"
)

// File is the subset of *os.File the journal uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes. The write offset is managed
	// by the caller: the log only truncates during repair (before any
	// append) or to roll back a failed append, and re-seeks afterwards.
	Truncate(size int64) error
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem surface the journal runs on. Implementations
// must be safe for use from one goroutine at a time (the log serializes
// all calls under its own lock).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// WriteFile atomically-enough persists a standalone blob (used for
	// quarantined bytes; best effort, never on the append path).
	WriteFile(name string, data []byte, perm fs.FileMode) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real-filesystem implementation of FS.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
