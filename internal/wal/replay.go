package wal

// Repair and replay: the read half of the journal. This file is
// clock-free — all wall-clock reads stay in wal.go per the dwmlint
// walltime contract.
//
// Repair policy (run once, inside Open, before any append):
//
//   - A partial record at the very end of the LAST segment is a torn
//     tail — the expected artifact of a crash mid-append. It is
//     truncated away silently (counted, not preserved: the writer never
//     acknowledged it).
//   - Any other damage — a CRC mismatch (bit flip) anywhere, an absurd
//     length prefix, a partial record in a non-final segment — is
//     quarantined: the suspect bytes from the damage point to the end
//     of that segment are copied to <segment>.quarantine and the
//     segment is truncated at its last valid record. Later segments
//     are still replayed; their records were individually checksummed
//     and framed, so damage does not cascade across segment boundaries.
//
// Both paths converge on the same invariant: after Open, every byte in
// every segment below the recorded size is a valid, checksummed record.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// segPath renders the segment file path for a sequence number.
func (l *Log) segPath(seq int) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// parseSegName extracts the sequence number from a segment file name,
// or returns false for non-segment files (quarantine blobs, strays).
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"))
	if err != nil || seq < 1 {
		return 0, false
	}
	return seq, true
}

// scanAndRepair discovers the segment chain, validates every record,
// and heals damage (truncate torn tails, quarantine corruption) so the
// surviving bytes are exactly the longest valid prefix of each segment.
// Runs only from Open, before the Log is published to any other
// goroutine, so it holds mu by exclusivity rather than by locking.
//
//dwmlint:holds mu
func (l *Log) scanAndRepair() error {
	names, err := l.fsys.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: list %s: %w", l.opts.Dir, err)
	}
	for _, name := range names {
		seq, ok := parseSegName(name)
		if !ok {
			continue
		}
		l.segs = append(l.segs, segInfo{seq: seq, name: filepath.Join(l.opts.Dir, name)})
	}
	// ReadDir returns sorted names and the fixed-width numbering makes
	// lexicographic order numeric, but sort defensively anyway.
	for i := 1; i < len(l.segs); i++ {
		for j := i; j > 0 && l.segs[j-1].seq > l.segs[j].seq; j-- {
			l.segs[j-1], l.segs[j] = l.segs[j], l.segs[j-1]
		}
	}
	for i := range l.segs {
		last := i == len(l.segs)-1
		if err := l.repairSegment(&l.segs[i], last); err != nil {
			return err
		}
	}
	return nil
}

// repairSegment scans one segment, leaving seg.size at the end of its
// longest valid record prefix and healing anything beyond it. Called
// only from scanAndRepair, inside Open's pre-publication window.
//
//dwmlint:holds mu
func (l *Log) repairSegment(seg *segInfo, last bool) error {
	f, err := l.fsys.OpenFile(seg.name, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", seg.name, err)
	}
	valid, damage, err := scanRecords(f, nil)
	f.Close()
	if err != nil {
		return fmt.Errorf("wal: scan %s: %w", seg.name, err)
	}
	seg.size = valid
	if damage == damageNone {
		return nil
	}
	if damage == damageTorn && last {
		// Torn tail on the last segment: the ordinary crash artifact.
		l.stats.TornTruncations++
		l.mTorn.Inc()
		return l.truncateSegment(seg.name, valid)
	}
	// Corruption (or a torn non-final segment, which only an external
	// actor can produce): preserve the suspect bytes, then cut.
	l.quarantine(seg.name, valid)
	l.stats.Quarantines++
	l.mQuarantine.Inc()
	return l.truncateSegment(seg.name, valid)
}

// damage classifies what a segment scan found past the valid prefix.
type damage int

const (
	damageNone damage = iota
	// damageTorn is an incomplete record at EOF: a partial header, or a
	// payload shorter than its length prefix.
	damageTorn
	// damageCorrupt is a structurally complete but invalid record: CRC
	// mismatch, zero or oversized length prefix.
	damageCorrupt
)

// scanRecords reads framed records from r until EOF or damage,
// returning the byte length of the valid prefix and the damage class.
// When deliver is non-nil it receives each valid payload (the replay
// path); repair passes nil and only measures.
func scanRecords(r io.Reader, deliver func([]byte) error) (valid int64, d damage, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var off int64
	hdr := make([]byte, 8)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return off, damageNone, nil
			}
			if err == io.ErrUnexpectedEOF {
				return off, damageTorn, nil
			}
			return off, damageNone, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > MaxRecordBytes {
			return off, damageCorrupt, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, damageTorn, nil
			}
			return off, damageNone, err
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return off, damageCorrupt, nil
		}
		if deliver != nil {
			if err := deliver(payload); err != nil {
				return off, damageNone, err
			}
		}
		off += 8 + int64(n)
	}
}

// quarantine copies seg's bytes from offset from to the end into a
// .quarantine side file. Best effort: quarantine exists for forensics,
// and failing to preserve garbage must not block recovery.
func (l *Log) quarantine(name string, from int64) {
	f, err := l.fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return
	}
	defer f.Close()
	if _, err := f.Seek(from, 0); err != nil {
		return
	}
	blob, err := io.ReadAll(io.LimitReader(f, MaxRecordBytes))
	if err != nil || len(blob) == 0 {
		return
	}
	_ = l.fsys.WriteFile(name+".quarantine", blob, 0o644)
}

// truncateSegment cuts a segment to size bytes.
func (l *Log) truncateSegment(name string, size int64) error {
	f, err := l.fsys.OpenFile(name, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: repair %s: %w", name, err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", name, err)
	}
	return nil
}

// Replay streams every committed record to fn, oldest first — the
// prefix repaired by Open plus any records appended since. The natural
// calling sequence is Open → Replay → Append. A non-nil error from fn
// aborts the replay and is returned.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	l.mu.Unlock()
	for _, seg := range segs {
		if seg.size == 0 {
			continue
		}
		f, err := l.fsys.OpenFile(seg.name, os.O_RDONLY, 0)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", seg.name, err)
		}
		delivered := int64(0)
		_, _, err = scanRecords(io.LimitReader(f, seg.size), func(p []byte) error {
			delivered++
			l.mReplayed.Inc()
			return fn(p)
		})
		f.Close()
		if err != nil {
			return err
		}
		l.mu.Lock()
		l.stats.Replayed += delivered
		l.mu.Unlock()
	}
	return nil
}
