package obs

// Span tracing: a zero-dependency tracer that records named, timed spans
// into a fixed-capacity ring buffer. Tracing is disabled by default —
// StartSpan returns a nil *Span whose methods are no-ops, so the cost of
// an instrumented call site in the disabled state is one atomic pointer
// load. Enabled, a span costs one allocation at start and one ring push
// under a short mutex at end; nothing a span does can influence program
// results (no RNG, no control flow, clock reads stay inside this
// package), which is the "inert tracing" contract DESIGN.md §11 states
// and the determinism smoke test enforces end to end.
//
// Completed spans drain as SpanRecords, exportable as JSONL (one record
// per line) or as Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span as it sits in the ring buffer.
type SpanRecord struct {
	// ID identifies the span within the process. IDs are assigned from
	// one atomic counter at StartSpan, so they double as a start
	// sequence: sorting by ID recovers start order exactly, regardless
	// of end (= ring insertion) order.
	ID uint64 `json:"id"`
	// Parent is the ID of the enclosing span in this process, 0 for
	// roots.
	Parent uint64 `json:"parent,omitempty"`
	// Trace is the 32-hex-digit cross-process trace ID the span belongs
	// to (empty when the span's context carried no TraceContext); Remote
	// is the caller's span ID from the propagated traceparent, stamped
	// only on spans with no in-process parent, so a server-side root
	// nests under the client span that caused it.
	Trace  string `json:"trace,omitempty"`
	Remote string `json:"remote,omitempty"`
	Name   string `json:"name"`
	// StartNS is the span's wall-clock start in Unix nanoseconds; DurNS
	// its duration.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Attrs are the key/value attributes attached with SetAttr, in
	// attachment order.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr is one span attribute. Values should be strings, bools, or
// numeric types so the JSON exports stay flat.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// Tracer owns the span ring buffer. Use EnableTracing / DisableTracing
// to install one process-wide; spans from all instrumented layers land
// in the same ring.
type Tracer struct {
	nextID atomic.Uint64

	mu      sync.Mutex
	buf     []SpanRecord //dwmlint:guard mu
	next    int          //dwmlint:guard mu
	full    bool         //dwmlint:guard mu
	dropped int64        //dwmlint:guard mu
}

// NewTracer returns a tracer with a ring of the given capacity
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]SpanRecord, 0, capacity)}
}

// push appends a completed span, overwriting the oldest record when the
// ring is full.
func (t *Tracer) push(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, rec)
		return
	}
	t.buf[t.next] = rec
	t.next = (t.next + 1) % len(t.buf)
	t.full = true
	t.dropped++
}

// Drain returns the buffered spans oldest-first and clears the ring.
// The second result is how many spans were overwritten (ring overflow)
// since the previous drain.
func (t *Tracer) Drain() ([]SpanRecord, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	dropped := t.dropped
	t.buf = t.buf[:0]
	t.next = 0
	t.full = false
	t.dropped = 0
	return out, dropped
}

// tracer is the process-wide tracer; nil means tracing is disabled.
var tracer atomic.Pointer[Tracer]

// EnableTracing installs a process-wide tracer with a ring of the given
// capacity, replacing (and discarding) any previous one.
func EnableTracing(capacity int) {
	tracer.Store(NewTracer(capacity))
}

// DisableTracing removes the process-wide tracer; buffered spans are
// discarded and subsequent StartSpan calls become no-ops.
func DisableTracing() {
	tracer.Store(nil)
}

// TracingEnabled reports whether a process-wide tracer is installed.
func TracingEnabled() bool { return tracer.Load() != nil }

// DrainSpans drains the process-wide ring; it returns nil, 0 when
// tracing is disabled.
func DrainSpans() ([]SpanRecord, int64) {
	t := tracer.Load()
	if t == nil {
		return nil, 0
	}
	return t.Drain()
}

// Span is one in-flight operation. A nil *Span (tracing disabled) is
// valid: every method is a no-op, so call sites never branch on the
// tracing state themselves.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	parent uint64
	trace  string
	remote uint64 // remote parent span ID, roots of a propagated trace only
	start  time.Time
	attrs  []Attr
	ended  atomic.Bool
}

// spanCtxKey carries the current span ID through a context for
// parent/child linking.
type spanCtxKey struct{}

// StartSpan begins a span. When tracing is disabled it returns the
// context unchanged and a nil span; when enabled, the returned context
// carries the new span's ID so descendant StartSpan calls nest under
// it. If the context carries a TraceContext (see ContextWithTrace), the
// span records its trace ID — and, for the first span of the trace in
// this process, the propagated remote parent — and the returned context
// advances the TraceContext's SpanID to this span, so an outbound call
// made under it names the nearest enclosing span as its parent. The
// span must be finished with End (typically deferred).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := tracer.Load()
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if p, ok := ctx.Value(spanCtxKey{}).(uint64); ok {
		parent = p
	}
	s := &Span{
		t:      t,
		name:   name,
		id:     t.nextID.Add(1),
		parent: parent,
		start:  time.Now(),
	}
	if tc, ok := TraceFromContext(ctx); ok {
		s.trace = tc.TraceID
		if parent == 0 {
			s.remote = tc.SpanID
		}
		ctx = ContextWithTrace(ctx, TraceContext{TraceID: tc.TraceID, SpanID: s.id})
	}
	return context.WithValue(ctx, spanCtxKey{}, s.id), s
}

// SetAttr attaches a key/value attribute and returns the span for
// chaining. Attributes set after End are dropped. A span is owned by
// the goroutine that started it; SetAttr is not safe for concurrent
// use on one span.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil || s.ended.Load() {
		return s
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// End completes the span and pushes it into the ring. Multiple End
// calls record only the first.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Trace:   s.trace,
		Name:    s.name,
		StartNS: s.start.UnixNano(),
		DurNS:   time.Since(s.start).Nanoseconds(),
		Attrs:   s.attrs,
	}
	if s.remote != 0 {
		rec.Remote = fmt.Sprintf("%016x", s.remote)
	}
	s.t.push(rec)
}

// TraceContext returns the span's cross-process identity — its trace ID
// with the span itself as parent — for injection into an outbound call.
// ok is false for a nil span or a span outside any trace.
func (s *Span) TraceContext() (TraceContext, bool) {
	if s == nil || s.trace == "" {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: s.trace, SpanID: s.id}, true
}

// SortSpans orders spans by (trace ID, start sequence): spans of the
// same trace group together in start order (span IDs are assigned at
// StartSpan from one counter), with untraced spans — empty trace ID —
// first. This is the stable order GET /debug/events returns regardless
// of how the overwrite-oldest ring wrapped.
func SortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Trace != spans[j].Trace {
			return spans[i].Trace < spans[j].Trace
		}
		return spans[i].ID < spans[j].ID
	})
}

// WriteSpansJSONL writes one JSON object per span per line, the
// format of `dwmbench -trace out.jsonl`.
func WriteSpansJSONL(w io.Writer, spans []SpanRecord) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one Chrome trace_event complete ("ph":"X") event.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceEventFile is the trace_event JSON object format.
type traceEventFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents renders the spans in the Chrome trace_event format
// (JSON object form), loadable in Perfetto and chrome://tracing. Spans
// are grouped onto tracks (tid) by their root ancestor within the
// batch, so each top-level operation renders as its own nested flame.
func WriteTraceEvents(w io.Writer, spans []SpanRecord) error {
	// Resolve each span's root ancestor. Parents normally End after
	// their children and therefore sit later in the drained ring, so
	// the parent map covers the whole batch before roots are chased.
	parent := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	rootOf := func(id uint64) uint64 {
		for {
			p, ok := parent[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
	}
	// Assign track IDs densely in batch (drain) order — deterministic
	// given the same span batch.
	tid := make(map[uint64]int, len(spans))
	nextTID := 1
	events := make([]traceEvent, 0, len(spans))
	for _, s := range spans {
		root := rootOf(s.ID)
		id, ok := tid[root]
		if !ok {
			id = nextTID
			nextTID++
			tid[root] = id
		}
		ev := traceEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  1,
			TID:  id,
		}
		if len(s.Attrs) > 0 {
			// encoding/json sorts map keys, so args render
			// deterministically regardless of attachment order.
			ev.Args = make(map[string]any, len(s.Attrs)+1)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
			ev.Args["span_id"] = s.ID
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceEventFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateTraceEvents checks that a byte payload parses as the Chrome
// trace_event object format with well-formed complete events — the
// schema gate the obs-smoke CI target runs against dwmbench -trace
// output.
func ValidateTraceEvents(data []byte) error {
	var f struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace_event: not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("trace_event: missing traceEvents array")
	}
	for i, ev := range f.TraceEvents {
		switch {
		case ev.Name == nil || *ev.Name == "":
			return fmt.Errorf("trace_event: event %d has no name", i)
		case ev.Ph == nil || *ev.Ph == "":
			return fmt.Errorf("trace_event: event %d has no phase", i)
		case *ev.Ph == "X" && (ev.TS == nil || ev.Dur == nil):
			return fmt.Errorf("trace_event: complete event %d (%s) lacks ts/dur", i, *ev.Name)
		case ev.PID == nil || ev.TID == nil:
			return fmt.Errorf("trace_event: event %d (%s) lacks pid/tid", i, *ev.Name)
		case *ev.Dur < 0:
			return fmt.Errorf("trace_event: event %d (%s) has negative duration", i, *ev.Name)
		}
	}
	return nil
}
