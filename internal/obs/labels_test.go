package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("serve.tenant.requests", []string{"tenant", "outcome"})
	v.With("alpha", "accepted").Add(3)
	v.With("beta", "rejected").Inc()
	v.With("alpha", "accepted").Inc() // same child

	s := r.Snapshot().LabeledCounters["serve.tenant.requests"]
	if len(s.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(s.Series))
	}
	// Snapshot is sorted by label values: alpha before beta.
	if s.Series[0].Values[0] != "alpha" || s.Series[0].Value != 4 {
		t.Fatalf("series[0] = %+v", s.Series[0])
	}
	if s.Series[1].Values[0] != "beta" || s.Series[1].Value != 1 {
		t.Fatalf("series[1] = %+v", s.Series[1])
	}
	if got := len(s.Keys); got != 2 || s.Keys[0] != "tenant" {
		t.Fatalf("keys = %v", s.Keys)
	}
}

func TestCounterVecArityPanics(t *testing.T) {
	v := newCounterVec("v", []string{"a", "b"}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestVecInvalidKeysPanic(t *testing.T) {
	for _, keys := range [][]string{
		{},
		{"bad-dash"},
		{"__reserved"},
		{"dup", "dup"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("keys %v did not panic", keys)
				}
			}()
			newCounterVec("v", keys, 0)
		}()
	}
}

// TestCounterVecOverflow pins the cardinality contract: past the cap,
// every unseen combination collapses into the single _other child, so a
// hostile label source cannot grow the series set without bound — but
// the totals stay honest.
func TestCounterVecOverflow(t *testing.T) {
	v := newCounterVec("v", []string{"tenant"}, 2)
	v.With("a").Inc()
	v.With("b").Inc()
	v.With("c").Add(5) // over cap: lands in _other
	v.With("d").Add(2) // same overflow child
	if v.With("c") != v.With("d") {
		t.Fatal("overflow combinations did not share one child")
	}
	// Known combinations keep resolving to their own child past the cap.
	v.With("a").Inc()

	s := v.snapshot()
	if len(s.Series) != 3 {
		t.Fatalf("got %d series, want 3 (a, b, _other)", len(s.Series))
	}
	byTenant := map[string]int64{}
	for _, ls := range s.Series {
		byTenant[ls.Values[0]] = ls.Value
	}
	if byTenant["a"] != 2 || byTenant["b"] != 1 || byTenant[OverflowLabel] != 7 {
		t.Fatalf("series totals = %v", byTenant)
	}
}

func TestHistogramVecOverflow(t *testing.T) {
	v := newHistogramVec("v", []string{"tenant"}, []float64{10, 100}, 1)
	v.With("a").Observe(5)
	v.With("b").Observe(50) // over cap
	v.With("c").Observe(50)
	s := v.snapshot()
	if len(s.Series) != 2 {
		t.Fatalf("got %d series, want 2 (a, _other)", len(s.Series))
	}
	// Sorted: "_other" < "a".
	if s.Series[0].Values[0] != OverflowLabel || s.Series[0].Hist.Count != 2 {
		t.Fatalf("overflow series = %+v", s.Series[0])
	}
	if s.Series[1].Values[0] != "a" || s.Series[1].Hist.Count != 1 {
		t.Fatalf("series a = %+v", s.Series[1])
	}
}

func TestVecResetKeepsHandles(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c.v", []string{"k"})
	hv := r.HistogramVec("h.v", []string{"k"}, []float64{10})
	c := cv.With("x")
	h := hv.With("x")
	c.Add(5)
	h.ObserveTrace(3, "abc")
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter not reset: %d", c.Value())
	}
	if st := h.Stats(); st.Count != 0 || st.Exemplars != nil {
		t.Fatalf("histogram not reset: %+v", st)
	}
	// Handles stay live after reset.
	c.Inc()
	h.Observe(1)
	if c.Value() != 1 || h.Stats().Count != 1 {
		t.Fatal("handles dead after reset")
	}
}

func TestVecConcurrent(t *testing.T) {
	v := newCounterVec("v", []string{"tenant"}, 4)
	tenants := []string{"a", "b", "c", "d", "e", "f"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v.With(tenants[(g+i)%len(tenants)]).Inc()
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, ls := range v.snapshot().Series {
		total += ls.Value
	}
	if total != 8*200 {
		t.Fatalf("lost updates: total %d, want 1600", total)
	}
}

func TestExemplarLastWriteWins(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	h.ObserveTrace(5, "trace-one")
	h.ObserveTrace(7, "trace-two")
	h.Observe(8) // untraced: must not clobber the exemplar
	h.ObserveTrace(50, "trace-mid")
	st := h.Stats()
	if st.Exemplars == nil {
		t.Fatal("no exemplars recorded")
	}
	if ex := st.Exemplars[0]; ex == nil || ex.Trace != "trace-two" || ex.Value != 7 {
		t.Fatalf("bucket 0 exemplar = %+v, want trace-two/7", st.Exemplars[0])
	}
	if ex := st.Exemplars[1]; ex == nil || ex.Trace != "trace-mid" {
		t.Fatalf("bucket 1 exemplar = %+v", st.Exemplars[1])
	}
	if st.Exemplars[2] != nil {
		t.Fatalf("+Inf bucket has phantom exemplar %+v", st.Exemplars[2])
	}
}

// TestWritePromLabeled locks the labeled exposition format: one TYPE
// line per family, one series per label combination in sorted order,
// exemplar annotations on bucket lines, and the whole thing clean under
// the conformance checker with a cardinality bound.
func TestWritePromLabeled(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("serve.tenant.requests", []string{"tenant", "outcome"})
	cv.With("beta", "accepted").Add(2)
	cv.With(`al"pha`, "accepted").Inc() // hostile value: escaped, not rejected
	hv := r.HistogramVec("serve.tenant.wall_ms", []string{"tenant"}, []float64{10, 100})
	hv.With("alpha").ObserveTrace(5, "4bf92f3577b34da6a3ce929d0e0e4736")
	hv.With("alpha").Observe(5000)

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dwm_serve_tenant_requests counter\n",
		`dwm_serve_tenant_requests{tenant="al\"pha",outcome="accepted"} 1`,
		`dwm_serve_tenant_requests{tenant="beta",outcome="accepted"} 2`,
		"# TYPE dwm_serve_tenant_wall_ms histogram\n",
		`dwm_serve_tenant_wall_ms_bucket{tenant="alpha",le="10"} 1 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 5`,
		`dwm_serve_tenant_wall_ms_bucket{tenant="alpha",le="+Inf"} 2`,
		`dwm_serve_tenant_wall_ms_sum{tenant="alpha"} 5005`,
		`dwm_serve_tenant_wall_ms_count{tenant="alpha"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// A single TYPE line per family, and the checker accepts the output
	// even with a tight series bound.
	if n := strings.Count(out, "# TYPE dwm_serve_tenant_requests counter"); n != 1 {
		t.Errorf("family has %d TYPE lines, want 1", n)
	}
	if err := LintExpositionOpts(strings.NewReader(out), LintOptions{MaxSeriesPerMetric: 8}); err != nil {
		t.Fatalf("labeled exposition fails conformance: %v\n%s", err, out)
	}
}

func TestLintExpositionOptsCardinality(t *testing.T) {
	var b strings.Builder
	b.WriteString("# TYPE dwm_x counter\n")
	b.WriteString(`dwm_x{t="a"} 1` + "\n")
	b.WriteString(`dwm_x{t="b"} 1` + "\n")
	b.WriteString(`dwm_x{t="c"} 1` + "\n")
	if err := LintExpositionOpts(strings.NewReader(b.String()), LintOptions{MaxSeriesPerMetric: 2}); err == nil {
		t.Fatal("3 series under a cap of 2 passed")
	}
	if err := LintExpositionOpts(strings.NewReader(b.String()), LintOptions{MaxSeriesPerMetric: 3}); err != nil {
		t.Fatalf("3 series under a cap of 3 failed: %v", err)
	}
	// le is not cardinality: a labeled histogram's buckets count once.
	hist := "# TYPE dwm_h histogram\n" +
		`dwm_h_bucket{t="a",le="1"} 0` + "\n" +
		`dwm_h_bucket{t="a",le="+Inf"} 1` + "\n" +
		`dwm_h_sum{t="a"} 5` + "\n" +
		`dwm_h_count{t="a"} 1` + "\n"
	if err := LintExpositionOpts(strings.NewReader(hist), LintOptions{MaxSeriesPerMetric: 1}); err != nil {
		t.Fatalf("le counted toward cardinality: %v", err)
	}
}

func TestLintExpositionExemplars(t *testing.T) {
	good := "# TYPE dwm_h histogram\n" +
		`dwm_h_bucket{le="1"} 1 # {trace_id="abc123"} 1` + "\n" +
		`dwm_h_bucket{le="+Inf"} 1` + "\n" +
		"dwm_h_sum 1\n" +
		"dwm_h_count 1\n"
	if err := LintExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("valid exemplar rejected: %v", err)
	}
	for name, bad := range map[string]string{
		"no braces": `dwm_h_bucket{le="1"} 1 # trace_id=abc 1` + "\n",
		"no value":  `dwm_h_bucket{le="1"} 1 # {trace_id="abc"}` + "\n",
		"bad label": `dwm_h_bucket{le="1"} 1 # {9bad="abc"} 1` + "\n",
		"unquoted":  `dwm_h_bucket{le="1"} 1 # {trace_id=abc} 1` + "\n",
	} {
		payload := "# TYPE dwm_h histogram\n" + bad +
			`dwm_h_bucket{le="+Inf"} 1` + "\n" + "dwm_h_sum 1\ndwm_h_count 1\n"
		if err := LintExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: malformed exemplar passed", name)
		}
	}
}

// Labeled histograms restart their cumulative bucket sequence per label
// set; the checker must track each series independently.
func TestLintExpositionLabeledHistogramSeries(t *testing.T) {
	payload := "# TYPE dwm_h histogram\n" +
		`dwm_h_bucket{t="a",le="1"} 5` + "\n" +
		`dwm_h_bucket{t="a",le="+Inf"} 5` + "\n" +
		`dwm_h_sum{t="a"} 5` + "\n" +
		`dwm_h_count{t="a"} 5` + "\n" +
		// Second series restarts at a lower count than a's — legal.
		`dwm_h_bucket{t="b",le="1"} 1` + "\n" +
		`dwm_h_bucket{t="b",le="+Inf"} 1` + "\n" +
		`dwm_h_sum{t="b"} 1` + "\n" +
		`dwm_h_count{t="b"} 1` + "\n"
	if err := LintExposition(strings.NewReader(payload)); err != nil {
		t.Fatalf("per-series histogram state broken: %v", err)
	}
	// A series missing its +Inf bucket is still caught.
	broken := "# TYPE dwm_h histogram\n" +
		`dwm_h_bucket{t="a",le="1"} 5` + "\n" +
		`dwm_h_sum{t="a"} 5` + "\n" +
		`dwm_h_count{t="a"} 5` + "\n"
	if err := LintExposition(strings.NewReader(broken)); err == nil {
		t.Fatal("histogram series without +Inf passed")
	}
}
