package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestTimerStats(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	st := tm.Stats()
	if st.Count != 2 {
		t.Fatalf("count = %d, want 2", st.Count)
	}
	if st.TotalNS != int64(40*time.Millisecond) {
		t.Fatalf("total = %d, want 40ms", st.TotalNS)
	}
	if st.MaxNS != int64(30*time.Millisecond) {
		t.Fatalf("max = %d, want 30ms", st.MaxNS)
	}
	if st.MeanNS() != int64(20*time.Millisecond) {
		t.Fatalf("mean = %d, want 20ms", st.MeanNS())
	}
	stop := tm.Start()
	stop()
	if tm.Stats().Count != 3 {
		t.Fatal("Start/stop did not observe")
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(9)
	r.Timer("c").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["b"] != 9 || s.Timers["c"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Snapshot is a copy: later writes must not show up in it.
	r.Counter("a").Add(1)
	if s.Counters["a"] != 3 {
		t.Fatal("snapshot aliases live counter")
	}
	r.Reset()
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 || r.Timer("c").Stats().Count != 0 {
		t.Fatal("Reset did not zero instruments")
	}
	// Handles obtained before Reset stay wired to the registry.
	r.Counter("a").Inc()
	if r.Snapshot().Counters["a"] != 1 {
		t.Fatal("pre-Reset handle detached from registry")
	}
}

func TestSnapshotFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("g").Set(5)
	r.Timer("t").Observe(time.Millisecond)
	out := r.Snapshot().Format()
	ia, iz := strings.Index(out, "a.first"), strings.Index(out, "z.second")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("counters missing or unsorted:\n%s", out)
	}
	for _, want := range []string{"gauge", "timer", "count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("hits").Inc()
				r.Timer("lat").Observe(time.Microsecond)
				r.Gauge("depth").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*per {
		t.Fatalf("hits = %d, want %d", got, workers*per)
	}
	if got := r.Timer("lat").Stats().Count; got != workers*per {
		t.Fatalf("timer count = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("depth").Value(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
}

// Snapshot emission is deterministic: with the registry quiescent, 100
// concurrent snapshot+render rounds (exercised under -race in CI) must
// produce byte-identical text, JSON, and Prometheus output. This is the
// ordering contract the dwmlint maporder fixture pins at the analyzer
// level: every map in Snapshot is emitted through sorted keys.
func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.last", "m.mid", "a.first", "core.anneal.iterations"} {
		r.Counter(n).Add(int64(len(n)))
		r.Gauge(n + ".g").Set(int64(-len(n)))
		r.Timer(n + ".t").Observe(time.Duration(len(n)) * time.Millisecond)
	}
	h := r.Histogram("sim.shift_distance", []float64{1, 4, 16})
	for v := int64(0); v < 20; v++ {
		h.Observe(v)
	}
	r.Histogram("serve.job.wall_ms", []float64{10, 100})

	const rounds = 100
	outs := make([]string, rounds)
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := r.Snapshot()
			var b strings.Builder
			b.WriteString(s.Format())
			if err := s.WriteProm(&b); err != nil {
				t.Error(err)
				return
			}
			j, err := json.Marshal(s)
			if err != nil {
				t.Error(err)
				return
			}
			b.Write(j)
			outs[i] = b.String()
		}(i)
	}
	wg.Wait()
	for i := 1; i < rounds; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("snapshot render %d differs from render 0:\n%s\nvs\n%s", i, outs[i], outs[0])
		}
	}
	if outs[0] == "" {
		t.Fatal("renders were empty")
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	ResetDefault()
	GetCounter("x").Inc()
	GetGauge("y").Set(2)
	GetTimer("z").Observe(time.Millisecond)
	s := Take()
	if s.Counters["x"] != 1 || s.Gauges["y"] != 2 || s.Timers["z"].Count != 1 {
		t.Fatalf("default registry snapshot = %+v", s)
	}
	if Default() == nil {
		t.Fatal("Default returned nil")
	}
	ResetDefault()
	if Take().Counters["x"] != 0 {
		t.Fatal("ResetDefault did not zero")
	}
}
