package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition of a Snapshot, the payload of dwmserved's
// GET /metrics. Instrument names use dots as namespace separators
// ("core.anneal.iterations"); the exposition sanitizes them to the
// Prometheus grammar ("core_anneal_iterations") and prefixes everything
// with "dwm_" so the scrape namespace is unambiguous. Timers expand to
// three series: <name>_count and <name>_total_ns (counters) and
// <name>_max_ns (a gauge, since Reset can move it down). Histograms
// expand to the standard <name>_bucket{le="..."} cumulative series plus
// <name>_sum and <name>_count.
//
// Every metric name is validated against the exposition grammar before
// it is written and every label value is escaped (backslash, quote,
// newline), so a hostile or merely unusual instrument name can never
// corrupt the scrape. LintExposition is the matching conformance
// checker, run by cmd/promlint and the obs-smoke CI target.

// promName sanitizes an instrument name to a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, with the project prefix applied.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dwm_")
	for _, r := range name {
		switch {
		// The dwm_ prefix already provides the required non-digit first
		// character, so digits pass through at any position.
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// ValidMetricName reports whether name is a legal Prometheus metric
// name.
func ValidMetricName(name string) bool { return metricNameRE.MatchString(name) }

// escapeLabelValue escapes a label value per the text exposition
// format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sortedKeys returns the map's keys in lexical order, the exposition's
// (and the text Format's) deterministic ordering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatLe renders a bucket upper bound as Prometheus expects it.
func formatLe(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): a # TYPE line per metric followed by its
// samples, in lexical instrument order. It refuses (with an error, not
// a corrupt exposition) to write a metric whose sanitized name still
// fails the grammar.
func (s Snapshot) WriteProm(w io.Writer) error {
	typeLine := func(name, typ string) error {
		if !ValidMetricName(name) {
			return fmt.Errorf("obs: %q is not a valid Prometheus metric name", name)
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}
	emit := func(name, typ string, value int64) error {
		if err := typeLine(name, typ); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", name, value)
		return err
	}
	// writeHist emits one histogram series: cumulative buckets (each
	// carrying its exemplar, when the bucket has one, as an
	// OpenMetrics-style " # {trace_id=...} value" annotation), then
	// _sum and _count. labels is the series' non-le label set body,
	// empty for unlabeled histograms.
	writeHist := func(base, labels string, st HistStats) error {
		var cum int64
		for i, c := range st.Counts {
			cum += c
			le := math.Inf(1)
			if i < len(st.Bounds) {
				le = st.Bounds[i]
			}
			sep := ""
			if labels != "" {
				sep = ","
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d",
				base, labels, sep, escapeLabelValue(formatLe(le)), cum); err != nil {
				return err
			}
			if st.Exemplars != nil && st.Exemplars[i] != nil {
				ex := st.Exemplars[i]
				if _, err := fmt.Fprintf(w, " # {trace_id=\"%s\"} %d",
					escapeLabelValue(ex.Trace), ex.Value); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		_, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", base, suffix, st.Sum, base, suffix, cum)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := emit(promName(name), "counter", s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.LabeledCounters) {
		st := s.LabeledCounters[name]
		base := promName(name)
		if err := typeLine(base, "counter"); err != nil {
			return err
		}
		for _, ls := range st.Series {
			if _, err := fmt.Fprintf(w, "%s{%s} %d\n", base, labelPairs(st.Keys, ls.Values), ls.Value); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := emit(promName(name), "gauge", s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		st := s.Histograms[name]
		base := promName(name)
		if err := typeLine(base, "histogram"); err != nil {
			return err
		}
		if err := writeHist(base, "", st); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.LabeledHistograms) {
		st := s.LabeledHistograms[name]
		base := promName(name)
		if err := typeLine(base, "histogram"); err != nil {
			return err
		}
		for _, ls := range st.Series {
			if err := writeHist(base, labelPairs(st.Keys, ls.Values), ls.Hist); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		st := s.Timers[name]
		base := promName(name)
		if err := emit(base+"_count", "counter", st.Count); err != nil {
			return err
		}
		if err := emit(base+"_total_ns", "counter", st.TotalNS); err != nil {
			return err
		}
		if err := emit(base+"_max_ns", "gauge", st.MaxNS); err != nil {
			return err
		}
	}
	return nil
}

// lintLineRE matches one sample line: name, optional label set, value.
var lintLineRE = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)

// lintLabelRE matches one label pair inside a label set, with a
// properly escaped quoted value.
var lintLabelRE = regexp.MustCompile(
	`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)

// lintExemplarRE matches the OpenMetrics-style exemplar annotation the
// snapshot writer appends to bucket samples: a one-label set (the trace
// ID) and the exemplar's value.
var lintExemplarRE = regexp.MustCompile(
	`^\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"\} -?[0-9]+(\.[0-9]+)?$`)

// LintOptions tunes LintExpositionOpts.
type LintOptions struct {
	// MaxSeriesPerMetric bounds the number of distinct label sets (the
	// le bucket label excluded) any one metric family may carry; 0
	// disables the check. Exceeding the bound is the signature of an
	// unbounded label — cardinality that grows with the data instead of
	// with the code — which the in-process vecs prevent by construction
	// (see labels.go) and this check catches at the scrape.
	MaxSeriesPerMetric int
}

// LintExposition is the conformance checker for the text exposition
// format the snapshot writer produces: every sample's metric name is
// valid and preceded by a matching # TYPE line, no metric is declared
// twice, no series is emitted twice, label sets parse with escaped
// values, exemplar annotations are well-formed, and every histogram
// series is complete (a +Inf bucket whose cumulative count equals its
// _count, with non-decreasing bucket counts and a _sum — tracked per
// label set, since labeled histograms restart the cumulative sequence
// for each series). It returns the first violation found, or nil.
func LintExposition(r io.Reader) error {
	return LintExpositionOpts(r, LintOptions{})
}

// LintExpositionOpts is LintExposition with explicit options; see
// LintOptions for the cardinality bound cmd/promlint exposes.
func LintExpositionOpts(r io.Reader, opts LintOptions) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	declared := map[string]string{} // metric name -> type
	seenSeries := map[string]bool{}
	type histState struct {
		lastCum  int64
		infCum   int64
		sawInf   bool
		sawSum   bool
		sawCount bool
		count    int64
	}
	hists := map[string]bool{}            // declared histogram families
	histSeries := map[string]*histState{} // family + "\xff" + non-le label set
	cardinality := map[string]map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line: %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !ValidMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := declared[name]; dup {
					return fmt.Errorf("line %d: metric %q declared twice", lineNo, name)
				}
				declared[name] = typ
				if typ == "histogram" {
					hists[name] = true
				}
			}
			continue // HELP and free comments pass through
		}
		// Split off an exemplar annotation before parsing the sample:
		// `name{labels} value # {trace_id="..."} exemplar-value`.
		sample := line
		if i := strings.Index(line, " # "); i >= 0 {
			sample = line[:i]
			if !lintExemplarRE.MatchString(line[i+3:]) {
				return fmt.Errorf("line %d: malformed exemplar annotation %q", lineNo, line[i+3:])
			}
		}
		m := lintLineRE.FindStringSubmatch(sample)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line: %q", lineNo, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if m[2] != "" {
			for _, pair := range splitLabels(labels) {
				if !lintLabelRE.MatchString(pair) {
					return fmt.Errorf("line %d: malformed label pair %q", lineNo, pair)
				}
			}
		}
		base, ok := seriesBase(name, declared)
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, name)
		}
		series := name + "{" + labels + "}"
		if seenSeries[series] {
			return fmt.Errorf("line %d: series %q emitted twice", lineNo, series)
		}
		seenSeries[series] = true
		ident := stripLabel(labels, "le")
		if cardinality[base] == nil {
			cardinality[base] = map[string]bool{}
		}
		cardinality[base][ident] = true
		if opts.MaxSeriesPerMetric > 0 && len(cardinality[base]) > opts.MaxSeriesPerMetric {
			return fmt.Errorf("line %d: metric %q exceeds %d distinct label sets — unbounded label cardinality",
				lineNo, base, opts.MaxSeriesPerMetric)
		}
		if hists[base] {
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: histogram sample %q has non-integer value %q", lineNo, name, value)
			}
			key := base + "\xff" + ident
			h := histSeries[key]
			if h == nil {
				h = &histState{}
				histSeries[key] = h
			}
			switch {
			case name == base+"_bucket":
				le := labelValue(labels, "le")
				if le == "" {
					return fmt.Errorf("line %d: %s_bucket sample without le label", lineNo, base)
				}
				if v < h.lastCum {
					return fmt.Errorf("line %d: %s bucket counts decrease (%d after %d)", lineNo, base, v, h.lastCum)
				}
				h.lastCum = v
				if le == "+Inf" {
					h.sawInf = true
					h.infCum = v
				}
			case name == base+"_sum":
				h.sawSum = true
			case name == base+"_count":
				h.sawCount = true
				h.count = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, key := range sortedKeys(histSeries) {
		h := histSeries[key]
		name, ident, _ := strings.Cut(key, "\xff")
		if ident != "" {
			name = name + "{" + ident + "}"
		}
		switch {
		case !h.sawInf:
			return fmt.Errorf("histogram %q has no +Inf bucket", name)
		case !h.sawSum:
			return fmt.Errorf("histogram %q has no _sum sample", name)
		case !h.sawCount:
			return fmt.Errorf("histogram %q has no _count sample", name)
		case h.infCum != h.count:
			return fmt.Errorf("histogram %q: +Inf bucket %d != count %d", name, h.infCum, h.count)
		}
	}
	return nil
}

// stripLabel removes one label pair from a label set body, preserving
// the order of the rest — a histogram series' identity is its label set
// without the le bucket label.
func stripLabel(labels, key string) string {
	if labels == "" {
		return ""
	}
	var kept []string
	for _, pair := range splitLabels(labels) {
		if k, _, ok := strings.Cut(pair, "="); ok && k == key {
			continue
		}
		kept = append(kept, pair)
	}
	return strings.Join(kept, ",")
}

// seriesBase resolves a sample name to its declared metric: exact match
// first, then the histogram/summary child suffixes.
func seriesBase(name string, declared map[string]string) (string, bool) {
	if _, ok := declared[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := declared[base]; ok && (t == "histogram" || t == "summary") {
			return base, true
		}
	}
	return "", false
}

// splitLabels splits a label set body on commas that sit outside quoted
// values.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuote:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// labelValue extracts the (unescaped) value of one label from a label
// set body, empty when absent.
func labelValue(labels, key string) string {
	for _, pair := range splitLabels(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k != key {
			continue
		}
		v = strings.TrimPrefix(v, `"`)
		v = strings.TrimSuffix(v, `"`)
		var b strings.Builder
		escaped := false
		for _, r := range v {
			switch {
			case escaped:
				switch r {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteRune(r)
				}
				escaped = false
			case r == '\\':
				escaped = true
			default:
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	return ""
}
