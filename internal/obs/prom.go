package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition of a Snapshot, the payload of dwmserved's
// GET /metrics. Instrument names use dots as namespace separators
// ("core.anneal.iterations"); the exposition sanitizes them to the
// Prometheus grammar ("core_anneal_iterations") and prefixes everything
// with "dwm_" so the scrape namespace is unambiguous. Timers expand to
// three series: <name>_count and <name>_total_ns (counters) and
// <name>_max_ns (a gauge, since Reset can move it down).

// promName sanitizes an instrument name to a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, with the project prefix applied.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dwm_")
	for _, r := range name {
		switch {
		// The dwm_ prefix already provides the required non-digit first
		// character, so digits pass through at any position.
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sortedKeys returns the map's keys in lexical order, the exposition's
// (and the text Format's) deterministic ordering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): a # TYPE line per metric followed by its
// sample, in lexical instrument order.
func (s Snapshot) WriteProm(w io.Writer) error {
	emit := func(name, typ string, value int64) error {
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, value)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := emit(promName(name), "counter", s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := emit(promName(name), "gauge", s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		st := s.Timers[name]
		base := promName(name)
		if err := emit(base+"_count", "counter", st.Count); err != nil {
			return err
		}
		if err := emit(base+"_total_ns", "counter", st.TotalNS); err != nil {
			return err
		}
		if err := emit(base+"_max_ns", "gauge", st.MaxNS); err != nil {
			return err
		}
	}
	return nil
}
