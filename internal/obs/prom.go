package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition of a Snapshot, the payload of dwmserved's
// GET /metrics. Instrument names use dots as namespace separators
// ("core.anneal.iterations"); the exposition sanitizes them to the
// Prometheus grammar ("core_anneal_iterations") and prefixes everything
// with "dwm_" so the scrape namespace is unambiguous. Timers expand to
// three series: <name>_count and <name>_total_ns (counters) and
// <name>_max_ns (a gauge, since Reset can move it down). Histograms
// expand to the standard <name>_bucket{le="..."} cumulative series plus
// <name>_sum and <name>_count.
//
// Every metric name is validated against the exposition grammar before
// it is written and every label value is escaped (backslash, quote,
// newline), so a hostile or merely unusual instrument name can never
// corrupt the scrape. LintExposition is the matching conformance
// checker, run by cmd/promlint and the obs-smoke CI target.

// promName sanitizes an instrument name to a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, with the project prefix applied.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dwm_")
	for _, r := range name {
		switch {
		// The dwm_ prefix already provides the required non-digit first
		// character, so digits pass through at any position.
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// ValidMetricName reports whether name is a legal Prometheus metric
// name.
func ValidMetricName(name string) bool { return metricNameRE.MatchString(name) }

// escapeLabelValue escapes a label value per the text exposition
// format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sortedKeys returns the map's keys in lexical order, the exposition's
// (and the text Format's) deterministic ordering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatLe renders a bucket upper bound as Prometheus expects it.
func formatLe(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): a # TYPE line per metric followed by its
// samples, in lexical instrument order. It refuses (with an error, not
// a corrupt exposition) to write a metric whose sanitized name still
// fails the grammar.
func (s Snapshot) WriteProm(w io.Writer) error {
	typeLine := func(name, typ string) error {
		if !ValidMetricName(name) {
			return fmt.Errorf("obs: %q is not a valid Prometheus metric name", name)
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}
	emit := func(name, typ string, value int64) error {
		if err := typeLine(name, typ); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", name, value)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := emit(promName(name), "counter", s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := emit(promName(name), "gauge", s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		st := s.Histograms[name]
		base := promName(name)
		if err := typeLine(base, "histogram"); err != nil {
			return err
		}
		var cum int64
		for i, c := range st.Counts {
			cum += c
			le := math.Inf(1)
			if i < len(st.Bounds) {
				le = st.Bounds[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
				base, escapeLabelValue(formatLe(le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", base, st.Sum, base, cum); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		st := s.Timers[name]
		base := promName(name)
		if err := emit(base+"_count", "counter", st.Count); err != nil {
			return err
		}
		if err := emit(base+"_total_ns", "counter", st.TotalNS); err != nil {
			return err
		}
		if err := emit(base+"_max_ns", "gauge", st.MaxNS); err != nil {
			return err
		}
	}
	return nil
}

// lintLineRE matches one sample line: name, optional label set, value.
var lintLineRE = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)

// lintLabelRE matches one label pair inside a label set, with a
// properly escaped quoted value.
var lintLabelRE = regexp.MustCompile(
	`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)

// LintExposition is the conformance checker for the text exposition
// format the snapshot writer produces: every sample's metric name is
// valid and preceded by a matching # TYPE line, no metric is declared
// twice, no series is emitted twice, label sets parse with escaped
// values, and histograms are complete (a +Inf bucket whose cumulative
// count equals <name>_count, with non-decreasing bucket counts and a
// <name>_sum). It returns the first violation found, or nil.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	declared := map[string]string{} // metric name -> type
	seenSeries := map[string]bool{}
	type histState struct {
		lastCum  int64
		infCum   int64
		sawInf   bool
		sawSum   bool
		sawCount bool
		count    int64
	}
	hists := map[string]*histState{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line: %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !ValidMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := declared[name]; dup {
					return fmt.Errorf("line %d: metric %q declared twice", lineNo, name)
				}
				declared[name] = typ
				if typ == "histogram" {
					hists[name] = &histState{}
				}
			}
			continue // HELP and free comments pass through
		}
		m := lintLineRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line: %q", lineNo, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if m[2] != "" {
			for _, pair := range splitLabels(labels) {
				if !lintLabelRE.MatchString(pair) {
					return fmt.Errorf("line %d: malformed label pair %q", lineNo, pair)
				}
			}
		}
		base, ok := seriesBase(name, declared)
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, name)
		}
		series := name + "{" + labels + "}"
		if seenSeries[series] {
			return fmt.Errorf("line %d: series %q emitted twice", lineNo, series)
		}
		seenSeries[series] = true
		if h, isHist := hists[base]; isHist {
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: histogram sample %q has non-integer value %q", lineNo, name, value)
			}
			switch {
			case name == base+"_bucket":
				le := labelValue(labels, "le")
				if le == "" {
					return fmt.Errorf("line %d: %s_bucket sample without le label", lineNo, base)
				}
				if v < h.lastCum {
					return fmt.Errorf("line %d: %s bucket counts decrease (%d after %d)", lineNo, base, v, h.lastCum)
				}
				h.lastCum = v
				if le == "+Inf" {
					h.sawInf = true
					h.infCum = v
				}
			case name == base+"_sum":
				h.sawSum = true
			case name == base+"_count":
				h.sawCount = true
				h.count = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		switch {
		case !h.sawInf:
			return fmt.Errorf("histogram %q has no +Inf bucket", name)
		case !h.sawSum:
			return fmt.Errorf("histogram %q has no _sum sample", name)
		case !h.sawCount:
			return fmt.Errorf("histogram %q has no _count sample", name)
		case h.infCum != h.count:
			return fmt.Errorf("histogram %q: +Inf bucket %d != count %d", name, h.infCum, h.count)
		}
	}
	return nil
}

// seriesBase resolves a sample name to its declared metric: exact match
// first, then the histogram/summary child suffixes.
func seriesBase(name string, declared map[string]string) (string, bool) {
	if _, ok := declared[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := declared[base]; ok && (t == "histogram" || t == "summary") {
			return base, true
		}
	}
	return "", false
}

// splitLabels splits a label set body on commas that sit outside quoted
// values.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuote:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// labelValue extracts the (unescaped) value of one label from a label
// set body, empty when absent.
func labelValue(labels, key string) string {
	for _, pair := range splitLabels(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k != key {
			continue
		}
		v = strings.TrimPrefix(v, `"`)
		v = strings.TrimSuffix(v, `"`)
		var b strings.Builder
		escaped := false
		for _, r := range v {
			switch {
			case escaped:
				switch r {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteRune(r)
				}
				escaped = false
			case r == '\\':
				escaped = true
			default:
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	return ""
}
