package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"core.anneal.iterations": "dwm_core_anneal_iterations",
		"serve.queue.depth":      "dwm_serve_queue_depth",
		"a-b c":                  "dwm_a_b_c",
		"9lives":                 "dwm_9lives",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs.accepted").Add(3)
	r.Gauge("serve.queue.depth").Set(2)
	r.Timer("serve.job.wall").Observe(5 * time.Millisecond)
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dwm_serve_jobs_accepted counter\ndwm_serve_jobs_accepted 3\n",
		"# TYPE dwm_serve_queue_depth gauge\ndwm_serve_queue_depth 2\n",
		"# TYPE dwm_serve_job_wall_count counter\ndwm_serve_job_wall_count 1\n",
		"# TYPE dwm_serve_job_wall_total_ns counter\ndwm_serve_job_wall_total_ns 5000000\n",
		"# TYPE dwm_serve_job_wall_max_ns gauge\ndwm_serve_job_wall_max_ns 5000000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// The exposition is deterministic: same snapshot, same bytes.
func TestWritePromDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"b.z", "a.x", "a.y"} {
		r.Counter(n).Inc()
		r.Gauge(n + ".g").Set(1)
	}
	s := r.Snapshot()
	var first string
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := s.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatal("exposition order unstable across renders")
		}
	}
	if !strings.Contains(first, "dwm_a_x") || strings.Index(first, "dwm_a_x") > strings.Index(first, "dwm_b_z") {
		t.Errorf("counters not in lexical order:\n%s", first)
	}
}
