package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"core.anneal.iterations": "dwm_core_anneal_iterations",
		"serve.queue.depth":      "dwm_serve_queue_depth",
		"a-b c":                  "dwm_a_b_c",
		"9lives":                 "dwm_9lives",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs.accepted").Add(3)
	r.Gauge("serve.queue.depth").Set(2)
	r.Timer("serve.job.wall").Observe(5 * time.Millisecond)
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dwm_serve_jobs_accepted counter\ndwm_serve_jobs_accepted 3\n",
		"# TYPE dwm_serve_queue_depth gauge\ndwm_serve_queue_depth 2\n",
		"# TYPE dwm_serve_job_wall_count counter\ndwm_serve_job_wall_count 1\n",
		"# TYPE dwm_serve_job_wall_total_ns counter\ndwm_serve_job_wall_total_ns 5000000\n",
		"# TYPE dwm_serve_job_wall_max_ns gauge\ndwm_serve_job_wall_max_ns 5000000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// The exposition is deterministic: same snapshot, same bytes.
func TestWritePromDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"b.z", "a.x", "a.y"} {
		r.Counter(n).Inc()
		r.Gauge(n + ".g").Set(1)
	}
	s := r.Snapshot()
	var first string
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := s.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatal("exposition order unstable across renders")
		}
	}
	if !strings.Contains(first, "dwm_a_x") || strings.Index(first, "dwm_a_x") > strings.Index(first, "dwm_b_z") {
		t.Errorf("counters not in lexical order:\n%s", first)
	}
}

func TestValidMetricName(t *testing.T) {
	for name, want := range map[string]bool{
		"dwm_core_anneal_iterations": true,
		"a:b_c9":                     true,
		"_leading":                   true,
		"9leading":                   false,
		"":                           false,
		"has space":                  false,
		"has-dash":                   false,
		`quote"d`:                    false,
	} {
		if got := ValidMetricName(name); got != want {
			t.Errorf("ValidMetricName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:      `plain`,
		`back\slash`: `back\\slash`,
		`qu"ote`:     `qu\"ote`,
		"new\nline":  `new\nline`,
	} {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

// Every exposition the writer produces must pass its own conformance
// checker — including histograms and hostile instrument names.
func TestWritePromConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs.accepted").Add(3)
	r.Counter(`weird name"with\junk` + "\nnewline").Inc()
	r.Gauge("serve.queue.depth").Set(-2)
	r.Timer("serve.job.wall").Observe(5 * time.Millisecond)
	h := r.Histogram("sim.shift_distance", []float64{1, 8, 64})
	for _, v := range []int64{0, 3, 9, 70, 1000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("writer output fails its own conformance checker: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "dwm_weird_name_with_junk_newline 1") {
		t.Errorf("hostile instrument name not sanitized:\n%s", b.String())
	}
}

func TestLintExpositionCatchesViolations(t *testing.T) {
	for name, payload := range map[string]string{
		"sample without TYPE": "dwm_x 1\n",
		"invalid name":        "# TYPE dwm-bad counter\ndwm-bad 1\n",
		"unknown type":        "# TYPE dwm_x rate\ndwm_x 1\n",
		"duplicate TYPE":      "# TYPE dwm_x counter\ndwm_x 1\n# TYPE dwm_x counter\n",
		"duplicate series":    "# TYPE dwm_x counter\ndwm_x 1\ndwm_x 2\n",
		"malformed sample":    "# TYPE dwm_x counter\ndwm_x one\n",
		"bad label pair":      "# TYPE dwm_x histogram\ndwm_x_bucket{le=1} 1\n",
		"unescaped quote":     "# TYPE dwm_x histogram\ndwm_x_bucket{le\"=\"1\"} 1\n",
		"no +Inf bucket": "# TYPE dwm_x histogram\n" +
			`dwm_x_bucket{le="1"} 1` + "\ndwm_x_sum 1\ndwm_x_count 1\n",
		"no sum": "# TYPE dwm_x histogram\n" +
			`dwm_x_bucket{le="+Inf"} 1` + "\ndwm_x_count 1\n",
		"no count": "# TYPE dwm_x histogram\n" +
			`dwm_x_bucket{le="+Inf"} 1` + "\ndwm_x_sum 1\n",
		"inf != count": "# TYPE dwm_x histogram\n" +
			`dwm_x_bucket{le="+Inf"} 2` + "\ndwm_x_sum 1\ndwm_x_count 1\n",
		"decreasing buckets": "# TYPE dwm_x histogram\n" +
			`dwm_x_bucket{le="1"} 5` + "\n" + `dwm_x_bucket{le="+Inf"} 3` + "\ndwm_x_sum 1\ndwm_x_count 3\n",
	} {
		if err := LintExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, payload)
		}
	}
	ok := "# some comment\n# TYPE dwm_ok counter\ndwm_ok 5\n" +
		"# TYPE dwm_h histogram\n" +
		`dwm_h_bucket{le="0.5"} 1` + "\n" + `dwm_h_bucket{le="+Inf"} 2` + "\n" +
		"dwm_h_sum 3\ndwm_h_count 2\n" +
		"# TYPE dwm_g gauge\ndwm_g -7\n"
	if err := LintExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("lint rejected a conforming exposition: %v", err)
	}
}
