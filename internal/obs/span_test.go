package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// withTracer installs a fresh process-wide tracer for the test and
// restores the disabled state afterwards.
func withTracer(t *testing.T, capacity int) {
	t.Helper()
	EnableTracing(capacity)
	t.Cleanup(DisableTracing)
}

func TestSpanDisabledIsNoOp(t *testing.T) {
	DisableTracing()
	ctx, sp := StartSpan(context.Background(), "noop")
	if sp != nil {
		t.Fatal("StartSpan returned a live span while tracing is disabled")
	}
	if ctx != context.Background() {
		t.Fatal("StartSpan changed the context while disabled")
	}
	sp.SetAttr("k", 1) // must not panic on nil receiver
	sp.End()
	if recs, dropped := DrainSpans(); recs != nil || dropped != 0 {
		t.Fatalf("DrainSpans while disabled = %v, %d", recs, dropped)
	}
}

func TestSpanParentChild(t *testing.T) {
	withTracer(t, 64)
	ctx, root := StartSpan(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	child.SetAttr("cost", int64(42)).SetAttr("policy", "anneal")
	child.End()
	root.End()

	recs, dropped := DrainSpans()
	if dropped != 0 {
		t.Fatalf("dropped %d spans from a 64-slot ring", dropped)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	// Children end first, so drain order is child, root.
	if recs[0].Name != "child" || recs[1].Name != "root" {
		t.Fatalf("drain order = %q, %q", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].ID {
		t.Fatalf("child parent %d != root id %d", recs[0].Parent, recs[1].ID)
	}
	if recs[1].Parent != 0 {
		t.Fatalf("root has parent %d", recs[1].Parent)
	}
	if len(recs[0].Attrs) != 2 || recs[0].Attrs[0].Key != "cost" || recs[0].Attrs[1].Key != "policy" {
		t.Fatalf("child attrs = %+v", recs[0].Attrs)
	}
	if recs[0].DurNS < 0 || recs[1].DurNS < recs[0].DurNS {
		t.Fatalf("durations inconsistent: child %d, root %d", recs[0].DurNS, recs[1].DurNS)
	}
}

func TestSpanDoubleEndRecordsOnce(t *testing.T) {
	withTracer(t, 64)
	_, sp := StartSpan(context.Background(), "once")
	sp.End()
	sp.End()
	recs, _ := DrainSpans()
	if len(recs) != 1 {
		t.Fatalf("double End recorded %d spans", len(recs))
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 20; i++ {
		tr.push(SpanRecord{ID: uint64(i + 1), Name: "s"})
	}
	recs, dropped := tr.Drain()
	if len(recs) != 16 {
		t.Fatalf("ring held %d records, want 16", len(recs))
	}
	if dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dropped)
	}
	if recs[0].ID != 5 || recs[15].ID != 20 {
		t.Fatalf("drain not oldest-first: first=%d last=%d", recs[0].ID, recs[15].ID)
	}
	// A second drain is empty.
	if recs, dropped := tr.Drain(); len(recs) != 0 || dropped != 0 {
		t.Fatalf("second drain = %d recs, %d dropped", len(recs), dropped)
	}
}

func TestSpanConcurrent(t *testing.T) {
	withTracer(t, 1<<12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, sp := StartSpan(context.Background(), "outer")
				_, inner := StartSpan(ctx, "inner")
				inner.SetAttr("i", i)
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	recs, dropped := DrainSpans()
	if dropped != 0 || len(recs) != 1600 {
		t.Fatalf("got %d spans (%d dropped), want 1600", len(recs), dropped)
	}
	ids := map[uint64]bool{}
	for _, r := range recs {
		if ids[r.ID] {
			t.Fatalf("duplicate span ID %d", r.ID)
		}
		ids[r.ID] = true
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	spans := []SpanRecord{
		{ID: 1, Name: "a", StartNS: 10, DurNS: 5},
		{ID: 2, Parent: 1, Name: "b", StartNS: 11, DurNS: 2,
			Attrs: []Attr{{Key: "n", Value: 7}}},
	}
	var b bytes.Buffer
	if err := WriteSpansJSONL(&b, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "b" || rec.Parent != 1 || len(rec.Attrs) != 1 {
		t.Fatalf("round-trip = %+v", rec)
	}
}

func TestWriteTraceEventsValidates(t *testing.T) {
	withTracer(t, 64)
	ctx, root := StartSpan(context.Background(), "experiment")
	root.SetAttr("id", "E1")
	_, child := StartSpan(ctx, "anneal.chain")
	child.SetAttr("best_cost", int64(123))
	child.End()
	root.End()
	_, lone := StartSpan(context.Background(), "sim.run")
	lone.End()

	recs, _ := DrainSpans()
	var b bytes.Buffer
	if err := WriteTraceEvents(&b, recs); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEvents(b.Bytes()); err != nil {
		t.Fatalf("self-produced trace fails validation: %v", err)
	}
	// Parent and child share a track; the unrelated span gets its own.
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	for _, ev := range f.TraceEvents {
		tids[ev.Name] = ev.TID
	}
	if tids["experiment"] != tids["anneal.chain"] {
		t.Fatalf("parent/child on different tracks: %v", tids)
	}
	if tids["sim.run"] == tids["experiment"] {
		t.Fatalf("unrelated spans share a track: %v", tids)
	}
}

func TestValidateTraceEventsRejectsMalformed(t *testing.T) {
	for name, payload := range map[string]string{
		"not json":     "{",
		"no array":     `{"displayTimeUnit":"ms"}`,
		"nameless":     `{"traceEvents":[{"ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]}`,
		"no phase":     `{"traceEvents":[{"name":"a","ts":1,"dur":1,"pid":1,"tid":1}]}`,
		"no ts":        `{"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":1}]}`,
		"no pid":       `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":1}]}`,
		"negative dur": `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":-5,"pid":1,"tid":1}]}`,
	} {
		if err := ValidateTraceEvents([]byte(payload)); err == nil {
			t.Errorf("%s: validator accepted %s", name, payload)
		}
	}
	ok := `{"traceEvents":[{"name":"a","ph":"X","ts":1.5,"dur":0,"pid":1,"tid":1}]}`
	if err := ValidateTraceEvents([]byte(ok)); err != nil {
		t.Errorf("validator rejected well-formed payload: %v", err)
	}
}
