package obs

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/stats"
)

// TestLocalHistogramFlushVsSnapshot exercises the documented concurrency
// contract under the race detector: each LocalHistogram is owned by one
// goroutine, but Flush (atomic adds into the shared histogram) may run
// concurrently with Stats (atomic loads) from another goroutine. The
// snapshot may be mid-flush — counts can lag sum — but no observation is
// ever lost and the final totals are exact.
func TestLocalHistogramFlushVsSnapshot(t *testing.T) {
	h := newHistogram([]float64{4, 16, 64, 256})
	const (
		goroutines = 4
		rounds     = 50
		perRound   = 20
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Reader: snapshots continuously while writers flush.
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var prev int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := h.Stats()
			if st.Count < prev {
				t.Errorf("count went backwards: %d after %d", st.Count, prev)
				return
			}
			prev = st.Count
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := h.Local()
			for r := 0; r < rounds; r++ {
				for i := 0; i < perRound; i++ {
					l.Observe(int64((g*31 + r*7 + i) % 300))
				}
				l.Flush()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	reader.Wait()

	st := h.Stats()
	if want := int64(goroutines * rounds * perRound); st.Count != want {
		t.Fatalf("final count %d, want %d", st.Count, want)
	}
	var bucketSum int64
	for _, c := range st.Counts {
		bucketSum += c
	}
	if bucketSum != st.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, st.Count)
	}
}

// TestHistogramMergeQuantileOracle merges per-goroutine local buffers
// into one shared histogram and checks every quantile against the exact
// answer computed from the raw samples: the histogram's nearest-rank
// quantile must equal the bucket upper bound that contains the raw
// nearest-rank sample — bucket resolution is the only information the
// histogram is allowed to lose.
func TestHistogramMergeQuantileOracle(t *testing.T) {
	bounds := []float64{2, 8, 32, 128, 512}
	h := newHistogram(bounds)

	const goroutines = 6
	var mu sync.Mutex
	var raw []float64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := h.Local()
			var mine []float64
			// Deterministic per-goroutine stream via the splitmix chain.
			state := uint64(g)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < 500; i++ {
				state = mix64(state + 0x632BE59BD9B4E019)
				v := int64(state % 700)
				l.Observe(v)
				mine = append(mine, float64(v))
			}
			l.Flush()
			mu.Lock()
			raw = append(raw, mine...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	st := h.Stats()
	if want := int64(goroutines * 500); st.Count != want {
		t.Fatalf("merged count %d, want %d", st.Count, want)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		exact, err := stats.Quantile(append([]float64(nil), raw...), q)
		if err != nil {
			t.Fatal(err)
		}
		// The bucket that holds the exact sample is the histogram's answer
		// (or +Inf past the last bound).
		i := sort.SearchFloat64s(bounds, exact)
		got := st.Quantile(q)
		if i == len(bounds) {
			if !isInf(got) {
				t.Errorf("q=%g: got %g, want +Inf (exact %g beyond last bound)", q, got, exact)
			}
			continue
		}
		if got != bounds[i] {
			t.Errorf("q=%g: histogram %g, oracle bucket %g (exact %g)", q, got, bounds[i], exact)
		}
	}
}

func isInf(f float64) bool { return f > 1e308 }
