package obs

// Fixed-bucket histograms. A Histogram is as cheap to update as a
// Counter (one binary search over a handful of bounds plus two atomic
// adds), so the hot layers keep theirs on unconditionally: the simulator
// observes per-access shift distances, the annealer its proposal deltas,
// and the serving layer queue-wait and job latency. Distributions — not
// totals — are how the placement papers diagnose quality, and how a
// perf regression in the tail shows up before it moves a mean.

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts int64 observations into fixed buckets. Bucket i
// holds observations v with v <= Bounds[i] (and v > Bounds[i-1]); one
// extra overflow bucket holds everything above the last bound — the
// +Inf bucket of the Prometheus exposition. The zero value is unusable;
// obtain one from a Registry.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64
	// exemplars holds, per bucket, the most recent traced observation
	// (see ObserveTrace) — the breadcrumb that links a latency bucket
	// back to a concrete request in /debug/events. Last-write-wins; nil
	// entries mean the bucket has never seen a traced observation.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one observation to the trace it belonged to.
type Exemplar struct {
	// Trace is the cross-process trace ID (see TraceContext) of the
	// request that produced the observation.
	Trace string `json:"trace"`
	// Value is the observed value.
	Value int64 `json:"value"`
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	for _, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("obs: histogram bounds must be finite (the +Inf bucket is implicit)")
		}
	}
	h := &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
	return h
}

// resetHistogram zeroes a histogram in place (Registry.Reset and the
// vec reset path).
func resetHistogram(h *Histogram) {
	for i := range h.counts {
		h.counts[i].Store(0)
		h.exemplars[i].Store(nil)
	}
	h.sum.Store(0)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.SearchFloat64s(h.bounds, float64(v))
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveTrace records one value and, when traceID is nonempty, stamps
// it as the bucket's exemplar. One atomic pointer store on top of
// Observe — cheap enough for the serving layer to use on every request.
func (h *Histogram) ObserveTrace(v int64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, float64(v))
	h.counts[i].Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Trace: traceID, Value: v})
	}
}

// Local returns a single-goroutine accumulation buffer for this
// histogram. Hot loops that observe once per iteration (the annealer's
// proposal deltas) buffer locally — a bucket search plus a plain
// increment, no shared-cacheline traffic — and Flush once when the loop
// ends, mirroring how those loops already batch their counters.
func (h *Histogram) Local() *LocalHistogram {
	return &LocalHistogram{h: h, counts: make([]int64, len(h.counts))}
}

// LocalHistogram buffers observations for one goroutine; see
// Histogram.Local. Not safe for concurrent use.
type LocalHistogram struct {
	h      *Histogram
	counts []int64
	sum    int64
}

// Observe records one value into the local buffer.
func (l *LocalHistogram) Observe(v int64) {
	i := sort.SearchFloat64s(l.h.bounds, float64(v))
	l.counts[i]++
	l.sum += v
}

// Flush adds the buffered observations to the shared histogram and
// clears the buffer, so a LocalHistogram can be reused.
func (l *LocalHistogram) Flush() {
	for i, c := range l.counts {
		if c != 0 {
			l.h.counts[i].Add(c)
			l.counts[i] = 0
		}
	}
	l.h.sum.Add(l.sum)
	l.sum = 0
}

// Stats returns a point-in-time copy of the histogram. Like Snapshot it
// does not stop writers, so Sum and the bucket counts may be off by
// in-flight observations relative to each other.
func (h *Histogram) Stats() HistStats {
	s := HistStats{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
		if ex := h.exemplars[i].Load(); ex != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]*Exemplar, len(h.counts))
			}
			s.Exemplars[i] = ex
		}
	}
	return s
}

// HistStats is the snapshot form of a Histogram.
type HistStats struct {
	// Bounds are the finite bucket upper bounds; Counts has one more
	// entry than Bounds, the last being the overflow (+Inf) bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	// Count is the total number of observations (the sum of Counts);
	// Sum is the sum of all observed values.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Exemplars, when non-nil, parallels Counts: entry i is the most
	// recent traced observation that landed in bucket i, nil when the
	// bucket has none. Omitted entirely when no bucket has one.
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Mean returns the mean observed value (0 when empty).
func (s HistStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the nearest-rank q-quantile resolved to bucket
// granularity: the upper bound of the bucket holding the rank-⌈q·n⌉
// observation, the same rank rule internal/stats.Quantile applies to
// raw samples. It returns 0 for an empty histogram and +Inf when the
// rank lands in the overflow bucket (the histogram cannot bound it).
func (s HistStats) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i == len(s.Bounds) {
				return math.Inf(1)
			}
			return s.Bounds[i]
		}
	}
	return math.Inf(1)
}
