package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", []float64{1, 2, 4})
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Stats()
	want := []int64{3, 1, 2, 1} // le1: {0,1,1}, le2: {2}, le4: {3,4}, +Inf: {100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 || s.Sum != 111 {
		t.Errorf("count=%d sum=%d, want 7, 111", s.Count, s.Sum)
	}
	if got := s.Mean(); math.Abs(got-111.0/7) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty", []float64{1, 10})
	s := h.Stats()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty histogram: count=%d sum=%d", s.Count, s.Sum)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) of empty = %v, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Errorf("Mean of empty = %v, want 0", got)
	}
	// The exposition of an empty histogram is still complete and valid.
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dwm_empty_bucket{le="+Inf"} 0`, "dwm_empty_sum 0", "dwm_empty_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty-histogram exposition missing %q in:\n%s", want, out)
		}
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("empty-histogram exposition fails lint: %v", err)
	}
}

func TestHistogramSingleBucketOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one", []float64{10})
	h.Observe(5)   // in the single finite bucket
	h.Observe(10)  // boundary: le is inclusive
	h.Observe(11)  // overflow
	h.Observe(1e6) // overflow
	s := h.Stats()
	if s.Counts[0] != 2 || s.Counts[1] != 2 {
		t.Fatalf("counts = %v, want [2 2]", s.Counts)
	}
	// The median is bounded by the finite bucket; the p95 is not.
	if got := s.Quantile(0.5); got != 10 {
		t.Errorf("Quantile(0.5) = %v, want 10", got)
	}
	if got := s.Quantile(0.95); !math.IsInf(got, 1) {
		t.Errorf("Quantile(0.95) = %v, want +Inf (overflow bucket)", got)
	}
}

func TestHistogramInfBucketCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cum", []float64{1, 2})
	for v := int64(0); v < 10; v++ {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: le1 counts {0,1}, le2 adds {2}, +Inf all 10 —
	// and +Inf must equal _count exactly.
	for _, want := range []string{
		`dwm_cum_bucket{le="1"} 2`,
		`dwm_cum_bucket{le="2"} 3`,
		`dwm_cum_bucket{le="+Inf"} 10`,
		"dwm_cum_count 10",
		"dwm_cum_sum 45",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("exposition fails lint: %v", err)
	}
}

// The histogram quantile and the raw-sample nearest-rank quantile in
// internal/stats agree exactly when every observation sits on a bucket
// bound — the histogram resolves each rank to its bucket's upper bound,
// which then IS the sample value.
func TestHistogramQuantileAgreesWithStats(t *testing.T) {
	bounds := []float64{1, 2, 4, 8, 16, 32}
	r := NewRegistry()
	h := r.Histogram("agree", bounds)
	var sample []float64
	// A skewed pile-up at small distances with a long tail, the shape
	// shift-distance distributions take.
	for i, n := range []int{37, 19, 11, 7, 3, 2} {
		for k := 0; k < n; k++ {
			h.Observe(int64(bounds[i]))
			sample = append(sample, bounds[i])
		}
	}
	s := h.Stats()
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		want, err := stats.Quantile(sample, q)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Quantile(q); got != want {
			t.Errorf("Quantile(%v): hist %v, stats %v", q, got, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc", []float64{10, 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i % 200))
			}
		}(g)
	}
	wg.Wait()
	s := h.Stats()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"duplicate":  {1, 1},
		"inf":        {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds %v did not panic", name, bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

func TestHistogramResetAndReuse(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("reset", []float64{5})
	h.Observe(1)
	h.Observe(100)
	r.Reset()
	s := h.Stats()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("after Reset: count=%d sum=%d", s.Count, s.Sum)
	}
	// Same name returns the same instrument; the registered bounds win.
	if h2 := r.Histogram("reset", []float64{1, 2, 3}); h2 != h {
		t.Fatal("re-registration returned a different instrument")
	}
}
