package obs

// Cross-process trace propagation. A TraceContext is the serializable
// identity of one request: a 128-bit trace ID that stays constant for
// the request's whole life, plus the span ID of the caller's current
// span. It crosses process boundaries as a W3C-`traceparent`-style
// header ("00-<trace-id>-<parent-id>-01"), so the dwmserved client
// injects it, the server extracts it, and every span either side
// records lands in the same trace — one ID follows a request from the
// client retry loop through the queue, the anneal chains, and the WAL
// append (DESIGN.md §16).
//
// Trace IDs are never drawn from a clock or global RNG: DeriveTraceContext
// is a pure splitmix64 chain over a string key (typically the request's
// identity key), so the same request always carries the same trace ID —
// load-test runs are reproducible, and the determinism contract never
// sees a new entropy source. Like everything else in this package, trace
// propagation is inert: it decorates spans and responses and can never
// influence a placement.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// TraceContext identifies a request across process boundaries.
// The zero value is invalid, meaning "no trace".
type TraceContext struct {
	// TraceID is 32 lowercase hex digits (128 bits), not all zero.
	TraceID string
	// SpanID is the caller's current span — the remote parent of the
	// next span started under this context. Nonzero when valid.
	SpanID uint64
}

// Valid reports whether tc carries a usable trace identity: a
// well-formed nonzero trace ID and a nonzero parent span.
func (tc TraceContext) Valid() bool {
	if len(tc.TraceID) != 32 || tc.SpanID == 0 {
		return false
	}
	allZero := true
	for i := 0; i < len(tc.TraceID); i++ {
		c := tc.TraceID[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			allZero = false
		}
	}
	return !allZero
}

// TraceParent renders the wire form: version 00, the trace ID, the
// parent span ID as 16 hex digits, and the sampled flag — the W3C
// traceparent layout, so off-the-shelf tooling parses it.
func (tc TraceContext) TraceParent() string {
	return fmt.Sprintf("00-%s-%016x-01", tc.TraceID, tc.SpanID)
}

// ParseTraceParent decodes a traceparent header value. It accepts any
// version except the reserved ff, ignores unknown trailing fields, and
// rejects malformed or all-zero IDs (per the W3C grammar) by returning
// ok=false — an invalid header means "no trace", never an error the
// request path has to handle.
func ParseTraceParent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	version, traceID, parent := parts[0], parts[1], parts[2]
	if len(version) != 2 || !isHex(version) || strings.EqualFold(version, "ff") {
		return TraceContext{}, false
	}
	if len(traceID) != 32 || len(parent) != 16 {
		return TraceContext{}, false
	}
	span, err := strconv.ParseUint(parent, 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: strings.ToLower(traceID), SpanID: span}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// isHex reports whether s is entirely hex digits (either case).
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return len(s) > 0
}

// mix64 is the splitmix64 finalizer, the tree-wide derivation primitive
// for decorrelated deterministic streams.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// DeriveTraceContext derives a TraceContext deterministically from a
// string key: the same key always yields the same trace, distinct keys
// decorrelate through the splitmix chain. Callers use the request's
// identity key, so a resubmitted (idempotent) request carries the same
// trace ID as its original — the trace follows the computation, not the
// connection.
func DeriveTraceContext(key string) TraceContext {
	h := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < len(key); i++ {
		h = mix64(h ^ uint64(key[i]))
	}
	hi, lo := mix64(h+1), mix64(h+2)
	if hi == 0 && lo == 0 {
		lo = 1
	}
	span := mix64(h + 3)
	if span == 0 {
		span = 1
	}
	return TraceContext{TraceID: fmt.Sprintf("%016x%016x", hi, lo), SpanID: span}
}

// traceCtxKey carries the TraceContext through a context.
type traceCtxKey struct{}

// ContextWithTrace returns a context carrying tc. An invalid tc returns
// ctx unchanged, so callers can thread parse results unconditionally.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the TraceContext from ctx, ok=false when
// none is attached.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
