package obs

// Labeled instruments. A CounterVec / HistogramVec is a family of
// counters (histograms) keyed by a small, declared label set — tenant,
// policy, outcome — the per-tenant attribution the serving layer stamps
// on every request. Cardinality is bounded by construction: each vec
// caps its distinct label combinations (default 64), and once the cap
// is reached new combinations collapse into one overflow child whose
// every label value is OverflowLabel. A hostile or merely unbounded
// label source (user-chosen tenant names, say) can therefore never grow
// the exposition without limit; the overflow child keeps the totals
// honest while the interesting series stay per-value. cmd/promlint's
// cardinality check is the matching scrape-side gate.
//
// Label KEYS are declared once at registration and must be legal
// Prometheus label names; label VALUES are arbitrary strings, escaped
// at exposition time. The child lookup is one mutex-guarded map probe;
// hot paths that care hold on to the returned *Counter / *Histogram.

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// OverflowLabel is the label value every series beyond a vec's
// cardinality cap collapses into.
const OverflowLabel = "_other"

// DefaultMaxSeries is the per-vec cardinality cap when the registry's
// vec constructors are called with no explicit bound.
const DefaultMaxSeries = 64

// labelKeyRE is the Prometheus label-name grammar (no leading "__",
// which is reserved for internal use).
var labelKeyRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// validateLabelKeys panics on a malformed or reserved label key —
// label sets are declared by code, not data, so this is a programming
// error on the same footing as malformed histogram bounds.
func validateLabelKeys(name string, keys []string) {
	if len(keys) == 0 {
		panic(fmt.Sprintf("obs: vec %q declares no label keys", name))
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if !labelKeyRE.MatchString(k) || strings.HasPrefix(k, "__") {
			panic(fmt.Sprintf("obs: vec %q has invalid label key %q", name, k))
		}
		if seen[k] {
			panic(fmt.Sprintf("obs: vec %q repeats label key %q", name, k))
		}
		seen[k] = true
	}
}

// childKey serializes label values into a map key. \xff cannot appear
// in the middle of a UTF-8 rune, so values cannot alias across the
// separator.
func childKey(values []string) string {
	return strings.Join(values, "\xff")
}

// CounterVec is a family of counters over a fixed label set. Obtain one
// from a Registry; the zero value is unusable.
type CounterVec struct {
	name string
	keys []string
	max  int

	mu       sync.Mutex
	children map[string]*counterChild //dwmlint:guard mu
}

type counterChild struct {
	values []string
	c      Counter
}

func newCounterVec(name string, keys []string, max int) *CounterVec {
	validateLabelKeys(name, keys)
	if max <= 0 {
		max = DefaultMaxSeries
	}
	return &CounterVec{name: name, keys: keys, max: max, children: map[string]*counterChild{}}
}

// With returns the counter for the given label values (one per declared
// key, in declaration order), creating it on first use. Once the vec
// holds max distinct combinations, unseen combinations all map to the
// overflow child. The returned counter is valid forever; hot callers
// should keep it.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: vec %q wants %d label values, got %d", v.name, len(v.keys), len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	key := childKey(values)
	ch, ok := v.children[key]
	if !ok {
		if len(v.children) >= v.max {
			return &v.overflowLocked().c
		}
		ch = &counterChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.c
}

// overflowLocked returns (creating if needed) the overflow child. The
// overflow child may push the map one past max — the cap bounds real
// combinations, and the overflow series must always exist to absorb
// them. Called only from With with v.mu held.
//
//dwmlint:holds mu
func (v *CounterVec) overflowLocked() *counterChild {
	values := make([]string, len(v.keys))
	for i := range values {
		values[i] = OverflowLabel
	}
	key := childKey(values)
	ch, ok := v.children[key]
	if !ok {
		ch = &counterChild{values: values}
		v.children[key] = ch
	}
	return ch
}

// snapshot copies the vec's series, sorted by label values.
func (v *CounterVec) snapshot() LabeledCounterStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := LabeledCounterStats{Keys: append([]string(nil), v.keys...)}
	for _, ch := range v.children {
		//dwmlint:ignore maporder sortSeries below restores the deterministic label-value order
		s.Series = append(s.Series, LabeledSample{
			Values: append([]string(nil), ch.values...),
			Value:  ch.c.Value(),
		})
	}
	sortSeries(s.Series, func(ls LabeledSample) []string { return ls.Values })
	return s
}

// reset zeroes every child in place (handles stay valid).
func (v *CounterVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, ch := range v.children {
		ch.c.v.Store(0)
	}
}

// HistogramVec is a family of fixed-bucket histograms over a fixed
// label set; every child shares the vec's bucket bounds.
type HistogramVec struct {
	name   string
	keys   []string
	bounds []float64
	max    int

	mu       sync.Mutex
	children map[string]*histChild //dwmlint:guard mu
}

type histChild struct {
	values []string
	h      *Histogram
}

func newHistogramVec(name string, keys []string, bounds []float64, max int) *HistogramVec {
	validateLabelKeys(name, keys)
	if max <= 0 {
		max = DefaultMaxSeries
	}
	return &HistogramVec{
		name:     name,
		keys:     keys,
		bounds:   append([]float64(nil), bounds...),
		max:      max,
		children: map[string]*histChild{},
	}
}

// With returns the histogram for the given label values, creating it on
// first use; past the cardinality cap, unseen combinations share the
// overflow child (see CounterVec.With).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: vec %q wants %d label values, got %d", v.name, len(v.keys), len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	key := childKey(values)
	ch, ok := v.children[key]
	if !ok {
		if len(v.children) >= v.max {
			return v.overflowLocked().h
		}
		ch = &histChild{values: append([]string(nil), values...), h: newHistogram(v.bounds)}
		v.children[key] = ch
	}
	return ch.h
}

// overflowLocked returns (creating if needed) the overflow child; see
// CounterVec.overflowLocked. Called only from With with v.mu held.
//
//dwmlint:holds mu
func (v *HistogramVec) overflowLocked() *histChild {
	values := make([]string, len(v.keys))
	for i := range values {
		values[i] = OverflowLabel
	}
	key := childKey(values)
	ch, ok := v.children[key]
	if !ok {
		ch = &histChild{values: values, h: newHistogram(v.bounds)}
		v.children[key] = ch
	}
	return ch
}

// snapshot copies the vec's series, sorted by label values.
func (v *HistogramVec) snapshot() LabeledHistStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := LabeledHistStats{Keys: append([]string(nil), v.keys...)}
	for _, ch := range v.children {
		//dwmlint:ignore maporder sortSeries below restores the deterministic label-value order
		s.Series = append(s.Series, LabeledHistSample{
			Values: append([]string(nil), ch.values...),
			Hist:   ch.h.Stats(),
		})
	}
	sortSeries(s.Series, func(ls LabeledHistSample) []string { return ls.Values })
	return s
}

// reset zeroes every child histogram in place.
func (v *HistogramVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, ch := range v.children {
		resetHistogram(ch.h)
	}
}

// LabeledCounterStats is the snapshot form of a CounterVec: the declared
// keys and every series, sorted by label values.
type LabeledCounterStats struct {
	Keys   []string        `json:"keys"`
	Series []LabeledSample `json:"series"`
}

// LabeledSample is one labeled counter series.
type LabeledSample struct {
	Values []string `json:"values"`
	Value  int64    `json:"value"`
}

// LabeledHistStats is the snapshot form of a HistogramVec.
type LabeledHistStats struct {
	Keys   []string            `json:"keys"`
	Series []LabeledHistSample `json:"series"`
}

// LabeledHistSample is one labeled histogram series.
type LabeledHistSample struct {
	Values []string  `json:"values"`
	Hist   HistStats `json:"hist"`
}

// sortSeries orders series lexically by their label-value vectors — the
// deterministic order of the snapshot and the exposition.
func sortSeries[T any](s []T, values func(T) []string) {
	sort.Slice(s, func(i, j int) bool {
		a, b := values(s[i]), values(s[j])
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// labelPairs renders a label set body ("k1=v1,k2=v2" style with escaped
// quoted values) in declared key order, for the exposition writer.
func labelPairs(keys, values []string) string {
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// Quote by hand: escapeLabelValue already produced the exact
		// escape sequences the text format wants, which %q would mangle.
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabelValue(values[i]))
	}
	return b.String()
}
