// Package obs is a minimal in-process metrics layer: named counters,
// gauges, and timers with a consistent snapshot API and no external
// dependencies. The hot layers of the reproduction (the simulator, the
// annealer, the CSR cache, the experiment runner) register instruments
// once at package init and update them with single atomic operations, so
// instrumentation is cheap enough to leave on unconditionally.
//
// All instruments are safe for concurrent use. Snapshot copies the
// current values without stopping writers, so a snapshot taken while a
// run is in flight is a consistent-enough point-in-time view, not a
// barrier.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored so the counter stays monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations: observation count, total, and maximum.
type Timer struct {
	count   atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	t.count.Add(1)
	t.totalNS.Add(ns)
	for {
		cur := t.maxNS.Load()
		if ns <= cur || t.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Start returns a stop function that observes the elapsed time when
// called: defer obs.Timer("x").Start()().
func (t *Timer) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Stats returns the timer's current aggregates.
func (t *Timer) Stats() TimerStats {
	return TimerStats{
		Count:   t.count.Load(),
		TotalNS: t.totalNS.Load(),
		MaxNS:   t.maxNS.Load(),
	}
}

// TimerStats is the snapshot form of a Timer.
type TimerStats struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// MeanNS returns the mean observation in nanoseconds (0 when empty).
func (s TimerStats) MeanNS() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.TotalNS / s.Count
}

// Registry holds named instruments. The zero value is ready to use; most
// code uses the package-level default registry instead.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	timers      map[string]*Timer
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter with the given name, creating it on first
// use. Repeated calls with the same name return the same instrument.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer with the given name, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timers == nil {
		r.timers = map[string]*Timer{}
	}
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the fixed-bucket histogram with the given name,
// creating it with the given bucket bounds (finite, strictly
// increasing; an overflow/+Inf bucket is added implicitly) on first
// use. Later calls with the same name return the existing instrument —
// its original bounds win, so register each histogram once.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the labeled counter family with the given name,
// creating it with the given label keys and the default cardinality cap
// (DefaultMaxSeries) on first use. Like Histogram, the first
// registration's shape wins.
func (r *Registry) CounterVec(name string, keys []string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counterVecs == nil {
		r.counterVecs = map[string]*CounterVec{}
	}
	v, ok := r.counterVecs[name]
	if !ok {
		v = newCounterVec(name, keys, 0)
		r.counterVecs[name] = v
	}
	return v
}

// HistogramVec returns the labeled histogram family with the given
// name, creating it with the given label keys, bucket bounds, and the
// default cardinality cap on first use.
func (r *Registry) HistogramVec(name string, keys []string, bounds []float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histVecs == nil {
		r.histVecs = map[string]*HistogramVec{}
	}
	v, ok := r.histVecs[name]
	if !ok {
		v = newHistogramVec(name, keys, bounds, 0)
		r.histVecs[name] = v
	}
	return v
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// the unit the -json report embeds.
type Snapshot struct {
	Counters   map[string]int64      `json:"counters,omitempty"`
	Gauges     map[string]int64      `json:"gauges,omitempty"`
	Timers     map[string]TimerStats `json:"timers,omitempty"`
	Histograms map[string]HistStats  `json:"histograms,omitempty"`
	// LabeledCounters / LabeledHistograms hold the vec families; each
	// family's series are sorted by label values (see labels.go).
	LabeledCounters   map[string]LabeledCounterStats `json:"labeled_counters,omitempty"`
	LabeledHistograms map[string]LabeledHistStats    `json:"labeled_histograms,omitempty"`
}

// Snapshot copies the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerStats, len(r.timers))
		for name, t := range r.timers {
			s.Timers[name] = t.Stats()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistStats, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Stats()
		}
	}
	if len(r.counterVecs) > 0 {
		s.LabeledCounters = make(map[string]LabeledCounterStats, len(r.counterVecs))
		for name, v := range r.counterVecs {
			s.LabeledCounters[name] = v.snapshot()
		}
	}
	if len(r.histVecs) > 0 {
		s.LabeledHistograms = make(map[string]LabeledHistStats, len(r.histVecs))
		for name, v := range r.histVecs {
			s.LabeledHistograms[name] = v.snapshot()
		}
	}
	return s
}

// Reset zeroes every instrument in place. Handles returned earlier stay
// valid, so tests can reset between cases without re-registering.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, t := range r.timers {
		t.count.Store(0)
		t.totalNS.Store(0)
		t.maxNS.Store(0)
	}
	for _, h := range r.hists {
		resetHistogram(h)
	}
	for _, v := range r.counterVecs {
		v.reset()
	}
	for _, v := range r.histVecs {
		v.reset()
	}
}

// Format renders the snapshot as aligned "name value" lines grouped by
// instrument kind, in lexical name order — the output of the dwmbench
// -metrics flag.
func (s Snapshot) Format() string {
	var b strings.Builder
	writeSorted := func(kind string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "%s %-36s %d\n", kind, name, m[name])
		}
	}
	writeSorted("counter", s.Counters)
	writeSorted("gauge  ", s.Gauges)
	if len(s.Timers) > 0 {
		names := make([]string, 0, len(s.Timers))
		for name := range s.Timers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := s.Timers[name]
			fmt.Fprintf(&b, "timer   %-36s count=%d total=%s mean=%s max=%s\n",
				name, st.Count,
				time.Duration(st.TotalNS), time.Duration(st.MeanNS()), time.Duration(st.MaxNS))
		}
	}
	if len(s.Histograms) > 0 {
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := s.Histograms[name]
			fmt.Fprintf(&b, "hist    %-36s count=%d sum=%d p50=%s p95=%s max=%s\n",
				name, st.Count, st.Sum,
				formatBound(st.Quantile(0.50)), formatBound(st.Quantile(0.95)), formatBound(st.Quantile(1)))
		}
	}
	if len(s.LabeledCounters) > 0 {
		names := make([]string, 0, len(s.LabeledCounters))
		for name := range s.LabeledCounters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := s.LabeledCounters[name]
			for _, ls := range st.Series {
				fmt.Fprintf(&b, "counter %s{%s} %d\n", name, labelPairs(st.Keys, ls.Values), ls.Value)
			}
		}
	}
	if len(s.LabeledHistograms) > 0 {
		names := make([]string, 0, len(s.LabeledHistograms))
		for name := range s.LabeledHistograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := s.LabeledHistograms[name]
			for _, ls := range st.Series {
				fmt.Fprintf(&b, "hist    %s{%s} count=%d sum=%d p50=%s p95=%s\n",
					name, labelPairs(st.Keys, ls.Values), ls.Hist.Count, ls.Hist.Sum,
					formatBound(ls.Hist.Quantile(0.50)), formatBound(ls.Hist.Quantile(0.95)))
			}
		}
	}
	return b.String()
}

// formatBound renders a bucket bound for the text snapshot: "le2" style
// ("at most this bucket bound"), with the overflow bucket as ">max".
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return ">max"
	}
	return "le" + strconv.FormatFloat(b, 'g', -1, 64)
}

// defaultRegistry is the process-wide registry the instrumented layers
// use.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// GetCounter returns a counter from the default registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetTimer returns a timer from the default registry.
func GetTimer(name string) *Timer { return defaultRegistry.Timer(name) }

// GetHistogram returns a histogram from the default registry, creating
// it with the given bucket bounds on first use (see Registry.Histogram).
func GetHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// GetCounterVec returns a labeled counter family from the default
// registry (see Registry.CounterVec).
func GetCounterVec(name string, keys []string) *CounterVec {
	return defaultRegistry.CounterVec(name, keys)
}

// GetHistogramVec returns a labeled histogram family from the default
// registry (see Registry.HistogramVec).
func GetHistogramVec(name string, keys []string, bounds []float64) *HistogramVec {
	return defaultRegistry.HistogramVec(name, keys, bounds)
}

// Take returns a snapshot of the default registry.
func Take() Snapshot { return defaultRegistry.Snapshot() }

// ResetDefault zeroes the default registry (tests and benchmark setup).
func ResetDefault() { defaultRegistry.Reset() }
