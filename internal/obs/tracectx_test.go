package obs

import (
	"context"
	"fmt"
	"testing"
)

func TestDeriveTraceContextDeterministic(t *testing.T) {
	a := DeriveTraceContext("place/abc123")
	b := DeriveTraceContext("place/abc123")
	if a != b {
		t.Fatalf("same key derived %+v and %+v", a, b)
	}
	if !a.Valid() {
		t.Fatalf("derived context invalid: %+v", a)
	}
	if len(a.TraceID) != 32 {
		t.Fatalf("trace ID %q is not 32 hex digits", a.TraceID)
	}
	if c := DeriveTraceContext("place/abc124"); c.TraceID == a.TraceID {
		t.Fatalf("distinct keys share trace ID %s", a.TraceID)
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tc := DeriveTraceContext("roundtrip")
	wire := tc.TraceParent()
	got, ok := ParseTraceParent(wire)
	if !ok {
		t.Fatalf("ParseTraceParent rejected own output %q", wire)
	}
	if got != tc {
		t.Fatalf("round trip %q: got %+v, want %+v", wire, got, tc)
	}
}

func TestParseTraceParent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in string
		ok bool
	}{
		{valid, true},
		// Future versions and unknown trailing fields are accepted.
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		// Uppercase hex is normalized.
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01", true},
		// Reserved version.
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		// All-zero trace / parent IDs.
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		// Wrong field widths, missing fields, junk.
		{"00-4bf92f3577b34da6-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", false},
		{"", false},
		{"not a header", false},
		{"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", false},
	}
	for _, c := range cases {
		tc, ok := ParseTraceParent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceParent(%q) ok=%v, want %v", c.in, ok, c.ok)
		}
		if ok && !tc.Valid() {
			t.Errorf("ParseTraceParent(%q) returned invalid context %+v", c.in, tc)
		}
	}
}

func TestContextWithTrace(t *testing.T) {
	base := context.Background()
	if got := ContextWithTrace(base, TraceContext{}); got != base {
		t.Fatal("invalid TraceContext changed the context")
	}
	if _, ok := TraceFromContext(base); ok {
		t.Fatal("empty context claims a trace")
	}
	tc := DeriveTraceContext("ctx")
	ctx := ContextWithTrace(base, tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v, %v; want %+v", got, ok, tc)
	}
}

// TestStartSpanStampsTrace covers the propagation contract: a span
// started under a TraceContext records the trace ID, the first span of
// the trace in this process records the remote parent, and descendants
// inherit the trace with local parent linking.
func TestStartSpanStampsTrace(t *testing.T) {
	withTracer(t, 64)
	tc := DeriveTraceContext("propagated")
	ctx := ContextWithTrace(context.Background(), tc)

	ctx, root := StartSpan(ctx, "server.root")
	_, child := StartSpan(ctx, "server.child")
	child.End()
	root.End()

	recs, _ := DrainSpans()
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	childRec, rootRec := recs[0], recs[1]
	if rootRec.Trace != tc.TraceID || childRec.Trace != tc.TraceID {
		t.Fatalf("trace IDs %q / %q, want %q", rootRec.Trace, childRec.Trace, tc.TraceID)
	}
	if want := fmt.Sprintf("%016x", tc.SpanID); rootRec.Remote != want {
		t.Fatalf("root remote = %q, want %q", rootRec.Remote, want)
	}
	if childRec.Remote != "" {
		t.Fatalf("child carries remote parent %q; only trace roots should", childRec.Remote)
	}
	if childRec.Parent != rootRec.ID {
		t.Fatalf("child parent %d != root id %d", childRec.Parent, rootRec.ID)
	}
}

// TestSpanTraceContextAdvances checks that the context returned by
// StartSpan names the new span as the parent of outbound calls.
func TestSpanTraceContextAdvances(t *testing.T) {
	withTracer(t, 64)
	tc := DeriveTraceContext("outbound")
	ctx := ContextWithTrace(context.Background(), tc)
	ctx, sp := StartSpan(ctx, "op")
	defer sp.End()

	adv, ok := TraceFromContext(ctx)
	if !ok || adv.TraceID != tc.TraceID {
		t.Fatalf("advanced context trace = %+v, %v", adv, ok)
	}
	if adv.SpanID == tc.SpanID {
		t.Fatal("context SpanID did not advance to the new span")
	}
	stc, ok := sp.TraceContext()
	if !ok || stc != adv {
		t.Fatalf("span TraceContext %+v != context %+v", stc, adv)
	}
}

func TestSortSpans(t *testing.T) {
	spans := []SpanRecord{
		{ID: 9, Trace: "bb"},
		{ID: 2, Trace: "aa"},
		{ID: 7, Trace: "aa"},
		{ID: 5}, // untraced sorts first
		{ID: 1, Trace: "bb"},
	}
	SortSpans(spans)
	want := []struct {
		trace string
		id    uint64
	}{{"", 5}, {"aa", 2}, {"aa", 7}, {"bb", 1}, {"bb", 9}}
	for i, w := range want {
		if spans[i].Trace != w.trace || spans[i].ID != w.id {
			t.Fatalf("spans[%d] = (%q, %d), want (%q, %d)", i, spans[i].Trace, spans[i].ID, w.trace, w.id)
		}
	}
}
