// Package viz renders placements and access statistics as plain-text
// figures for the CLI tools: a tape map showing where hot items landed
// relative to the ports, and sparklines/bars for distributions. Pure
// string formatting — no terminal control sequences — so output is
// stable, testable, and pipeable.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/layout"
)

// heatRamp maps intensity 0..1 to a density character.
var heatRamp = []rune(" .:-=+*#%@")

// heatChar returns the ramp character for x in [0,1].
func heatChar(x float64) rune {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	i := int(x * float64(len(heatRamp)-1))
	return heatRamp[i]
}

// TapeMap renders a single tape as two lines: a heat line where each slot
// is shaded by the access frequency of the item stored there (blank =
// empty slot), and a marker line flagging port positions with '^'. freq
// is indexed by item ID; items beyond the frequency table count as cold.
func TapeMap(p layout.Placement, freq []int64, tapeLen int, ports []int) (string, error) {
	if err := p.Validate(tapeLen); err != nil {
		return "", fmt.Errorf("viz: %w", err)
	}
	itemAt := make([]int, tapeLen)
	for i := range itemAt {
		itemAt[i] = -1
	}
	for item, slot := range p {
		itemAt[slot] = item
	}
	var maxF int64 = 1
	for _, f := range freq {
		if f > maxF {
			maxF = f
		}
	}
	heat := make([]rune, tapeLen)
	for s, item := range itemAt {
		if item < 0 {
			heat[s] = ' ' // empty slot
			continue
		}
		c := heatRamp[1] // occupied slots render at least '.'
		if item < len(freq) {
			if h := heatChar(float64(freq[item]) / float64(maxF)); h != ' ' {
				c = h
			}
		}
		heat[s] = c
	}
	marks := make([]rune, tapeLen)
	for i := range marks {
		marks[i] = ' '
	}
	for _, q := range ports {
		if q < 0 || q >= tapeLen {
			return "", fmt.Errorf("viz: port %d outside [0,%d)", q, tapeLen)
		}
		marks[q] = '^'
	}
	return "|" + string(heat) + "|\n " + string(marks), nil
}

// sparkRamp is the 8-level block ramp used by Sparkline.
var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as unicode block characters scaled
// to the series maximum. An empty series renders as an empty string;
// non-positive values render as the lowest block.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	max := xs[0]
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	var sb strings.Builder
	for _, x := range xs {
		if max <= 0 || x <= 0 {
			sb.WriteRune(sparkRamp[0])
			continue
		}
		i := int(x / max * float64(len(sparkRamp)-1))
		sb.WriteRune(sparkRamp[i])
	}
	return sb.String()
}

// Bar renders a labeled horizontal bar chart, one row per entry, with
// bars scaled to the given width.
func Bar(labels []string, values []float64, width int) (string, error) {
	if len(labels) != len(values) {
		return "", fmt.Errorf("viz: %d labels for %d values", len(labels), len(values))
	}
	if width < 1 {
		width = 40
	}
	max := 0.0
	labelW := 0
	for i, v := range values {
		if v < 0 {
			return "", fmt.Errorf("viz: negative value %g", v)
		}
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var sb strings.Builder
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s %s %g\n", labelW, labels[i], strings.Repeat("#", n), v)
	}
	return sb.String(), nil
}
