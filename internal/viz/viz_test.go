package viz

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/layout"
)

func TestTapeMapBasics(t *testing.T) {
	p := layout.Placement{0, 2} // item0 hot at slot0, item1 at slot2
	freq := []int64{100, 1}
	out, err := TapeMap(p, freq, 4, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d: %q", len(lines), out)
	}
	heat := []rune(lines[0])
	if heat[0] != '|' || heat[len(heat)-1] != '|' {
		t.Errorf("heat line not framed: %q", lines[0])
	}
	// Slot 0 hottest -> '@'; slot 1 empty -> ' '; slot 2 cold but present.
	if heat[1] != '@' {
		t.Errorf("hot slot rendered %q", heat[1])
	}
	if heat[2] != ' ' {
		t.Errorf("empty slot rendered %q", heat[2])
	}
	if heat[3] == ' ' {
		t.Error("occupied cold slot rendered blank")
	}
	// Marker line: leading space then one mark per slot; port 1 -> index 2.
	marks := []rune(lines[1])
	if marks[2] != '^' {
		t.Errorf("port marker line %q", lines[1])
	}
}

func TestTapeMapErrors(t *testing.T) {
	if _, err := TapeMap(layout.Placement{0, 0}, nil, 4, []int{0}); err == nil {
		t.Error("invalid placement accepted")
	}
	if _, err := TapeMap(layout.Identity(4), nil, 4, []int{7}); err == nil {
		t.Error("bad port accepted")
	}
}

func TestTapeMapItemBeyondFreqTable(t *testing.T) {
	p := layout.Identity(3)
	out, err := TapeMap(p, []int64{5}, 3, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(strings.Split(out, "\n")[0], " ") != 0 {
		t.Errorf("slots with unknown-frequency items should not be blank: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series not empty")
	}
	s := Sparkline([]float64{0, 1, 2, 4})
	if utf8.RuneCountInString(s) != 4 {
		t.Errorf("length %d: %q", utf8.RuneCountInString(s), s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("scaling wrong: %q", s)
	}
	// All-zero series renders lowest blocks, no panic.
	z := Sparkline([]float64{0, 0})
	if z != "▁▁" {
		t.Errorf("zero series: %q", z)
	}
}

func TestBar(t *testing.T) {
	out, err := Bar([]string{"a", "bb"}, []float64{2, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 8)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 4 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
	if _, err := Bar([]string{"a"}, []float64{1, 2}, 8); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Bar([]string{"a"}, []float64{-1}, 8); err == nil {
		t.Error("negative value accepted")
	}
}

func TestHeatCharClamps(t *testing.T) {
	if heatChar(-1) != ' ' {
		t.Error("below range not clamped to blank")
	}
	if heatChar(2) != '@' {
		t.Error("above range not clamped to max")
	}
}
