// Package addrmap models the address-interleaving layer of a DWM main
// memory: how a linear word address space is spread across the tape
// array. Unlike the placement problem (which permutes items freely), the
// interleaving function is fixed in the memory controller — but its
// choice interacts strongly with access patterns: tape-major keeps
// sequential words on one tape (1 shift per step), striping spreads
// consecutive words across tapes (shifts amortize across heads), and
// block interleaving trades between the two. Experiment E19 sweeps
// access stride against the three mappings.
package addrmap

import (
	"fmt"

	"repro/internal/dwm"
)

// Mapping maps linear word indices onto device addresses.
type Mapping interface {
	// Name identifies the mapping in tables.
	Name() string
	// Words returns the address space size.
	Words() int
	// Map returns the device address of a word; callers must pass
	// word in [0, Words()).
	Map(word int) dwm.Address
}

// geometryWords validates that the geometry is usable and returns its
// capacity.
func geometryWords(g dwm.Geometry) (int, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	return g.Words(), nil
}

// TapeMajor places consecutive words in consecutive slots of the same
// tape, filling tapes one after another (the "contiguous" mapping).
type TapeMajor struct {
	tapes, slots int
}

// NewTapeMajor builds the mapping for a geometry.
func NewTapeMajor(g dwm.Geometry) (TapeMajor, error) {
	if _, err := geometryWords(g); err != nil {
		return TapeMajor{}, err
	}
	return TapeMajor{tapes: g.Tapes, slots: g.DomainsPerTape}, nil
}

// Name implements Mapping.
func (m TapeMajor) Name() string { return "tape-major" }

// Words implements Mapping.
func (m TapeMajor) Words() int { return m.tapes * m.slots }

// Map implements Mapping.
func (m TapeMajor) Map(word int) dwm.Address {
	return dwm.Address{Tape: word / m.slots, Slot: word % m.slots}
}

// Striped places consecutive words on consecutive tapes (word-level
// interleaving, the DRAM-channel analog).
type Striped struct {
	tapes, slots int
}

// NewStriped builds the mapping for a geometry.
func NewStriped(g dwm.Geometry) (Striped, error) {
	if _, err := geometryWords(g); err != nil {
		return Striped{}, err
	}
	return Striped{tapes: g.Tapes, slots: g.DomainsPerTape}, nil
}

// Name implements Mapping.
func (m Striped) Name() string { return "striped" }

// Words implements Mapping.
func (m Striped) Words() int { return m.tapes * m.slots }

// Map implements Mapping.
func (m Striped) Map(word int) dwm.Address {
	return dwm.Address{Tape: word % m.tapes, Slot: word / m.tapes}
}

// BlockInterleaved places blocks of Block consecutive words per tape
// before moving to the next tape (cache-line-grained interleaving).
type BlockInterleaved struct {
	tapes, slots, block int
}

// NewBlockInterleaved builds the mapping; block must divide the tape
// length so blocks never straddle a wrap.
func NewBlockInterleaved(g dwm.Geometry, block int) (BlockInterleaved, error) {
	if _, err := geometryWords(g); err != nil {
		return BlockInterleaved{}, err
	}
	if block <= 0 || g.DomainsPerTape%block != 0 {
		return BlockInterleaved{}, fmt.Errorf(
			"addrmap: block %d must be positive and divide tape length %d", block, g.DomainsPerTape)
	}
	return BlockInterleaved{tapes: g.Tapes, slots: g.DomainsPerTape, block: block}, nil
}

// Name implements Mapping.
func (m BlockInterleaved) Name() string { return fmt.Sprintf("block-%d", m.block) }

// Words implements Mapping.
func (m BlockInterleaved) Words() int { return m.tapes * m.slots }

// Map implements Mapping.
func (m BlockInterleaved) Map(word int) dwm.Address {
	blk := word / m.block
	return dwm.Address{
		Tape: blk % m.tapes,
		Slot: (blk/m.tapes)*m.block + word%m.block,
	}
}

// Sweep runs an access pattern (a sequence of linear word indices)
// against a fresh device under the mapping and returns the total shifts.
func Sweep(g dwm.Geometry, p dwm.Params, m Mapping, words []int) (int64, error) {
	dev, err := dwm.NewDevice(g, p)
	if err != nil {
		return 0, err
	}
	if m.Words() != g.Words() {
		return 0, fmt.Errorf("addrmap: mapping covers %d words, device has %d", m.Words(), g.Words())
	}
	for i, w := range words {
		if w < 0 || w >= m.Words() {
			return 0, fmt.Errorf("addrmap: access %d to word %d outside [0,%d)", i, w, m.Words())
		}
		if _, _, err := dev.Read(m.Map(w)); err != nil {
			return 0, err
		}
	}
	return dev.Counters().Shifts, nil
}

// Patterns used by E19.

// Sequential returns reps passes over the whole address space in order.
func Sequential(words, reps int) []int {
	out := make([]int, 0, words*reps)
	for r := 0; r < reps; r++ {
		for w := 0; w < words; w++ {
			out = append(out, w)
		}
	}
	return out
}

// Strided returns count accesses stepping by stride, wrapping at the
// address-space size.
func Strided(words, stride, count int) []int {
	out := make([]int, count)
	w := 0
	for i := range out {
		out[i] = w
		w = (w + stride) % words
	}
	return out
}
