package addrmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dwm"
)

var testGeom = dwm.Geometry{Tapes: 4, DomainsPerTape: 16, PortsPerTape: 1}

func TestConstructorsValidate(t *testing.T) {
	bad := dwm.Geometry{}
	if _, err := NewTapeMajor(bad); err == nil {
		t.Error("TapeMajor accepted bad geometry")
	}
	if _, err := NewStriped(bad); err == nil {
		t.Error("Striped accepted bad geometry")
	}
	if _, err := NewBlockInterleaved(bad, 4); err == nil {
		t.Error("BlockInterleaved accepted bad geometry")
	}
	if _, err := NewBlockInterleaved(testGeom, 0); err == nil {
		t.Error("block 0 accepted")
	}
	if _, err := NewBlockInterleaved(testGeom, 5); err == nil {
		t.Error("non-dividing block accepted")
	}
}

func TestMappingKnownAddresses(t *testing.T) {
	tm, err := NewTapeMajor(testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if a := tm.Map(17); a != (dwm.Address{Tape: 1, Slot: 1}) {
		t.Errorf("tape-major Map(17) = %+v", a)
	}
	st, err := NewStriped(testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if a := st.Map(17); a != (dwm.Address{Tape: 1, Slot: 4}) {
		t.Errorf("striped Map(17) = %+v", a)
	}
	bi, err := NewBlockInterleaved(testGeom, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Word 17: block 4 -> tape 0, slot (4/4)*4 + 1 = 5.
	if a := bi.Map(17); a != (dwm.Address{Tape: 0, Slot: 5}) {
		t.Errorf("block Map(17) = %+v", a)
	}
	if bi.Name() != "block-4" {
		t.Errorf("Name = %q", bi.Name())
	}
}

// Property: every mapping is a bijection onto the device's address space.
func TestMappingsAreBijections(t *testing.T) {
	tm, _ := NewTapeMajor(testGeom)
	st, _ := NewStriped(testGeom)
	bi, _ := NewBlockInterleaved(testGeom, 4)
	for _, m := range []Mapping{tm, st, bi} {
		seen := map[dwm.Address]bool{}
		for w := 0; w < m.Words(); w++ {
			a := m.Map(w)
			if a.Tape < 0 || a.Tape >= testGeom.Tapes || a.Slot < 0 || a.Slot >= testGeom.DomainsPerTape {
				t.Fatalf("%s: Map(%d) = %+v out of range", m.Name(), w, a)
			}
			if seen[a] {
				t.Fatalf("%s: Map(%d) = %+v collides", m.Name(), w, a)
			}
			seen[a] = true
		}
		if len(seen) != testGeom.Words() {
			t.Fatalf("%s: covered %d of %d", m.Name(), len(seen), testGeom.Words())
		}
	}
}

func TestSweepValidation(t *testing.T) {
	tm, _ := NewTapeMajor(testGeom)
	if _, err := Sweep(testGeom, dwm.DefaultParams(), tm, []int{999}); err == nil {
		t.Error("out-of-range word accepted")
	}
	other := dwm.Geometry{Tapes: 2, DomainsPerTape: 16, PortsPerTape: 1}
	if _, err := Sweep(other, dwm.DefaultParams(), tm, []int{0}); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestSequentialSweepCosts(t *testing.T) {
	// Sequential pass: tape-major walks each tape end to end (seek to
	// slot 0 then 15 steps of 1, per tape); striped advances one slot per
	// T accesses — the same slot walk split across tapes. Both are cheap;
	// random is not. Verify exact tape-major cost: per tape, first access
	// seeks from home (port 8) to slot 0 = 8, then 15 single shifts = 23;
	// 4 tapes = 92.
	tm, _ := NewTapeMajor(testGeom)
	seq := Sequential(testGeom.Words(), 1)
	got, err := Sweep(testGeom, dwm.DefaultParams(), tm, seq)
	if err != nil {
		t.Fatal(err)
	}
	if got != 92 {
		t.Errorf("tape-major sequential = %d, want 92", got)
	}
	st, _ := NewStriped(testGeom)
	gotS, err := Sweep(testGeom, dwm.DefaultParams(), st, seq)
	if err != nil {
		t.Fatal(err)
	}
	if gotS != 92 { // same per-tape walk, interleaved in time
		t.Errorf("striped sequential = %d, want 92", gotS)
	}
}

func TestStridedExposesMappingDifferences(t *testing.T) {
	// Stride = #tapes on striped mapping stays on ONE tape stepping one
	// slot (cheap); on tape-major, stride 4 jumps 4 slots per access on
	// one tape (4x the shifts).
	st, _ := NewStriped(testGeom)
	tm, _ := NewTapeMajor(testGeom)
	pattern := Strided(testGeom.Words(), testGeom.Tapes, 64)
	cStriped, err := Sweep(testGeom, dwm.DefaultParams(), st, pattern)
	if err != nil {
		t.Fatal(err)
	}
	cTapeMajor, err := Sweep(testGeom, dwm.DefaultParams(), tm, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if cStriped >= cTapeMajor {
		t.Errorf("striped (%d) should beat tape-major (%d) at stride=#tapes",
			cStriped, cTapeMajor)
	}
}

func TestPatternGenerators(t *testing.T) {
	seq := Sequential(4, 2)
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("Sequential = %v", seq)
		}
	}
	str := Strided(8, 3, 5)
	wantS := []int{0, 3, 6, 1, 4}
	for i := range wantS {
		if str[i] != wantS[i] {
			t.Fatalf("Strided = %v", str)
		}
	}
}

// Property: total shifts are mapping-independent for single-access
// patterns repeated from home (the seek distance is a permutation of the
// same multiset only for full sweeps, so we assert a weaker invariant:
// sweeps never error and shifts are non-negative).
func TestSweepProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tm, err := NewTapeMajor(testGeom)
		if err != nil {
			return false
		}
		var pat []int
		for i := 0; i < 200; i++ {
			pat = append(pat, rng.Intn(testGeom.Words()))
		}
		c, err := Sweep(testGeom, dwm.DefaultParams(), tm, pat)
		return err == nil && c >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
